// Allocation gate: steady-state heap-allocation accounting for the region
// hot path, plus the single-thread wall-clock and determinism cross-check
// of the compact layout.
//
// This binary links the caqe_alloc_hook library ahead of the caqe
// libraries (bench/CMakeLists.txt), so the counting operator new/delete
// replacement is live and the region pipeline exports per-region
// allocation deltas through the caqe_alloc_* obs counters. Two sweeps run
// with --compact_layout off and on at threads=1:
//
//  - a fig9-style batch execution (CAQE engine, log-decay contracts), gated
//    on full ReportHash equality between the layouts;
//  - a serving replay (synthetic arrival trace), gated on byte-identical
//    ServingReportText.
//
// The alloc gate itself: with the compact layout on, steady-state regions
// (past the pipeline's 32-region warmup window) must average at most
// --max_allocs_per_region heap allocations (default 5). The warmup window
// is where caches, arenas, and scratch grow to their high-water marks;
// steady state is where a resident decision-support service spends its
// life, and where the arena + reuse architecture pins allocation churn to
// ~zero.
//
// Flags: --rows=4000 --queries=8 --dims=4 --seed=2014
//        --serve_rows=8000 --serve_requests=80
//        --max_allocs_per_region=5 --out=BENCH_alloc.json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/alloc_hook.h"
#include "metrics/export.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"

namespace caqe {
namespace bench {
namespace {

struct AllocPoint {
  std::string phase;  // "exec" or "serve".
  bool compact = false;
  double wall_seconds = 0.0;
  int64_t regions = 0;
  int64_t warmup_allocs = 0;
  int64_t steady_allocs = 0;
  int64_t steady_regions = 0;
  double allocs_per_region = -1.0;  // -1 when no steady regions ran.
  // Steady-state attribution by pipeline phase (sums to ~steady_allocs;
  // the remainder is inter-phase bookkeeping).
  int64_t steady_join = 0;
  int64_t steady_eval = 0;
  int64_t steady_discard = 0;
  int64_t steady_emission = 0;
};

void ReadAllocCounters(Observability& obs, AllocPoint& point) {
  MetricsRegistry& m = obs.metrics;
  point.regions = m.counter("caqe_alloc_regions_total").value();
  point.warmup_allocs = m.counter("caqe_alloc_warmup_allocs_total").value();
  point.steady_allocs = m.counter("caqe_alloc_steady_allocs_total").value();
  point.steady_regions = m.counter("caqe_alloc_steady_regions_total").value();
  point.steady_join = m.counter("caqe_alloc_steady_join_total").value();
  point.steady_eval = m.counter("caqe_alloc_steady_eval_total").value();
  point.steady_discard = m.counter("caqe_alloc_steady_discard_total").value();
  point.steady_emission =
      m.counter("caqe_alloc_steady_emission_total").value();
  if (point.steady_regions > 0) {
    point.allocs_per_region = static_cast<double>(point.steady_allocs) /
                              static_cast<double>(point.steady_regions);
  }
}

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  const int64_t rows = args.GetInt("rows", 4000);
  const int num_queries = static_cast<int>(args.GetInt("queries", 8));
  const int dims = static_cast<int>(args.GetInt("dims", 4));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 2014));
  const int64_t serve_rows = args.GetInt("serve_rows", 8000);
  const int serve_requests =
      static_cast<int>(args.GetInt("serve_requests", 80));
  const double max_allocs_per_region =
      args.GetDouble("max_allocs_per_region", 5.0);
  const std::string out_path = args.GetString("out", "BENCH_alloc.json");

  CAQE_CHECK(AllocHookActive());  // Link order regression guard.
  std::printf(
      "alloc gate: exec N=%lld |S_Q|=%d d=%d; serve N=%lld requests=%d; "
      "budget=%.1f allocs/region steady state\n\n",
      static_cast<long long>(rows), num_queries, dims,
      static_cast<long long>(serve_rows), serve_requests,
      max_allocs_per_region);
  std::printf("%6s %8s %10s %9s %14s %14s %14s %10s  %s\n", "phase",
              "compact", "wall_s", "regions", "warmup_allocs",
              "steady_allocs", "steady_regions", "allocs/rgn",
              "join/eval/discard/emission");

  std::vector<AllocPoint> points;
  const auto print_point = [](const AllocPoint& p) {
    std::printf(
        "%6s %8s %10.4f %9lld %14lld %14lld %14lld %10.2f  %lld/%lld/%lld/%lld\n",
        p.phase.c_str(), p.compact ? "on" : "off", p.wall_seconds,
        static_cast<long long>(p.regions),
        static_cast<long long>(p.warmup_allocs),
        static_cast<long long>(p.steady_allocs),
        static_cast<long long>(p.steady_regions), p.allocs_per_region,
        static_cast<long long>(p.steady_join),
        static_cast<long long>(p.steady_eval),
        static_cast<long long>(p.steady_discard),
        static_cast<long long>(p.steady_emission));
  };

  // ---- Batch execution sweep (fig9-style, single thread). ----
  {
    BenchConfig config;
    config.rows = rows;
    config.num_attrs = dims;
    config.num_queries = num_queries;
    config.seed = seed;
    auto [r, t] = MakeBenchTables(config);
    const Workload workload =
        MakeSubspaceWorkload(dims, 0, num_queries, PriorityPolicy::kUniform,
                             config.seed)
            .value();
    const std::vector<Contract> contracts(workload.num_queries(),
                                          MakeLogDecayContract());
    uint64_t reference_hash = 0;
    for (int compact = 0; compact < 2; ++compact) {
      ExecOptions options;
      options.capture_results = false;
      options.num_threads = 1;
      options.compact_layout = compact != 0;
      Observability obs;
      options.obs = &obs;
      const ExecutionReport report =
          RunEngine("CAQE", r, t, workload, contracts, options);
      const uint64_t hash = ReportHash(report);
      if (compact == 0) reference_hash = hash;
      // Full determinism gate: the compact layout must reproduce the map
      // layout's report bit for bit (every counter, virtual time, and
      // per-query outcome ReportHash covers).
      CAQE_CHECK(hash == reference_hash);

      AllocPoint point;
      point.phase = "exec";
      point.compact = compact != 0;
      point.wall_seconds = report.stats.wall_seconds;
      ReadAllocCounters(obs, point);
      print_point(point);
      points.push_back(point);
    }
  }

  // ---- Serving replay sweep. ----
  {
    GeneratorConfig cfg;
    cfg.num_rows = serve_rows;
    cfg.num_attrs = 3;
    cfg.join_selectivities = {0.01, 0.01};
    cfg.seed = seed;
    const Table r = GenerateTable("R", cfg).value();
    cfg.seed = seed + 1;
    const Table t = GenerateTable("T", cfg).value();
    const std::vector<MappingFunction> mapping = {
        MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
    const std::vector<int> keys = {0, 1};
    TraceConfig trace_config;
    trace_config.num_requests = serve_requests;
    trace_config.arrival_rate = 40.0;
    trace_config.seed = seed;
    trace_config.reference_seconds = 0.1;
    const std::vector<TraceRequest> trace =
        MakeSyntheticTrace(trace_config, keys, 3);

    std::string reference_text;
    for (int compact = 0; compact < 2; ++compact) {
      ServeOptions options;
      options.num_threads = 1;
      options.compact_layout = compact != 0;
      Observability obs;
      options.obs = &obs;
      auto server = CaqeServer::Create(r, t, mapping, keys, options).value();
      SubmitTrace(*server, trace);
      const auto wall_start = std::chrono::steady_clock::now();
      const ServingReport report = server->Run().value();
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall_start;
      const std::string text = ServingReportText(report);
      if (compact == 0) reference_text = text;
      // Byte-identical serving reports across layouts.
      CAQE_CHECK(text == reference_text);

      AllocPoint point;
      point.phase = "serve";
      point.compact = compact != 0;
      point.wall_seconds = wall.count();
      ReadAllocCounters(obs, point);
      print_point(point);
      points.push_back(point);
    }
  }

  // ---- The gate. ----
  bool gated = false;
  for (const AllocPoint& p : points) {
    if (!p.compact || p.steady_regions <= 0) continue;
    gated = true;
    if (p.allocs_per_region > max_allocs_per_region) {
      std::fprintf(stderr,
                   "ALLOC GATE FAILED: %s steady state averages %.2f "
                   "allocs/region (budget %.1f)\n",
                   p.phase.c_str(), p.allocs_per_region,
                   max_allocs_per_region);
      return 1;
    }
  }
  // At least one sweep must actually reach steady state, or the gate is
  // vacuous and the bench config needs more regions.
  CAQE_CHECK(gated);

  std::string json = "{\n";
  json += "  \"benchmark\": \"alloc_gate\",\n";
  json += "  \"engine\": \"CAQE\",\n";
  json += "  \"rows\": " + std::to_string(rows) + ",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"serve_rows\": " + std::to_string(serve_rows) + ",\n";
  json += "  \"serve_requests\": " + std::to_string(serve_requests) + ",\n";
  json += "  " + JsonField("max_allocs_per_region", max_allocs_per_region) +
          ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const AllocPoint& p = points[i];
    json += "    {\"phase\": \"" + p.phase + "\", \"compact_layout\": " +
            (p.compact ? "true" : "false") + ", " +
            JsonField("wall_seconds", p.wall_seconds) +
            ", \"regions\": " + std::to_string(p.regions) +
            ", \"warmup_allocs\": " + std::to_string(p.warmup_allocs) +
            ", \"steady_allocs\": " + std::to_string(p.steady_allocs) +
            ", \"steady_regions\": " + std::to_string(p.steady_regions) +
            ", " + JsonField("allocs_per_region", p.allocs_per_region) + "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nwrote %s (reports identical across layouts; steady state within "
      "%.1f allocs/region)\n",
      out_path.c_str(), max_allocs_per_region);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
