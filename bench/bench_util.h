// Shared harness for the figure-reproduction benchmarks.
//
// The paper's contract deadlines are wall-clock values on the authors'
// hardware (e.g. t_C1 = 10s on correlated data, 30min on anti-correlated).
// Our engines run on a deterministic virtual clock, so the harness first
// measures the virtual completion time of the non-shared JFSL baseline and
// then derives contract parameters as fractions of it — preserving the
// *relative* strictness of each contract class across data scales.
#ifndef CAQE_BENCH_BENCH_UTIL_H_
#define CAQE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "caqe/caqe.h"

namespace caqe {
namespace bench {

/// Minimal --key=value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::string body = arg.substr(2);
      const size_t eq = body.find('=');
      if (eq == std::string::npos) {
        // emplace avoids a GCC 12 -Wrestrict false positive (PR105651)
        // triggered by assigning a short literal through operator[].
        values_.emplace(body, std::string("1"));
      } else {
        values_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
      }
    }
  }

  int64_t GetInt(const std::string& key, int64_t def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  std::string GetString(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// One experiment configuration.
struct BenchConfig {
  int64_t rows = 4000;
  int num_attrs = 4;
  double selectivity = 0.01;
  int num_queries = 11;
  uint64_t seed = 2014;
  Distribution distribution = Distribution::kIndependent;
  /// Worker threads for the engines' parallel phases (--threads).
  int num_threads = 1;
};

/// Reads the shared --threads flag (worker threads for the parallel
/// engine phases; 1 = serial, 0 = all hardware threads). Reports are
/// bit-identical at every value, so benchmarks accept it freely.
inline int ThreadsFromArgs(const Args& args) {
  return static_cast<int>(args.GetInt("threads", 1));
}

/// Reads the shared --pipeline flag (inter-region pipelining; overlaps the
/// predicted next region's join with the current region's tail phases).
/// Like --threads it never changes a report — only wall time.
inline bool PipelineFromArgs(const Args& args) {
  return args.GetInt("pipeline", 0) != 0;
}

/// Reads the shared --coarse_index flag (packed box trees over partition
/// cells driving the coarse phase via branch-and-bound instead of full
/// scans). Charges serial-identical coarse_ops, so like --threads and
/// --pipeline it never changes a report — only traversal work.
inline bool CoarseIndexFromArgs(const Args& args) {
  return args.GetInt("coarse_index", 0) != 0;
}

/// Reads the shared --compact_layout flag (default ON: flat CSR join
/// indexes, SoA column-block discard gathers, store-backed skylines — see
/// ExecOptions::compact_layout). Pure layout change: probe order, charge
/// accounting, and every report byte are identical in both positions, so
/// the matrix scripts cross-check it like --threads and --pipeline.
inline bool CompactLayoutFromArgs(const Args& args) {
  return args.GetInt("compact_layout", 1) != 0;
}

/// Reads the shared --join_cache_entries flag (bound on built join-kernel
/// indexes held at once; see ExecOptions::join_index_cache_entries).
/// First-use charging survives eviction, so reports are identical at any
/// bound.
inline int64_t JoinCacheEntriesFromArgs(const Args& args) {
  return args.GetInt("join_cache_entries", 4096);
}

/// Deterministic 64-bit FNV-1a digest of a report's determinism-contract
/// quantities — every counter, virtual time, and per-query outcome, and
/// deliberately none of the wall_* fields. Two runs that differ only in
/// --threads, --pipeline, or the CAQE_SIMD build flag must hash equal;
/// benchmarks assert exactly that (see bench_parallel_scaling), and the
/// matrix scripts enforce the same contract textually via
/// tools/report_diff.sh.
inline uint64_t ReportHash(const ExecutionReport& report) {
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const EngineStats& s = report.stats;
  mix(static_cast<uint64_t>(s.join_probes));
  mix(static_cast<uint64_t>(s.join_results));
  mix(static_cast<uint64_t>(s.dominance_cmps));
  mix(static_cast<uint64_t>(s.coarse_ops));
  mix(static_cast<uint64_t>(s.emitted_results));
  mix(static_cast<uint64_t>(s.regions_built));
  mix(static_cast<uint64_t>(s.regions_processed));
  mix(static_cast<uint64_t>(s.regions_discarded));
  mix_double(s.virtual_seconds);
  mix_double(report.workload_pscore);
  mix_double(report.average_satisfaction);
  for (const QueryReport& query : report.queries) {
    mix(static_cast<uint64_t>(query.results));
    mix_double(query.pscore);
    mix_double(query.satisfaction);
    for (const UtilityTracePoint& point : query.utility_trace) {
      mix_double(point.time);
      mix_double(point.utility);
    }
  }
  return h;
}

inline Result<Distribution> ParseDistribution(const std::string& name) {
  if (name == "independent") return Distribution::kIndependent;
  if (name == "correlated") return Distribution::kCorrelated;
  if (name == "anticorrelated") return Distribution::kAntiCorrelated;
  return Status::InvalidArgument("unknown distribution: " + name);
}

/// Generates the (R, T) pair for a config.
inline std::pair<Table, Table> MakeBenchTables(const BenchConfig& config) {
  GeneratorConfig cfg;
  cfg.num_rows = config.rows;
  cfg.num_attrs = config.num_attrs;
  cfg.join_selectivities = {config.selectivity};
  cfg.distribution = config.distribution;
  cfg.seed = config.seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = config.seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

/// Calibration data shared by all engines of one experiment: the contract
/// timescale and the true per-query result cardinalities.
struct Calibration {
  /// Virtual completion time of one shared pass over the workload (the
  /// S-JFSL strawman): the scale against which deadlines are set. The
  /// paper's absolute deadlines (10s correlated / 40s independent / 30min
  /// anti-correlated) play the same role on the authors' hardware.
  double reference_seconds = 1.0;
  /// Exact final result count per query (every engine is exact, so any
  /// engine's counts serve; used as Table 2's N for C4/C5 scoring).
  std::vector<double> result_counts;
};

/// Runs a throwaway S-JFSL pass to obtain the calibration.
inline Calibration Calibrate(const Table& r, const Table& t,
                             const Workload& workload) {
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract());
  std::unique_ptr<Engine> engine = MakeEngine("S-JFSL").value();
  const ExecutionReport report =
      engine->Execute(r, t, workload, contracts, ExecOptions{}).value();
  Calibration calibration;
  calibration.reference_seconds = report.stats.virtual_seconds;
  for (const QueryReport& query : report.queries) {
    calibration.result_counts.push_back(
        static_cast<double>(query.results));
  }
  return calibration;
}

/// The five contract classes of Table 2, parameterized by the reference
/// completion time. `index` is 0-based (0 => C1). Deadlines sit well below
/// the serial (non-shared) completion time, so only engines that share
/// work *and* order it by contract need can satisfy every query — the
/// regime the paper's experiments probe.
/// `tightness` scales the time-based deadlines relative to the reference.
/// The paper used per-distribution absolute deadlines whose generosity
/// differed by distribution (10s correlated, 40s independent, 30 *minutes*
/// anti-correlated); DistributionTightness reproduces those proportions.
inline Contract MakeTableTwoContract(int index, double reference_seconds,
                                     double tightness = 0.6) {
  const double ref = std::max(1e-9, reference_seconds);
  const double t_hard = tightness * ref;          // C1 deadline.
  const double t_soft = 0.4 * tightness * ref;    // C3 knee.
  const double interval = ref / 10.0; // C4/C5 interval.
  const double unit = ref / 10.0;     // Decay timescale for C2/C3/C5.
  switch (index) {
    case 0:
      return MakeTimeStepContract(t_hard);
    case 1:
      return MakeLogDecayContract(unit / 5.0);
    case 2:
      return MakeHyperbolicDecayContract(t_soft, unit);
    case 3:
      return MakeCardinalityContract(0.1, interval);
    case 4:
      return MakeHybridContract(0.1, interval, unit);
    default:
      CAQE_CHECK(false);
      return nullptr;
  }
}

/// Deadline generosity per distribution, echoing the paper's parameter
/// choices (anti-correlated runs got deadlines comparable to a full shared
/// pass; the others substantially tighter ones).
inline double DistributionTightness(Distribution dist) {
  return dist == Distribution::kAntiCorrelated ? 1.1 : 0.6;
}

inline const char* ContractName(int index) {
  static const char* kNames[] = {"C1", "C2", "C3", "C4", "C5"};
  return kNames[index];
}

/// Priority policy the paper pairs with each contract class (Section 7.2):
/// dim-increasing for C1/C2, dim-decreasing for C3/C4, uniform for C5.
inline PriorityPolicy PolicyForContract(int index) {
  switch (index) {
    case 0:
    case 1:
      return PriorityPolicy::kDimIncreasing;
    case 2:
    case 3:
      return PriorityPolicy::kDimDecreasing;
    default:
      return PriorityPolicy::kUniform;
  }
}

/// Progressiveness-aware satisfaction: mean over queries of the normalized
/// area under the cumulative-utility curve, evaluated against a common
/// `horizon` (use the calibration reference so engines are compared on the
/// same absolute timescale). 1.0 = every result delivered instantly at
/// full utility.
inline double ProgressiveScore(const ExecutionReport& report,
                               double horizon) {
  if (report.queries.empty() || horizon <= 0.0) return 0.0;
  double sum = 0.0;
  for (const QueryReport& query : report.queries) {
    double area = 0.0;
    for (const UtilityTracePoint& point : query.utility_trace) {
      area += point.utility * std::max(0.0, 1.0 - point.time / horizon);
    }
    sum += area / std::max<int64_t>(1, query.results);
  }
  return sum / static_cast<double>(report.queries.size());
}

/// Runs `engine_name` and returns the report (aborts on error — benchmark
/// configs are fixed and valid).
inline ExecutionReport RunEngine(const std::string& engine_name,
                                 const Table& r, const Table& t,
                                 const Workload& workload,
                                 const std::vector<Contract>& contracts,
                                 const ExecOptions& options = {}) {
  std::unique_ptr<Engine> engine = MakeEngine(engine_name).value();
  Result<ExecutionReport> report =
      engine->Execute(r, t, workload, contracts, options);
  CAQE_CHECK(report.ok());
  return std::move(report).value();
}

}  // namespace bench
}  // namespace caqe

#endif  // CAQE_BENCH_BENCH_UTIL_H_
