// Parameter sweeps over the evaluation's data axes (Section 7.1): table
// cardinality N, skyline dimensionality d, and join selectivity sigma.
// For each point: CAQE vs the strongest baselines, reporting satisfaction
// under C3 and the work counters. Verifies that the figure shapes are
// stable across scales, not artifacts of one configuration.
//
// Flags: --rows=N --sel=SIGMA --dist=... --seed=S
//        --axis=rows|dims|sel|all
#include <cstdio>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

void RunPoint(const BenchConfig& config, TablePrinter& table,
              const std::string& label) {
  auto [r, t] = MakeBenchTables(config);
  const int max_queries = (1 << config.num_attrs) - 1 - config.num_attrs;
  const int num_queries = std::min(config.num_queries, max_queries);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds));
  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  options.num_threads = config.num_threads;

  for (const char* engine : {"CAQE", "S-JFSL", "SSMJ"}) {
    const ExecutionReport report =
        RunEngine(engine, r, t, workload, contracts, options);
    table.AddRow({label, report.engine,
                  FormatDouble(report.average_satisfaction, 3),
                  FormatDouble(
                      ProgressiveScore(report, calibration.reference_seconds),
                      3),
                  FormatCount(report.stats.join_results),
                  FormatCount(report.stats.dominance_cmps),
                  FormatDouble(report.stats.virtual_seconds, 3)});
  }
}

TablePrinter MakeTable() {
  return TablePrinter({"point", "engine", "avg_sat", "prog_sat",
                       "join_results", "skyline_cmps", "exec_time_s"});
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig base;
  base.rows = args.GetInt("rows", 2000);
  base.selectivity = args.GetDouble("sel", 0.01);
  base.num_queries = static_cast<int>(args.GetInt("queries", 11));
  base.seed = args.GetInt("seed", 2014);
  base.num_threads = ThreadsFromArgs(args);
  base.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  const std::string axis = args.GetString("axis", "all");

  std::printf("CAQE reproduction: parameter sweeps (Section 7.1 axes)\n\n");

  if (axis == "rows" || axis == "all") {
    std::printf("cardinality sweep (d=%d, sigma=%.4f):\n", base.num_attrs,
                base.selectivity);
    TablePrinter table = MakeTable();
    for (int64_t rows : {500, 1000, 2000, 4000, 8000}) {
      BenchConfig config = base;
      config.rows = rows;
      RunPoint(config, table, "N=" + std::to_string(rows));
    }
    std::printf("%s\n", table.Render().c_str());
  }

  if (axis == "dims" || axis == "all") {
    std::printf("dimensionality sweep (N=%lld, sigma=%.4f):\n",
                static_cast<long long>(base.rows), base.selectivity);
    TablePrinter table = MakeTable();
    for (int d : {2, 3, 4, 5}) {
      BenchConfig config = base;
      config.num_attrs = d;
      RunPoint(config, table, "d=" + std::to_string(d));
    }
    std::printf("%s\n", table.Render().c_str());
  }

  if (axis == "sel" || axis == "all") {
    std::printf("selectivity sweep (N=%lld, d=%d):\n",
                static_cast<long long>(base.rows), base.num_attrs);
    TablePrinter table = MakeTable();
    for (double sigma : {0.0005, 0.002, 0.01, 0.05}) {
      BenchConfig config = base;
      config.selectivity = sigma;
      RunPoint(config, table, "sigma=" + FormatDouble(sigma, 4));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
