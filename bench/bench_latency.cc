// Progressiveness profile: when does each technique deliver results?
// Reports time-to-first-result, time to 50% and to 100% of each query's
// results (averaged over queries), in virtual seconds — the delivery
// behavior behind every satisfaction number in Figures 9 and 11.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

struct LatencyProfile {
  double first = 0.0;
  double half = 0.0;
  double full = 0.0;
};

// Average per-query latency quantiles from the utility traces.
LatencyProfile ProfileOf(const ExecutionReport& report) {
  LatencyProfile sum;
  int counted = 0;
  for (const QueryReport& query : report.queries) {
    if (query.utility_trace.empty()) continue;
    const auto& trace = query.utility_trace;
    sum.first += trace.front().time;
    sum.half += trace[(trace.size() - 1) / 2].time;
    sum.full += trace.back().time;
    ++counted;
  }
  if (counted > 0) {
    sum.first /= counted;
    sum.half /= counted;
    sum.full /= counted;
  }
  return sum;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  auto [r, t] = MakeBenchTables(config);

  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  // The delivery profile is contract-independent for the non-adaptive
  // engines and nearly so for CAQE; measure under C3.
  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds));
  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  options.num_threads = ThreadsFromArgs(args);

  std::printf(
      "CAQE reproduction: result-delivery latency (dist=%s, N=%lld, "
      "|S_Q|=%d)\n\n",
      DistributionName(config.distribution),
      static_cast<long long>(config.rows), config.num_queries);
  std::printf(
      "per-query averages, virtual seconds (reference shared pass: "
      "%.3fs)\n",
      calibration.reference_seconds);

  TablePrinter table({"engine", "first_result_s", "half_results_s",
                      "all_results_s", "total_exec_s"});
  for (const char* engine :
       {"CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ", "SSMJ+"}) {
    const ExecutionReport report =
        RunEngine(engine, r, t, workload, contracts, options);
    const LatencyProfile profile = ProfileOf(report);
    table.AddRow({report.engine, FormatDouble(profile.first, 4),
                  FormatDouble(profile.half, 4),
                  FormatDouble(profile.full, 4),
                  FormatDouble(report.stats.virtual_seconds, 4)});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
