// Parallel scaling of the CAQE engine's execution phases over the Figure 9
// workload: one run per thread count in {1, 2, 4, 8}, repeated, keeping the
// minimum wall time per phase (region build / join kernel / evaluation /
// discard scans, from the EngineStats wall_* breakdown).
//
// Every report quantity except wall time is deterministic across thread
// counts — the run aborts if any pScore diverges from the serial reference,
// so a scaling regression can never silently trade correctness for speed.
//
// A second sweep covers inter-region pipelining: pipeline {off,on} x the
// same thread counts, gated on a full report hash (ReportHash — every
// counter, virtual time, and per-query trace; wall times excluded) equal to
// the serial non-pipelined reference, and written to a separate JSON
// summary (default BENCH_pipeline.json).
//
// Flags: --rows=N --sel=SIGMA --dist=correlated|independent|anticorrelated
//        --queries=K --seed=S --repeats=R --out=PATH --pipeline-out=PATH
//
// Writes a JSON summary (default BENCH_parallel.json) including
// `cpus_available`: on machines with fewer CPUs than threads the sweep
// still validates determinism, but speedups are bounded by the hardware —
// read them against that field.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace bench {
namespace {

struct ScalingPoint {
  int threads = 1;
  double wall_seconds = 0.0;
  double region_build = 0.0;
  double join = 0.0;
  double eval = 0.0;
  double discard = 0.0;
};

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 8000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  const int repeats = static_cast<int>(args.GetInt("repeats", 3));
  const std::string out_path =
      args.GetString("out", "BENCH_parallel.json");
  const unsigned cpus = std::thread::hardware_concurrency();

  auto [r, t] = MakeBenchTables(config);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds,
                           DistributionTightness(config.distribution)));

  std::printf(
      "CAQE parallel scaling: dist=%s N=%lld sigma=%.4f |S_Q|=%d "
      "repeats=%d cpus_available=%u\n\n",
      DistributionName(config.distribution),
      static_cast<long long>(config.rows), config.selectivity,
      config.num_queries, repeats, cpus);
  if (cpus < 2) {
    std::printf(
        "*** WARNING: cpus_available=%u — every multi-thread cell runs on "
        "one hardware CPU. ***\n"
        "*** Speedups below are expected to read ~1.0x; this sweep only "
        "validates determinism here. ***\n\n",
        cpus);
  }

  double reference_pscore = 0.0;
  std::vector<ScalingPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    ExecOptions options;
    options.known_result_counts = calibration.result_counts;
    options.num_threads = threads;
    ScalingPoint point;
    point.threads = threads;
    for (int rep = 0; rep < repeats; ++rep) {
      const ExecutionReport report =
          RunEngine("CAQE", r, t, workload, contracts, options);
      if (threads == 1 && rep == 0) {
        reference_pscore = report.workload_pscore;
      }
      // Determinism gate: the contract objective must not move by a bit.
      CAQE_CHECK(report.workload_pscore == reference_pscore);
      const EngineStats& s = report.stats;
      auto keep_min = [rep](double& slot, double value) {
        if (rep == 0 || value < slot) slot = value;
      };
      keep_min(point.wall_seconds, s.wall_seconds);
      keep_min(point.region_build, s.wall_region_build_seconds);
      keep_min(point.join, s.wall_join_seconds);
      keep_min(point.eval, s.wall_eval_seconds);
      keep_min(point.discard, s.wall_discard_seconds);
    }
    points.push_back(point);
  }

  const ScalingPoint& base = points.front();
  auto speedup = [](double serial, double parallel) {
    return parallel > 0.0 ? serial / parallel : 0.0;
  };

  TablePrinter table({"threads", "wall_s", "speedup", "region_build_s",
                      "join_s", "eval_s", "discard_s"});
  for (const ScalingPoint& p : points) {
    table.AddRow({std::to_string(p.threads), FormatDouble(p.wall_seconds, 4),
                  FormatDouble(speedup(base.wall_seconds, p.wall_seconds), 2),
                  FormatDouble(p.region_build, 4), FormatDouble(p.join, 4),
                  FormatDouble(p.eval, 4), FormatDouble(p.discard, 4)});
  }
  std::printf("min-of-%d wall times (pScore identical at every point):\n%s\n",
              repeats, table.Render().c_str());

  std::string json = "{\n";
  json += "  \"benchmark\": \"parallel_scaling\",\n";
  json += "  \"engine\": \"CAQE\",\n";
  json += "  \"distribution\": \"" +
          std::string(DistributionName(config.distribution)) + "\",\n";
  json += "  \"rows\": " + std::to_string(config.rows) + ",\n";
  json += "  \"queries\": " + std::to_string(config.num_queries) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"cpus_available\": " + std::to_string(cpus) + ",\n";
  json += std::string("  \"cpu_constrained\": ") +
          (cpus < 2 ? "true" : "false") + ",\n";
  json += "  " + JsonField("workload_pscore", reference_pscore) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    json += "    {\"threads\": " + std::to_string(p.threads) + ", " +
            JsonField("wall_seconds", p.wall_seconds) + ", " +
            JsonField("speedup", speedup(base.wall_seconds, p.wall_seconds)) +
            ", " + JsonField("region_build_seconds", p.region_build) + ", " +
            JsonField("region_build_speedup",
                      speedup(base.region_build, p.region_build)) +
            ", " + JsonField("join_seconds", p.join) + ", " +
            JsonField("join_speedup", speedup(base.join, p.join)) + ", " +
            JsonField("eval_seconds", p.eval) + ", " +
            JsonField("eval_speedup", speedup(base.eval, p.eval)) + ", " +
            JsonField("discard_seconds", p.discard) + ", " +
            JsonField("discard_speedup", speedup(base.discard, p.discard)) +
            "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // ---- Inter-region pipelining sweep: pipeline {off,on} x threads. ----
  // Each cell's full report hash must equal the serial non-pipelined
  // reference — a stronger gate than the pScore check above (it covers
  // every counter and the complete per-query utility traces).
  const std::string pipeline_out =
      args.GetString("pipeline-out", "BENCH_pipeline.json");
  struct PipelinePoint {
    int threads = 1;
    bool pipeline = false;
    double wall_seconds = 0.0;
  };
  uint64_t reference_hash = 0;
  std::vector<PipelinePoint> pipeline_points;
  for (int threads : {1, 2, 4, 8}) {
    for (int pipeline = 0; pipeline < 2; ++pipeline) {
      ExecOptions options;
      options.known_result_counts = calibration.result_counts;
      options.num_threads = threads;
      options.pipeline_regions = pipeline != 0;
      PipelinePoint point;
      point.threads = threads;
      point.pipeline = pipeline != 0;
      for (int rep = 0; rep < repeats; ++rep) {
        const ExecutionReport report =
            RunEngine("CAQE", r, t, workload, contracts, options);
        const uint64_t hash = ReportHash(report);
        if (threads == 1 && pipeline == 0 && rep == 0) {
          reference_hash = hash;
        }
        CAQE_CHECK(hash == reference_hash);
        if (rep == 0 || report.stats.wall_seconds < point.wall_seconds) {
          point.wall_seconds = report.stats.wall_seconds;
        }
      }
      pipeline_points.push_back(point);
    }
  }

  // Per thread count, pipelining's speedup is measured against the
  // non-pipelined run at the same thread count.
  auto wall_of = [&](int threads, bool pipeline) {
    for (const PipelinePoint& p : pipeline_points) {
      if (p.threads == threads && p.pipeline == pipeline) {
        return p.wall_seconds;
      }
    }
    return 0.0;
  };
  TablePrinter pipeline_table(
      {"threads", "pipeline", "wall_s", "speedup_vs_off"});
  for (const PipelinePoint& p : pipeline_points) {
    pipeline_table.AddRow(
        {std::to_string(p.threads), p.pipeline ? "on" : "off",
         FormatDouble(p.wall_seconds, 4),
         FormatDouble(speedup(wall_of(p.threads, false), p.wall_seconds),
                      2)});
  }
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(reference_hash));
  if (cpus < 2) {
    std::printf(
        "*** WARNING: cpus_available=%u — pipeline overlap has no second "
        "CPU to run on; speedup_vs_off ~1.0x is expected. ***\n\n",
        cpus);
  }
  std::printf(
      "pipeline sweep, min-of-%d wall times (report hash %s identical at "
      "every cell):\n%s\n",
      repeats, hash_hex, pipeline_table.Render().c_str());

  std::string pjson = "{\n";
  pjson += "  \"benchmark\": \"pipeline_scaling\",\n";
  pjson += "  \"engine\": \"CAQE\",\n";
  pjson += "  \"distribution\": \"" +
           std::string(DistributionName(config.distribution)) + "\",\n";
  pjson += "  \"rows\": " + std::to_string(config.rows) + ",\n";
  pjson += "  \"queries\": " + std::to_string(config.num_queries) + ",\n";
  pjson += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  pjson += "  \"cpus_available\": " + std::to_string(cpus) + ",\n";
  pjson += std::string("  \"cpu_constrained\": ") +
          (cpus < 2 ? "true" : "false") + ",\n";
  pjson += "  \"report_hash\": \"" + std::string(hash_hex) + "\",\n";
  pjson += "  " + JsonField("workload_pscore", reference_pscore) + ",\n";
  pjson += "  \"results\": [\n";
  for (size_t i = 0; i < pipeline_points.size(); ++i) {
    const PipelinePoint& p = pipeline_points[i];
    pjson += "    {\"threads\": " + std::to_string(p.threads) +
             ", \"pipeline\": " + (p.pipeline ? "true" : "false") + ", " +
             JsonField("wall_seconds", p.wall_seconds) + ", " +
             JsonField("speedup_vs_off",
                       speedup(wall_of(p.threads, false), p.wall_seconds)) +
             "}";
    pjson += (i + 1 < pipeline_points.size()) ? ",\n" : "\n";
  }
  pjson += "  ]\n}\n";
  const Status pipeline_written = WriteTextFile(pipeline_out, pjson);
  if (!pipeline_written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", pipeline_out.c_str(),
                 pipeline_written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", pipeline_out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
