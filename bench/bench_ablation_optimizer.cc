// Ablation A2: the contract-driven optimizer's design choices.
//
// Part 1 — scheduling policy: CAQE vs CAQE without Eq.-11 feedback vs
// count-driven scheduling vs static scan order (all on the shared plan).
// Part 2 — region granularity: how the target region count (work-chunk
// size) trades scheduling flexibility against coarse-level overhead.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S
#include <cstdio>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  auto [r, t] = MakeBenchTables(config);

  std::printf("CAQE ablation: contract-driven optimizer (dist=%s, N=%lld)\n\n",
              DistributionName(config.distribution),
              static_cast<long long>(config.rows));

  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kDimDecreasing, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, workload);
  // Mixed contracts (cycling C1, C3, C4 over the queries): heterogeneous
  // requirements are where satisfaction feedback must re-balance weights.
  std::vector<Contract> contracts;
  for (int q = 0; q < workload.num_queries(); ++q) {
    contracts.push_back(
        MakeTableTwoContract(q % 2 == 0 ? 0 : 2,
                             calibration.reference_seconds * (q % 3 + 1) /
                                 3.0));
  }
  ExecOptions base_options;
  base_options.known_result_counts = calibration.result_counts;

  std::printf("scheduling policy:\n");
  TablePrinter policy_table(
      {"variant", "avg_satisfaction", "workload_pscore", "exec_time_s"});
  for (const char* engine :
       {"CAQE", "CAQE-nofb", "CAQE-count", "S-JFSL"}) {
    const ExecutionReport report =
        RunEngine(engine, r, t, workload, contracts, base_options);
    policy_table.AddRow({report.engine,
                         FormatDouble(report.average_satisfaction, 3),
                         FormatDouble(report.workload_pscore, 1),
                         FormatDouble(report.stats.virtual_seconds, 3)});
  }
  std::printf("%s\n", policy_table.Render().c_str());

  std::printf("region granularity (CAQE, target region count):\n");
  TablePrinter gran_table({"target_regions", "regions_built",
                           "avg_satisfaction", "coarse_ops", "exec_time_s"});
  for (int target : {16, 64, 256}) {
    ExecOptions options = base_options;
    options.target_regions = target;
    const ExecutionReport report =
        RunEngine("CAQE", r, t, workload, contracts, options);
    gran_table.AddRow({std::to_string(target),
                       FormatCount(report.stats.regions_built),
                       FormatDouble(report.average_satisfaction, 3),
                       FormatCount(report.stats.coarse_ops),
                       FormatDouble(report.stats.virtual_seconds, 3)});
  }
  std::printf("%s\n", gran_table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
