// Reproduces Figure 9 (a/b/c): average contract satisfaction of CAQE,
// S-JFSL, JFSL, ProgXe+ and SSMJ under contract classes C1-C5 on
// correlated, independent and anti-correlated data, |S_Q| = 11.
//
// Flags: --rows=N --sel=SIGMA --dist=correlated|independent|anticorrelated
//        --queries=K --seed=S --csv=1
//        --trace-out=PATH --metrics-out=PATH   # attach the observability
//        layer and dump a Chrome/Perfetto trace / Prometheus snapshot.
//        Deliberately silent on stdout: the printed tables must stay
//        byte-identical with tracing on or off (scripts/run_obs_matrix.sh
//        diffs exactly this).
//
// Paper-expected shape: CAQE highest almost everywhere (about 2x the
// non-shared baselines on strict contracts); S-JFSL competitive only on
// correlated data; JFSL worst on time-based contracts; ProgXe+ closest on
// cardinality contracts with dim-decreasing priorities.
#include <cstdio>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace bench {
namespace {

void RunDistribution(Distribution dist, const Args& args,
                     Observability* obs) {
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution = dist;

  auto [r, t] = MakeBenchTables(config);

  std::printf("-- Figure 9 (%s): N=%lld, sigma=%.4f, |S_Q|=%d --\n",
              DistributionName(dist), static_cast<long long>(config.rows),
              config.selectivity, config.num_queries);

  // Calibration from a throwaway shared pass (priorities do not affect
  // completion time or result counts).
  const Workload scale_wl =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, scale_wl);
  std::printf("   reference (shared-pass completion): %.3f virtual seconds\n",
              calibration.reference_seconds);

  TablePrinter table({"engine", "C1", "C2", "C3", "C4", "C5"});
  TablePrinter prog_table({"engine", "C1", "C2", "C3", "C4", "C5"});
  const std::vector<std::string> engines = {"CAQE", "S-JFSL", "JFSL",
                                            "ProgXe+", "SSMJ"};
  std::map<std::string, std::vector<double>> scores;
  std::map<std::string, std::vector<double>> prog_scores;
  for (int c = 0; c < 5; ++c) {
    const Workload workload =
        MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                             PolicyForContract(c), config.seed)
            .value();
    const std::vector<Contract> contracts(
        workload.num_queries(),
        MakeTableTwoContract(c, calibration.reference_seconds,
                             DistributionTightness(dist)));
    ExecOptions options;
    options.known_result_counts = calibration.result_counts;
    options.num_threads = ThreadsFromArgs(args);
    options.pipeline_regions = PipelineFromArgs(args);
    options.coarse_index = CoarseIndexFromArgs(args);
    options.obs = obs;
    for (const std::string& engine : engines) {
      const ExecutionReport report =
          RunEngine(engine, r, t, workload, contracts, options);
      scores[engine].push_back(report.average_satisfaction);
      prog_scores[engine].push_back(
          ProgressiveScore(report, calibration.reference_seconds));
    }
  }
  for (const std::string& engine : engines) {
    std::vector<std::string> row = {engine};
    std::vector<std::string> prog_row = {engine};
    for (double s : scores[engine]) row.push_back(FormatDouble(s, 3));
    for (double s : prog_scores[engine]) {
      prog_row.push_back(FormatDouble(s, 3));
    }
    table.AddRow(row);
    prog_table.AddRow(prog_row);
  }
  const bool csv = args.GetInt("csv", 0) != 0;
  std::printf("average per-result utility (pScore / N):\n%s\n",
              csv ? table.RenderCsv().c_str() : table.Render().c_str());
  std::printf(
      "progressive satisfaction (utility AUC, horizon = reference):\n%s\n",
      csv ? prog_table.RenderCsv().c_str() : prog_table.Render().c_str());
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  std::printf(
      "CAQE reproduction: Figure 9 — average contract satisfaction\n\n");
  const std::string trace_out = args.GetString("trace-out", "");
  const std::string metrics_out = args.GetString("metrics-out", "");
  Observability obs;
  Observability* const obs_ptr =
      (!trace_out.empty() || !metrics_out.empty()) ? &obs : nullptr;
  const std::string dist = args.GetString("dist", "all");
  if (dist == "all") {
    for (Distribution d :
         {Distribution::kCorrelated, Distribution::kIndependent,
          Distribution::kAntiCorrelated}) {
      RunDistribution(d, args, obs_ptr);
    }
  } else {
    RunDistribution(ParseDistribution(dist).value(), args, obs_ptr);
  }
  // File writes only — stdout must not change with tracing attached.
  if (!trace_out.empty()) {
    const Status written = WriteTextFile(trace_out, obs.ChromeTrace());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    const Status written =
        WriteTextFile(metrics_out, obs.metrics.PrometheusText());
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
