// Reproduces Figure 11 (a/b): average contract satisfaction as the
// workload grows (|S_Q| in {1,3,5,7,9,11}) on independent data, under the
// two strictest contracts C2 (11.a) and C3 (11.b).
//
// Flags: --rows=N --sel=SIGMA --seed=S --csv=1
//
// Paper-expected shape: all techniques are (near-)optimal at |S_Q| = 1;
// as the workload grows the competitors degrade steeply (paper: 36-85%)
// while CAQE's adaptive sharing degrades most slowly (20-30%).
#include <cstdio>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

void RunContract(int contract_index, const Args& args) {
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.seed = args.GetInt("seed", 2014);
  config.distribution = Distribution::kIndependent;
  auto [r, t] = MakeBenchTables(config);

  std::printf("-- Figure 11 (%s): independent, N=%lld, sigma=%.4f --\n",
              ContractName(contract_index),
              static_cast<long long>(config.rows), config.selectivity);

  const std::vector<int> sizes = {1, 3, 5, 7, 9, 11};
  const std::vector<std::string> engines = {"CAQE", "S-JFSL", "JFSL",
                                            "ProgXe+", "SSMJ"};
  std::vector<std::string> headers = {"engine"};
  for (int size : sizes) headers.push_back("q" + std::to_string(size));
  TablePrinter table(headers);

  std::map<std::string, std::vector<double>> scores;
  std::map<std::string, std::vector<double>> prog_scores;
  for (int size : sizes) {
    const Workload workload =
        MakeSubspaceWorkload(config.num_attrs, 0, size,
                             PolicyForContract(contract_index), config.seed)
            .value();
    // Reference scale grows with the workload; calibrate per size so the
    // contract strictness tracks the offered load, as in the paper where
    // parameters were fixed per experiment.
    const Calibration calibration = Calibrate(r, t, workload);
    const std::vector<Contract> contracts(
        workload.num_queries(),
        MakeTableTwoContract(contract_index, calibration.reference_seconds));
    ExecOptions options;
    options.known_result_counts = calibration.result_counts;
    options.num_threads = ThreadsFromArgs(args);
    for (const std::string& engine : engines) {
      const ExecutionReport report =
          RunEngine(engine, r, t, workload, contracts, options);
      scores[engine].push_back(report.average_satisfaction);
      prog_scores[engine].push_back(
          ProgressiveScore(report, calibration.reference_seconds));
    }
  }
  TablePrinter prog_table(headers);
  for (const std::string& engine : engines) {
    std::vector<std::string> row = {engine};
    std::vector<std::string> prog_row = {engine};
    for (double s : scores[engine]) row.push_back(FormatDouble(s, 3));
    for (double s : prog_scores[engine]) {
      prog_row.push_back(FormatDouble(s, 3));
    }
    table.AddRow(row);
    prog_table.AddRow(prog_row);
  }
  const bool csv = args.GetInt("csv", 0) != 0;
  std::printf("average per-result utility (pScore / N):\n%s\n",
              csv ? table.RenderCsv().c_str() : table.Render().c_str());
  std::printf(
      "progressive satisfaction (utility AUC, horizon = reference):\n%s\n",
      csv ? prog_table.RenderCsv().c_str() : prog_table.Render().c_str());
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  std::printf(
      "CAQE reproduction: Figure 11 — satisfaction vs workload size\n\n");
  RunContract(1, args);  // C2 (Figure 11.a)
  RunContract(2, args);  // C3 (Figure 11.b)
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
