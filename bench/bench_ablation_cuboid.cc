// Ablation A1: what the min-max cuboid plan and its coarse pruning buy.
//
// Compares (a) CAQE, (b) CAQE without the coarse MQLA prune, (c) the
// per-query ProgXe+ strategy (no sharing at all), plus the structural size
// of the min-max cuboid against the full skycube and the comparison savings
// of Theorem-1 (DVA) feeder gating.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S
#include <cstdio>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  auto [r, t] = MakeBenchTables(config);

  std::printf("CAQE ablation: min-max cuboid plan (dist=%s, N=%lld)\n\n",
              DistributionName(config.distribution),
              static_cast<long long>(config.rows));

  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();

  // Structural comparison: retained lattice nodes vs the full skycube.
  std::vector<Subspace> prefs;
  for (const SjQuery& q : workload.queries()) {
    prefs.push_back(Subspace::FromDims(q.preference));
  }
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  std::printf("min-max cuboid nodes: %d of %lld skycube subspaces\n",
              cuboid.num_nodes(),
              static_cast<long long>(cuboid.FullSkycubeSize()));
  // The full 11-query workload touches every subspace; the paper's running
  // example (Figures 1/6) shows the pruning the structure exists for.
  const MinMaxCuboid fig6 =
      MinMaxCuboid::Build({Subspace::FromDims({0, 1}),
                           Subspace::FromDims({0, 1, 2}),
                           Subspace::FromDims({1, 2}),
                           Subspace::FromDims({1, 2, 3})})
          .value();
  std::printf(
      "(paper Figure 6 workload: %d of %lld subspaces retained)\n\n",
      fig6.num_nodes(), static_cast<long long>(fig6.FullSkycubeSize()));

  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds));  // C3.
  ExecOptions base_options;
  base_options.known_result_counts = calibration.result_counts;

  TablePrinter table({"variant", "avg_satisfaction", "join_results",
                      "skyline_cmps", "exec_time_s"});
  struct Variant {
    const char* label;
    const char* engine;
    bool dva;
    PartitionStrategy partition;
  };
  const Variant variants[] = {
      {"CAQE", "CAQE", true, PartitionStrategy::kGrid},
      {"CAQE (no Theorem-1 gating)", "CAQE", false, PartitionStrategy::kGrid},
      {"CAQE without coarse prune", "CAQE-noprune", true,
       PartitionStrategy::kGrid},
      {"CAQE (quad-tree partitioning)", "CAQE", true,
       PartitionStrategy::kQuadTree},
      {"per-query (ProgXe+)", "ProgXe+", true, PartitionStrategy::kGrid},
  };
  for (const Variant& variant : variants) {
    ExecOptions options = base_options;
    options.dva_mode = variant.dva;
    options.partition_strategy = variant.partition;
    const ExecutionReport report =
        RunEngine(variant.engine, r, t, workload, contracts, options);
    table.AddRow({variant.label,
                  FormatDouble(report.average_satisfaction, 3),
                  FormatCount(report.stats.join_results),
                  FormatCount(report.stats.dominance_cmps),
                  FormatDouble(report.stats.virtual_seconds, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
