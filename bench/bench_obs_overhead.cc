// Overhead of the observability layer (src/obs): the Figure 9 workload runs
// repeatedly with tracing OFF (ExecOptions::obs null — disabled spans cost
// one branch) and ON (full span + metrics + contract-health collection),
// comparing median wall times. The run aborts if any deterministic counter
// or the contract objective moves between the two modes — observability
// must be invisible to the engine.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S --repeats=R
//        --threads=T --out=PATH (default BENCH_obs.json)
//
// Budget (DESIGN.md §10): median overhead must stay under 2% of wall time.
// The JSON records both medians, the overhead percentage, and the span /
// health-sample counts of one traced run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace bench {
namespace {

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// The deterministic face of a report: every counter that must be identical
/// with observability on or off.
struct DeterministicStats {
  int64_t join_probes, join_results, dominance_cmps, coarse_ops, emitted;
  double virtual_seconds, workload_pscore;
  bool operator==(const DeterministicStats&) const = default;
};

DeterministicStats DeterministicFace(const ExecutionReport& report) {
  const EngineStats& s = report.stats;
  return {s.join_probes,   s.join_results, s.dominance_cmps,  s.coarse_ops,
          s.emitted_results, s.virtual_seconds, report.workload_pscore};
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 6000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  const int repeats = static_cast<int>(args.GetInt("repeats", 7));
  const std::string out_path = args.GetString("out", "BENCH_obs.json");

  auto [r, t] = MakeBenchTables(config);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds,
                           DistributionTightness(config.distribution)));

  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  options.num_threads = ThreadsFromArgs(args);

  std::printf(
      "obs overhead: dist=%s N=%lld sigma=%.4f |S_Q|=%d repeats=%d "
      "threads=%d\n\n",
      DistributionName(config.distribution),
      static_cast<long long>(config.rows), config.selectivity,
      config.num_queries, repeats, options.num_threads);

  // Interleave OFF/ON runs so thermal / frequency drift hits both equally.
  std::vector<double> wall_off, wall_on;
  DeterministicStats face_off{}, face_on{};
  size_t span_count = 0, health_count = 0;
  int64_t metric_families = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    options.obs = nullptr;
    const ExecutionReport off =
        RunEngine("CAQE", r, t, workload, contracts, options);
    wall_off.push_back(off.stats.wall_seconds);
    if (rep == 0) face_off = DeterministicFace(off);
    CAQE_CHECK(DeterministicFace(off) == face_off);

    Observability obs;
    options.obs = &obs;
    const ExecutionReport on =
        RunEngine("CAQE", r, t, workload, contracts, options);
    wall_on.push_back(on.stats.wall_seconds);
    if (rep == 0) {
      face_on = DeterministicFace(on);
      span_count = obs.spans.size();
      health_count = obs.health.size();
      const std::string prom = obs.metrics.PrometheusText();
      for (size_t pos = prom.find("# TYPE"); pos != std::string::npos;
           pos = prom.find("# TYPE", pos + 1)) {
        ++metric_families;
      }
    }
    CAQE_CHECK(DeterministicFace(on) == face_on);
  }
  // The whole point: the engine cannot tell whether it is being observed.
  CAQE_CHECK(face_on == face_off);

  const double median_off = Median(wall_off);
  const double median_on = Median(wall_on);
  const double overhead_pct =
      median_off > 0.0 ? 100.0 * (median_on - median_off) / median_off : 0.0;

  std::printf("wall median off: %.4fs  on: %.4fs  overhead: %+.2f%%\n",
              median_off, median_on, overhead_pct);
  std::printf("spans: %zu  health samples: %zu  metric families: %lld\n",
              span_count, health_count,
              static_cast<long long>(metric_families));
  std::printf("deterministic counters identical off/on: yes\n");

  std::string json = "{\n";
  json += "  \"benchmark\": \"obs_overhead\",\n";
  json += "  \"engine\": \"CAQE\",\n";
  json += "  \"distribution\": \"" +
          std::string(DistributionName(config.distribution)) + "\",\n";
  json += "  \"rows\": " + std::to_string(config.rows) + ",\n";
  json += "  \"queries\": " + std::to_string(config.num_queries) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"threads\": " + std::to_string(options.num_threads) + ",\n";
  json += "  " + JsonField("wall_median_off_seconds", median_off) + ",\n";
  json += "  " + JsonField("wall_median_on_seconds", median_on) + ",\n";
  json += "  " + JsonField("overhead_pct", overhead_pct) + ",\n";
  json += "  \"spans\": " + std::to_string(span_count) + ",\n";
  json += "  \"health_samples\": " + std::to_string(health_count) + ",\n";
  json += "  \"metric_families\": " + std::to_string(metric_families) + ",\n";
  json += "  \"deterministic_counters_identical\": true,\n";
  json += "  \"budget_pct\": 2.0,\n";
  json += std::string("  \"within_budget\": ") +
          (overhead_pct < 2.0 ? "true" : "false") + "\n";
  json += "}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
