// Overhead of the observability layer (src/obs): the Figure 9 workload runs
// repeatedly with tracing OFF (ExecOptions::obs null — disabled spans cost
// one branch) and ON (full span + metrics + contract-health collection),
// comparing median wall times. The run aborts if any deterministic counter
// or the contract objective moves between the two modes — observability
// must be invisible to the engine.
//
// A second cell measures the serving layer the same way: a synthetic trace
// is served with observability detached and attached, where "attached" now
// also means the contract audit ledger records every admission decision /
// weight update / completion and the always-on flight recorder mirrors
// every span and ledger record through its lock-free ring. The
// deterministic ServingReportText must be byte-identical off/on.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S --repeats=R
//        --threads=T --serve_requests=K --out=PATH (default BENCH_obs.json)
//
// Budget (DESIGN.md §10): median overhead must stay under 2% of wall time
// in both cells. The JSON records the medians, overhead percentages, and
// the span / health-sample / ledger / flight counts of one traced run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace bench {
namespace {

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// The deterministic face of a report: every counter that must be identical
/// with observability on or off.
struct DeterministicStats {
  int64_t join_probes, join_results, dominance_cmps, coarse_ops, emitted;
  double virtual_seconds, workload_pscore;
  bool operator==(const DeterministicStats&) const = default;
};

DeterministicStats DeterministicFace(const ExecutionReport& report) {
  const EngineStats& s = report.stats;
  return {s.join_probes,   s.join_results, s.dominance_cmps,  s.coarse_ops,
          s.emitted_results, s.virtual_seconds, report.workload_pscore};
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 6000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  const int repeats = static_cast<int>(args.GetInt("repeats", 7));
  const std::string out_path = args.GetString("out", "BENCH_obs.json");

  auto [r, t] = MakeBenchTables(config);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const Calibration calibration = Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      MakeTableTwoContract(2, calibration.reference_seconds,
                           DistributionTightness(config.distribution)));

  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  options.num_threads = ThreadsFromArgs(args);

  std::printf(
      "obs overhead: dist=%s N=%lld sigma=%.4f |S_Q|=%d repeats=%d "
      "threads=%d\n\n",
      DistributionName(config.distribution),
      static_cast<long long>(config.rows), config.selectivity,
      config.num_queries, repeats, options.num_threads);

  // Interleave OFF/ON runs so thermal / frequency drift hits both equally.
  std::vector<double> wall_off, wall_on;
  DeterministicStats face_off{}, face_on{};
  size_t span_count = 0, health_count = 0;
  int64_t metric_families = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    options.obs = nullptr;
    const ExecutionReport off =
        RunEngine("CAQE", r, t, workload, contracts, options);
    wall_off.push_back(off.stats.wall_seconds);
    if (rep == 0) face_off = DeterministicFace(off);
    CAQE_CHECK(DeterministicFace(off) == face_off);

    Observability obs;
    options.obs = &obs;
    const ExecutionReport on =
        RunEngine("CAQE", r, t, workload, contracts, options);
    wall_on.push_back(on.stats.wall_seconds);
    if (rep == 0) {
      face_on = DeterministicFace(on);
      span_count = obs.spans.size();
      health_count = obs.health.size();
      const std::string prom = obs.metrics.PrometheusText();
      for (size_t pos = prom.find("# TYPE"); pos != std::string::npos;
           pos = prom.find("# TYPE", pos + 1)) {
        ++metric_families;
      }
    }
    CAQE_CHECK(DeterministicFace(on) == face_on);
  }
  // The whole point: the engine cannot tell whether it is being observed.
  CAQE_CHECK(face_on == face_off);

  const double median_off = Median(wall_off);
  const double median_on = Median(wall_on);
  const double overhead_pct =
      median_off > 0.0 ? 100.0 * (median_on - median_off) / median_off : 0.0;

  std::printf("wall median off: %.4fs  on: %.4fs  overhead: %+.2f%%\n",
              median_off, median_on, overhead_pct);
  std::printf("spans: %zu  health samples: %zu  metric families: %lld\n",
              span_count, health_count,
              static_cast<long long>(metric_families));
  std::printf("deterministic counters identical off/on: yes\n");

  // ---- Serving cell: audit ledger + flight recorder ----------------------
  // The ledger and flight recorder only run in the serving layer, so this
  // cell serves a synthetic trace instead of the batch workload. Attaching
  // an Observability turns on spans, metrics, health, the audit ledger,
  // and the span/ledger flight-recorder mirror all at once — the budget
  // covers their sum.
  GeneratorConfig serve_cfg;
  serve_cfg.num_rows = args.GetInt("serve_rows", 2000);
  serve_cfg.num_attrs = 3;
  serve_cfg.join_selectivities = {config.selectivity, config.selectivity};
  serve_cfg.seed = config.seed;
  const Table serve_r = GenerateTable("R", serve_cfg).value();
  serve_cfg.seed = config.seed + 1;
  const Table serve_t = GenerateTable("T", serve_cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};
  TraceConfig trace_config;
  trace_config.num_requests =
      static_cast<int>(args.GetInt("serve_requests", 24));
  trace_config.arrival_rate = 40.0;
  trace_config.seed = config.seed;
  trace_config.cancel_fraction = 0.1;
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, keys, 3);

  ServeOptions serve_options;
  serve_options.target_regions = 128;
  serve_options.num_threads = options.num_threads;

  const auto timed_serve = [&](Observability* obs) {
    serve_options.obs = obs;
    auto server =
        CaqeServer::Create(serve_r, serve_t, dims, keys, serve_options)
            .value();
    SubmitTrace(*server, trace);
    const auto start = std::chrono::steady_clock::now();
    const ServingReport report = server->Run().value();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return std::make_pair(elapsed.count(), ServingReportText(report));
  };

  std::vector<double> serve_off, serve_on;
  std::string serve_text;
  size_t ledger_records = 0;
  uint64_t flight_total = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto [off_wall, off_text] = timed_serve(nullptr);
    serve_off.push_back(off_wall);
    if (rep == 0) serve_text = off_text;
    CAQE_CHECK(off_text == serve_text);

    Observability obs;
    const auto [on_wall, on_text] = timed_serve(&obs);
    serve_on.push_back(on_wall);
    // Observed or not, the serving report must not move a byte.
    CAQE_CHECK(on_text == serve_text);
    if (rep == 0) {
      ledger_records = obs.ledger.size();
      flight_total = obs.flight.total();
      CAQE_CHECK(ledger_records > 0);
      CAQE_CHECK(obs.ledger.dropped() == 0);
      CAQE_CHECK(flight_total >= ledger_records);
    }
  }

  const double serve_median_off = Median(serve_off);
  const double serve_median_on = Median(serve_on);
  const double serve_overhead_pct =
      serve_median_off > 0.0
          ? 100.0 * (serve_median_on - serve_median_off) / serve_median_off
          : 0.0;
  std::printf(
      "\nserving (ledger+flight) median off: %.4fs  on: %.4fs  "
      "overhead: %+.2f%%\n",
      serve_median_off, serve_median_on, serve_overhead_pct);
  std::printf("ledger records: %zu  flight entries: %llu\n", ledger_records,
              static_cast<unsigned long long>(flight_total));
  std::printf("serving report identical off/on: yes\n");

  std::string json = "{\n";
  json += "  \"benchmark\": \"obs_overhead\",\n";
  json += "  \"engine\": \"CAQE\",\n";
  json += "  \"distribution\": \"" +
          std::string(DistributionName(config.distribution)) + "\",\n";
  json += "  \"rows\": " + std::to_string(config.rows) + ",\n";
  json += "  \"queries\": " + std::to_string(config.num_queries) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"threads\": " + std::to_string(options.num_threads) + ",\n";
  json += "  " + JsonField("wall_median_off_seconds", median_off) + ",\n";
  json += "  " + JsonField("wall_median_on_seconds", median_on) + ",\n";
  json += "  " + JsonField("overhead_pct", overhead_pct) + ",\n";
  json += "  \"spans\": " + std::to_string(span_count) + ",\n";
  json += "  \"health_samples\": " + std::to_string(health_count) + ",\n";
  json += "  \"metric_families\": " + std::to_string(metric_families) + ",\n";
  json += "  \"deterministic_counters_identical\": true,\n";
  json += "  \"serve_requests\": " +
          std::to_string(trace_config.num_requests) + ",\n";
  json += "  " + JsonField("serve_median_off_seconds", serve_median_off) +
          ",\n";
  json += "  " + JsonField("serve_median_on_seconds", serve_median_on) +
          ",\n";
  json += "  " + JsonField("serve_overhead_pct", serve_overhead_pct) + ",\n";
  json += "  \"ledger_records\": " + std::to_string(ledger_records) + ",\n";
  json += "  \"flight_entries\": " + std::to_string(flight_total) + ",\n";
  json += "  \"serving_report_identical\": true,\n";
  json += "  \"budget_pct\": 2.0,\n";
  json += std::string("  \"within_budget\": ") +
          (overhead_pct < 2.0 && serve_overhead_pct < 2.0 ? "true" : "false") +
          "\n";
  json += "}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
