// Tree-indexed coarse phase: end-to-end CAQE runs at growing table sizes
// with --coarse_index off vs on, gated on full report-hash equality
// (ReportHash: every counter, virtual time, and per-query outcome — the
// indexed coarse phase must be invisible in the report, down to the last
// coarse_op).
//
// For each indexed run the packed-box-tree traversal counters are read back
// through the observability registry and compared against `scan_equiv` —
// the exact number of per-entry tests the grid-scan coarse phase performs
// on the same input. At N >= 500K the bench *requires* the index to visit
// strictly fewer nodes+entries than the scan tests (the branch-and-bound
// payoff), so a regression that degenerates the tree into a scan fails
// loudly instead of shipping a silent slowdown.
//
// Flags: --rows=50000,500000,2000000   (CSV list of table sizes)
//        --queries=7 --dims=4 --seed=2014 --target_regions=4096
//        --dist=independent --out=BENCH_coarse.json
//
// The join selectivity is fixed at 1/N per size so join output stays O(N)
// and the coarse phase — not the join — dominates the size sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace bench {
namespace {

struct CoarsePoint {
  int64_t rows = 0;
  bool index = false;
  double wall_seconds = 0.0;
  double region_build_seconds = 0.0;
  int64_t coarse_ops = 0;
  // Indexed runs only (from the caqe_coarse_index_* counters).
  int64_t trees = 0;
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
  int64_t entries_tested = 0;
  int64_t entries_bulk = 0;
  int64_t visits = 0;      // nodes_visited + entries_tested.
  int64_t scan_equiv = 0;  // Entry tests the scan path would have done.
};

std::vector<int64_t> ParseRowsList(const std::string& csv) {
  std::vector<int64_t> rows;
  std::string current;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!current.empty()) rows.push_back(std::stoll(current));
      current.clear();
    } else {
      current += c;
    }
  }
  return rows;
}

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::vector<int64_t> row_counts =
      ParseRowsList(args.GetString("rows", "50000,500000,2000000"));
  const int num_queries = static_cast<int>(args.GetInt("queries", 7));
  const int dims = static_cast<int>(args.GetInt("dims", 4));
  const int64_t seed = args.GetInt("seed", 2014);
  const int target_regions =
      static_cast<int>(args.GetInt("target_regions", 4096));
  const Distribution dist =
      ParseDistribution(args.GetString("dist", "independent")).value();
  const std::string out_path = args.GetString("out", "BENCH_coarse.json");

  std::printf(
      "coarse-index sweep: dist=%s |S_Q|=%d d=%d target_regions=%d "
      "(sigma = 1/N per size)\n\n",
      DistributionName(dist), num_queries, dims, target_regions);
  std::printf("%9s %6s %10s %14s %14s %14s %8s\n", "rows", "index", "wall_s",
              "coarse_ops", "index_visits", "scan_equiv", "ratio");

  std::vector<CoarsePoint> points;
  for (const int64_t rows : row_counts) {
    BenchConfig config;
    config.rows = rows;
    config.num_attrs = dims;
    config.num_queries = num_queries;
    config.seed = seed;
    config.distribution = dist;
    config.selectivity = 1.0 / static_cast<double>(rows);
    auto [r, t] = MakeBenchTables(config);
    const Workload workload =
        MakeSubspaceWorkload(dims, 0, num_queries, PriorityPolicy::kUniform,
                             config.seed)
            .value();
    // Log-decay contracts need no deadline calibration, so the sweep skips
    // the throwaway S-JFSL pass (it would dwarf the coarse phase at 2M).
    const std::vector<Contract> contracts(workload.num_queries(),
                                          MakeLogDecayContract());

    uint64_t reference_hash = 0;
    for (int index = 0; index < 2; ++index) {
      ExecOptions options;
      options.capture_results = false;
      options.target_regions = target_regions;
      options.coarse_index = index != 0;
      Observability obs;
      if (index != 0) options.obs = &obs;
      const ExecutionReport report =
          RunEngine("CAQE", r, t, workload, contracts, options);
      const uint64_t hash = ReportHash(report);
      if (index == 0) {
        reference_hash = hash;
      }
      // The determinism gate: the tree-indexed coarse phase must reproduce
      // the scan path's report bit for bit (regions, discards, coarse_ops,
      // utility traces — everything ReportHash covers).
      CAQE_CHECK(hash == reference_hash);

      CoarsePoint point;
      point.rows = rows;
      point.index = index != 0;
      point.wall_seconds = report.stats.wall_seconds;
      point.region_build_seconds = report.stats.wall_region_build_seconds;
      point.coarse_ops = report.stats.coarse_ops;
      if (index != 0) {
        MetricsRegistry& m = obs.metrics;
        point.trees = m.counter("caqe_coarse_index_trees_total").value();
        point.nodes_visited =
            m.counter("caqe_coarse_index_nodes_visited_total").value();
        point.nodes_pruned =
            m.counter("caqe_coarse_index_nodes_pruned_total").value();
        point.entries_tested =
            m.counter("caqe_coarse_index_entries_tested_total").value();
        point.entries_bulk =
            m.counter("caqe_coarse_index_entries_bulk_total").value();
        point.visits = point.nodes_visited + point.entries_tested;
        point.scan_equiv =
            m.counter("caqe_coarse_index_scan_equiv_total").value();
        // The payoff gate: at large N the branch-and-bound traversal must
        // touch strictly fewer nodes+entries than the scan path tests.
        if (rows >= 500000) {
          CAQE_CHECK(point.visits < point.scan_equiv);
        }
      }
      const double ratio =
          point.scan_equiv > 0
              ? static_cast<double>(point.visits) /
                    static_cast<double>(point.scan_equiv)
              : 0.0;
      std::printf("%9lld %6s %10.4f %14lld %14lld %14lld %8.3f\n",
                  static_cast<long long>(rows), point.index ? "on" : "off",
                  point.wall_seconds,
                  static_cast<long long>(point.coarse_ops),
                  static_cast<long long>(point.visits),
                  static_cast<long long>(point.scan_equiv), ratio);
      points.push_back(point);
    }
  }

  std::string json = "{\n";
  json += "  \"benchmark\": \"coarse_index\",\n";
  json += "  \"engine\": \"CAQE\",\n";
  json += "  \"distribution\": \"" + std::string(DistributionName(dist)) +
          "\",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"dims\": " + std::to_string(dims) + ",\n";
  json += "  \"target_regions\": " + std::to_string(target_regions) + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const CoarsePoint& p = points[i];
    json += "    {\"rows\": " + std::to_string(p.rows) +
            ", \"coarse_index\": " + (p.index ? "true" : "false") + ", " +
            JsonField("wall_seconds", p.wall_seconds) + ", " +
            JsonField("region_build_seconds", p.region_build_seconds) +
            ", \"coarse_ops\": " + std::to_string(p.coarse_ops);
    if (p.index) {
      json += ", \"trees\": " + std::to_string(p.trees) +
              ", \"nodes_visited\": " + std::to_string(p.nodes_visited) +
              ", \"nodes_pruned\": " + std::to_string(p.nodes_pruned) +
              ", \"entries_tested\": " + std::to_string(p.entries_tested) +
              ", \"entries_bulk\": " + std::to_string(p.entries_bulk) +
              ", \"index_visits\": " + std::to_string(p.visits) +
              ", \"scan_equiv\": " + std::to_string(p.scan_equiv);
    }
    json += "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (report hash identical at every cell)\n",
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
