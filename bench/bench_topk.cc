// Extension benchmark: Top-K-over-join workloads under the contract-aware
// strategy vs the serial baseline — satisfaction, materialized join
// results, and bound-pruning effectiveness across k and workload size.
//
// Flags: --rows=N --sel=SIGMA --dist=... --seed=S
#include <cstdio>

#include "bench_util.h"
#include "topk/topk_engine.h"
#include "topk/topk_query.h"

namespace caqe {
namespace bench {
namespace {

TopKWorkload MakeTopKWorkload(int num_queries, int64_t k, uint64_t seed) {
  TopKWorkload workload;
  for (int d = 0; d < 3; ++d) workload.AddOutputDim({d, d, 1.0, 1.0});
  Rng rng(seed);
  for (int q = 0; q < num_queries; ++q) {
    TopKQuery query;
    query.name = "T" + std::to_string(q + 1);
    query.join_key = 0;
    query.weights = {rng.Uniform(0.1, 1.0), rng.Uniform(0.1, 1.0),
                     rng.Uniform(0.1, 1.0)};
    query.k = k;
    query.priority = 1.0 - 0.9 * q / std::max(1, num_queries - 1);
    workload.AddQuery(std::move(query));
  }
  return workload;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.num_attrs = 3;
  config.selectivity = args.GetDouble("sel", 0.01);
  config.seed = args.GetInt("seed", 2014);
  config.distribution =
      ParseDistribution(args.GetString("dist", "independent")).value();
  auto [r, t] = MakeBenchTables(config);

  std::printf("CAQE extension: top-k over join (dist=%s, N=%lld)\n\n",
              DistributionName(config.distribution),
              static_cast<long long>(config.rows));

  TablePrinter table({"workload", "engine", "avg_sat", "join_results",
                      "regions_discarded", "exec_time_s"});
  ContractAwareTopKEngine caqe_engine;
  SerialTopKEngine serial_engine;
  for (int num_queries : {1, 4, 8}) {
    for (int64_t k : {10, 100}) {
      const TopKWorkload workload =
          MakeTopKWorkload(num_queries, k, config.seed);
      // Deadline calibrated to the serial completion time.
      std::vector<Contract> throwaway(workload.num_queries(),
                                      MakeLogDecayContract(0.01));
      const double serial_total =
          serial_engine.Execute(r, t, workload, throwaway, ExecOptions{})
              .value()
              .stats.virtual_seconds;
      const std::vector<Contract> contracts(
          workload.num_queries(),
          MakeTimeStepContract(0.3 * serial_total));

      const std::string label = "q" + std::to_string(num_queries) + "_k" +
                                std::to_string(k);
      for (TopKEngine* engine :
           std::vector<TopKEngine*>{&caqe_engine, &serial_engine}) {
        const ExecutionReport report =
            engine->Execute(r, t, workload, contracts, ExecOptions{})
                .value();
        table.AddRow({label, report.engine,
                      FormatDouble(report.average_satisfaction, 3),
                      FormatCount(report.stats.join_results),
                      FormatCount(report.stats.regions_discarded),
                      FormatDouble(report.stats.virtual_seconds, 3)});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
