// Micro-benchmarks (google-benchmark) for the skyline kernels, the shared
// evaluator, partitioning, and the region machinery.
//
// With --simd_report [--out=PATH] the binary instead sweeps the batch
// dominance kernel — forced scalar vs. the runtime-dispatched backend — over
// subspace widths, runs one small engine workload for the per-phase wall
// breakdown, and writes a JSON summary (default BENCH_simd.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace {

PointSet RandomPoints(Distribution dist, int64_t n, int width,
                      uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = width;
  cfg.distribution = dist;
  cfg.seed = seed;
  const Table t = GenerateTable("P", cfg).value();
  PointSet points(width);
  std::vector<double> row(width);
  for (int64_t i = 0; i < n; ++i) {
    for (int k = 0; k < width; ++k) row[k] = t.attr(i, k);
    points.Append(row);
  }
  return points;
}

std::vector<int> AllDims(int d) {
  std::vector<int> dims(d);
  for (int k = 0; k < d; ++k) dims[k] = k;
  return dims;
}

void BM_BnlSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BnlSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_BnlSkyline)->Args({1000, 2})->Args({1000, 4})->Args({10000, 4});

void BM_SfsSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SfsSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_SfsSkyline)->Args({1000, 2})->Args({1000, 4})->Args({10000, 4});

void BM_DivideConquerSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DivideConquerSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_DivideConquerSkyline)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 4});

void BM_SfsSkylineAntiCorrelated(benchmark::State& state) {
  const PointSet points =
      RandomPoints(Distribution::kAntiCorrelated, state.range(0), 4, 9);
  const std::vector<int> dims = AllDims(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SfsSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_SfsSkylineAntiCorrelated)->Arg(1000)->Arg(4000);

void BM_IncrementalSkylineInsert(benchmark::State& state) {
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), 4, 9);
  const std::vector<int> dims = AllDims(4);
  for (auto _ : state) {
    IncrementalSkyline inc(4, dims);
    for (int64_t i = 0; i < points.size(); ++i) {
      inc.Insert(points.row(i), i);
    }
    benchmark::DoNotOptimize(inc.size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_IncrementalSkylineInsert)->Arg(1000)->Arg(10000);

void BM_SharedEvaluator(benchmark::State& state) {
  const bool dva = state.range(1) != 0;
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), 4, 9);
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  std::vector<Subspace> prefs;
  for (const SjQuery& q : wl.queries()) {
    prefs.push_back(Subspace::FromDims(q.preference));
  }
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  for (auto _ : state) {
    SharedSkylineEvaluator eval(4, &cuboid, dva);
    for (int64_t i = 0; i < points.size(); ++i) {
      eval.Insert(points.row(i), i);
    }
    benchmark::DoNotOptimize(eval.root_size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
  state.SetLabel(dva ? "dva_gating" : "tie_safe");
}
BENCHMARK(BM_SharedEvaluator)->Args({2000, 1})->Args({2000, 0});

void BM_PartitionTable(benchmark::State& state) {
  GeneratorConfig cfg;
  cfg.num_rows = state.range(0);
  cfg.num_attrs = 4;
  cfg.join_selectivities = {0.01};
  const Table t = GenerateTable("T", cfg).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionTable(t, 2).value().num_cells());
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_rows);
}
BENCHMARK(BM_PartitionTable)->Arg(10000)->Arg(100000);

void BM_BuildRegions(benchmark::State& state) {
  GeneratorConfig cfg;
  cfg.num_rows = state.range(0);
  cfg.num_attrs = 4;
  cfg.join_selectivities = {0.01};
  cfg.seed = 1;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 2;
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRegions(pr, pt, wl).value().regions.size());
  }
}
BENCHMARK(BM_BuildRegions)->Arg(10000)->Arg(50000);

void BM_BatchDominanceKernel(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const PointSet points = RandomPoints(Distribution::kIndependent, 4096, d, 9);
  const std::vector<int> dims = AllDims(d);
  SubspaceView view(dims);
  view.Reserve(points.size());
  for (int64_t i = 0; i < points.size(); ++i) view.PushPoint(points.row(i));
  std::vector<double> probe(dims.size());
  GatherPoint(points.row(0), dims, probe.data());
  std::vector<uint8_t> flags(static_cast<size_t>(points.size()));
  for (auto _ : state) {
    if (scalar) {
      BatchDominanceFlagsScalar(probe.data(), view, 0, view.size(),
                                flags.data());
    } else {
      BatchDominanceFlags(probe.data(), view, 0, view.size(), flags.data());
    }
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
  state.SetLabel(scalar ? "scalar" : BatchKernelIsaName());
}
BENCHMARK(BM_BatchDominanceKernel)
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0});

void BM_BuchtaEstimate(benchmark::State& state) {
  for (auto _ : state) {
    for (int d = 2; d <= 6; ++d) {
      benchmark::DoNotOptimize(BuchtaSkylineCardinality(1e6, d));
    }
  }
}
BENCHMARK(BM_BuchtaEstimate);

// ---- --simd_report mode ----

/// Throughput of one kernel variant in comparisons/second: repeated sweeps
/// of every probe over the whole window until enough wall time accumulates.
/// `isa == nullptr` measures the dispatcher's pick; otherwise the named
/// backend (which the caller has verified is available).
double MeasureKernelCps(const char* isa,
                        const std::vector<std::vector<double>>& probes,
                        const SubspaceView& view,
                        std::vector<uint8_t>& flags) {
  const int64_t n = view.size();
  const auto run_sweep = [&] {
    for (const std::vector<double>& probe : probes) {
      if (isa != nullptr) {
        BatchDominanceFlagsForIsa(isa, probe.data(), view, 0, n,
                                  flags.data());
      } else {
        BatchDominanceFlags(probe.data(), view, 0, n, flags.data());
      }
      benchmark::DoNotOptimize(flags.data());
    }
  };
  run_sweep();  // Warm-up.
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  int64_t sweeps = 0;
  double elapsed = 0.0;
  do {
    run_sweep();
    ++sweeps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.25);
  return static_cast<double>(sweeps) *
         static_cast<double>(probes.size()) * static_cast<double>(n) /
         elapsed;
}

std::string JsonNum(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key.c_str(), value);
  return buf;
}

int RunSimdReport(const std::string& out_path) {
  constexpr int64_t kWindow = 4096;
  constexpr int kProbes = 64;

  const std::vector<const char*> isas = BatchKernelAvailableIsas();
  std::string isa_list;
  for (size_t i = 0; i < isas.size(); ++i) {
    isa_list += isas[i];
    if (i + 1 < isas.size()) isa_list += ",";
  }
  std::printf(
      "batch dominance kernel: isa=%s available=[%s] window=%lld "
      "probes=%d\n\n",
      BatchKernelIsaName(), isa_list.c_str(), static_cast<long long>(kWindow),
      kProbes);
  std::printf("%6s %8s %18s %18s %8s\n", "dims", "isa", "scalar_cmps/s",
              "isa_cmps/s", "speedup");

  std::string sweep_json;
  std::string isa_sweep_json;
  const std::vector<int> dim_counts = {2, 4, 6, 8};
  for (size_t di = 0; di < dim_counts.size(); ++di) {
    const int d = dim_counts[di];
    const PointSet points =
        RandomPoints(Distribution::kIndependent, kWindow + kProbes, d, 9);
    const std::vector<int> dims = AllDims(d);
    SubspaceView view(dims);
    view.Reserve(kWindow);
    for (int64_t i = 0; i < kWindow; ++i) view.PushPoint(points.row(i));
    std::vector<std::vector<double>> probes(kProbes);
    for (int p = 0; p < kProbes; ++p) {
      probes[p].resize(dims.size());
      GatherPoint(points.row(kWindow + p), dims, probes[p].data());
    }
    std::vector<uint8_t> flags(static_cast<size_t>(kWindow));
    const double scalar_cps =
        MeasureKernelCps("scalar", probes, view, flags);
    const double simd_cps =
        MeasureKernelCps(/*isa=*/nullptr, probes, view, flags);
    const double speedup = scalar_cps > 0.0 ? simd_cps / scalar_cps : 0.0;
    // One row per available backend at this dimensionality, so the report
    // shows avx512 vs avx2 vs scalar side by side on the same data.
    for (const char* isa : isas) {
      const double isa_cps =
          std::strcmp(isa, "scalar") == 0
              ? scalar_cps
              : MeasureKernelCps(isa, probes, view, flags);
      const double isa_speedup =
          scalar_cps > 0.0 ? isa_cps / scalar_cps : 0.0;
      std::printf("%6d %8s %18.3e %18.3e %7.2fx\n", d, isa, scalar_cps,
                  isa_cps, isa_speedup);
      if (!isa_sweep_json.empty()) isa_sweep_json += ",\n";
      isa_sweep_json += "    {\"dims\": " + std::to_string(d) +
                        ", \"isa\": \"" + isa + "\", " +
                        JsonNum("cmps_per_sec", isa_cps) + ", " +
                        JsonNum("speedup", isa_speedup) + "}";
    }
    sweep_json += "    {\"dims\": " + std::to_string(d) + ", " +
                  JsonNum("scalar_cmps_per_sec", scalar_cps) + ", " +
                  JsonNum("simd_cmps_per_sec", simd_cps) + ", " +
                  JsonNum("speedup", speedup) + "}";
    sweep_json += (di + 1 < dim_counts.size()) ? ",\n" : "\n";
  }
  isa_sweep_json += "\n";

  // One small Figure-9-style engine run for the per-phase wall breakdown of
  // the phases the batch kernels feed (evaluation and discard scans).
  bench::BenchConfig config;
  config.rows = 4000;
  const auto [r, t] = bench::MakeBenchTables(config);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const bench::Calibration calibration = bench::Calibrate(r, t, workload);
  const std::vector<Contract> contracts(
      workload.num_queries(),
      bench::MakeTableTwoContract(
          2, calibration.reference_seconds,
          bench::DistributionTightness(config.distribution)));
  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  const ExecutionReport report =
      bench::RunEngine("CAQE", r, t, workload, contracts, options);
  const EngineStats& stats = report.stats;
  std::printf(
      "\nengine (rows=%lld, |S_Q|=%d): wall=%.4fs eval=%.4fs discard=%.4fs "
      "pscore=%.6f\n",
      static_cast<long long>(config.rows), config.num_queries,
      stats.wall_seconds, stats.wall_eval_seconds, stats.wall_discard_seconds,
      report.workload_pscore);

  std::string json = "{\n";
  json += "  \"benchmark\": \"simd_kernel\",\n";
  json += "  \"isa\": \"" + std::string(BatchKernelIsaName()) + "\",\n";
  json += "  \"isas\": [";
  for (size_t i = 0; i < isas.size(); ++i) {
    json += std::string("\"") + isas[i] + "\"";
    if (i + 1 < isas.size()) json += ", ";
  }
  json += "],\n";
  json += std::string("  \"simd_active\": ") +
          (BatchKernelSimdActive() ? "true" : "false") + ",\n";
  json += "  \"window\": " + std::to_string(kWindow) + ",\n";
  json += "  \"probes\": " + std::to_string(kProbes) + ",\n";
  json += "  \"kernel_sweep\": [\n" + sweep_json + "  ],\n";
  json += "  \"isa_sweep\": [\n" + isa_sweep_json + "  ],\n";
  json += "  \"engine\": {\"rows\": " + std::to_string(config.rows) +
          ", \"queries\": " + std::to_string(config.num_queries) + ", " +
          JsonNum("workload_pscore", report.workload_pscore) + ", " +
          JsonNum("wall_seconds", stats.wall_seconds) + ", " +
          JsonNum("region_build_seconds", stats.wall_region_build_seconds) +
          ", " + JsonNum("join_seconds", stats.wall_join_seconds) + ", " +
          JsonNum("eval_seconds", stats.wall_eval_seconds) + ", " +
          JsonNum("discard_seconds", stats.wall_discard_seconds) + "}\n";
  json += "}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace caqe

int main(int argc, char** argv) {
  const caqe::bench::Args args(argc, argv);
  if (args.GetInt("simd_report", 0) != 0) {
    return caqe::RunSimdReport(args.GetString("out", "BENCH_simd.json"));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
