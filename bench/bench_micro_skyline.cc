// Micro-benchmarks (google-benchmark) for the skyline kernels, the shared
// evaluator, partitioning, and the region machinery.
#include <benchmark/benchmark.h>

#include "caqe/caqe.h"

namespace caqe {
namespace {

PointSet RandomPoints(Distribution dist, int64_t n, int width,
                      uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = width;
  cfg.distribution = dist;
  cfg.seed = seed;
  const Table t = GenerateTable("P", cfg).value();
  PointSet points(width);
  std::vector<double> row(width);
  for (int64_t i = 0; i < n; ++i) {
    for (int k = 0; k < width; ++k) row[k] = t.attr(i, k);
    points.Append(row);
  }
  return points;
}

std::vector<int> AllDims(int d) {
  std::vector<int> dims(d);
  for (int k = 0; k < d; ++k) dims[k] = k;
  return dims;
}

void BM_BnlSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BnlSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_BnlSkyline)->Args({1000, 2})->Args({1000, 4})->Args({10000, 4});

void BM_SfsSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SfsSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_SfsSkyline)->Args({1000, 2})->Args({1000, 4})->Args({10000, 4});

void BM_DivideConquerSkyline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(1));
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), d, 9);
  const std::vector<int> dims = AllDims(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DivideConquerSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_DivideConquerSkyline)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 4});

void BM_SfsSkylineAntiCorrelated(benchmark::State& state) {
  const PointSet points =
      RandomPoints(Distribution::kAntiCorrelated, state.range(0), 4, 9);
  const std::vector<int> dims = AllDims(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SfsSkyline(points, dims));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_SfsSkylineAntiCorrelated)->Arg(1000)->Arg(4000);

void BM_IncrementalSkylineInsert(benchmark::State& state) {
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), 4, 9);
  const std::vector<int> dims = AllDims(4);
  for (auto _ : state) {
    IncrementalSkyline inc(4, dims);
    for (int64_t i = 0; i < points.size(); ++i) {
      inc.Insert(points.row(i), i);
    }
    benchmark::DoNotOptimize(inc.size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_IncrementalSkylineInsert)->Arg(1000)->Arg(10000);

void BM_SharedEvaluator(benchmark::State& state) {
  const bool dva = state.range(1) != 0;
  const PointSet points =
      RandomPoints(Distribution::kIndependent, state.range(0), 4, 9);
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  std::vector<Subspace> prefs;
  for (const SjQuery& q : wl.queries()) {
    prefs.push_back(Subspace::FromDims(q.preference));
  }
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  for (auto _ : state) {
    SharedSkylineEvaluator eval(4, &cuboid, dva);
    for (int64_t i = 0; i < points.size(); ++i) {
      eval.Insert(points.row(i), i);
    }
    benchmark::DoNotOptimize(eval.root_size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
  state.SetLabel(dva ? "dva_gating" : "tie_safe");
}
BENCHMARK(BM_SharedEvaluator)->Args({2000, 1})->Args({2000, 0});

void BM_PartitionTable(benchmark::State& state) {
  GeneratorConfig cfg;
  cfg.num_rows = state.range(0);
  cfg.num_attrs = 4;
  cfg.join_selectivities = {0.01};
  const Table t = GenerateTable("T", cfg).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionTable(t, 2).value().num_cells());
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_rows);
}
BENCHMARK(BM_PartitionTable)->Arg(10000)->Arg(100000);

void BM_BuildRegions(benchmark::State& state) {
  GeneratorConfig cfg;
  cfg.num_rows = state.range(0);
  cfg.num_attrs = 4;
  cfg.join_selectivities = {0.01};
  cfg.seed = 1;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 2;
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRegions(pr, pt, wl).value().regions.size());
  }
}
BENCHMARK(BM_BuildRegions)->Arg(10000)->Arg(50000);

void BM_BuchtaEstimate(benchmark::State& state) {
  for (auto _ : state) {
    for (int d = 2; d <= 6; ++d) {
      benchmark::DoNotOptimize(BuchtaSkylineCardinality(1e6, d));
    }
  }
}
BENCHMARK(BM_BuchtaEstimate);

}  // namespace
}  // namespace caqe

BENCHMARK_MAIN();
