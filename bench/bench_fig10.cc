// Reproduces Figure 10 (a/b/c): join results generated (memory proxy),
// pairwise skyline comparisons (CPU proxy), and execution time of each
// technique, reported as ratios against CAQE, under contract C2 with
// |S_Q| = 11 — per distribution.
//
// Flags: --rows=N --sel=SIGMA --dist=... --queries=K --seed=S --csv=1
//
// Paper-expected shape: CAQE and S-JFSL materialize the fewest join tuples
// (shared join); CAQE performs by far the fewest comparisons (66x fewer
// than JFSL and 20x fewer than SSMJ on independent data) and is fastest.
#include <cstdio>

#include "bench_util.h"

namespace caqe {
namespace bench {
namespace {

void RunDistribution(Distribution dist, const Args& args) {
  BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  config.distribution = dist;
  auto [r, t] = MakeBenchTables(config);

  // Figure 10 is measured under contract C2 with dim-increasing priorities
  // (Section 7.2/7.3).
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kDimIncreasing, config.seed)
          .value();
  const std::vector<Contract> contracts(workload.num_queries(),
                                        MakeLogDecayContract());

  std::printf("-- Figure 10 (%s): N=%lld, sigma=%.4f, |S_Q|=%d, C2 --\n",
              DistributionName(dist), static_cast<long long>(config.rows),
              config.selectivity, config.num_queries);

  const std::vector<std::string> engines = {"CAQE", "S-JFSL", "JFSL",
                                            "ProgXe+", "SSMJ"};
  std::vector<ExecutionReport> reports;
  for (const std::string& engine : engines) {
    reports.push_back(RunEngine(engine, r, t, workload, contracts));
  }
  const EngineStats& base = reports[0].stats;

  TablePrinter table({"engine", "join_results", "x_caqe", "skyline_cmps",
                      "x_caqe", "exec_time_s", "x_caqe"});
  for (const ExecutionReport& report : reports) {
    const EngineStats& s = report.stats;
    table.AddRow(
        {report.engine, FormatCount(s.join_results),
         FormatDouble(static_cast<double>(s.join_results) /
                          std::max<int64_t>(1, base.join_results),
                      2),
         FormatCount(s.dominance_cmps),
         FormatDouble(static_cast<double>(s.dominance_cmps) /
                          std::max<int64_t>(1, base.dominance_cmps),
                      2),
         FormatDouble(s.virtual_seconds, 3),
         FormatDouble(s.virtual_seconds /
                          std::max(1e-12, base.virtual_seconds),
                      2)});
  }
  if (args.GetInt("csv", 0) != 0) {
    std::printf("%s\n", table.RenderCsv().c_str());
  } else {
    std::printf("%s\n", table.Render().c_str());
  }
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  std::printf(
      "CAQE reproduction: Figure 10 — memory, CPU and time vs CAQE\n\n");
  const std::string dist = args.GetString("dist", "all");
  if (dist == "all") {
    for (Distribution d :
         {Distribution::kCorrelated, Distribution::kIndependent,
          Distribution::kAntiCorrelated}) {
      RunDistribution(d, args);
    }
  } else {
    RunDistribution(ParseDistribution(dist).value(), args);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
