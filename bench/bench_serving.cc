// Online serving benchmark: one CaqeServer per (arrival rate, scheduling
// policy) replaying the same synthetic trace, sweeping the arrival rate
// from relaxed to saturated.
//
// The trace is a pure function of the seed, so the contract-driven and
// count-driven policies see bit-identical arrivals; the sweep reports
// per-request pScores, the admission rate, and p50/p99 time-to-first-result
// at every rate. At saturation the contract-driven policy should win on
// cumulative pScore: it spends the backlog where the contracts still pay.
//
// Flags: --rows=N --sel=SIGMA --requests=K --seed=S --threads=T
//        --target-regions=R --calib-requests=K2 --out=PATH
//
// Writes a JSON summary (default BENCH_serving.json).
//
// A second sweep runs several long saturated trace replicas (distinct
// deterministic seeds) twice each through the contract-driven controller —
// static estimates vs --calibrate — and *gates* (non-zero exit) on the
// self-tuning loop paying for itself POOLED over the replicas: cumulative
// pScore and admission precision (completed/admitted) must not regress,
// and the observed-vs-estimated relative error must tighten once the
// correction factors have learned the workload. Pooling is essential: a
// single saturated trace is chaotic (one flipped admit cascades through
// the shared-region schedule), so per-replica deltas are noise and only
// the pooled comparison measures the controller.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"

namespace caqe {
namespace bench {
namespace {

struct RatePoint {
  double arrival_rate = 0.0;
  std::string policy;
  ServingReport report;
  double ttfr_p50 = -1.0;
  double ttfr_p99 = -1.0;
};

/// One leg of the calibrated-vs-static sweep.
struct CalibPoint {
  ServingReport report;
  /// completed / admitted (1.0 when nothing was admitted).
  double precision = 1.0;
  /// Mean absolute relative service-time error, whole trace and halves
  /// (calibrated leg only; -1 without samples).
  double raw_err = -1.0;
  double corr_err = -1.0;
  double raw_err_late = -1.0;
  double corr_err_late = -1.0;
  int64_t calib_completions = 0;
  int64_t calib_shifts = 0;
};

double MeanRange(const std::vector<Calibrator::ErrorSample>& series,
                 size_t begin, size_t end, bool corrected) {
  if (end <= begin) return -1.0;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += corrected ? series[i].corrected_abs_rel_error
                     : series[i].raw_abs_rel_error;
  }
  return sum / static_cast<double>(end - begin);
}

/// Nearest-rank percentile of the (sorted ascending) sample; -1 when empty.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  const int64_t rows = args.GetInt("rows", 2000);
  const double selectivity = args.GetDouble("sel", 0.01);
  const int requests = static_cast<int>(args.GetInt("requests", 24));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 2014));
  const int threads = ThreadsFromArgs(args);
  const int target_regions =
      static_cast<int>(args.GetInt("target-regions", 128));
  const std::string out_path = args.GetString("out", "BENCH_serving.json");

  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {selectivity, selectivity};
  cfg.seed = seed;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};

  const auto make_server = [&](SchedulePolicy policy) {
    ServeOptions options;
    options.num_threads = threads;
    options.target_regions = target_regions;
    options.policy = policy;
    return CaqeServer::Create(r, t, dims, keys, options).value();
  };

  // Calibrate the trace timescale: virtual completion time of one
  // full-coverage probe query on an idle server.
  double reference_seconds;
  {
    auto probe = make_server(SchedulePolicy::kContractDriven);
    probe->Submit(SjQuery{"probe", 0, {0, 1, 2}, 1.0, {}},
                  MakeTimeStepContract(1e9), 0.0);
    reference_seconds = probe->Run().value().finish_vtime;
  }
  CAQE_CHECK(reference_seconds > 0.0);

  std::printf(
      "CAQE serving sweep: N=%lld sigma=%.4f requests=%d seed=%llu "
      "ref=%.4fs\n\n",
      static_cast<long long>(rows), selectivity, requests,
      static_cast<unsigned long long>(seed), reference_seconds);

  // Mean arrivals per probe-service-time: 0.5 (relaxed), 2 (busy),
  // 8 (saturated).
  const std::vector<double> load_factors = {0.5, 2.0, 8.0};
  std::vector<RatePoint> points;
  for (double load : load_factors) {
    TraceConfig trace_config;
    trace_config.num_requests = requests;
    trace_config.arrival_rate = load / reference_seconds;
    trace_config.seed = seed;
    trace_config.reference_seconds = reference_seconds;
    trace_config.deadline_fraction = 0.25;
    trace_config.cancel_fraction = 0.1;
    const std::vector<TraceRequest> trace =
        MakeSyntheticTrace(trace_config, keys, 3);
    for (SchedulePolicy policy :
         {SchedulePolicy::kContractDriven, SchedulePolicy::kCountDriven}) {
      auto server = make_server(policy);
      SubmitTrace(*server, trace);
      RatePoint point;
      point.arrival_rate = trace_config.arrival_rate;
      point.policy = policy == SchedulePolicy::kContractDriven
                         ? "contract-driven"
                         : "count-driven";
      point.report = server->Run().value();
      std::vector<double> ttfr;
      for (const RequestReport& request : point.report.requests) {
        if (request.time_to_first_result >= 0.0) {
          ttfr.push_back(request.time_to_first_result);
        }
      }
      point.ttfr_p50 = Percentile(ttfr, 0.50);
      point.ttfr_p99 = Percentile(ttfr, 0.99);
      points.push_back(std::move(point));
    }
  }

  TablePrinter table({"rate_qps", "policy", "admit_rate", "completed",
                      "cum_pscore", "ttfr_p50_s", "ttfr_p99_s"});
  for (const RatePoint& p : points) {
    table.AddRow({FormatDouble(p.arrival_rate, 2), p.policy,
                  FormatDouble(p.report.admission_rate, 3),
                  std::to_string(p.report.completed),
                  FormatDouble(p.report.cumulative_pscore, 4),
                  FormatDouble(p.ttfr_p50, 5), FormatDouble(p.ttfr_p99, 5)});
  }
  std::printf("%s\n", table.Render().c_str());

  // At the saturated rate the contract-driven policy must not lose to the
  // count-driven ablation on the workload objective.
  const RatePoint& contract_sat = points[points.size() - 2];
  const RatePoint& count_sat = points[points.size() - 1];
  const bool contract_wins = contract_sat.report.cumulative_pscore >=
                             count_sat.report.cumulative_pscore;
  std::printf("saturated rate %.2f qps: contract %.4f vs count %.4f (%s)\n",
              contract_sat.arrival_rate,
              contract_sat.report.cumulative_pscore,
              count_sat.report.cumulative_pscore,
              contract_wins ? "contract wins" : "count wins");

  // ---- Self-tuning sweep: calibrated vs static admission -----------------
  // Long traces at the saturated rate, long enough for the calibrator's
  // per-bucket EWMA factors to converge and for the deferred-queue
  // repreviews to matter. One (static, calibrated) leg pair runs per
  // replica trace seed and the three gates compare POOLED outcomes: a
  // single saturated trace is chaotic (a one-request admit change cascades
  // through the shared-region schedule), so per-seed deltas are noise and
  // only the pooled comparison measures the controller.
  const int calib_requests =
      static_cast<int>(args.GetInt("calib-requests", 10 * requests));
  const int calib_replicas =
      static_cast<int>(args.GetInt("calib-replicas", 4));

  struct CalibAggregate {
    double static_pscore = 0.0;
    double calib_pscore = 0.0;
    int64_t static_completed = 0;
    int64_t static_admitted = 0;
    int64_t calib_completed = 0;
    int64_t calib_admitted = 0;
    double raw_sum = 0.0;
    double corr_sum = 0.0;
    int64_t samples = 0;
    double raw_late_sum = 0.0;
    double corr_late_sum = 0.0;
    int64_t late_samples = 0;
    int64_t observations = 0;
    int64_t shifts = 0;
  };
  CalibAggregate agg;

  TablePrinter calib_table({"replica", "controller", "admit_rate",
                            "completed", "precision", "cum_pscore",
                            "err_raw", "err_corrected"});
  TraceConfig calib_config;
  for (int replica = 0; replica < calib_replicas; ++replica) {
    calib_config = TraceConfig{};
    calib_config.num_requests = calib_requests;
    calib_config.arrival_rate = 8.0 / reference_seconds;
    // Distinct deterministic trace per replica.
    calib_config.seed = seed + static_cast<uint64_t>(replica) * 7919;
    calib_config.reference_seconds = reference_seconds;
    calib_config.deadline_fraction = 0.25;
    calib_config.cancel_fraction = 0.0;
    const std::vector<TraceRequest> calib_trace =
        MakeSyntheticTrace(calib_config, keys, 3);

    const auto run_calib_leg = [&](bool calibrate) {
      ServeOptions options;
      options.num_threads = threads;
      options.target_regions = target_regions;
      options.policy = SchedulePolicy::kContractDriven;
      options.calibrate = calibrate;
      auto server = CaqeServer::Create(r, t, dims, keys, options).value();
      SubmitTrace(*server, calib_trace);
      CalibPoint point;
      point.report = server->Run().value();
      if (point.report.admitted > 0) {
        point.precision = static_cast<double>(point.report.completed) /
                          static_cast<double>(point.report.admitted);
      }
      const Calibrator* calibrator = server->calibrator();
      if (calibrator != nullptr) {
        const std::vector<Calibrator::ErrorSample>& series =
            calibrator->error_series();
        const size_t half = series.size() / 2;
        point.raw_err = MeanRange(series, 0, series.size(), false);
        point.corr_err = MeanRange(series, 0, series.size(), true);
        point.raw_err_late = MeanRange(series, half, series.size(), false);
        point.corr_err_late = MeanRange(series, half, series.size(), true);
        point.calib_completions = calibrator->completions();
        point.calib_shifts = calibrator->shifts();
        for (size_t i = 0; i < series.size(); ++i) {
          agg.raw_sum += series[i].raw_abs_rel_error;
          agg.corr_sum += series[i].corrected_abs_rel_error;
          ++agg.samples;
          if (i >= half) {
            agg.raw_late_sum += series[i].raw_abs_rel_error;
            agg.corr_late_sum += series[i].corrected_abs_rel_error;
            ++agg.late_samples;
          }
        }
        agg.observations += calibrator->completions();
        agg.shifts += calibrator->shifts();
      }
      return point;
    };
    const CalibPoint static_leg = run_calib_leg(false);
    const CalibPoint calib_leg = run_calib_leg(true);
    agg.static_pscore += static_leg.report.cumulative_pscore;
    agg.calib_pscore += calib_leg.report.cumulative_pscore;
    agg.static_completed += static_leg.report.completed;
    agg.static_admitted += static_leg.report.admitted;
    agg.calib_completed += calib_leg.report.completed;
    agg.calib_admitted += calib_leg.report.admitted;

    calib_table.AddRow({std::to_string(replica), "static",
                        FormatDouble(static_leg.report.admission_rate, 3),
                        std::to_string(static_leg.report.completed),
                        FormatDouble(static_leg.precision, 3),
                        FormatDouble(static_leg.report.cumulative_pscore, 4),
                        "-", "-"});
    calib_table.AddRow({std::to_string(replica), "calibrated",
                        FormatDouble(calib_leg.report.admission_rate, 3),
                        std::to_string(calib_leg.report.completed),
                        FormatDouble(calib_leg.precision, 3),
                        FormatDouble(calib_leg.report.cumulative_pscore, 4),
                        FormatDouble(calib_leg.raw_err, 4),
                        FormatDouble(calib_leg.corr_err, 4)});
  }

  const double static_precision =
      agg.static_admitted > 0 ? static_cast<double>(agg.static_completed) /
                                    static_cast<double>(agg.static_admitted)
                              : 1.0;
  const double calib_precision =
      agg.calib_admitted > 0 ? static_cast<double>(agg.calib_completed) /
                                   static_cast<double>(agg.calib_admitted)
                             : 1.0;
  const double pooled_raw_err =
      agg.samples > 0 ? agg.raw_sum / static_cast<double>(agg.samples) : -1.0;
  const double pooled_corr_err =
      agg.samples > 0 ? agg.corr_sum / static_cast<double>(agg.samples)
                      : -1.0;
  const double pooled_raw_late =
      agg.late_samples > 0
          ? agg.raw_late_sum / static_cast<double>(agg.late_samples)
          : -1.0;
  const double pooled_corr_late =
      agg.late_samples > 0
          ? agg.corr_late_sum / static_cast<double>(agg.late_samples)
          : -1.0;

  std::printf("\nself-tuning sweep (%d replicas x %d requests at %.2f qps, "
              "%lld completions observed, %lld shifts):\n%s\n",
              calib_replicas, calib_requests, calib_config.arrival_rate,
              static_cast<long long>(agg.observations),
              static_cast<long long>(agg.shifts),
              calib_table.Render().c_str());

  // The three self-tuning gates over pooled replicas (non-zero exit on
  // regression).
  const bool calib_pscore_wins = agg.calib_pscore >= agg.static_pscore;
  const bool calib_precision_wins = calib_precision >= static_precision;
  const bool calib_error_tightens = pooled_corr_err >= 0.0 &&
                                    pooled_corr_err < pooled_raw_err &&
                                    pooled_corr_late < pooled_raw_late;
  std::printf("calibration gates (pooled): pscore %.4f vs %.4f (%s), "
              "precision %.3f vs %.3f (%s), error %.4f vs raw %.4f late "
              "%.4f vs %.4f (%s)\n",
              agg.calib_pscore, agg.static_pscore,
              calib_pscore_wins ? "ok" : "FAIL", calib_precision,
              static_precision, calib_precision_wins ? "ok" : "FAIL",
              pooled_corr_err, pooled_raw_err, pooled_corr_late,
              pooled_raw_late, calib_error_tightens ? "ok" : "FAIL");

  std::string json = "{\n";
  json += "  \"benchmark\": \"serving\",\n";
  json += "  \"rows\": " + std::to_string(rows) + ",\n";
  json += "  \"requests\": " + std::to_string(requests) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  " + JsonField("reference_seconds", reference_seconds) + ",\n";
  json += std::string("  \"contract_beats_count_at_saturation\": ") +
          (contract_wins ? "true" : "false") + ",\n";
  json += "  \"calibration\": {\n";
  json += "    \"replicas\": " + std::to_string(calib_replicas) + ",\n";
  json += "    \"requests_per_replica\": " + std::to_string(calib_requests) +
          ",\n";
  json += "    " + JsonField("arrival_rate", calib_config.arrival_rate) +
          ",\n";
  json += "    \"observations\": " + std::to_string(agg.observations) +
          ",\n";
  json += "    \"shifts\": " + std::to_string(agg.shifts) + ",\n";
  json += "    " +
          JsonField("static_cumulative_pscore", agg.static_pscore) + ",\n";
  json += "    " +
          JsonField("calibrated_cumulative_pscore", agg.calib_pscore) +
          ",\n";
  json += "    " + JsonField("static_precision", static_precision) + ",\n";
  json += "    " + JsonField("calibrated_precision", calib_precision) +
          ",\n";
  json += "    \"static_completed\": " +
          std::to_string(agg.static_completed) + ",\n";
  json += "    \"calibrated_completed\": " +
          std::to_string(agg.calib_completed) + ",\n";
  json += "    " + JsonField("raw_abs_rel_error", pooled_raw_err) + ",\n";
  json += "    " + JsonField("corrected_abs_rel_error", pooled_corr_err) +
          ",\n";
  json += "    " + JsonField("raw_abs_rel_error_late", pooled_raw_late) +
          ",\n";
  json += "    " +
          JsonField("corrected_abs_rel_error_late", pooled_corr_late) +
          ",\n";
  json += std::string("    \"calibrated_beats_static_pscore\": ") +
          (calib_pscore_wins ? "true" : "false") + ",\n";
  json += std::string("    \"calibrated_beats_static_precision\": ") +
          (calib_precision_wins ? "true" : "false") + ",\n";
  json += std::string("    \"error_histogram_tightens\": ") +
          (calib_error_tightens ? "true" : "false") + "\n";
  json += "  },\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const RatePoint& p = points[i];
    json += "    {" + JsonField("arrival_rate", p.arrival_rate) +
            ", \"policy\": \"" + p.policy + "\", " +
            JsonField("admission_rate", p.report.admission_rate) + ", " +
            "\"admitted\": " + std::to_string(p.report.admitted) + ", " +
            "\"completed\": " + std::to_string(p.report.completed) + ", " +
            "\"expired\": " + std::to_string(p.report.expired) + ", " +
            "\"rejected\": " + std::to_string(p.report.rejected) + ", " +
            JsonField("cumulative_pscore", p.report.cumulative_pscore) +
            ", " + JsonField("ttfr_p50_seconds", p.ttfr_p50) + ", " +
            JsonField("ttfr_p99_seconds", p.ttfr_p99) + ",\n";
    json += "     \"per_query\": [";
    for (size_t q = 0; q < p.report.requests.size(); ++q) {
      const RequestReport& request = p.report.requests[q];
      json += std::string(q == 0 ? "" : ", ") + "{\"id\": " +
              std::to_string(request.request_id) + ", \"name\": \"" +
              request.name + "\", \"status\": \"" +
              RequestStatusName(request.status) + "\", " +
              JsonField("pscore", request.pscore) + "}";
    }
    json += "]}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!calib_pscore_wins || !calib_precision_wins || !calib_error_tightens) {
    std::fprintf(stderr,
                 "FAIL: self-tuning admission regressed a calibration "
                 "gate\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
