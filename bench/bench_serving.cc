// Online serving benchmark: one CaqeServer per (arrival rate, scheduling
// policy) replaying the same synthetic trace, sweeping the arrival rate
// from relaxed to saturated.
//
// The trace is a pure function of the seed, so the contract-driven and
// count-driven policies see bit-identical arrivals; the sweep reports
// per-request pScores, the admission rate, and p50/p99 time-to-first-result
// at every rate. At saturation the contract-driven policy should win on
// cumulative pScore: it spends the backlog where the contracts still pay.
//
// Flags: --rows=N --sel=SIGMA --requests=K --seed=S --threads=T
//        --target-regions=R --out=PATH
//
// Writes a JSON summary (default BENCH_serving.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "metrics/export.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"

namespace caqe {
namespace bench {
namespace {

struct RatePoint {
  double arrival_rate = 0.0;
  std::string policy;
  ServingReport report;
  double ttfr_p50 = -1.0;
  double ttfr_p99 = -1.0;
};

/// Nearest-rank percentile of the (sorted ascending) sample; -1 when empty.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

std::string JsonField(const std::string& key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
  return buf;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  const int64_t rows = args.GetInt("rows", 2000);
  const double selectivity = args.GetDouble("sel", 0.01);
  const int requests = static_cast<int>(args.GetInt("requests", 24));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 2014));
  const int threads = ThreadsFromArgs(args);
  const int target_regions =
      static_cast<int>(args.GetInt("target-regions", 128));
  const std::string out_path = args.GetString("out", "BENCH_serving.json");

  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {selectivity, selectivity};
  cfg.seed = seed;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};

  const auto make_server = [&](SchedulePolicy policy) {
    ServeOptions options;
    options.num_threads = threads;
    options.target_regions = target_regions;
    options.policy = policy;
    return CaqeServer::Create(r, t, dims, keys, options).value();
  };

  // Calibrate the trace timescale: virtual completion time of one
  // full-coverage probe query on an idle server.
  double reference_seconds;
  {
    auto probe = make_server(SchedulePolicy::kContractDriven);
    probe->Submit(SjQuery{"probe", 0, {0, 1, 2}, 1.0, {}},
                  MakeTimeStepContract(1e9), 0.0);
    reference_seconds = probe->Run().value().finish_vtime;
  }
  CAQE_CHECK(reference_seconds > 0.0);

  std::printf(
      "CAQE serving sweep: N=%lld sigma=%.4f requests=%d seed=%llu "
      "ref=%.4fs\n\n",
      static_cast<long long>(rows), selectivity, requests,
      static_cast<unsigned long long>(seed), reference_seconds);

  // Mean arrivals per probe-service-time: 0.5 (relaxed), 2 (busy),
  // 8 (saturated).
  const std::vector<double> load_factors = {0.5, 2.0, 8.0};
  std::vector<RatePoint> points;
  for (double load : load_factors) {
    TraceConfig trace_config;
    trace_config.num_requests = requests;
    trace_config.arrival_rate = load / reference_seconds;
    trace_config.seed = seed;
    trace_config.reference_seconds = reference_seconds;
    trace_config.deadline_fraction = 0.25;
    trace_config.cancel_fraction = 0.1;
    const std::vector<TraceRequest> trace =
        MakeSyntheticTrace(trace_config, keys, 3);
    for (SchedulePolicy policy :
         {SchedulePolicy::kContractDriven, SchedulePolicy::kCountDriven}) {
      auto server = make_server(policy);
      SubmitTrace(*server, trace);
      RatePoint point;
      point.arrival_rate = trace_config.arrival_rate;
      point.policy = policy == SchedulePolicy::kContractDriven
                         ? "contract-driven"
                         : "count-driven";
      point.report = server->Run().value();
      std::vector<double> ttfr;
      for (const RequestReport& request : point.report.requests) {
        if (request.time_to_first_result >= 0.0) {
          ttfr.push_back(request.time_to_first_result);
        }
      }
      point.ttfr_p50 = Percentile(ttfr, 0.50);
      point.ttfr_p99 = Percentile(ttfr, 0.99);
      points.push_back(std::move(point));
    }
  }

  TablePrinter table({"rate_qps", "policy", "admit_rate", "completed",
                      "cum_pscore", "ttfr_p50_s", "ttfr_p99_s"});
  for (const RatePoint& p : points) {
    table.AddRow({FormatDouble(p.arrival_rate, 2), p.policy,
                  FormatDouble(p.report.admission_rate, 3),
                  std::to_string(p.report.completed),
                  FormatDouble(p.report.cumulative_pscore, 4),
                  FormatDouble(p.ttfr_p50, 5), FormatDouble(p.ttfr_p99, 5)});
  }
  std::printf("%s\n", table.Render().c_str());

  // At the saturated rate the contract-driven policy must not lose to the
  // count-driven ablation on the workload objective.
  const RatePoint& contract_sat = points[points.size() - 2];
  const RatePoint& count_sat = points[points.size() - 1];
  const bool contract_wins = contract_sat.report.cumulative_pscore >=
                             count_sat.report.cumulative_pscore;
  std::printf("saturated rate %.2f qps: contract %.4f vs count %.4f (%s)\n",
              contract_sat.arrival_rate,
              contract_sat.report.cumulative_pscore,
              count_sat.report.cumulative_pscore,
              contract_wins ? "contract wins" : "count wins");

  std::string json = "{\n";
  json += "  \"benchmark\": \"serving\",\n";
  json += "  \"rows\": " + std::to_string(rows) + ",\n";
  json += "  \"requests\": " + std::to_string(requests) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  " + JsonField("reference_seconds", reference_seconds) + ",\n";
  json += std::string("  \"contract_beats_count_at_saturation\": ") +
          (contract_wins ? "true" : "false") + ",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const RatePoint& p = points[i];
    json += "    {" + JsonField("arrival_rate", p.arrival_rate) +
            ", \"policy\": \"" + p.policy + "\", " +
            JsonField("admission_rate", p.report.admission_rate) + ", " +
            "\"admitted\": " + std::to_string(p.report.admitted) + ", " +
            "\"completed\": " + std::to_string(p.report.completed) + ", " +
            "\"expired\": " + std::to_string(p.report.expired) + ", " +
            "\"rejected\": " + std::to_string(p.report.rejected) + ", " +
            JsonField("cumulative_pscore", p.report.cumulative_pscore) +
            ", " + JsonField("ttfr_p50_seconds", p.ttfr_p50) + ", " +
            JsonField("ttfr_p99_seconds", p.ttfr_p99) + ",\n";
    json += "     \"per_query\": [";
    for (size_t q = 0; q < p.report.requests.size(); ++q) {
      const RequestReport& request = p.report.requests[q];
      json += std::string(q == 0 ? "" : ", ") + "{\"id\": " +
              std::to_string(request.request_id) + ", \"name\": \"" +
              request.name + "\", \"status\": \"" +
              RequestStatusName(request.status) + "\", " +
              JsonField("pscore", request.pscore) + "}";
    }
    json += "]}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  const Status written = WriteTextFile(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace caqe

int main(int argc, char** argv) { return caqe::bench::Main(argc, argv); }
