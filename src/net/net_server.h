// Wall-clock TCP front-end for CaqeServer (the ISSUE 8 tentpole).
//
// NetServer owns a listening socket and a poll(2) event loop on the caller's
// thread (the engine's parallelism lives inside CaqeServer's thread pool, so
// one driver thread suffices). Protocol clients speak the line protocol of
// net/protocol.h; HTTP clients (detected from the first bytes) get the
// GET-only scrape endpoints `/metrics` (Prometheus text) and `/healthz`.
//
// ## Determinism
//
// Wall time never reaches the engine. Each SUBMIT/CANCEL is stamped with a
// quantized virtual timestamp by ArrivalQuantizer, handed to
// SubmitLive/CancelLive, and appended to the session recorder as an integer
// quantum index. The engine is driven by StepLive between socket events, so
// the engine-visible input is exactly the recorded (tq, command) sequence —
// replaying the trace through Submit()+Run() yields a byte-identical
// ServingReportText, which scripts/run_net_matrix.sh byte-diffs.
//
// ## Lifecycle
//
//   serving --(DRAIN cmd / RequestDrain)--> draining
//   draining: SUBMITs get `ERR draining`; the engine steps until idle, then
//             FinishLive produces the report (forced retry of deferred
//             requests, final emission flush) and recording stops.
//   drained:  with linger_after_drain, STATUS and HTTP stay served until
//             STOP / RequestStop; otherwise every connection gets `BYE` and
//             Serve() returns.
//
// RequestDrain/RequestStop are async-signal-safe (they write one byte to a
// self-pipe), so SIGINT/SIGTERM handlers may call them directly; a second
// signal hard-stops the loop without waiting for the drain.
//
// ## Hostile clients
//
// Connections are capped (`max_connections`), lines are capped (LineBuffer
// overflow -> one `ERR line-too-long`, resync at the next newline), idle
// protocol connections are closed after `idle_timeout_ms` (slow-loris), and
// a connection whose unread output exceeds `max_output_bytes` is dropped
// (slow consumer). Parse errors produce stable `ERR <code>` replies and
// count in caqe_net_parse_errors_total; nothing a client sends can abort
// the server.
#ifndef CAQE_NET_NET_SERVER_H_
#define CAQE_NET_NET_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "net/recorder.h"
#include "obs/observability.h"
#include "serve/server.h"

namespace caqe {
namespace net {

struct NetServerOptions {
  /// IPv4 address to bind (tests and the bench matrix use loopback).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Virtual-time quantum for arrival stamping (see ArrivalQuantizer).
  double quantum = ArrivalQuantizer::kDefaultQuantum;
  /// Close a protocol connection idle this long (<= 0 disables).
  int idle_timeout_ms = 30000;
  /// Drop a connection whose unread output exceeds this.
  size_t max_output_bytes = 4u << 20;
  /// Refuse connections beyond this many concurrent ones.
  int max_connections = 64;
  /// Parser caps (line length, name length, dims, selections).
  ProtocolLimits limits;
  /// Session trace path; empty disables recording.
  std::string record_path;
  /// Extra header attrs for the recorded trace (e.g. the data-generation
  /// flags a replay needs to rebuild the server).
  std::vector<std::pair<std::string, std::string>> record_attrs;
  /// Metrics/health bundle; the caqe_net_* metrics register here. May be
  /// null (endpoints then serve 404).
  Observability* obs = nullptr;
  /// Where flight-recorder dumps land (SIGQUIT / drain failure); empty
  /// writes the dump to stderr instead.
  std::string flight_dump_path;
  /// After a drain, keep serving STATUS and HTTP until STOP/RequestStop
  /// instead of returning immediately.
  bool linger_after_drain = false;
  /// Invoked once per event-loop round on the driver thread — the hook the
  /// incremental trace flusher hangs off (never engine-visible).
  std::function<void()> on_tick;
};

class NetServer {
 public:
  /// Switches `server` (not yet run; borrowed, must outlive the NetServer)
  /// into live mode, installs the streaming observers, opens the recorder,
  /// and binds + listens. The event loop starts with Serve().
  static Result<std::unique_ptr<NetServer>> Create(CaqeServer* server,
                                                   NetServerOptions options);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// Runs the event loop until the session ends (see file comment for the
  /// lifecycle). Returns OK iff the drain completed and produced a report;
  /// a hard stop before the drain finishes is an error.
  Status Serve();

  /// Async-signal-safe: request a graceful drain.
  void RequestDrain();
  /// Async-signal-safe: request an immediate hard stop.
  void RequestStop();
  /// Async-signal-safe: request a flight-recorder dump (SIGQUIT handler).
  /// The dump happens on the driver thread at the next loop round.
  void RequestFlightDump();

  /// True once FinishLive produced the serving report.
  bool drained() const { return drained_; }
  /// Valid once drained().
  const ServingReport& report() const { return report_; }

 private:
  enum class ConnKind { kUndecided, kProtocol, kHttp };
  enum class State { kServing, kDraining, kDrained };

  struct Connection {
    int fd = -1;
    ConnKind kind = ConnKind::kUndecided;
    LineBuffer in;
    std::string out;
    /// Close once `out` drains.
    bool closing = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Wants a DRAINED notification.
    bool awaiting_drained = false;
    /// First line of an HTTP request once received (kHttp only).
    std::string http_request_line;

    Connection(int fd_in, size_t max_line,
               std::chrono::steady_clock::time_point now)
        : fd(fd_in), in(max_line), last_activity(now) {}
  };

  NetServer(CaqeServer* server, NetServerOptions options);

  Status Listen();
  void InstallObservers();

  /// One poll round: accept, read, dispatch, write, reap. Returns false
  /// when the loop should exit.
  bool LoopOnce();
  void AcceptPending();
  void ReadFrom(Connection& conn);
  /// Dispatches buffered input: protocol lines or the HTTP request.
  void ProcessInput(Connection& conn);
  void FlushTo(Connection& conn);
  void CloseConn(Connection& conn);
  void CloseIdle();
  void DrainWakePipe();
  /// Steps the engine; remembers whether it had work (drives poll timeout).
  void StepEngine();
  /// Runs FinishLive once the drain request meets an idle engine.
  void FinishDrain();

  void HandleLine(Connection& conn, const std::string& line);
  void HandleSubmit(Connection& conn, SubmitCommand submit);
  void HandleCancel(Connection& conn, int request_id);
  /// TRACE <name>: replies the named request's audit-ledger tail as JSONL
  /// between "TRACE <id> records=<n>" and "TRACE-END".
  void HandleTrace(Connection& conn, const std::string& name);
  void HandleHttp(Connection& conn);
  void Reply(Connection& conn, const std::string& line);
  void ReplyErr(Connection& conn, const std::string& code);
  std::string StatusLine() const;
  const char* StateName() const;
  /// /statusz: build info, flags, uptime, state, live-request table.
  std::string StatuszBody() const;
  /// /tracez/<request-id>: the request's causal tree (ledger records plus
  /// surviving spans) as JSON. Hostile ids produce stable kebab-case error
  /// bodies with 400/404 codes.
  std::string TracezResponse(std::string_view id_text) const;
  /// Writes the flight-recorder ring to flight_dump_path (or stderr).
  void DumpFlight(const char* why);

  CaqeServer* server_;
  NetServerOptions options_;
  ArrivalQuantizer quantizer_;
  std::unique_ptr<SessionRecorder> recorder_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  /// fd -> connection (poll set is rebuilt from this each round).
  std::map<int, std::unique_ptr<Connection>> conns_;
  /// request id -> owning connection fd (erased when the request finishes
  /// or the connection dies; results for unmapped requests are dropped).
  std::map<int, int> request_conn_;
  /// request id -> wall submit instant, for the TTFB histogram.
  std::map<int, std::chrono::steady_clock::time_point> request_start_;

  State state_ = State::kServing;
  /// Set by DrainWakePipe on a 'q' wake byte; serviced in LoopOnce.
  bool flight_dump_requested_ = false;
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  bool engine_busy_ = false;
  bool stop_after_drain_ = false;
  bool hard_stop_ = false;
  bool drained_ = false;
  Status drain_status_;
  ServingReport report_;

  // caqe_net_* metrics (null when options_.obs is null).
  Counter* connections_total_ = nullptr;
  Counter* bytes_in_total_ = nullptr;
  Counter* bytes_out_total_ = nullptr;
  Counter* parse_errors_total_ = nullptr;
  Gauge* active_connections_ = nullptr;
  Histogram* ttfb_hist_ = nullptr;
};

}  // namespace net
}  // namespace caqe

#endif  // CAQE_NET_NET_SERVER_H_
