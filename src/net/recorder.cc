#include "net/recorder.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/macros.h"

namespace caqe {
namespace net {

namespace {

constexpr char kHeaderMagic[] = "CAQE-SESSION v1";

bool TokenOk(const std::string& s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= 0x20 || c > 0x7e || c == '=') return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<SessionRecorder>> SessionRecorder::Open(
    const std::string& path, double quantum,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  if (!(quantum > 0.0)) {
    return Status::InvalidArgument("session recorder: quantum must be > 0");
  }
  for (const auto& [key, value] : attrs) {
    if (key == "quantum" || !TokenOk(key) || !TokenOk(value)) {
      return Status::InvalidArgument("session recorder: bad attr '" + key +
                                     "'");
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("session recorder: cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  auto recorder = std::unique_ptr<SessionRecorder>(new SessionRecorder(file));
  std::string header = kHeaderMagic;
  header += " quantum=" + FormatExactDouble(quantum);
  for (const auto& [key, value] : attrs) {
    header += " " + key + "=" + value;
  }
  recorder->WriteLine(header);
  return recorder;
}

SessionRecorder::~SessionRecorder() { Close(); }

void SessionRecorder::WriteLine(const std::string& line) {
  CAQE_DCHECK(file_ != nullptr);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Eager flush: a killed server must leave a replayable prefix.
  std::fflush(file_);
}

void SessionRecorder::RecordSubmit(int64_t tq, int id, const SjQuery& query,
                                   const std::string& contract_canonical,
                                   double deadline_seconds) {
  WriteLine("AT " + std::to_string(tq) + " " +
            FormatSubmitCommand(query, contract_canonical, deadline_seconds,
                                id));
}

void SessionRecorder::RecordCancel(int64_t tq, int id) {
  WriteLine("AT " + std::to_string(tq) + " CANCEL " + std::to_string(id));
}

void SessionRecorder::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string SessionTrace::Attr(const std::string& key,
                               const std::string& fallback) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

Result<SessionTrace> LoadSessionTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("session trace: cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string content;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    content.append(chunk, n);
    if (content.size() > (64u << 20)) {
      std::fclose(file);
      return Status::InvalidArgument("session trace: file too large");
    }
  }
  std::fclose(file);

  SessionTrace trace;
  ProtocolLimits limits;
  LineBuffer lines(limits.max_line_bytes);
  lines.Append(content.data(), content.size());

  bool saw_header = false;
  bool saw_quantum = false;
  int next_submit_id = 0;
  int64_t last_tq = -1;
  std::string line;
  while (true) {
    const LineBuffer::Pop pop = lines.Next(line);
    if (pop == LineBuffer::Pop::kNeedMore) break;
    if (pop == LineBuffer::Pop::kOverflow) {
      return Status::InvalidArgument("line-too-long");
    }
    if (!saw_header) {
      if (line.rfind(kHeaderMagic, 0) != 0) {
        return Status::InvalidArgument("bad-header");
      }
      // Header attrs: space-separated key=value tokens after the magic.
      size_t i = std::strlen(kHeaderMagic);
      while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        const size_t start = i;
        while (i < line.size() && line[i] != ' ') ++i;
        if (i == start) continue;
        const std::string token = line.substr(start, i - start);
        const size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::InvalidArgument("bad-header");
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "quantum") {
          errno = 0;
          char* end = nullptr;
          trace.quantum = std::strtod(value.c_str(), &end);
          if (end != value.c_str() + value.size() || errno == ERANGE ||
              !(trace.quantum > 0.0)) {
            return Status::InvalidArgument("bad-header");
          }
          saw_quantum = true;
        } else {
          trace.attrs.emplace_back(key, value);
        }
      }
      if (!saw_quantum) return Status::InvalidArgument("bad-header");
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    if (line.rfind("AT ", 0) != 0) {
      return Status::InvalidArgument("bad-at-line");
    }
    const size_t tq_start = 3;
    const size_t tq_end = line.find(' ', tq_start);
    if (tq_end == std::string::npos) {
      return Status::InvalidArgument("bad-at-line");
    }
    errno = 0;
    char* end = nullptr;
    const long long tq = std::strtoll(line.c_str() + tq_start, &end, 10);
    if (end != line.c_str() + tq_end || errno == ERANGE || tq < 0 ||
        tq <= last_tq) {
      return Status::InvalidArgument("bad-at-line");
    }
    Result<Command> command =
        ParseCommand(std::string_view(line).substr(tq_end + 1), limits);
    CAQE_RETURN_NOT_OK(command.status());
    Command& cmd = command.value();
    switch (cmd.kind) {
      case CommandKind::kSubmit:
        // Replay reassigns ids sequentially; the trace must agree so
        // CANCEL lines and report request ids line up.
        if (cmd.submit.trace_id != next_submit_id) {
          return Status::InvalidArgument("bad-at-line");
        }
        ++next_submit_id;
        break;
      case CommandKind::kCancel:
        if (cmd.cancel_id >= next_submit_id) {
          return Status::InvalidArgument("bad-at-line");
        }
        break;
      default:
        return Status::InvalidArgument("bad-at-line");
    }
    last_tq = tq;
    trace.events.push_back(SessionEvent{tq, std::move(cmd)});
  }
  if (!saw_header) return Status::InvalidArgument("bad-header");
  return trace;
}

}  // namespace net
}  // namespace caqe
