// Wire protocol of the wall-clock serving front-end (`src/net`).
//
// The protocol is line-oriented plain text so any client — `nc`, a shell
// script, a test harness — can speak it. One command per line:
//
//   SUBMIT name=<n> key=<k> pref=<d0,d1,...> [priority=<p>]
//          [deadline=<seconds>] [sel=<r|t>:<attr>:<lo>:<hi>]...
//          CONTRACT <contract-spec>
//   STATUS
//   CANCEL <request-id>
//   TRACE <name>
//   DRAIN
//   STOP
//
// Contract specs name the Table 2 classes:
//   step:<t_hard>  log:<unit>  hyper:<t_soft>,<unit>
//   card:<fraction>,<interval>  rate:<max>,<interval>
//   hybrid:<fraction>,<interval>,<unit>
//
// Every parse function here is hostile-input hardened: inputs come off a
// TCP socket, so malformed bytes must produce a stable error Status — never
// a crash, unbounded allocation, or undefined behavior. Error messages
// start with a stable kebab-case code (`bad-command`, `bad-field`,
// `line-too-long`, ...) that the server surfaces verbatim in `ERR` replies
// and tests assert on.
//
// Canonical form: FormatSubmitCommand re-serializes a parsed SUBMIT so that
// parse(format(x)) == x exactly, doubles included (%.17g round-trips). The
// session recorder persists canonical lines, which is what makes a recorded
// wall-clock session replayable bit-identically on the virtual clock.
#ifndef CAQE_NET_PROTOCOL_H_
#define CAQE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "contracts/utility.h"
#include "query/query.h"

namespace caqe {
namespace net {

/// Hard caps applied while parsing untrusted input. Exceeding any cap is a
/// stable error, not a crash.
struct ProtocolLimits {
  /// Longest accepted command line, terminator excluded (also enforced
  /// incrementally by LineBuffer so a slow-loris cannot buffer unboundedly).
  size_t max_line_bytes = 64 * 1024;
  /// Longest accepted query name.
  size_t max_name_bytes = 128;
  /// Most preference dimensions per query.
  int max_preference_dims = 64;
  /// Most selection ranges per query.
  int max_selections = 16;
};

/// Assembles complete lines from a TCP byte stream. Reads may split a line
/// at any byte (including mid-CRLF), so the buffer accumulates until a
/// terminator arrives. A partial line growing past `max_line_bytes` flips
/// the buffer into discard mode: Next reports kOverflow exactly once, the
/// oversized line's remaining bytes are dropped through the next
/// terminator, and parsing resumes cleanly on the following line.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes) : max_(max_line_bytes) {}

  /// Appends raw socket bytes.
  void Append(const char* data, size_t n);

  enum class Pop {
    /// `out` holds the next complete line (terminator stripped; a trailing
    /// '\r' before the '\n' is stripped too).
    kLine,
    /// No complete line buffered yet.
    kNeedMore,
    /// The current line exceeded the cap; it is being discarded. Reported
    /// once per oversized line.
    kOverflow,
  };
  Pop Next(std::string& out);

  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t max_;
  bool discarding_ = false;
  bool overflow_reported_ = false;
};

/// Parses a contract spec (see file comment for the grammar). On success,
/// `canonical` (when non-null) receives the canonical re-serialization
/// whose doubles round-trip exactly.
Result<Contract> ParseContractSpec(std::string_view spec,
                                   std::string* canonical = nullptr);

enum class CommandKind { kSubmit, kStatus, kCancel, kTrace, kDrain, kStop };

/// A parsed SUBMIT: the query, its contract (plus the canonical spec
/// text), and the optional deadline.
struct SubmitCommand {
  SjQuery query;
  Contract contract;
  std::string contract_canonical;
  double deadline_seconds = 0.0;
  /// `id=` field value; only recorded session traces carry it (live
  /// clients must let the server assign ids). -1 when absent.
  int trace_id = -1;
};

struct Command {
  CommandKind kind = CommandKind::kStatus;
  SubmitCommand submit;    // kSubmit only.
  int cancel_id = -1;      // kCancel only.
  std::string trace_name;  // kTrace only: query name to look up.
};

/// Parses one command line (no terminator). Stable error codes:
/// `bad-command`, `bad-field <field>`, `missing-field <field>`,
/// `duplicate-field <field>`, `bad-byte`, `line-too-long`, `bad-contract`.
Result<Command> ParseCommand(std::string_view line,
                             const ProtocolLimits& limits);

/// Canonical SUBMIT serialization (see file comment). `id` < 0 omits the
/// id= field. The result always re-parses to an identical command.
std::string FormatSubmitCommand(const SjQuery& query,
                                const std::string& contract_canonical,
                                double deadline_seconds, int id = -1);

/// Shortest decimal form of `v` that strtod parses back to the identical
/// double (%.17g). Used everywhere a recorded double must survive a
/// text round trip.
std::string FormatExactDouble(double v);

// ---- Minimal HTTP (GET-only scrape endpoints) ----

/// True when the first buffered bytes look like an HTTP request rather
/// than a protocol command (method prefix "GET " or "HEAD ").
bool LooksLikeHttp(std::string_view data);

struct HttpRequest {
  std::string method;
  std::string path;
};

/// Parses an HTTP request line ("GET /metrics HTTP/1.1").
Result<HttpRequest> ParseHttpRequestLine(std::string_view line);

/// Serializes a minimal HTTP/1.0 response with Content-Length and
/// Connection: close.
std::string HttpResponse(int status_code, const char* status_text,
                         const char* content_type, std::string_view body);

}  // namespace net
}  // namespace caqe

#endif  // CAQE_NET_PROTOCOL_H_
