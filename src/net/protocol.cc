#include "net/protocol.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace caqe {
namespace net {

namespace {

/// All wire input must be printable ASCII: this sidesteps every encoding
/// question (bad UTF-8, control bytes, NULs) with one stable check.
bool PrintableAscii(std::string_view s) {
  for (unsigned char c : s) {
    if (c < 0x20 || c > 0x7e) return false;
  }
  return true;
}

bool ValidName(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ':')) {
      return false;
    }
  }
  return true;
}

/// Strict full-token double parse; rejects empty, trailing garbage, and
/// non-finite values.
bool ParseDoubleToken(std::string_view token, double* out) {
  if (token.empty() || token.size() > 64) return false;
  char buf[72];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + token.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseIntToken(std::string_view token, int64_t lo, int64_t hi,
                   int64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  char buf[24];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + token.size() || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Status BadField(std::string_view field) {
  return Status::InvalidArgument("bad-field " + std::string(field));
}

}  // namespace

void LineBuffer::Append(const char* data, size_t n) {
  buffer_.append(data, n);
}

LineBuffer::Pop LineBuffer::Next(std::string& out) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (discarding_) {
      if (nl == std::string::npos) {
        buffer_.clear();  // Still inside the oversized line.
        return Pop::kNeedMore;
      }
      buffer_.erase(0, nl + 1);
      discarding_ = false;
      overflow_reported_ = false;
      continue;  // Resume on the next line.
    }
    if (nl == std::string::npos) {
      if (buffer_.size() > max_) {
        discarding_ = true;
        if (!overflow_reported_) {
          overflow_reported_ = true;
          return Pop::kOverflow;
        }
      }
      return Pop::kNeedMore;
    }
    if (nl > max_) {
      // Terminated line, but over the cap: drop it whole.
      buffer_.erase(0, nl + 1);
      return Pop::kOverflow;
    }
    out.assign(buffer_, 0, nl);
    if (!out.empty() && out.back() == '\r') out.pop_back();
    buffer_.erase(0, nl + 1);
    return Pop::kLine;
  }
}

std::string FormatExactDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<Contract> ParseContractSpec(std::string_view spec,
                                   std::string* canonical) {
  if (spec.size() > 128 || !PrintableAscii(spec)) {
    return Status::InvalidArgument("bad-contract");
  }
  const size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("bad-contract");
  }
  const std::string_view kind = spec.substr(0, colon);
  const std::vector<std::string_view> args =
      SplitOn(spec.substr(colon + 1), ',');
  std::vector<double> v(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    if (!ParseDoubleToken(args[i], &v[i])) {
      return Status::InvalidArgument("bad-contract");
    }
  }
  const auto canonicalize = [&](std::string_view name) {
    if (canonical == nullptr) return;
    *canonical = std::string(name);
    char sep = ':';
    for (double d : v) {
      *canonical += sep;
      *canonical += FormatExactDouble(d);
      sep = ',';
    }
  };
  if (kind == "step" && v.size() == 1 && v[0] > 0.0) {
    canonicalize("step");
    return MakeTimeStepContract(v[0]);
  }
  if (kind == "log" && v.size() == 1 && v[0] > 0.0) {
    canonicalize("log");
    return MakeLogDecayContract(v[0]);
  }
  if (kind == "hyper" && v.size() == 2 && v[0] >= 0.0 && v[1] > 0.0) {
    canonicalize("hyper");
    return MakeHyperbolicDecayContract(v[0], v[1]);
  }
  if (kind == "card" && v.size() == 2 && v[0] > 0.0 && v[0] <= 1.0 &&
      v[1] > 0.0) {
    canonicalize("card");
    return MakeCardinalityContract(v[0], v[1]);
  }
  if (kind == "rate" && v.size() == 2 && v[0] > 0.0 && v[1] > 0.0) {
    canonicalize("rate");
    return MakeRateContract(v[0], v[1]);
  }
  if (kind == "hybrid" && v.size() == 3 && v[0] > 0.0 && v[0] <= 1.0 &&
      v[1] > 0.0 && v[2] > 0.0) {
    canonicalize("hybrid");
    return MakeHybridContract(v[0], v[1], v[2]);
  }
  return Status::InvalidArgument("bad-contract");
}

Result<Command> ParseCommand(std::string_view line,
                             const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return Status::InvalidArgument("line-too-long");
  }
  if (!PrintableAscii(line)) {
    return Status::InvalidArgument("bad-byte");
  }
  const std::vector<std::string_view> tokens = SplitTokens(line);
  if (tokens.empty()) return Status::InvalidArgument("bad-command");
  const std::string_view verb = tokens[0];

  Command command;
  if (verb == "STATUS") {
    if (tokens.size() != 1) return Status::InvalidArgument("bad-command");
    command.kind = CommandKind::kStatus;
    return command;
  }
  if (verb == "DRAIN") {
    if (tokens.size() != 1) return Status::InvalidArgument("bad-command");
    command.kind = CommandKind::kDrain;
    return command;
  }
  if (verb == "STOP") {
    if (tokens.size() != 1) return Status::InvalidArgument("bad-command");
    command.kind = CommandKind::kStop;
    return command;
  }
  if (verb == "CANCEL") {
    if (tokens.size() != 2) return Status::InvalidArgument("bad-command");
    int64_t id = 0;
    if (!ParseIntToken(tokens[1], 0, 1000000000, &id)) {
      return BadField("request-id");
    }
    command.kind = CommandKind::kCancel;
    command.cancel_id = static_cast<int>(id);
    return command;
  }
  if (verb == "TRACE") {
    if (tokens.size() != 2) return Status::InvalidArgument("bad-command");
    // Same validation as SUBMIT's name= field: length-capped printable
    // charset, so a hostile name cannot blow up the lookup or the reply.
    if (tokens[1].size() > limits.max_name_bytes || !ValidName(tokens[1])) {
      return BadField("name");
    }
    command.kind = CommandKind::kTrace;
    command.trace_name = std::string(tokens[1]);
    return command;
  }
  if (verb != "SUBMIT") return Status::InvalidArgument("bad-command");

  command.kind = CommandKind::kSubmit;
  SubmitCommand& submit = command.submit;
  SjQuery& query = submit.query;
  query.priority = 1.0;
  bool have_name = false, have_key = false, have_pref = false;
  bool have_priority = false, have_deadline = false, have_id = false;
  bool have_contract = false;

  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    if (token == "CONTRACT") {
      if (have_contract || i + 1 != tokens.size() - 1) {
        return Status::InvalidArgument("bad-contract");
      }
      std::string canonical;
      Result<Contract> contract =
          ParseContractSpec(tokens[i + 1], &canonical);
      CAQE_RETURN_NOT_OK(contract.status());
      submit.contract = std::move(contract).value();
      submit.contract_canonical = std::move(canonical);
      have_contract = true;
      ++i;
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("bad-command");
    }
    const std::string_view field = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (field == "name") {
      if (have_name) return Status::InvalidArgument("duplicate-field name");
      if (value.size() > limits.max_name_bytes || !ValidName(value)) {
        return BadField("name");
      }
      query.name = std::string(value);
      have_name = true;
    } else if (field == "key") {
      if (have_key) return Status::InvalidArgument("duplicate-field key");
      int64_t key = 0;
      if (!ParseIntToken(value, 0, 1023, &key)) return BadField("key");
      query.join_key = static_cast<int>(key);
      have_key = true;
    } else if (field == "pref") {
      if (have_pref) return Status::InvalidArgument("duplicate-field pref");
      const std::vector<std::string_view> dims = SplitOn(value, ',');
      if (dims.empty() ||
          dims.size() > static_cast<size_t>(limits.max_preference_dims)) {
        return BadField("pref");
      }
      for (std::string_view dim_token : dims) {
        int64_t dim = 0;
        if (!ParseIntToken(dim_token, 0, 4095, &dim)) {
          return BadField("pref");
        }
        query.preference.push_back(static_cast<int>(dim));
      }
      std::vector<int> sorted = query.preference;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
        return BadField("pref");
      }
      have_pref = true;
    } else if (field == "priority") {
      if (have_priority) {
        return Status::InvalidArgument("duplicate-field priority");
      }
      double priority = 0.0;
      if (!ParseDoubleToken(value, &priority) || priority < 0.0 ||
          priority > 1.0) {
        return BadField("priority");
      }
      query.priority = priority;
      have_priority = true;
    } else if (field == "deadline") {
      if (have_deadline) {
        return Status::InvalidArgument("duplicate-field deadline");
      }
      double deadline = 0.0;
      if (!ParseDoubleToken(value, &deadline) || deadline < 0.0) {
        return BadField("deadline");
      }
      submit.deadline_seconds = deadline;
      have_deadline = true;
    } else if (field == "id") {
      if (have_id) return Status::InvalidArgument("duplicate-field id");
      int64_t id = 0;
      if (!ParseIntToken(value, 0, 1000000000, &id)) return BadField("id");
      submit.trace_id = static_cast<int>(id);
      have_id = true;
    } else if (field == "sel") {
      if (static_cast<int>(query.selections.size()) >=
          limits.max_selections) {
        return BadField("sel");
      }
      const std::vector<std::string_view> parts = SplitOn(value, ':');
      if (parts.size() != 4 || parts[0].size() != 1 ||
          (parts[0][0] != 'r' && parts[0][0] != 't')) {
        return BadField("sel");
      }
      SelectionRange sel;
      sel.on_r = parts[0][0] == 'r';
      int64_t attr = 0;
      if (!ParseIntToken(parts[1], 0, 1023, &attr)) return BadField("sel");
      sel.attr = static_cast<int>(attr);
      if (!ParseDoubleToken(parts[2], &sel.lo) ||
          !ParseDoubleToken(parts[3], &sel.hi) || sel.lo > sel.hi) {
        return BadField("sel");
      }
      query.selections.push_back(sel);
    } else {
      return BadField(field);
    }
  }
  if (!have_name) return Status::InvalidArgument("missing-field name");
  if (!have_key) return Status::InvalidArgument("missing-field key");
  if (!have_pref) return Status::InvalidArgument("missing-field pref");
  if (!have_contract) {
    return Status::InvalidArgument("missing-field contract");
  }
  return command;
}

std::string FormatSubmitCommand(const SjQuery& query,
                                const std::string& contract_canonical,
                                double deadline_seconds, int id) {
  std::string line = "SUBMIT";
  if (id >= 0) line += " id=" + std::to_string(id);
  line += " name=" + query.name;
  line += " key=" + std::to_string(query.join_key);
  line += " pref=";
  for (size_t i = 0; i < query.preference.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(query.preference[i]);
  }
  line += " priority=" + FormatExactDouble(query.priority);
  if (deadline_seconds > 0.0) {
    line += " deadline=" + FormatExactDouble(deadline_seconds);
  }
  for (const SelectionRange& sel : query.selections) {
    line += " sel=";
    line += sel.on_r ? 'r' : 't';
    line += ':' + std::to_string(sel.attr);
    line += ':' + FormatExactDouble(sel.lo);
    line += ':' + FormatExactDouble(sel.hi);
  }
  line += " CONTRACT " + contract_canonical;
  return line;
}

bool LooksLikeHttp(std::string_view data) {
  return data.rfind("GET ", 0) == 0 || data.rfind("HEAD ", 0) == 0;
}

Result<HttpRequest> ParseHttpRequestLine(std::string_view line) {
  if (line.size() > 8192 || !PrintableAscii(line)) {
    return Status::InvalidArgument("bad-request");
  }
  const std::vector<std::string_view> tokens = SplitTokens(line);
  if (tokens.size() != 3 || tokens[2].rfind("HTTP/", 0) != 0 ||
      tokens[1].empty() || tokens[1][0] != '/') {
    return Status::InvalidArgument("bad-request");
  }
  HttpRequest request;
  request.method = std::string(tokens[0]);
  request.path = std::string(tokens[1]);
  return request;
}

std::string HttpResponse(int status_code, const char* status_text,
                         const char* content_type, std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status_code) + " " +
                    status_text + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

}  // namespace net
}  // namespace caqe
