// Session recorder: the record half of the record/replay determinism
// oracle.
//
// A live (wall-clock) session's engine-visible inputs are exactly the
// sequence of quantized arrivals and cancellations — everything else the
// engine does is a deterministic function of them (see serve/server.h).
// The recorder persists that sequence as a plain-text trace:
//
//   CAQE-SESSION v1 quantum=<%.17g> [key=value ...]
//   AT <tq> SUBMIT id=<n> name=... key=... pref=... CONTRACT <spec>
//   AT <tq> CANCEL <id>
//
// `tq` is the integer quantum index assigned by ArrivalQuantizer; the
// virtual timestamp is reconstructed as `tq * quantum` on replay, so the
// only doubles in the file are %.17g round-trippable. SUBMIT lines are the
// canonical FormatSubmitCommand form and are parsed back with the same
// ParseCommand the live server uses, so record → replay cannot drift from
// live parsing. Replaying the trace through CaqeServer::Submit()+Run()
// must produce a byte-identical serving report; scripts/run_net_matrix.sh
// byte-diffs exactly that.
#ifndef CAQE_NET_RECORDER_H_
#define CAQE_NET_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "serve/serving.h"

namespace caqe {
namespace net {

/// Appends session events to a trace file as they happen. Lines are
/// flushed eagerly so a crashed or killed server still leaves a replayable
/// prefix.
class SessionRecorder {
 public:
  /// Opens `path` for writing and emits the header. `attrs` are extra
  /// key=value pairs recorded for replay (e.g. the data-generation seed);
  /// keys and values must be space-free printable ASCII.
  static Result<std::unique_ptr<SessionRecorder>> Open(
      const std::string& path, double quantum,
      const std::vector<std::pair<std::string, std::string>>& attrs);

  ~SessionRecorder();

  SessionRecorder(const SessionRecorder&) = delete;
  SessionRecorder& operator=(const SessionRecorder&) = delete;

  /// Records an arrival at quantum index `tq` under server-assigned
  /// request id `id`.
  void RecordSubmit(int64_t tq, int id, const SjQuery& query,
                    const std::string& contract_canonical,
                    double deadline_seconds);

  /// Records a cancellation of request `id` at quantum index `tq`.
  void RecordCancel(int64_t tq, int id);

  /// Flushes and closes the file; further Record calls are invalid.
  void Close();

 private:
  explicit SessionRecorder(std::FILE* file) : file_(file) {}

  void WriteLine(const std::string& line);

  std::FILE* file_ = nullptr;
};

/// One replayable event.
struct SessionEvent {
  int64_t tq = 0;
  Command command;
};

/// A parsed session trace.
struct SessionTrace {
  double quantum = ArrivalQuantizer::kDefaultQuantum;
  /// Header key=value pairs other than `quantum` (insertion order kept).
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<SessionEvent> events;

  /// Returns the value for `key`, or `fallback` when absent.
  std::string Attr(const std::string& key, const std::string& fallback) const;
};

/// Loads and validates a session trace. Events must be strictly increasing
/// in `tq`; SUBMIT lines must carry ids that are dense from 0 so replay
/// assigns identical request ids. Errors carry stable codes
/// (`bad-header`, `bad-at-line`, plus ParseCommand's codes).
Result<SessionTrace> LoadSessionTrace(const std::string& path);

}  // namespace net
}  // namespace caqe

#endif  // CAQE_NET_RECORDER_H_
