#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/json_util.h"
#include "common/macros.h"
#include "metrics/printer.h"
#include "obs/ledger.h"

namespace caqe {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Engine steps per loop round: enough to make real progress between
/// socket rounds, small enough to keep the loop responsive.
constexpr int kStepsPerRound = 64;

/// Audit-ledger records returned per /tracez response and per TRACE reply;
/// bounds the bytes a hostile client can make one request queue.
constexpr size_t kTracezMaxRecords = 256;
constexpr size_t kTraceTailMax = 32;

}  // namespace

NetServer::NetServer(CaqeServer* server, NetServerOptions options)
    : server_(server),
      options_(std::move(options)),
      quantizer_(options_.quantum) {}

NetServer::~NetServer() {
  for (auto& [fd, conn] : conns_) {
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Result<std::unique_ptr<NetServer>> NetServer::Create(CaqeServer* server,
                                                     NetServerOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("net server: null engine");
  }
  if (!(options.quantum > 0.0)) {
    return Status::InvalidArgument("net server: quantum must be > 0");
  }
  auto net = std::unique_ptr<NetServer>(
      new NetServer(server, std::move(options)));
  CAQE_RETURN_NOT_OK(server->BeginLive());
  net->InstallObservers();
  if (!net->options_.record_path.empty()) {
    Result<std::unique_ptr<SessionRecorder>> recorder = SessionRecorder::Open(
        net->options_.record_path, net->options_.quantum,
        net->options_.record_attrs);
    CAQE_RETURN_NOT_OK(recorder.status());
    net->recorder_ = std::move(recorder).value();
  }
  CAQE_RETURN_NOT_OK(net->Listen());
  return net;
}

Status NetServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("net server: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  CAQE_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  CAQE_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  CAQE_RETURN_NOT_OK(SetNonBlocking(wake_write_fd_));
  return Status::OK();
}

void NetServer::InstallObservers() {
  if (options_.obs != nullptr) {
    MetricsRegistry& m = options_.obs->metrics;
    connections_total_ = &m.counter("caqe_net_connections_total");
    bytes_in_total_ = &m.counter("caqe_net_bytes_in_total");
    bytes_out_total_ = &m.counter("caqe_net_bytes_out_total");
    parse_errors_total_ = &m.counter("caqe_net_parse_errors_total");
    active_connections_ = &m.gauge("caqe_net_active_connections");
    ttfb_hist_ = &m.histogram("caqe_net_request_to_first_byte_seconds",
                              ExponentialBuckets(1e-4, 2.0, 18));
  }
  server_->SetLiveObservers(
      [this](int request_id, AdmissionDecision decision, const char* reason) {
        const auto it = request_conn_.find(request_id);
        if (it == request_conn_.end()) return;
        const auto conn_it = conns_.find(it->second);
        if (conn_it == conns_.end()) return;
        Reply(*conn_it->second, "DECISION " + std::to_string(request_id) +
                                    " " + AdmissionDecisionName(decision) +
                                    " " + reason);
      },
      [this](int request_id, RequestStatus status) {
        const auto it = request_conn_.find(request_id);
        if (it != request_conn_.end()) {
          const auto conn_it = conns_.find(it->second);
          if (conn_it != conns_.end()) {
            Reply(*conn_it->second, "DONE " + std::to_string(request_id) +
                                        " " + RequestStatusName(status));
          }
          request_conn_.erase(it);
        }
        request_start_.erase(request_id);
      });
}

void NetServer::RequestDrain() {
  const char byte = 'd';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void NetServer::RequestStop() {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void NetServer::RequestFlightDump() {
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

Status NetServer::Serve() {
  while (LoopOnce()) {
  }
  for (auto& [fd, conn] : conns_) {
    if (conn->kind == ConnKind::kProtocol) Reply(*conn, "BYE");
    FlushTo(*conn);
    ::close(conn->fd);
  }
  conns_.clear();
  if (active_connections_ != nullptr) active_connections_->Set(0.0);
  if (recorder_ != nullptr) recorder_->Close();
  if (hard_stop_ && !drained_) {
    return Status::Internal("net server: stopped before drain completed");
  }
  return drain_status_;
}

bool NetServer::LoopOnce() {
  std::vector<pollfd> fds;
  fds.push_back({wake_read_fd_, POLLIN, 0});
  fds.push_back({listen_fd_, POLLIN, 0});
  for (auto& [fd, conn] : conns_) {
    short events = POLLIN;
    if (!conn->out.empty()) events |= POLLOUT;
    fds.push_back({fd, events, 0});
  }

  const int timeout_ms = engine_busy_ ? 0 : 20;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    hard_stop_ = true;
    return false;
  }

  if (fds[0].revents & POLLIN) DrainWakePipe();
  if (hard_stop_) return false;
  if (flight_dump_requested_) {
    flight_dump_requested_ = false;
    DumpFlight("signal");
  }
  if (fds[1].revents & POLLIN) AcceptPending();

  for (size_t i = 2; i < fds.size(); ++i) {
    const auto it = conns_.find(fds[i].fd);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
      // POLLHUP with unread input still delivers the input first.
      if ((fds[i].revents & POLLIN) == 0) {
        CloseConn(conn);
        continue;
      }
    }
    if (fds[i].revents & POLLIN) ReadFrom(conn);
    const auto again = conns_.find(fds[i].fd);
    if (again == conns_.end()) continue;
    if (fds[i].revents & POLLOUT) FlushTo(*again->second);
  }

  CloseIdle();
  StepEngine();
  if (options_.on_tick) options_.on_tick();
  if (state_ == State::kDraining && !engine_busy_) FinishDrain();
  if (state_ == State::kDrained) {
    if (hard_stop_ || stop_after_drain_ || !options_.linger_after_drain) {
      return false;
    }
  }
  return !hard_stop_;
}

void NetServer::DrainWakePipe() {
  char buf[64];
  ssize_t n = 0;
  while ((n = ::read(wake_read_fd_, buf, sizeof(buf))) > 0) {
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == 's') {
        hard_stop_ = true;
      } else if (buf[i] == 'q') {
        flight_dump_requested_ = true;
      } else if (buf[i] == 'd') {
        if (state_ == State::kServing) {
          state_ = State::kDraining;
        } else if (state_ == State::kDrained) {
          // Second graceful request after the drain: leave the linger.
          stop_after_drain_ = true;
        }
      }
    }
  }
}

void NetServer::AcceptPending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      const char reply[] = "ERR too-many-connections\n";
      [[maybe_unused]] const ssize_t n = ::write(fd, reply, sizeof(reply) - 1);
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conns_.emplace(fd, std::make_unique<Connection>(
                           fd, options_.limits.max_line_bytes,
                           std::chrono::steady_clock::now()));
    if (connections_total_ != nullptr) connections_total_->Inc();
    if (active_connections_ != nullptr) {
      active_connections_->Set(static_cast<double>(conns_.size()));
    }
  }
}

void NetServer::ReadFrom(Connection& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (bytes_in_total_ != nullptr) bytes_in_total_->Inc(n);
      conn.in.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Orderly shutdown or error: process what we have, then close below.
    conn.closing = true;
    break;
  }

  ProcessInput(conn);
}

void NetServer::ProcessInput(Connection& conn) {
  const int fd = conn.fd;
  if (conn.kind == ConnKind::kHttp) {
    HandleHttp(conn);
  } else {
    std::string line;
    while (conns_.count(fd) != 0) {
      const LineBuffer::Pop pop = conn.in.Next(line);
      if (pop == LineBuffer::Pop::kNeedMore) break;
      if (pop == LineBuffer::Pop::kOverflow) {
        ReplyErr(conn, "line-too-long");
        continue;
      }
      if (conn.kind == ConnKind::kUndecided) {
        if (LooksLikeHttp(line)) {
          conn.kind = ConnKind::kHttp;
          conn.http_request_line = line;
          HandleHttp(conn);
          break;
        }
        conn.kind = ConnKind::kProtocol;
        Reply(conn, "HELLO caqe/1 dims=" +
                        std::to_string(server_->num_output_dims()));
        if (conns_.count(fd) == 0) return;
      }
      HandleLine(conn, line);
    }
  }
  if (conns_.count(fd) != 0 && conn.closing && conn.out.empty()) {
    CloseConn(conn);
  }
}

void NetServer::HandleHttp(Connection& conn) {
  if (conn.http_request_line.empty()) {
    std::string line;
    const LineBuffer::Pop pop = conn.in.Next(line);
    if (pop == LineBuffer::Pop::kOverflow) {
      conn.out += HttpResponse(400, "Bad Request", "text/plain",
                               "request line too long\n");
      conn.closing = true;
      FlushTo(conn);
      return;
    }
    if (pop == LineBuffer::Pop::kNeedMore) return;
    conn.http_request_line = line;
  }
  Result<HttpRequest> request = ParseHttpRequestLine(conn.http_request_line);
  std::string response;
  if (!request.ok()) {
    if (parse_errors_total_ != nullptr) parse_errors_total_->Inc();
    response =
        HttpResponse(400, "Bad Request", "text/plain", "bad request\n");
  } else if (request->path == "/metrics") {
    if (options_.obs == nullptr) {
      response =
          HttpResponse(404, "Not Found", "text/plain", "no metrics\n");
    } else {
      response = HttpResponse(200, "OK", "text/plain; version=0.0.4",
                              options_.obs->metrics.PrometheusText());
    }
  } else if (request->path == "/healthz") {
    response = HttpResponse(200, "OK", "text/plain",
                            std::string("ok state=") + StateName() + "\n");
  } else if (request->path == "/statusz") {
    response = HttpResponse(200, "OK", "text/plain", StatuszBody());
  } else if (request->path == "/flightz") {
    if (options_.obs == nullptr) {
      response = HttpResponse(404, "Not Found", "text/plain",
                              "no-observability\n");
    } else {
      response = HttpResponse(200, "OK", "application/jsonl",
                              options_.obs->flight.Jsonl());
    }
  } else if (request->path == "/tracez" ||
             request->path.rfind("/tracez/", 0) == 0) {
    std::string_view id_text(request->path);
    id_text.remove_prefix(std::min<size_t>(id_text.size(), 8));
    response = TracezResponse(id_text);
  } else {
    response = HttpResponse(404, "Not Found", "text/plain", "not found\n");
  }
  if (request.ok() && request->method == "HEAD") {
    const size_t header_end = response.find("\r\n\r\n");
    if (header_end != std::string::npos) response.resize(header_end + 4);
  }
  conn.out += response;
  if (bytes_out_total_ != nullptr) bytes_out_total_->Inc(response.size());
  conn.closing = true;
  FlushTo(conn);
}

void NetServer::HandleLine(Connection& conn, const std::string& line) {
  if (line.empty()) return;
  Result<Command> parsed = ParseCommand(line, options_.limits);
  if (!parsed.ok()) {
    ReplyErr(conn, parsed.status().message());
    return;
  }
  Command& command = parsed.value();
  switch (command.kind) {
    case CommandKind::kSubmit:
      HandleSubmit(conn, std::move(command.submit));
      return;
    case CommandKind::kCancel:
      HandleCancel(conn, command.cancel_id);
      return;
    case CommandKind::kTrace:
      HandleTrace(conn, command.trace_name);
      return;
    case CommandKind::kStatus:
      Reply(conn, StatusLine());
      return;
    case CommandKind::kDrain:
      if (state_ == State::kServing) state_ = State::kDraining;
      conn.awaiting_drained = true;
      if (state_ == State::kDrained) {
        Reply(conn, "DRAINED");
        conn.awaiting_drained = false;
      } else {
        Reply(conn, "DRAINING");
      }
      return;
    case CommandKind::kStop:
      stop_after_drain_ = true;
      if (state_ == State::kServing) state_ = State::kDraining;
      Reply(conn, state_ == State::kDrained ? "BYE" : "DRAINING");
      return;
  }
}

void NetServer::HandleSubmit(Connection& conn, SubmitCommand submit) {
  if (state_ != State::kServing) {
    ReplyErr(conn, state_ == State::kDraining ? "draining" : "drained");
    return;
  }
  if (submit.trace_id >= 0) {
    // Ids are server-assigned on the wire; only recorded traces carry them.
    ReplyErr(conn, "bad-field id");
    return;
  }
  const int64_t tq = quantizer_.Next(server_->VirtualNow());
  const double vtime = quantizer_.TimeOf(tq);
  const int conn_fd = conn.fd;
  const SjQuery query_copy = submit.query;
  Result<int> submitted = server_->SubmitLive(
      std::move(submit.query), std::move(submit.contract), vtime,
      submit.deadline_seconds,
      [this, conn_fd](int request_id, int64_t tuple_id, double result_vtime,
                      double utility) {
        const auto start_it = request_start_.find(request_id);
        if (start_it != request_start_.end()) {
          if (ttfb_hist_ != nullptr) {
            ttfb_hist_->Observe(SecondsBetween(
                start_it->second, std::chrono::steady_clock::now()));
          }
          request_start_.erase(start_it);
        }
        const auto it = request_conn_.find(request_id);
        if (it == request_conn_.end() || it->second != conn_fd) return;
        const auto conn_it = conns_.find(it->second);
        if (conn_it == conns_.end()) return;
        Reply(*conn_it->second,
              "RESULT " + std::to_string(request_id) + " " +
                  std::to_string(tuple_id) + " " +
                  FormatDouble(result_vtime, 9) + " " +
                  FormatDouble(utility, 6));
      });
  if (!submitted.ok()) {
    if (parse_errors_total_ != nullptr) parse_errors_total_->Inc();
    ReplyErr(conn, "bad-query");
    return;
  }
  const int id = submitted.value();
  request_conn_[id] = conn_fd;
  request_start_[id] = std::chrono::steady_clock::now();
  if (recorder_ != nullptr) {
    recorder_->RecordSubmit(tq, id, query_copy, submit.contract_canonical,
                            submit.deadline_seconds);
  }
  Reply(conn, "QUEUED " + std::to_string(id));
}

void NetServer::HandleCancel(Connection& conn, int request_id) {
  if (state_ != State::kServing) {
    ReplyErr(conn, state_ == State::kDraining ? "draining" : "drained");
    return;
  }
  if (request_id < 0 || request_id >= server_->num_requests()) {
    ReplyErr(conn, "bad-field request-id");
    return;
  }
  const int64_t tq = quantizer_.Next(server_->VirtualNow());
  const Status status = server_->CancelLive(request_id, quantizer_.TimeOf(tq));
  if (!status.ok()) {
    ReplyErr(conn, "bad-cancel");
    return;
  }
  if (recorder_ != nullptr) recorder_->RecordCancel(tq, request_id);
  Reply(conn, "OK " + std::to_string(request_id));
}

void NetServer::HandleTrace(Connection& conn, const std::string& name) {
  if (options_.obs == nullptr) {
    ReplyErr(conn, "no-observability");
    return;
  }
  const int id = server_->FindRequestByName(name);
  if (id < 0) {
    ReplyErr(conn, "unknown-request");
    return;
  }
  const std::vector<AuditRecord> records =
      options_.obs->ledger.Tail(id, kTraceTailMax);
  // Reply can close a slow-consumer connection mid-loop; re-check the fd.
  const int fd = conn.fd;
  Reply(conn, "TRACE " + std::to_string(id) +
                  " records=" + std::to_string(records.size()));
  for (const AuditRecord& record : records) {
    if (conns_.count(fd) == 0) return;
    Reply(conn, AuditRecordJson(record));
  }
  if (conns_.count(fd) != 0) Reply(conn, "TRACE-END");
}

std::string NetServer::StatuszBody() const {
  std::string body = "caqe_serve statusz\n";
  body += std::string("build: ") + __VERSION__ +
#ifdef NDEBUG
          " (release)"
#else
          " (debug)"
#endif
          "\n";
  body += std::string("state: ") + StateName() + "\n";
  body += "uptime_s: " +
          FormatDouble(SecondsBetween(start_time_,
                                      std::chrono::steady_clock::now()),
                       3) +
          "\n";
  body += "vtime: " + FormatDouble(server_->VirtualNow(), 9) + "\n";
  body += "connections: " + std::to_string(conns_.size()) + "\n";
  body += "requests: " + std::to_string(server_->num_requests()) + "\n";
  body += "flags: quantum=" + FormatDouble(options_.quantum, 9) +
          " idle_timeout_ms=" + std::to_string(options_.idle_timeout_ms) +
          " max_connections=" + std::to_string(options_.max_connections) +
          " record=" +
          (options_.record_path.empty() ? "off" : options_.record_path) + "\n";
  if (options_.obs != nullptr) {
    body += "ledger: records=" + std::to_string(options_.obs->ledger.size()) +
            " dropped=" + std::to_string(options_.obs->ledger.dropped()) +
            "\n";
    body += "flight: entries=" + std::to_string(options_.obs->flight.total()) +
            " capacity=" + std::to_string(options_.obs->flight.capacity()) +
            "\n";
  }
  // Self-tuning admission: per-bucket correction-factor table (or a single
  // "calibration: off" line). Deterministic — reads only calibrator state.
  body += server_->CalibrationStatusText();
  body += "id name status results pscore submit_vtime root_span\n";
  const int n = server_->num_requests();
  for (int i = 0; i < n; ++i) {
    const CaqeServer::RequestBrief brief = server_->BriefOf(i);
    body += std::to_string(brief.id) + " " + brief.name + " " +
            RequestStatusName(brief.status) + " " +
            std::to_string(brief.results) + " " +
            FormatDouble(brief.pscore, 6) + " " +
            FormatDouble(brief.submit_time, 9) + " " +
            std::to_string(brief.root_span) + "\n";
  }
  return body;
}

std::string NetServer::TracezResponse(std::string_view id_text) const {
  // Hostile ids (empty, overlong, non-digit) get a stable 400 without ever
  // being converted — no allocation proportional to the input.
  if (id_text.empty() || id_text.size() > 9 ||
      id_text.find_first_not_of("0123456789") != std::string_view::npos) {
    return HttpResponse(400, "Bad Request", "text/plain", "bad-request-id\n");
  }
  int id = 0;
  for (const char c : id_text) id = id * 10 + (c - '0');
  if (id >= server_->num_requests()) {
    return HttpResponse(404, "Not Found", "text/plain",
                        "unknown-request-id\n");
  }
  if (options_.obs == nullptr) {
    return HttpResponse(404, "Not Found", "text/plain", "no-observability\n");
  }
  const CaqeServer::RequestBrief brief = server_->BriefOf(id);
  std::string body = "{\"request\":" + std::to_string(id) + ",\"name\":";
  JsonAppendString(body, brief.name);
  body += ",\"status\":\"";
  body += RequestStatusName(brief.status);
  body += "\",\"root_span\":" + std::to_string(brief.root_span);
  // The causal tree: audit-ledger records (always retained) plus whatever
  // spans the incremental trace flusher has not drained yet.
  body += ",\"records\":[";
  const std::vector<AuditRecord> records =
      options_.obs->ledger.Tail(id, kTracezMaxRecords);
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) body += ',';
    body += AuditRecordJson(records[i]);
  }
  body += "],\"spans\":[";
  bool first = true;
  if (brief.root_span != 0) {
    for (const SpanRecord& span : options_.obs->spans.Snapshot()) {
      if (span.root != brief.root_span) continue;
      if (!first) body += ',';
      first = false;
      body += "{\"name\":";
      JsonAppendString(body, span.name);
      body += ",\"cat\":";
      JsonAppendString(body, span.category);
      body += ",\"span\":" + std::to_string(span.id);
      body += ",\"parent\":" + std::to_string(span.parent);
      body += ",\"seq\":" + std::to_string(span.seq);
      body += ",\"region\":" + std::to_string(span.region);
      body += ",\"query\":" + std::to_string(span.query) + "}";
    }
  }
  body += "]}\n";
  return HttpResponse(200, "OK", "application/json", body);
}

void NetServer::DumpFlight(const char* why) {
  if (options_.obs == nullptr) return;
  const std::string jsonl = options_.obs->flight.Jsonl();
  if (!options_.flight_dump_path.empty()) {
    std::FILE* out = std::fopen(options_.flight_dump_path.c_str(), "w");
    if (out != nullptr) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), out);
      std::fclose(out);
      std::fprintf(stderr, "caqe_net: flight recorder (%s) -> %s\n", why,
                   options_.flight_dump_path.c_str());
      return;
    }
  }
  std::fprintf(stderr, "caqe_net: flight recorder (%s), %zu bytes:\n", why,
               jsonl.size());
  std::fwrite(jsonl.data(), 1, jsonl.size(), stderr);
}

std::string NetServer::StatusLine() const {
  std::string line = "STATUS vtime=" + FormatDouble(server_->VirtualNow(), 9);
  line += " requests=" + std::to_string(server_->num_requests());
  line += " connections=" + std::to_string(conns_.size());
  line += std::string(" state=") + StateName();
  return line;
}

const char* NetServer::StateName() const {
  switch (state_) {
    case State::kServing:
      return "serving";
    case State::kDraining:
      return "draining";
    case State::kDrained:
      return "drained";
  }
  return "unknown";
}

void NetServer::Reply(Connection& conn, const std::string& line) {
  conn.out += line;
  conn.out += '\n';
  if (bytes_out_total_ != nullptr) bytes_out_total_->Inc(line.size() + 1);
  if (conn.out.size() > options_.max_output_bytes) {
    // Slow consumer: unread output exceeded the cap.
    CloseConn(conn);
    return;
  }
  FlushTo(conn);
}

void NetServer::ReplyErr(Connection& conn, const std::string& code) {
  if (parse_errors_total_ != nullptr) parse_errors_total_->Inc();
  Reply(conn, "ERR " + code);
}

void NetServer::FlushTo(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(conn);
    return;
  }
  if (conn.closing) CloseConn(conn);
}

void NetServer::CloseConn(Connection& conn) {
  const int fd = conn.fd;
  ::close(fd);
  for (auto it = request_conn_.begin(); it != request_conn_.end();) {
    if (it->second == fd) {
      it = request_conn_.erase(it);
    } else {
      ++it;
    }
  }
  conns_.erase(fd);
  if (active_connections_ != nullptr) {
    active_connections_->Set(static_cast<double>(conns_.size()));
  }
}

void NetServer::CloseIdle() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const double limit = options_.idle_timeout_ms / 1000.0;
  std::vector<int> idle;
  for (auto& [fd, conn] : conns_) {
    if (SecondsBetween(conn->last_activity, now) > limit) idle.push_back(fd);
  }
  for (int fd : idle) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) CloseConn(*it->second);
  }
}

void NetServer::StepEngine() {
  engine_busy_ = false;
  if (drained_) return;
  for (int i = 0; i < kStepsPerRound; ++i) {
    if (!server_->StepLive()) return;
    engine_busy_ = true;
  }
}

void NetServer::FinishDrain() {
  Result<ServingReport> report = server_->FinishLive();
  drained_ = true;
  state_ = State::kDrained;
  if (recorder_ != nullptr) recorder_->Close();
  if (report.ok()) {
    report_ = std::move(report).value();
    drain_status_ = Status::OK();
  } else {
    drain_status_ = report.status();
    // A failed drain is exactly what the flight recorder exists for: dump
    // the recent span/ledger tail before the state is torn down.
    DumpFlight("drain-failure");
  }
  for (auto& [fd, conn] : conns_) {
    if (conn->awaiting_drained) {
      conn->awaiting_drained = false;
      Reply(*conn, "DRAINED");
    }
  }
}

}  // namespace net
}  // namespace caqe
