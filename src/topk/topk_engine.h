// Contract-aware and baseline execution strategies for Top-K-over-join
// workloads (the query-class extension, see topk_query.h).
#ifndef CAQE_TOPK_TOPK_ENGINE_H_
#define CAQE_TOPK_TOPK_ENGINE_H_

#include <string>
#include <vector>

#include "contracts/utility.h"
#include "exec/options.h"
#include "metrics/report.h"
#include "topk/topk_query.h"

namespace caqe {

/// Common interface of Top-K engines (mirrors the skyline Engine).
class TopKEngine {
 public:
  virtual ~TopKEngine() = default;
  virtual std::string name() const = 0;
  virtual Result<ExecutionReport> Execute(
      const Table& r, const Table& t, const TopKWorkload& workload,
      const std::vector<Contract>& contracts, const ExecOptions& options) = 0;
};

/// CAQE-style contract-aware Top-K processing: the coarse join derives
/// output regions once for the whole workload; each region carries a
/// per-query *score lower bound* (the weighted sum of its lower corner —
/// admissible because mapping functions and scoring weights are monotone).
/// The scheduler greedily picks the region with the best contract-weighted
/// benefit; regions whose bound exceeds a query's current k-th best score
/// are discarded for that query (and entirely once no query needs them).
/// A candidate result is emitted as soon as no pending region's bound can
/// beat it — emissions are final and stream in ascending score order.
class ContractAwareTopKEngine : public TopKEngine {
 public:
  std::string name() const override { return "CAQE-TopK"; }
  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const TopKWorkload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

/// Serial baseline: per query (descending priority), materialize the full
/// join, partial-sort by score, and report the k best at completion.
class SerialTopKEngine : public TopKEngine {
 public:
  std::string name() const override { return "Serial-TopK"; }
  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const TopKWorkload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

}  // namespace caqe

#endif  // CAQE_TOPK_TOPK_ENGINE_H_
