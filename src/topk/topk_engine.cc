#include "topk/topk_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "baselines/baseline_util.h"
#include "exec/engine.h"
#include "exec/join_kernel.h"
#include "region/region_builder.h"
#include "skyline/point_set.h"

namespace caqe {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Weighted score of a region's best feasible tuple for query q — an
// admissible lower bound under monotone mappings and non-negative weights.
double RegionScoreBound(const OutputRegion& region, const TopKQuery& query) {
  double bound = 0.0;
  for (size_t i = 0; i < query.weights.size(); ++i) {
    bound += query.weights[i] * region.lower[i];
  }
  return bound;
}

// Per-query candidate state: the best (k - emitted) results seen so far,
// ascending by score.
struct QueryState {
  std::multimap<double, int64_t> candidates;
  int64_t emitted = 0;
  int64_t k = 0;

  int64_t remaining() const { return k - emitted; }
  /// Score a new tuple must beat to matter; +inf while unsaturated.
  double KthBound() const {
    if (remaining() <= 0) return -kInf;  // Nothing can matter any more.
    if (static_cast<int64_t>(candidates.size()) < remaining()) return kInf;
    return candidates.rbegin()->first;
  }
};

}  // namespace

Result<ExecutionReport> ContractAwareTopKEngine::Execute(
    const Table& r, const Table& t, const TopKWorkload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const WallTimer timer;
  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);

  ExecutionReport report;
  report.engine = name();
  report.queries.resize(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
  }

  // Regions are query-class agnostic: reuse the coarse join machinery.
  const Workload region_workload = workload.AsRegionWorkload();
  const int target_regions =
      AdaptiveTargetRegions(options, r, t, region_workload);
  Result<PartitionedTable> part_r =
      PartitionForRegions(r, options, target_regions);
  CAQE_RETURN_NOT_OK(part_r.status());
  Result<PartitionedTable> part_t =
      PartitionForRegions(t, options, target_regions);
  CAQE_RETURN_NOT_OK(part_t.status());
  Result<RegionCollection> rc_result =
      BuildRegions(*part_r, *part_t, region_workload);
  CAQE_RETURN_NOT_OK(rc_result.status());
  RegionCollection rc = std::move(rc_result).value();
  report.stats.regions_built = static_cast<int64_t>(rc.regions.size());
  report.stats.coarse_ops += rc.coarse_ops;
  clock.ChargeCoarseOps(rc.coarse_ops);

  // Contract totals: a top-k query expects exactly min(k, join size)
  // results.
  std::vector<QueryState> states(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    states[q].k = workload.query(q).k;
    double total = 0.0;
    if (q < static_cast<int>(options.known_result_counts.size())) {
      total = options.known_result_counts[q];
    }
    if (total <= 0.0) {
      total = static_cast<double>(std::min<int64_t>(
          workload.query(q).k,
          rc.total_join_sizes[rc.slot_of_query[q]]));
    }
    tracker.SetEstimatedTotal(q, total);
  }

  std::vector<char> pending(rc.regions.size(), 0);
  int64_t pending_count = 0;
  for (const OutputRegion& region : rc.regions) {
    if (!region.rql.empty()) {
      pending[region.id] = 1;
      ++pending_count;
    }
  }

  // Precomputed per-(region, query) score bounds.
  std::vector<std::vector<double>> bounds(rc.regions.size());
  for (const OutputRegion& region : rc.regions) {
    bounds[region.id].resize(workload.num_queries(), kInf);
    region.rql.ForEach([&](int q) {
      bounds[region.id][q] = RegionScoreBound(region, workload.query(q));
      ++report.stats.coarse_ops;
    });
  }
  clock.ChargeCoarseOps(static_cast<int64_t>(rc.regions.size()));

  PointSet store(workload.num_output_dims());
  CellJoinKernel join_kernel(&*part_r, &*part_t);
  std::vector<double> weights(workload.num_queries(), 1.0);

  auto emit = [&](int q, int64_t id, double /*score*/) {
    const double now = clock.Now();
    const double utility = tracker.OnResult(q, now);
    clock.ChargeEmits(1);
    ++report.stats.emitted_results;
    ++states[q].emitted;
    if (options.on_result) options.on_result(q, now, utility);
    if (options.capture_results) {
      ReportedResult result;
      result.tuple_id = id;
      result.time = now;
      result.utility = utility;
      result.values.assign(store.row(id), store.row(id) + store.width());
      report.queries[q].tuples.push_back(std::move(result));
    }
  };

  // Estimated processing time of a region (same cost structure as the
  // skyline core, with heap maintenance as the comparison term).
  auto estimate_cost = [&](const OutputRegion& region) {
    double probes = 0.0;
    double results = 0.0;
    for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
      if (region.join_sizes[s] <= 0) continue;
      if (!region.rql.Intersects(rc.queries_of_slot[s])) continue;
      probes += static_cast<double>(region.rows_r + region.rows_t);
      results += static_cast<double>(region.join_sizes[s]);
    }
    const CostModel& cost = clock.cost_model();
    return cost.join_probe_seconds * probes +
           cost.join_result_seconds * results +
           cost.dominance_cmp_seconds * results * 8.0 +
           cost.schedule_seconds;
  };

  std::vector<JoinMatch> matches;
  std::vector<double> values;
  while (pending_count > 0) {
    // ---- Contract-driven pick: utility-weighted expected yield. ----
    int best_region = -1;
    double best_score = -kInf;
    for (const OutputRegion& region : rc.regions) {
      if (!pending[region.id]) continue;
      const double t_c = estimate_cost(region);
      double score = 0.0;
      region.rql.ForEach([&](int q) {
        ++report.stats.coarse_ops;
        const int64_t join_size =
            region.join_sizes[rc.slot_of_query[q]];
        const double expected = static_cast<double>(
            std::min<int64_t>(states[q].remaining(), join_size));
        if (expected <= 0.0) return;
        const double u = tracker.PreviewUtility(
            q, clock.Now() + t_c, static_cast<int64_t>(expected));
        // Better (smaller) bounds first among equal utility.
        score += weights[q] * expected * u /
                 (1.0 + bounds[region.id][q]);
      });
      if (score > best_score) {
        best_score = score;
        best_region = region.id;
      }
    }
    CAQE_CHECK(best_region >= 0);
    clock.ChargeScheduleSteps(1);
    OutputRegion& region = rc.regions[best_region];

    // ---- Tuple-level join + candidate maintenance. ----
    uint32_t slots_mask = 0;
    for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
      if (region.join_sizes[s] > 0 &&
          region.rql.Intersects(rc.queries_of_slot[s])) {
        slots_mask |= uint32_t{1} << s;
      }
    }
    matches.clear();
    const int64_t probes_before = report.stats.join_probes;
    const int64_t results_before = report.stats.join_results;
    join_kernel.Join(rc, region, slots_mask, matches, report.stats);
    clock.ChargeJoinProbes(report.stats.join_probes - probes_before);
    clock.ChargeJoinResults(report.stats.join_results - results_before);

    int64_t heap_ops = 0;
    store.Reserve(store.size() + static_cast<int64_t>(matches.size()));
    for (const JoinMatch& match : matches) {
      workload.Project(part_r->table(), match.row_r, part_t->table(),
                       match.row_t, values);
      const int64_t id = store.Append(values);
      region.rql.ForEach([&](int q) {
        const int slot = rc.slot_of_query[q];
        if (((match.slot_mask >> slot) & 1) == 0) return;
        QueryState& state = states[q];
        ++heap_ops;
        const double score = workload.Score(q, store.row(id));
        if (score >= state.KthBound()) return;
        state.candidates.emplace(score, id);
        heap_ops += static_cast<int64_t>(
            std::log2(1.0 + static_cast<double>(state.candidates.size())));
        if (static_cast<int64_t>(state.candidates.size()) >
            state.remaining()) {
          state.candidates.erase(std::prev(state.candidates.end()));
        }
      });
    }
    report.stats.dominance_cmps += heap_ops;
    clock.ChargeDominanceCmps(heap_ops);

    pending[best_region] = 0;
    --pending_count;
    ++report.stats.regions_processed;

    // ---- Bound-based discarding + safe emission. ----
    int64_t coarse = 0;
    for (int q = 0; q < workload.num_queries(); ++q) {
      QueryState& state = states[q];
      // Discard pending regions that cannot affect this query any more.
      const double kth = state.KthBound();
      for (OutputRegion& other : rc.regions) {
        if (!pending[other.id] || !other.rql.Contains(q)) continue;
        ++coarse;
        if (bounds[other.id][q] >= kth) {
          other.rql.Remove(q);
          if (other.rql.empty()) {
            pending[other.id] = 0;
            --pending_count;
            ++report.stats.regions_discarded;
          }
        }
      }
      // Emit candidates no pending region can beat.
      double min_bound = kInf;
      for (const OutputRegion& other : rc.regions) {
        if (!pending[other.id] || !other.rql.Contains(q)) continue;
        ++coarse;
        min_bound = std::min(min_bound, bounds[other.id][q]);
      }
      while (!state.candidates.empty() && state.remaining() > 0 &&
             state.candidates.begin()->first <= min_bound) {
        const auto best = state.candidates.begin();
        emit(q, best->second, best->first);
        state.candidates.erase(best);
      }
    }
    report.stats.coarse_ops += coarse;
    clock.ChargeCoarseOps(coarse);

    // ---- Satisfaction feedback (Eq. 11). ----
    double v_max = 0.0;
    for (int q = 0; q < workload.num_queries(); ++q) {
      v_max = std::max(v_max, tracker.RuntimeMetric(q));
    }
    double denom = 0.0;
    for (int q = 0; q < workload.num_queries(); ++q) {
      denom += v_max - tracker.RuntimeMetric(q);
    }
    if (denom > 0.0 && options.feedback_enabled) {
      for (int q = 0; q < workload.num_queries(); ++q) {
        weights[q] += (v_max - tracker.RuntimeMetric(q)) / denom;
      }
    }
  }

  // Fewer than k results exist: drain what remains.
  for (int q = 0; q < workload.num_queries(); ++q) {
    QueryState& state = states[q];
    while (!state.candidates.empty() && state.remaining() > 0) {
      const auto best = state.candidates.begin();
      emit(q, best->second, best->first);
      state.candidates.erase(best);
    }
  }

  FinalizeReport(tracker, clock, timer, report);
  return report;
}

Result<ExecutionReport> SerialTopKEngine::Execute(
    const Table& r, const Table& t, const TopKWorkload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const WallTimer timer;
  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);

  ExecutionReport report;
  report.engine = name();
  report.queries.resize(workload.num_queries());
  std::vector<int> order(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
    order[q] = q;
    double total = 0.0;
    if (q < static_cast<int>(options.known_result_counts.size())) {
      total = options.known_result_counts[q];
    }
    if (total <= 0.0) {
      total = static_cast<double>(std::min<int64_t>(
          workload.query(q).k,
          ExactTotalJoinSize(r, t, workload.query(q).join_key)));
    }
    tracker.SetEstimatedTotal(q, total);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return workload.query(a).priority > workload.query(b).priority;
  });

  // Region-workload wrapper gives us projection over the output dims.
  const Workload projection = workload.AsRegionWorkload();

  for (int q : order) {
    const TopKQuery& query = workload.query(q);
    PointSet joined(workload.num_output_dims());
    FullJoinProject(r, t, projection, query.join_key, joined, report.stats,
                    clock);

    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(joined.size());
    for (int64_t i = 0; i < joined.size(); ++i) {
      scored.emplace_back(workload.Score(q, joined.row(i)), i);
    }
    const int64_t k =
        std::min<int64_t>(query.k, static_cast<int64_t>(scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
    const int64_t sort_ops = static_cast<int64_t>(
        static_cast<double>(scored.size()) *
        std::log2(1.0 + static_cast<double>(std::max<int64_t>(1, k))));
    report.stats.dominance_cmps += sort_ops;
    clock.ChargeDominanceCmps(sort_ops);

    for (int64_t i = 0; i < k; ++i) {
      const double now = clock.Now();
      const double utility = tracker.OnResult(q, now);
      clock.ChargeEmits(1);
      ++report.stats.emitted_results;
      if (options.on_result) options.on_result(q, now, utility);
      if (options.capture_results) {
        ReportedResult result;
        result.tuple_id = scored[i].second;
        result.time = now;
        result.utility = utility;
        result.values.assign(
            joined.row(scored[i].second),
            joined.row(scored[i].second) + joined.width());
        report.queries[q].tuples.push_back(std::move(result));
      }
    }
  }

  FinalizeReport(tracker, clock, timer, report);
  return report;
}

}  // namespace caqe
