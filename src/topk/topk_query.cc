#include "topk/topk_query.h"

namespace caqe {

Status TopKWorkload::Validate(const Table& r, const Table& t) const {
  if (queries_.empty()) {
    return Status::InvalidArgument("top-k workload has no queries");
  }
  if (output_dims_.empty()) {
    return Status::InvalidArgument("top-k workload has no output dimensions");
  }
  for (const MappingFunction& f : output_dims_) {
    if (f.r_attr < 0 || f.r_attr >= r.num_attrs() || f.t_attr < 0 ||
        f.t_attr >= t.num_attrs()) {
      return Status::InvalidArgument("mapping references invalid attribute");
    }
    if (f.wr < 0.0 || f.wt < 0.0) {
      return Status::InvalidArgument("mapping weights must be non-negative");
    }
  }
  for (const TopKQuery& q : queries_) {
    if (q.join_key < 0 || q.join_key >= r.num_keys() ||
        q.join_key >= t.num_keys()) {
      return Status::InvalidArgument("query " + q.name +
                                     " references invalid join key");
    }
    if (static_cast<int>(q.weights.size()) != num_output_dims()) {
      return Status::InvalidArgument("query " + q.name +
                                     " weight vector has wrong arity");
    }
    for (double w : q.weights) {
      if (w < 0.0) {
        return Status::InvalidArgument("query " + q.name +
                                       " has negative scoring weight");
      }
    }
    if (q.k <= 0) {
      return Status::InvalidArgument("query " + q.name + " has k <= 0");
    }
  }
  return Status::OK();
}

Workload TopKWorkload::AsRegionWorkload() const {
  Workload workload;
  for (const MappingFunction& f : output_dims_) workload.AddOutputDim(f);
  for (const TopKQuery& q : queries_) {
    SjQuery sj;
    sj.name = q.name;
    sj.join_key = q.join_key;
    // Preference dims = dimensions with non-zero weight (region lineage and
    // join bookkeeping only care about the predicate, but Validate needs a
    // non-empty preference).
    for (size_t i = 0; i < q.weights.size(); ++i) {
      if (q.weights[i] > 0.0) sj.preference.push_back(static_cast<int>(i));
    }
    if (sj.preference.empty()) sj.preference.push_back(0);
    sj.priority = q.priority;
    workload.AddQuery(std::move(sj));
  }
  return workload;
}

}  // namespace caqe
