// Top-K-over-join queries: the second multi-criteria decision-support
// query class (paper Sections 1.2 and 2 list Top-K alongside skylines; the
// contract-driven principles "are general and can be extended to other
// classes of queries"). This module is that extension.
//
// A Top-K query scores every join result with a monotone weighted sum over
// the workload's output dimensions and asks for the k lowest-scoring
// results. Contracts, the virtual clock, the input partitioning, and the
// coarse join (output regions) are all shared with the skyline engines;
// what changes is the per-region benefit (score bounds instead of dominance
// volumes) and the emission rule (a result is final once its score is at
// most every pending region's score lower bound).
#ifndef CAQE_TOPK_TOPK_QUERY_H_
#define CAQE_TOPK_TOPK_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "data/table.h"
#include "query/query.h"

namespace caqe {

/// One Top-K-over-join query.
struct TopKQuery {
  std::string name;
  /// Join-key column of the equi-join predicate.
  int join_key = 0;
  /// Non-negative scoring weights, one per workload output dimension
  /// (smaller weighted sums are better). Zero weights ignore a dimension.
  std::vector<double> weights;
  /// Number of results requested (> 0).
  int64_t k = 10;
  /// Scheduling priority in [0, 1] (serial baselines process descending).
  double priority = 1.0;
};

/// A workload of Top-K queries over a shared output space (the same
/// MappingFunction-based output dimensions as skyline workloads).
class TopKWorkload {
 public:
  int AddOutputDim(const MappingFunction& f) {
    output_dims_.push_back(f);
    return static_cast<int>(output_dims_.size()) - 1;
  }

  int AddQuery(TopKQuery query) {
    CAQE_CHECK(!query.weights.empty());
    CAQE_CHECK(static_cast<int>(query.weights.size()) == num_output_dims());
    CAQE_CHECK(query.k > 0);
    queries_.push_back(std::move(query));
    return static_cast<int>(queries_.size()) - 1;
  }

  int num_output_dims() const {
    return static_cast<int>(output_dims_.size());
  }
  int num_queries() const { return static_cast<int>(queries_.size()); }
  const MappingFunction& output_dim(int i) const { return output_dims_[i]; }
  const TopKQuery& query(int i) const { return queries_[i]; }
  const std::vector<TopKQuery>& queries() const { return queries_; }
  const std::vector<MappingFunction>& output_dims() const {
    return output_dims_;
  }

  /// Computes all output values for join pair (row_r, row_t) into `out`.
  void Project(const Table& r, int64_t row_r, const Table& t, int64_t row_t,
               std::vector<double>& out) const {
    out.resize(output_dims_.size());
    for (size_t k = 0; k < output_dims_.size(); ++k) {
      const MappingFunction& f = output_dims_[k];
      out[k] = f.Apply(r.attr(row_r, f.r_attr), t.attr(row_t, f.t_attr));
    }
  }

  /// Weighted score of a projected output tuple for query `q`.
  double Score(int q, const double* values) const {
    const TopKQuery& query = queries_[q];
    double score = 0.0;
    for (size_t i = 0; i < query.weights.size(); ++i) {
      score += query.weights[i] * values[i];
    }
    return score;
  }

  /// Validates dimensions, weights, and key columns against the tables.
  Status Validate(const Table& r, const Table& t) const;

  /// The equivalent skyline Workload over the same output dimensions (used
  /// to reuse the region machinery, which is query-class agnostic).
  Workload AsRegionWorkload() const;

 private:
  std::vector<MappingFunction> output_dims_;
  std::vector<TopKQuery> queries_;
};

}  // namespace caqe

#endif  // CAQE_TOPK_TOPK_QUERY_H_
