// Synthetic dataset generators for stress-testing skyline algorithms.
//
// Implements the de-facto standard constructions of Börzsönyi, Kossmann and
// Stocker ("The skyline operator", ICDE 2001): independent, correlated and
// anti-correlated attribute distributions, extended with integer join-key
// columns whose domain size controls equi-join selectivity.
#ifndef CAQE_DATA_GENERATOR_H_
#define CAQE_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace caqe {

/// Attribute correlation family (paper Section 7.1, "Data Sets").
enum class Distribution {
  /// Each attribute drawn i.i.d. uniform.
  kIndependent,
  /// Attributes cluster around the main diagonal: a few tuples dominate
  /// almost everything, so skylines are tiny.
  kCorrelated,
  /// Attributes concentrated near a hyperplane of constant sum: good in one
  /// dimension implies bad in others, so skylines are very large.
  kAntiCorrelated,
};

/// Returns "independent" / "correlated" / "anticorrelated".
const char* DistributionName(Distribution d);

/// Configuration for GenerateTable.
struct GeneratorConfig {
  /// Number of rows to generate.
  int64_t num_rows = 0;
  /// Number of real-valued score attributes per row.
  int num_attrs = 2;
  /// Attribute range; the paper uses [1, 100].
  double attr_min = 1.0;
  double attr_max = 100.0;
  /// One equi-join key column is generated per entry; entry j holds the
  /// target selectivity sigma_j of an equi-join on column j between two
  /// tables generated with the same selectivity (key domain size is
  /// round(1/sigma_j), keys uniform).
  std::vector<double> join_selectivities;
  /// Probability that a row's join keys are derived from its first score
  /// attribute (key = floor(quantile * domain)) instead of drawn uniformly.
  /// 0 (default) keeps keys independent of attribute space; values near 1
  /// cluster keys spatially, which makes coarse join-signature pruning
  /// effective (categorical data in practice is clustered — paper
  /// Example 14's suppliers ship particular parts from particular regions).
  double join_key_correlation = 0.0;
  /// Attribute correlation family.
  Distribution distribution = Distribution::kIndependent;
  /// RNG seed; identical configs with identical seeds generate identical
  /// tables.
  uint64_t seed = 42;
};

/// Generates a table per `config`. Returns InvalidArgument on nonsensical
/// configs (non-positive rows, attr_min >= attr_max, selectivity outside
/// (0, 1]).
Result<Table> GenerateTable(const std::string& name,
                            const GeneratorConfig& config);

}  // namespace caqe

#endif  // CAQE_DATA_GENERATOR_H_
