// In-memory base tables for skyline-over-join workloads.
#ifndef CAQE_DATA_TABLE_H_
#define CAQE_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace caqe {

/// A base relation: `num_rows` tuples, each with `num_attrs` real-valued
/// score attributes (the inputs to mapping functions / skyline dimensions)
/// and `num_keys` integer join-key columns (one per join predicate the
/// workload may use).
///
/// Storage is flat and column-count fixed at construction; rows are addressed
/// by index. Tables are immutable after being built through TableBuilder.
class Table {
 public:
  Table(std::string name, int num_attrs, int num_keys)
      : name_(std::move(name)), num_attrs_(num_attrs), num_keys_(num_keys) {
    CAQE_CHECK(num_attrs >= 1);
    CAQE_CHECK(num_keys >= 0);
  }

  const std::string& name() const { return name_; }
  int num_attrs() const { return num_attrs_; }
  int num_keys() const { return num_keys_; }
  int64_t num_rows() const {
    return static_cast<int64_t>(attrs_.size()) / num_attrs_;
  }

  /// Score attribute `a` of row `row`.
  double attr(int64_t row, int a) const {
    CAQE_DCHECK(row >= 0 && row < num_rows());
    CAQE_DCHECK(a >= 0 && a < num_attrs_);
    return attrs_[row * num_attrs_ + a];
  }

  /// Join key `k` of row `row`.
  int32_t key(int64_t row, int k) const {
    CAQE_DCHECK(row >= 0 && row < num_rows());
    CAQE_DCHECK(k >= 0 && k < num_keys_);
    return keys_[row * num_keys_ + k];
  }

  /// Appends a row. `attrs` must have num_attrs() entries and `keys`
  /// num_keys() entries.
  void AppendRow(const std::vector<double>& attrs,
                 const std::vector<int32_t>& keys) {
    CAQE_CHECK(static_cast<int>(attrs.size()) == num_attrs_);
    CAQE_CHECK(static_cast<int>(keys.size()) == num_keys_);
    attrs_.insert(attrs_.end(), attrs.begin(), attrs.end());
    keys_.insert(keys_.end(), keys.begin(), keys.end());
  }

  /// Reserves storage for `n` rows.
  void Reserve(int64_t n) {
    attrs_.reserve(n * num_attrs_);
    keys_.reserve(n * num_keys_);
  }

 private:
  std::string name_;
  int num_attrs_;
  int num_keys_;
  std::vector<double> attrs_;
  std::vector<int32_t> keys_;
};

}  // namespace caqe

#endif  // CAQE_DATA_TABLE_H_
