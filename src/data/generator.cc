#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace caqe {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Fills `unit` (size d) with one point in [0,1]^d according to `dist`.
void SampleUnitPoint(Distribution dist, Rng& rng, std::vector<double>& unit) {
  const int d = static_cast<int>(unit.size());
  switch (dist) {
    case Distribution::kIndependent: {
      for (int k = 0; k < d; ++k) {
        unit[k] = rng.Uniform(0.0, 1.0);
      }
      return;
    }
    case Distribution::kCorrelated: {
      // A diagonal position plus small per-dimension jitter. Tuples near the
      // origin of the diagonal dominate nearly everything.
      const double v = rng.Uniform(0.0, 1.0);
      for (int k = 0; k < d; ++k) {
        unit[k] = Clamp01(v + rng.Normal(0.0, 0.05));
      }
      return;
    }
    case Distribution::kAntiCorrelated: {
      // A point near the hyperplane sum(a_k) = d * v with v normal around
      // 1/2: mass is spread along the trade-off surface, so being good in
      // one dimension implies being bad in another.
      const double v =
          std::min(0.95, std::max(0.05, rng.Normal(0.5, 0.08)));
      const double total = v * d;
      // Dirichlet(1,...,1) weights via normalized exponentials.
      double sum = 0.0;
      for (int k = 0; k < d; ++k) {
        unit[k] = -std::log(rng.Uniform(1e-12, 1.0));
        sum += unit[k];
      }
      for (int k = 0; k < d; ++k) {
        unit[k] = Clamp01(unit[k] / sum * total + rng.Normal(0.0, 0.01));
      }
      return;
    }
  }
}

}  // namespace

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anticorrelated";
  }
  return "unknown";
}

Result<Table> GenerateTable(const std::string& name,
                            const GeneratorConfig& config) {
  if (config.num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  if (config.num_attrs < 1) {
    return Status::InvalidArgument("num_attrs must be >= 1");
  }
  if (config.attr_min >= config.attr_max) {
    return Status::InvalidArgument("attr_min must be < attr_max");
  }
  for (double sigma : config.join_selectivities) {
    if (!(sigma > 0.0 && sigma <= 1.0)) {
      return Status::InvalidArgument("join selectivity must be in (0, 1]");
    }
  }
  if (config.join_key_correlation < 0.0 ||
      config.join_key_correlation > 1.0) {
    return Status::InvalidArgument("join_key_correlation must be in [0, 1]");
  }

  Rng rng(config.seed);
  const int d = config.num_attrs;
  const int num_keys = static_cast<int>(config.join_selectivities.size());
  Table table(name, d, num_keys);
  table.Reserve(config.num_rows);

  std::vector<int32_t> key_domains(num_keys);
  for (int j = 0; j < num_keys; ++j) {
    key_domains[j] = static_cast<int32_t>(
        std::max(1.0, std::round(1.0 / config.join_selectivities[j])));
  }

  std::vector<double> unit(d);
  std::vector<double> attrs(d);
  std::vector<int32_t> keys(num_keys);
  const double span = config.attr_max - config.attr_min;
  for (int64_t i = 0; i < config.num_rows; ++i) {
    SampleUnitPoint(config.distribution, rng, unit);
    for (int k = 0; k < d; ++k) {
      attrs[k] = config.attr_min + unit[k] * span;
    }
    for (int j = 0; j < num_keys; ++j) {
      if (config.join_key_correlation > 0.0 &&
          rng.Bernoulli(config.join_key_correlation)) {
        // Spatially clustered key: determined by the row's position along
        // the first attribute.
        keys[j] = static_cast<int32_t>(
            std::min<double>(key_domains[j] - 1, unit[0] * key_domains[j]));
      } else {
        keys[j] =
            static_cast<int32_t>(rng.UniformInt(0, key_domains[j] - 1));
      }
    }
    table.AppendRow(attrs, keys);
  }
  return table;
}

}  // namespace caqe
