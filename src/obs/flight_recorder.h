// Flight recorder: an always-on, fixed-capacity, lock-free ring of the most
// recent span and audit-ledger records.
//
// Purpose: when a wall-clock server misbehaves (drain failure, operator
// SIGQUIT, a hung request), the last few thousand observability events are
// dumpable *now*, without having configured tracing up front and without
// waiting for a drain that may never complete.
//
// Memory model (DESIGN.md §15): the ring is a power-of-two array of slots
// allocated once at construction. A writer claims slot `i = head++` (one
// atomic fetch_add), invalidates the slot's stamp, stores the entry as six
// relaxed atomic words, then publishes stamp = i+1 with release order. A
// reader (Dump) walks the last `capacity` indices, loads the stamp with
// acquire order before and after copying the words, and keeps the entry
// only if both loads observed i+1 — torn entries (a writer lapped the ring
// mid-copy) are dropped rather than misreported. Record is wait-free and
// performs zero allocations, so mirroring every span/ledger record through
// the flight recorder stays inside the PR 7 steady-state alloc gate
// (bench_alloc, <= 5 allocs/region).
//
// Entries carry only POD fields; `name` must be a string literal (the ring
// stores the pointer, exactly like SpanRecord).
#ifndef CAQE_OBS_FLIGHT_RECORDER_H_
#define CAQE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace caqe {

/// One flight-recorder entry: a compact mirror of either a span record
/// (kind 's') or an audit-ledger record (kind 'a').
struct FlightEntry {
  /// Global claim order (assigned by Record; oldest-first in Dump).
  uint64_t seq = 0;
  /// 's' = span, 'a' = audit record.
  char kind = 0;
  /// Span name or audit-kind name; must be a string literal.
  const char* name = "";
  int request_id = -1;
  int region = -1;
  /// Virtual time (audit records; 0 for spans — spans are wall-only).
  double vtime = 0.0;
  /// Wall microseconds against the writer's epoch.
  double wall_us = 0.0;
  /// Operation count / result count (kind-specific payload).
  int64_t value = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  /// Capacity is rounded up to a power of two; all memory is allocated
  /// here, never on the record path.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one entry. Lock-free, wait-free, allocation-free; safe from
  /// any number of threads. The entry's `seq` field is overwritten with
  /// the claimed slot index.
  void Record(FlightEntry entry);

  /// Consistent snapshot of the surviving ring contents, oldest first.
  /// Entries a concurrent writer was overwriting mid-copy are skipped.
  std::vector<FlightEntry> Dump() const;

  /// Dump() as one JSON object per line (the ring's export format):
  ///   {"seq":17,"kind":"audit","name":"decision","req":3,"region":-1,
  ///    "vtime":0.25,"value":0,"wall_us":812.4}
  std::string Jsonl() const;

  /// Total entries ever recorded (>= capacity() means the ring wrapped).
  uint64_t total() const { return head_.load(std::memory_order_relaxed); }

  size_t capacity() const { return mask_ + 1; }

 private:
  // Entry payload packed into fixed atomic words so concurrent Dump never
  // reads a torn non-atomic field (and stays clean under TSan).
  static constexpr int kWords = 6;

  struct alignas(64) Slot {
    std::atomic<uint64_t> stamp{0};  // 0 = empty/being written, else seq+1.
    std::atomic<uint64_t> words[kWords];
  };

  size_t mask_;
  std::atomic<uint64_t> head_{0};
  std::vector<Slot> slots_;
};

}  // namespace caqe

#endif  // CAQE_OBS_FLIGHT_RECORDER_H_
