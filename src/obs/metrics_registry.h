// Named metrics: counters, gauges, and fixed-bucket histograms with
// Prometheus text exposition and a JSON snapshot writer.
//
// Metric names follow the Prometheus convention and may carry a baked-in
// label set: `caqe_serve_admission_decisions_total{decision="admit"}`.
// Registration is get-or-create and returns a stable reference, so hot
// paths resolve their metrics once and then update lock-free (counters and
// gauges are atomics; histogram observation takes a short per-histogram
// lock).
//
// Everything here is observability-only: nothing in this file may feed a
// deterministic counter, the virtual clock, or any scheduling decision —
// reports must stay byte-identical with metrics enabled or disabled.
#ifndef CAQE_OBS_METRICS_REGISTRY_H_
#define CAQE_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace caqe {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;
    /// Cumulative counts per bound (Prometheus `le` semantics), excluding
    /// the +Inf bucket (== count).
    std::vector<int64_t> cumulative;
    int64_t count = 0;
    double sum = 0.0;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;  // Per-bucket (non-cumulative), +Inf last.
  int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Upper bounds start, start*factor, ... (count values) — the usual
/// latency-histogram ladder.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
/// Symmetric relative-error bounds around zero:
/// {-b_k..-b_1, 0, b_1..b_k} for b = {0.05, 0.1, 0.25, 0.5, 1, 2, 5}.
std::vector<double> RelativeErrorBuckets();

/// Thread-safe name -> metric registry. References returned by the
/// accessors stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; `bounds` are only consulted on first creation.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus text exposition (sorted by name; one `# TYPE` line per
  /// metric family). Deterministic given deterministic metric values.
  std::string PrometheusText() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Names are JSON-escaped, so hostile query names in labels stay valid.
  std::string JsonSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace caqe

#endif  // CAQE_OBS_METRICS_REGISTRY_H_
