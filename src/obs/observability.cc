#include "obs/observability.h"

#include "metrics/report.h"
#include "partition/cell_index.h"

namespace caqe {

void RecordEngineStats(MetricsRegistry& registry, const EngineStats& stats) {
  registry.counter("caqe_engine_join_probes_total").Inc(stats.join_probes);
  registry.counter("caqe_engine_join_results_total").Inc(stats.join_results);
  registry.counter("caqe_engine_dominance_cmps_total")
      .Inc(stats.dominance_cmps);
  registry.counter("caqe_engine_coarse_ops_total").Inc(stats.coarse_ops);
  registry.counter("caqe_engine_emitted_results_total")
      .Inc(stats.emitted_results);
  registry.counter("caqe_engine_regions_built_total").Inc(stats.regions_built);
  registry.counter("caqe_engine_regions_processed_total")
      .Inc(stats.regions_processed);
  registry.counter("caqe_engine_regions_discarded_total")
      .Inc(stats.regions_discarded);
  registry.gauge("caqe_engine_virtual_seconds").Set(stats.virtual_seconds);
  registry.gauge("caqe_engine_wall_seconds").Set(stats.wall_seconds);
  registry.gauge("caqe_engine_wall_phase_seconds{phase=\"region_build\"}")
      .Set(stats.wall_region_build_seconds);
  registry.gauge("caqe_engine_wall_phase_seconds{phase=\"join\"}")
      .Set(stats.wall_join_seconds);
  registry.gauge("caqe_engine_wall_phase_seconds{phase=\"eval\"}")
      .Set(stats.wall_eval_seconds);
  registry.gauge("caqe_engine_wall_phase_seconds{phase=\"discard\"}")
      .Set(stats.wall_discard_seconds);
}

void RecordCoarseIndexStats(MetricsRegistry& registry,
                            const CoarseIndexStats& stats) {
  registry.counter("caqe_coarse_index_trees_total").Inc(stats.trees_built);
  registry.counter("caqe_coarse_index_entries_total")
      .Inc(stats.build_entries);
  registry.counter("caqe_coarse_index_nodes_visited_total")
      .Inc(stats.nodes_visited);
  registry.counter("caqe_coarse_index_nodes_pruned_total")
      .Inc(stats.nodes_pruned);
  registry.counter("caqe_coarse_index_entries_tested_total")
      .Inc(stats.entries_tested);
  registry.counter("caqe_coarse_index_entries_bulk_total")
      .Inc(stats.entries_bulk);
  registry.counter("caqe_coarse_index_scan_equiv_total").Inc(stats.scan_equiv);
}

}  // namespace caqe
