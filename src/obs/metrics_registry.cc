#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json_util.h"
#include "common/macros.h"

namespace caqe {

namespace {

/// Shortest round-trip double formatting (%g keeps bucket labels like
/// "0.005" readable and locale-independent).
std::string MetricDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Splits "base{labels}" into base and the label body (without braces).
void SplitLabels(const std::string& name, std::string& base,
                 std::string& labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// Renders "base{labels,extra}" (any of labels/extra may be empty).
std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra) {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CAQE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);  // +Inf bucket last.
}

void Histogram::Observe(double v) {
  // Prometheus `le` semantics: bucket i counts v <= bounds[i], so the
  // target is the first bound >= v; past the last bound lands in +Inf.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[bucket] += 1;
  count_ += 1;
  sum_ += v;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.count = count_;
  snapshot.sum = sum_;
  int64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += buckets_[i];
    snapshot.cumulative.push_back(running);
  }
  return snapshot;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  CAQE_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> RelativeErrorBuckets() {
  const std::vector<double> ladder = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0};
  std::vector<double> bounds;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    bounds.push_back(-*it);
  }
  bounds.push_back(0.0);
  for (double b : ladder) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_base;
  for (const auto& [name, counter] : counters_) {
    std::string base, labels;
    SplitLabels(name, base, labels);
    if (base != last_base) {
      out += "# TYPE " + base + " counter\n";
      last_base = base;
    }
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    std::string base, labels;
    SplitLabels(name, base, labels);
    if (base != last_base) {
      out += "# TYPE " + base + " gauge\n";
      last_base = base;
    }
    out += name + " " + MetricDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string base, labels;
    SplitLabels(name, base, labels);
    out += "# TYPE " + base + " histogram\n";
    const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
    for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
      out += WithLabels(base + "_bucket", labels,
                        "le=\"" + MetricDouble(snapshot.bounds[i]) + "\"") +
             " " + std::to_string(snapshot.cumulative[i]) + "\n";
    }
    out += WithLabels(base + "_bucket", labels, "le=\"+Inf\"") + " " +
           std::to_string(snapshot.count) + "\n";
    out += WithLabels(base + "_sum", labels, "") + " " +
           MetricDouble(snapshot.sum) + "\n";
    out += WithLabels(base + "_count", labels, "") + " " +
           std::to_string(snapshot.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    JsonAppendString(out, name);
    out += ":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    JsonAppendString(out, name);
    out += ":" + MetricDouble(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    JsonAppendString(out, name);
    const Histogram::Snapshot snapshot = histogram->TakeSnapshot();
    out += ":{\"count\":" + std::to_string(snapshot.count);
    out += ",\"sum\":" + MetricDouble(snapshot.sum);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"le\":" + MetricDouble(snapshot.bounds[i]) +
             ",\"count\":" + std::to_string(snapshot.cumulative[i]) + "}";
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

}  // namespace caqe
