// Contract audit ledger: one record per contract-relevant event in a
// request's life — arrival, admission decision, graft, per-region progress
// (pScore before/after a weight update), first result, cancel, and the
// terminal finish with estimate-vs-observed service time.
//
// Determinism contract (DESIGN.md §15): records are appended only from the
// serial driver thread at virtual timestamps, so for a recorded session the
// ledger — minus the `wall_us` field, which is emitted *last* in every line
// precisely so tools can strip it — is byte-identical between the live run
// and `caqe_serve --replay`, across threads x pipeline x compact_layout
// (scripts/run_net_matrix.sh diffs it). Like every obs structure the ledger
// is write-only: no engine decision may read it.
//
// Alloc discipline: records are PODs (phase/reason are string-literal
// pointers; request *names* are never stored — resolve them through the
// server), pushed into one pre-reserved vector under a mutex. Past
// `capacity` new records are counted in dropped() instead of growing
// unboundedly; dropped records still reach the flight recorder's ring.
#ifndef CAQE_OBS_LEDGER_H_
#define CAQE_OBS_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace caqe {

class FlightRecorder;

enum class AuditKind : uint8_t {
  kArrival = 0,
  kDecision,
  kGraft,
  kRegionStep,
  kFirstResult,
  kCancel,
  kFinish,
  /// A calibration shift re-previewed a deferred request (serve layer);
  /// carries before/after admission estimates.
  kRepreview,
};

/// Stable lower-case name ("arrival", "decision", ...). Returned pointer is
/// a string literal.
const char* AuditKindName(AuditKind kind);

/// One ledger record. Field relevance depends on `kind`; irrelevant fields
/// keep their zero values and are omitted from the JSON line. `phase` and
/// `reason` must point to string literals (static storage duration).
struct AuditRecord {
  AuditKind kind = AuditKind::kArrival;
  int request_id = -1;
  /// Global append order; assigned by Append.
  uint64_t seq = 0;
  /// Causal span ids (TraceSink span ids; 0 = none). `span` is the span
  /// recording this event, `parent` its causal parent — together with the
  /// span stream they form the request's causal tree.
  uint64_t span = 0;
  uint64_t parent = 0;
  /// Virtual time of the event (deterministic).
  double vtime = 0.0;
  /// Responsible region (kRegionStep) or -1.
  int region = -1;
  /// Decision/status name for decision/cancel/finish records.
  const char* phase = nullptr;
  /// Admission/termination reason, when one applies.
  const char* reason = nullptr;
  int64_t results = 0;
  double pscore_before = 0.0;
  double pscore = 0.0;
  /// Eq. 11 satisfaction weight after the update (kRegionStep).
  double weight = 0.0;
  double est_first_seconds = 0.0;
  double est_finish_seconds = 0.0;
  /// Pre-shift estimates of a kRepreview record (est_* hold the post-shift
  /// values the re-decision used).
  double est_first_before_seconds = 0.0;
  double est_finish_before_seconds = 0.0;
  /// Observed service time at completion (kFinish).
  double observed_seconds = 0.0;
  double expected_utility = 0.0;
  int64_t lineage_regions = 0;
  /// Wall microseconds against the ledger's epoch; assigned by Append.
  /// Always the *last* JSON field so `--normalize-wall` diffs can strip it.
  double wall_us = 0.0;
};

/// One record as a single-line JSON object (no trailing newline). With
/// `include_wall` false the `,"wall_us":...` suffix is omitted entirely —
/// the normalized form the replay determinism gates compare.
std::string AuditRecordJson(const AuditRecord& record,
                            bool include_wall = true);

class AuditLedger {
 public:
  AuditLedger();

  /// Appends one record (assigns seq + wall_us; mirrors into the flight
  /// recorder when one is attached). Thread-safe, though the determinism
  /// contract additionally requires all appends to come from the serial
  /// driver thread.
  void Append(AuditRecord record);

  /// All records in append order.
  std::vector<AuditRecord> Snapshot() const;

  /// The last `max_records` records for `request_id`, in append order.
  std::vector<AuditRecord> Tail(int request_id, size_t max_records) const;

  /// One JSON object per line per record, append order.
  std::string Jsonl(bool include_wall = true) const;

  int64_t dropped() const;
  size_t size() const;
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  /// Mirror every appended record (kept or dropped) into `flight`.
  void set_flight(FlightRecorder* flight) { flight_ = flight; }

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 18;
  int64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<AuditRecord> records_;
  FlightRecorder* flight_ = nullptr;
  // Wall epoch for wall_us (observability-only, never deterministic).
  double epoch_ns_ = 0.0;
};

}  // namespace caqe

#endif  // CAQE_OBS_LEDGER_H_
