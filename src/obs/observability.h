// Observability bundle: one object owning the trace sink, the metrics
// registry, and the contract-health sampler for a run.
//
// Pass a pointer to an Observability through ExecOptions / ServeOptions to
// enable tracing and metrics; leave it null (the default) for zero-cost
// disabled spans. The bundle is observability-only by construction — no
// engine code may read it to make a decision, so deterministic reports stay
// byte-identical whether or not one is attached (scripts/run_obs_matrix.sh
// proves this).
#ifndef CAQE_OBS_OBSERVABILITY_H_
#define CAQE_OBS_OBSERVABILITY_H_

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace caqe {

struct CoarseIndexStats;
struct EngineStats;

struct Observability {
  TraceSink spans;
  MetricsRegistry metrics;
  ContractHealth health;
  AuditLedger ledger;
  FlightRecorder flight;

  /// The flight recorder mirrors every span and ledger record (always-on,
  /// pre-sampling), so the ring is a complete recent-history view even
  /// when span sampling or the ledger capacity cap is active.
  Observability() {
    spans.set_flight(&flight);
    ledger.set_flight(&flight);
  }

  /// Convenience: sink for spans, or nullptr when `obs` is null.
  static TraceSink* Spans(Observability* obs) {
    return obs == nullptr ? nullptr : &obs->spans;
  }

  /// Convenience: audit ledger, or nullptr when `obs` is null.
  static AuditLedger* Ledger(Observability* obs) {
    return obs == nullptr ? nullptr : &obs->ledger;
  }

  /// Chrome/Perfetto trace of everything collected (spans + health tracks).
  std::string ChromeTrace() const {
    return ChromeTraceJson(spans.Snapshot(), &health);
  }
};

/// Mirrors the deterministic EngineStats counters and the wall_* phase
/// buckets into `registry` as caqe_engine_* gauges/counters. Call once per
/// completed run.
void RecordEngineStats(MetricsRegistry& registry, const EngineStats& stats);

/// Accumulates the tree-indexed coarse phase's traversal counters into
/// `registry` as caqe_coarse_index_* counters. These never feed the
/// deterministic report — they describe the index's work (and the flat
/// scan's equivalent) for introspection and the coarse-index bench.
void RecordCoarseIndexStats(MetricsRegistry& registry,
                            const CoarseIndexStats& stats);

}  // namespace caqe

#endif  // CAQE_OBS_OBSERVABILITY_H_
