#include "obs/span.h"

#include <algorithm>
#include <cstdio>

#include "common/json_util.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"

namespace caqe {

namespace {

/// Fixed-width double formatting for JSON (enough digits for microsecond
/// timestamps, no locale dependence).
std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::atomic<int> g_next_thread_id{0};

}  // namespace

int LogicalThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

void TraceSink::Record(SpanRecord record) {
  // The flight recorder mirrors everything, before sampling: its ring is
  // the always-on last-resort view and must not share the sink's blind
  // spots.
  if (FlightRecorder* flight = flight_.load(std::memory_order_acquire)) {
    FlightEntry entry;
    entry.kind = 's';
    entry.name = record.name;
    entry.request_id = record.query;
    entry.region = record.region;
    entry.wall_us = record.start_us;
    entry.value = record.arg_value;
    flight->Record(entry);
  }
  // Sticky tree sampling: keep or drop whole causal trees, keyed by the
  // root span id, so a kept parent never loses its children. Spans with no
  // identity (sink-less construction paths) fall back to seq.
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every > 1) {
    const uint64_t key =
        record.root != 0 ? record.root : (record.id != 0 ? record.id
                                                         : record.seq);
    if (key % every != 0) return;
  }
  Shard& shard = shards_[LogicalThreadId() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.records.push_back(record);
}

std::vector<SpanRecord> TraceSink::Snapshot() const {
  std::vector<SpanRecord> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.insert(merged.end(), shard.records.begin(), shard.records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return merged;
}

std::vector<SpanRecord> TraceSink::Drain() {
  std::vector<SpanRecord> merged;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.insert(merged.end(), shard.records.begin(), shard.records.end());
    shard.records.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return merged;
}

size_t TraceSink::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.records.size();
  }
  return total;
}

std::string ChromeSpanJson(const SpanRecord& span) {
  std::string event = "{\"name\":";
  JsonAppendString(event, span.name);
  event += ",\"cat\":";
  JsonAppendString(event, span.category);
  event += ",\"ph\":\"X\",\"ts\":" + JsonDouble(span.start_us);
  event += ",\"dur\":" + JsonDouble(span.dur_us);
  event += ",\"pid\":0,\"tid\":" + std::to_string(span.tid);
  event += ",\"args\":{\"seq\":" + std::to_string(span.seq);
  if (span.id != 0) {
    event += ",\"span\":" + std::to_string(span.id);
    event += ",\"parent\":" + std::to_string(span.parent);
  }
  if (span.region >= 0) {
    event += ",\"region\":" + std::to_string(span.region);
  }
  if (span.query >= 0) event += ",\"query\":" + std::to_string(span.query);
  if (span.arg_name != nullptr) {
    event += ',';
    JsonAppendString(event, span.arg_name);
    event += ':' + std::to_string(span.arg_value);
  }
  event += "}}";
  return event;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const ContractHealth* health) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append_event = [&](const std::string& body) {
    if (!first) out += ",\n";
    first = false;
    out += body;
  };

  // Process metadata: pid 0 carries the wall-clock spans, pid 1 the
  // virtual-time contract-health counters (their timestamps are virtual
  // seconds, a different clock domain than the spans').
  append_event(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"caqe wall clock\"}}");
  if (health != nullptr) {
    append_event(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"caqe virtual clock (contract health)\"}}");
  }

  for (const SpanRecord& span : spans) {
    append_event(ChromeSpanJson(span));
  }

  if (health != nullptr) {
    // Counter tracks: one pScore and one weight series per query, stamped
    // in virtual microseconds so trajectories render as Perfetto counters.
    for (const HealthSample& sample : health->Snapshot()) {
      const std::string label = health->LabelOf(sample.id);
      std::string event = "{\"name\":";
      JsonAppendString(event, "pscore " + label);
      event += ",\"ph\":\"C\",\"ts\":" + JsonDouble(sample.vtime * 1e6);
      event += ",\"pid\":1,\"tid\":0,\"args\":{\"pscore\":" +
               JsonDouble(sample.pscore) + "}}";
      append_event(event);
      event = "{\"name\":";
      JsonAppendString(event, "weight " + label);
      event += ",\"ph\":\"C\",\"ts\":" + JsonDouble(sample.vtime * 1e6);
      event += ",\"pid\":1,\"tid\":0,\"args\":{\"weight\":" +
               JsonDouble(sample.weight) + "}}";
      append_event(event);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string SpansJsonl(const std::vector<SpanRecord>& spans,
                       bool include_timing) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += "{\"name\":";
    JsonAppendString(out, span.name);
    out += ",\"cat\":";
    JsonAppendString(out, span.category);
    out += ",\"seq\":" + std::to_string(span.seq);
    out += ",\"span\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    out += ",\"root\":" + std::to_string(span.root);
    out += ",\"region\":" + std::to_string(span.region);
    out += ",\"query\":" + std::to_string(span.query);
    if (span.arg_name != nullptr) {
      out += ",\"arg\":";
      JsonAppendString(out, span.arg_name);
      out += ",\"value\":" + std::to_string(span.arg_value);
    }
    if (include_timing) {
      out += ",\"ts_us\":" + JsonDouble(span.start_us);
      out += ",\"dur_us\":" + JsonDouble(span.dur_us);
      out += ",\"tid\":" + std::to_string(span.tid);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace caqe
