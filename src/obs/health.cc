#include "obs/health.h"

#include <cstdio>

#include "common/json_util.h"

namespace caqe {

namespace {

std::string HealthDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", v);
  return buf;
}

}  // namespace

void ContractHealth::SetName(int id, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  names_[id] = std::move(name);
}

void ContractHealth::Sample(double vtime, int id, int64_t results,
                            double pscore, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = last_.find(id);
  if (it != last_.end() && it->second.results == results &&
      it->second.pscore == pscore && it->second.weight == weight) {
    return;  // Unchanged since the last sample.
  }
  const HealthSample sample{vtime, id, results, pscore, weight};
  last_[id] = sample;
  if (samples_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  samples_.push_back(sample);
}

std::vector<HealthSample> ContractHealth::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string ContractHealth::LabelOf(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = names_.find(id);
  const std::string name = it == names_.end() ? "" : it->second;
  return name + "#" + std::to_string(id);
}

std::string ContractHealth::Jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const HealthSample& sample : samples_) {
    out += "{\"vtime\":" + HealthDouble(sample.vtime);
    out += ",\"id\":" + std::to_string(sample.id);
    const auto it = names_.find(sample.id);
    if (it != names_.end()) {
      out += ",\"name\":";
      JsonAppendString(out, it->second);
    }
    out += ",\"results\":" + std::to_string(sample.results);
    out += ",\"pscore\":" + HealthDouble(sample.pscore);
    out += ",\"weight\":" + HealthDouble(sample.weight);
    out += "}\n";
  }
  return out;
}

int64_t ContractHealth::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t ContractHealth::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

}  // namespace caqe
