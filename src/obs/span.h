// Trace spans: scoped wall-clock regions with deterministic attribution.
//
// A TraceSpan measures one scoped stretch of work (a pipeline phase, an
// admission decision, a graft) and records it into a lock-sharded TraceSink.
// Spans carry two kinds of payload:
//
//   * deterministic args — region id, query id, and one named operation
//     count (e.g. the dominance_cmps delta of an eval phase). These are
//     identical across thread counts and SIMD builds, so two traces diff
//     cleanly on everything except their timestamps.
//   * wall timing — start/duration against the sink's epoch. Wall times are
//     observability-only; nothing downstream of a span may feed a
//     deterministic counter or the virtual clock (see DESIGN.md §10).
//
// Cost discipline: a span whose sink is null and whose wall accumulator is
// null is a single branch in the constructor and one in the destructor — no
// clock reads. The tracing layer is compiled in unconditionally and enabled
// by handing an Observability to the options structs.
//
// Thread ownership: the optional `wall_sink` double accumulator keeps the
// legacy PhaseTimer contract — it is written on destruction without
// synchronization, so a given accumulator must only ever be written from
// one thread at a time (all current call sites construct and destroy their
// spans on the serial driver thread). Cross-thread recording goes through
// the sharded sink, which is safe from any number of threads concurrently
// (obs_test.cc covers this under ThreadSanitizer).
#ifndef CAQE_OBS_SPAN_H_
#define CAQE_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace caqe {

class FlightRecorder;

/// One completed span. `name`, `category`, and `arg_name` must point to
/// string literals (static storage duration) — the sink stores the pointer.
struct SpanRecord {
  const char* name = "";
  const char* category = "";
  /// Global record order (atomic). With spans emitted from the serial
  /// driver thread (every current call site), seq order is deterministic,
  /// which is what makes the timing-free JSONL export byte-comparable.
  uint64_t seq = 0;
  /// Span identity (assigned at TraceSpan *construction*, so a parent's id
  /// is always smaller than its children's) and causal links; 0 = none.
  /// `root` names the tree this span belongs to — the sampling unit.
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t root = 0;
  /// Wall start/duration in microseconds against the sink's epoch.
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Logical thread id (stable per OS thread for the process lifetime).
  int tid = 0;
  /// Deterministic attribution; -1 = not applicable.
  int region = -1;
  int query = -1;
  /// One named operation count (nullptr when unused).
  const char* arg_name = nullptr;
  int64_t arg_value = 0;
};

/// Thread-safe span collector. Records land in one of kShards vectors keyed
/// by the recording thread's logical id, so concurrent writers from a
/// thread pool contend only when they hash to the same shard.
class TraceSink {
 public:
  static constexpr int kShards = 16;

  TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Records one span; safe from any thread. When sampling is enabled
  /// (set_sample_every > 1) the keep/drop decision is *sticky per causal
  /// tree*: a span is kept iff its root span id (its own id when it is the
  /// root) is a multiple of the sampling period, so a sampled tree is kept
  /// or dropped whole — children are never orphaned from a kept parent.
  /// The rule is deterministic: two runs with the same span stream sample
  /// identically. Every record is mirrored into the flight recorder (when
  /// one is attached) *before* sampling — the ring is always-on.
  void Record(SpanRecord record);

  /// Merged view of every shard, sorted by `seq` (global record order).
  std::vector<SpanRecord> Snapshot() const;

  /// Moves the collected records out (sorted by seq) and leaves the sink
  /// empty. The incremental-flush trace writer drains periodically so a
  /// long-lived wall-clock server does not accumulate spans unboundedly.
  /// Safe against concurrent Record; records landing mid-drain are
  /// collected by the next one.
  std::vector<SpanRecord> Drain();

  /// Keep only every `n`-th causal tree (by root span id); 1 (the default)
  /// keeps all. Values < 1 are treated as 1.
  void set_sample_every(int n) {
    sample_every_.store(n < 1 ? 1 : n, std::memory_order_relaxed);
  }

  /// Mirror every recorded span (pre-sampling) into `flight`.
  void set_flight(FlightRecorder* flight) {
    flight_.store(flight, std::memory_order_release);
  }

  /// Total records across shards.
  size_t size() const;

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Next global sequence number (used by TraceSpan on destruction).
  uint64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Next span id (used by TraceSpan on construction). Ids start at 1 so
  /// 0 always means "no span".
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> records;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> sample_every_{1};
  std::atomic<FlightRecorder*> flight_{nullptr};
  Shard shards_[kShards];
};

/// Stable logical id of the calling OS thread (assigned on first use).
int LogicalThreadId();

/// Scoped span. Construct at the top of the region of interest; the
/// destructor records into `sink` (when non-null) and accumulates the
/// elapsed seconds into `wall_sink` (when non-null — the single-writer
/// PhaseTimer contract, see file comment).
class TraceSpan {
 public:
  explicit TraceSpan(TraceSink* sink, const char* name, const char* category,
                     double* wall_sink = nullptr)
      : sink_(sink), wall_sink_(wall_sink), name_(name), category_(category) {
    if (sink_ == nullptr && wall_sink_ == nullptr) return;  // Disabled.
    if (sink_ != nullptr) id_ = sink_->NextSpanId();
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (sink_ == nullptr && wall_sink_ == nullptr) return;  // Disabled.
    const auto end = std::chrono::steady_clock::now();
    if (wall_sink_ != nullptr) {
      *wall_sink_ += std::chrono::duration<double>(end - start_).count();
    }
    if (sink_ == nullptr) return;
    SpanRecord record;
    record.name = name_;
    record.category = category_;
    record.seq = sink_->NextSeq();
    record.start_us =
        std::chrono::duration<double, std::micro>(start_ - sink_->epoch())
            .count();
    record.dur_us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    record.tid = LogicalThreadId();
    record.region = region_;
    record.query = query_;
    record.arg_name = arg_name_;
    record.arg_value = arg_value_;
    record.id = id_;
    record.parent = parent_;
    // An unparented span roots its own causal tree.
    record.root = root_ != 0 ? root_ : id_;
    sink_->Record(record);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_region(int region) { region_ = region; }
  void set_query(int query) { query_ = query; }
  /// `name` must be a string literal.
  void set_arg(const char* name, int64_t value) {
    arg_name_ = name;
    arg_value_ = value;
  }
  /// Links this span under `parent` within the tree rooted at `root`
  /// (pass the parent's own id as `root` when the parent is the root).
  void set_parent(uint64_t parent, uint64_t root) {
    parent_ = parent;
    root_ = root;
  }
  /// This span's id (0 when the sink is disabled).
  uint64_t id() const { return id_; }

 private:
  TraceSink* sink_;
  double* wall_sink_;
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_;
  int region_ = -1;
  int query_ = -1;
  const char* arg_name_ = nullptr;
  int64_t arg_value_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t root_ = 0;
};

class ContractHealth;

/// Chrome/Perfetto `trace_event` JSON of `spans` (complete "X" events,
/// ts/dur in microseconds). When `health` is non-null its per-query pScore
/// and weight timelines are appended as counter ("C") tracks on a separate
/// virtual-time process, so contract health is inspectable on the same
/// timeline. Load at ui.perfetto.dev or chrome://tracing.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const ContractHealth* health = nullptr);

/// One span as a Chrome trace_event JSON object (the element form used
/// inside ChromeTraceJson's traceEvents array) — the unit the streaming
/// trace writer appends incrementally.
std::string ChromeSpanJson(const SpanRecord& span);

/// One JSON object per line per span, in seq order, following the
/// repository's JSONL convention. By default wall timings are *excluded*,
/// leaving only deterministic fields — two runs' exports byte-match iff
/// their span streams match (the tracing analogue of ExecEventsJsonl).
std::string SpansJsonl(const std::vector<SpanRecord>& spans,
                       bool include_timing = false);

}  // namespace caqe

#endif  // CAQE_OBS_SPAN_H_
