#include "obs/stream_writer.h"

#include <cerrno>
#include <cstring>

namespace caqe {

Result<std::unique_ptr<StreamingTraceWriter>> StreamingTraceWriter::Open(
    const std::string& path, Format format) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("stream writer: cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  auto writer = std::unique_ptr<StreamingTraceWriter>(
      new StreamingTraceWriter(file, format));
  if (format == Format::kChrome) {
    const std::string header =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"caqe wall clock\"}}";
    std::fwrite(header.data(), 1, header.size(), file);
    std::fflush(file);
  }
  return writer;
}

StreamingTraceWriter::~StreamingTraceWriter() { Close(); }

void StreamingTraceWriter::Append(const std::vector<SpanRecord>& spans) {
  if (file_ == nullptr || spans.empty()) return;
  std::string batch;
  for (const SpanRecord& span : spans) {
    if (format_ == Format::kChrome) {
      batch += ",\n";
      batch += ChromeSpanJson(span);
    } else {
      batch += SpansJsonl({span}, /*include_timing=*/true);
    }
  }
  std::fwrite(batch.data(), 1, batch.size(), file_);
  std::fflush(file_);
  spans_written_ += spans.size();
}

void StreamingTraceWriter::Close() {
  if (file_ == nullptr) return;
  if (format_ == Format::kChrome) {
    const char trailer[] = "\n]}\n";
    std::fwrite(trailer, 1, sizeof(trailer) - 1, file_);
  }
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace caqe
