// Incremental-flush trace writer for long-lived (wall-clock) runs.
//
// The batch tools snapshot the TraceSink once at exit and serialize
// everything (ChromeTraceJson). A server that runs for hours cannot do
// that: spans would accumulate unboundedly and a crash would lose the
// whole trace. StreamingTraceWriter instead appends drained span batches
// to the output file as they arrive and fflushes after every batch, so
// the file always holds a loadable prefix:
//
//   * kChrome — a Chrome/Perfetto trace_event file. The header and the
//     process-name metadata are written at Open; Close writes the `]}`
//     trailer. (Perfetto tolerates a missing trailer, so even a
//     crash-truncated file loads.)
//   * kJsonl — one JSON object per span per line (SpansJsonl with wall
//     timings included); trivially tail-able and crash-safe.
//
// Pair with TraceSink::Drain() + TraceSink::set_sample_every() to bound
// memory and trace size on the server's flush cadence.
#ifndef CAQE_OBS_STREAM_WRITER_H_
#define CAQE_OBS_STREAM_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace caqe {

class StreamingTraceWriter {
 public:
  enum class Format { kChrome, kJsonl };

  /// Opens `path` for writing and emits the format header.
  static Result<std::unique_ptr<StreamingTraceWriter>> Open(
      const std::string& path, Format format);

  ~StreamingTraceWriter();

  StreamingTraceWriter(const StreamingTraceWriter&) = delete;
  StreamingTraceWriter& operator=(const StreamingTraceWriter&) = delete;

  /// Appends a batch of spans (typically TraceSink::Drain()) and flushes.
  void Append(const std::vector<SpanRecord>& spans);

  /// Writes the trailer (kChrome) and closes the file. Idempotent; also
  /// invoked by the destructor.
  void Close();

  /// Spans written so far.
  size_t spans_written() const { return spans_written_; }

 private:
  StreamingTraceWriter(std::FILE* file, Format format)
      : file_(file), format_(format) {}

  std::FILE* file_ = nullptr;
  Format format_;
  size_t spans_written_ = 0;
};

}  // namespace caqe

#endif  // CAQE_OBS_STREAM_WRITER_H_
