// Per-request causal trace context.
//
// A RequestTraceContext names the causal position of the work currently
// running: which request it serves (if any) and which span is its causal
// parent. The serving layer threads one through admission -> graft ->
// region processing -> emission -> retire so every span a request touches
// links back to a single root "request" span, and the audit ledger's
// records carry the same span ids — together they reconstruct one
// connected causal tree per request (see DESIGN.md §15).
//
// The context is plain data: copying it is two words, and a
// default-constructed context means "no attribution" (batch runs, engine
// warm-up). It never feeds a deterministic decision — like every obs
// structure it is write-only from the engine's point of view.
#ifndef CAQE_OBS_TRACE_CONTEXT_H_
#define CAQE_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace caqe {

struct RequestTraceContext {
  /// Request id the current work is attributed to; -1 = not request-scoped
  /// (e.g. a shared region step serving every live query).
  int request_id = -1;
  /// Span id of the tree root ("request" span, or the umbrella
  /// "process_region" span for shared work); 0 = unattributed.
  uint64_t root_span = 0;
  /// Span id of the immediate causal parent; 0 = unattributed.
  uint64_t parent_span = 0;
};

}  // namespace caqe

#endif  // CAQE_OBS_TRACE_CONTEXT_H_
