// Contract-health introspection: per-query pScore trajectories and Eq. 11
// satisfaction-weight timelines.
//
// The execution loops (RunSharedCore, CaqeServer::Run) sample every live
// query after each region completes; a sample is recorded only when the
// query's (results, pscore, weight) triple changed, so the timeline stays
// proportional to actual progress instead of regions x queries. Samples
// are stamped with *virtual* time, which makes trajectories deterministic
// across thread counts and SIMD builds.
//
// Sampling is bounded: past `capacity` samples new ones are counted in
// dropped() instead of silently truncating the timeline.
#ifndef CAQE_OBS_HEALTH_H_
#define CAQE_OBS_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace caqe {

/// One contract-health sample. `id` is caller-defined: the serving layer
/// keys by request id, the batch engines by global query index.
struct HealthSample {
  double vtime = 0.0;
  int id = -1;
  int64_t results = 0;
  double pscore = 0.0;
  /// Scheduler satisfaction weight (Eq. 11); 1 when no scheduler runs.
  double weight = 1.0;
};

class ContractHealth {
 public:
  /// Binds a display name to `id` (query/request name; escaped at export).
  void SetName(int id, std::string name);

  /// Records a sample unless it equals the previous sample for `id`.
  void Sample(double vtime, int id, int64_t results, double pscore,
              double weight);

  /// All samples in record order (deterministic: sampling happens on the
  /// serial driver thread at virtual timestamps).
  std::vector<HealthSample> Snapshot() const;

  /// "name#id" when a name is bound, "#id" otherwise.
  std::string LabelOf(int id) const;

  /// One JSON object per line per sample:
  ///   {"vtime":...,"id":3,"name":"S3","results":5,"pscore":1.25,
  ///    "weight":0.75}
  std::string Jsonl() const;

  int64_t dropped() const;
  size_t size() const;
  void set_capacity(size_t capacity) { capacity_ = capacity; }

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 1 << 18;
  int64_t dropped_ = 0;
  std::vector<HealthSample> samples_;
  /// Last recorded sample per id (dedup state).
  std::map<int, HealthSample> last_;
  std::map<int, std::string> names_;
};

}  // namespace caqe

#endif  // CAQE_OBS_HEALTH_H_
