#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstring>

#include "common/json_util.h"

namespace caqe {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
      slots_(mask_ + 1) {}

void FlightRecorder::Record(FlightEntry entry) {
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  slot.stamp.store(0, std::memory_order_release);
  slot.words[0].store(reinterpret_cast<uintptr_t>(entry.name),
                      std::memory_order_relaxed);
  slot.words[1].store(
      static_cast<uint64_t>(static_cast<uint32_t>(entry.request_id)) |
          (static_cast<uint64_t>(static_cast<uint32_t>(entry.region)) << 32),
      std::memory_order_relaxed);
  slot.words[2].store(static_cast<uint64_t>(entry.kind),
                      std::memory_order_relaxed);
  slot.words[3].store(DoubleBits(entry.vtime), std::memory_order_relaxed);
  slot.words[4].store(DoubleBits(entry.wall_us), std::memory_order_relaxed);
  slot.words[5].store(static_cast<uint64_t>(entry.value),
                      std::memory_order_relaxed);
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEntry> FlightRecorder::Dump() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t capacity = mask_ + 1;
  const uint64_t begin = head > capacity ? head - capacity : 0;
  std::vector<FlightEntry> out;
  out.reserve(static_cast<size_t>(head - begin));
  for (uint64_t seq = begin; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    uint64_t words[kWords];
    for (int w = 0; w < kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_acquire);
    }
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    FlightEntry entry;
    entry.seq = seq;
    entry.name = reinterpret_cast<const char*>(
        static_cast<uintptr_t>(words[0]));
    entry.request_id = static_cast<int32_t>(words[1] & 0xffffffffu);
    entry.region = static_cast<int32_t>(words[1] >> 32);
    entry.kind = static_cast<char>(words[2]);
    entry.vtime = BitsDouble(words[3]);
    entry.wall_us = BitsDouble(words[4]);
    entry.value = static_cast<int64_t>(words[5]);
    if (entry.name == nullptr) entry.name = "";
    out.push_back(entry);
  }
  return out;
}

std::string FlightRecorder::Jsonl() const {
  std::string out;
  for (const FlightEntry& entry : Dump()) {
    out += "{\"seq\":" + std::to_string(entry.seq);
    out += ",\"kind\":";
    out += entry.kind == 's' ? "\"span\"" : "\"audit\"";
    out += ",\"name\":";
    JsonAppendString(out, entry.name);
    out += ",\"req\":" + std::to_string(entry.request_id);
    out += ",\"region\":" + std::to_string(entry.region);
    out += ",\"vtime\":" + JsonDouble(entry.vtime);
    out += ",\"value\":" + std::to_string(entry.value);
    out += ",\"wall_us\":" + JsonDouble(entry.wall_us);
    out += "}\n";
  }
  return out;
}

}  // namespace caqe
