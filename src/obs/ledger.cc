#include "obs/ledger.h"

#include <chrono>
#include <cstdio>

#include "obs/flight_recorder.h"

namespace caqe {

namespace {

/// Shortest round-trip formatting: deterministic doubles (vtime, pScore)
/// must export byte-identically between a live session and its replay.
std::string JsonExact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
        return shorter;
      }
    }
  }
  return buf;
}

std::string JsonWall(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kArrival:
      return "arrival";
    case AuditKind::kDecision:
      return "decision";
    case AuditKind::kGraft:
      return "graft";
    case AuditKind::kRegionStep:
      return "region_step";
    case AuditKind::kFirstResult:
      return "first_result";
    case AuditKind::kCancel:
      return "cancel";
    case AuditKind::kFinish:
      return "finish";
    case AuditKind::kRepreview:
      return "repreview";
  }
  return "unknown";
}

std::string AuditRecordJson(const AuditRecord& record, bool include_wall) {
  std::string out = "{\"seq\":" + std::to_string(record.seq);
  out += ",\"kind\":\"";
  out += AuditKindName(record.kind);
  out += "\",\"req\":" + std::to_string(record.request_id);
  out += ",\"vtime\":" + JsonExact(record.vtime);
  out += ",\"span\":" + std::to_string(record.span);
  out += ",\"parent\":" + std::to_string(record.parent);
  switch (record.kind) {
    case AuditKind::kArrival:
      break;
    case AuditKind::kDecision:
      out += ",\"phase\":\"";
      out += record.phase == nullptr ? "" : record.phase;
      out += "\",\"reason\":\"";
      out += record.reason == nullptr ? "" : record.reason;
      out += "\",\"est_first\":" + JsonExact(record.est_first_seconds);
      out += ",\"est_finish\":" + JsonExact(record.est_finish_seconds);
      out += ",\"utility\":" + JsonExact(record.expected_utility);
      break;
    case AuditKind::kGraft:
      out += ",\"lineage_regions\":" + std::to_string(record.lineage_regions);
      break;
    case AuditKind::kRegionStep:
      out += ",\"region\":" + std::to_string(record.region);
      out += ",\"results\":" + std::to_string(record.results);
      out += ",\"pscore_before\":" + JsonExact(record.pscore_before);
      out += ",\"pscore\":" + JsonExact(record.pscore);
      out += ",\"weight\":" + JsonExact(record.weight);
      break;
    case AuditKind::kFirstResult:
      out += ",\"results\":" + std::to_string(record.results);
      break;
    case AuditKind::kCancel:
      out += ",\"phase\":\"";
      out += record.phase == nullptr ? "" : record.phase;
      out += "\"";
      break;
    case AuditKind::kFinish:
      out += ",\"phase\":\"";
      out += record.phase == nullptr ? "" : record.phase;
      out += "\",\"reason\":\"";
      out += record.reason == nullptr ? "" : record.reason;
      out += "\",\"results\":" + std::to_string(record.results);
      out += ",\"pscore\":" + JsonExact(record.pscore);
      out += ",\"est_finish\":" + JsonExact(record.est_finish_seconds);
      out += ",\"observed\":" + JsonExact(record.observed_seconds);
      out += ",\"utility\":" + JsonExact(record.expected_utility);
      break;
    case AuditKind::kRepreview:
      out += ",\"phase\":\"";
      out += record.phase == nullptr ? "" : record.phase;
      out += "\",\"reason\":\"";
      out += record.reason == nullptr ? "" : record.reason;
      out += "\",\"est_first_before\":" +
             JsonExact(record.est_first_before_seconds);
      out += ",\"est_finish_before\":" +
             JsonExact(record.est_finish_before_seconds);
      out += ",\"est_first\":" + JsonExact(record.est_first_seconds);
      out += ",\"est_finish\":" + JsonExact(record.est_finish_seconds);
      break;
  }
  if (include_wall) out += ",\"wall_us\":" + JsonWall(record.wall_us);
  out += "}";
  return out;
}

AuditLedger::AuditLedger() : epoch_ns_(NowNs()) {
  records_.reserve(1024);
}

void AuditLedger::Append(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  record.wall_us = (NowNs() - epoch_ns_) / 1000.0;
  if (flight_ != nullptr) {
    FlightEntry entry;
    entry.kind = 'a';
    entry.name = AuditKindName(record.kind);
    entry.request_id = record.request_id;
    entry.region = record.region;
    entry.vtime = record.vtime;
    entry.wall_us = record.wall_us;
    entry.value = record.results;
    flight_->Record(entry);
  }
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(record);
}

std::vector<AuditRecord> AuditLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<AuditRecord> AuditLedger::Tail(int request_id,
                                           size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  for (const AuditRecord& record : records_) {
    if (record.request_id != request_id) continue;
    out.push_back(record);
  }
  if (out.size() > max_records) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max_records));
  }
  return out;
}

std::string AuditLedger::Jsonl(bool include_wall) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const AuditRecord& record : records_) {
    out += AuditRecordJson(record, include_wall);
    out += "\n";
  }
  return out;
}

int64_t AuditLedger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t AuditLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace caqe
