#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace caqe {

namespace {

/// Draws a contract from the Table 2 classes, scaled to `ref` seconds.
Contract DrawContract(Rng& rng, double ref) {
  const int index = static_cast<int>(rng.UniformInt(0, 4));
  switch (index) {
    case 0:
      return MakeTimeStepContract(rng.Uniform(0.3, 1.2) * ref);
    case 1:
      return MakeLogDecayContract(ref / 50.0);
    case 2:
      return MakeHyperbolicDecayContract(0.2 * ref, ref / 10.0);
    case 3:
      return MakeCardinalityContract(0.1, ref / 10.0);
    default:
      return MakeHybridContract(0.1, ref / 10.0, ref / 10.0);
  }
}

}  // namespace

std::vector<TraceRequest> MakeSyntheticTrace(const TraceConfig& config,
                                             const std::vector<int>& join_keys,
                                             int num_output_dims) {
  CAQE_CHECK(!join_keys.empty());
  CAQE_CHECK(num_output_dims > 0);
  Rng rng(config.seed);
  const double ref = std::max(1e-9, config.reference_seconds);
  const double rate = std::max(1e-9, config.arrival_rate);
  const int max_dims =
      std::max(1, std::min(config.max_preference_dims, num_output_dims));

  std::vector<TraceRequest> trace;
  double now = 0.0;
  std::vector<int> dim_pool(num_output_dims);
  for (int k = 0; k < num_output_dims; ++k) dim_pool[k] = k;
  for (int i = 0; i < config.num_requests; ++i) {
    // Exponential inter-arrival gap at the configured rate.
    now += -std::log(1.0 - rng.Uniform(0.0, 1.0)) / rate;

    TraceRequest request;
    request.arrival_time = now;
    request.query.name = "S" + std::to_string(i);
    request.query.join_key = join_keys[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(join_keys.size()) - 1))];
    const int dims = static_cast<int>(rng.UniformInt(1, max_dims));
    // Partial Fisher-Yates: the first `dims` entries become a uniform
    // distinct sample of the output dimensions.
    for (int j = 0; j < dims; ++j) {
      const int swap_with =
          static_cast<int>(rng.UniformInt(j, num_output_dims - 1));
      std::swap(dim_pool[j], dim_pool[swap_with]);
    }
    request.query.preference.assign(dim_pool.begin(), dim_pool.begin() + dims);
    std::sort(request.query.preference.begin(),
              request.query.preference.end());
    request.query.priority = rng.Uniform(0.0, 1.0);
    request.contract = DrawContract(rng, ref);
    if (rng.Bernoulli(config.deadline_fraction)) {
      request.deadline_seconds = rng.Uniform(0.5, 2.0) * ref;
    }
    if (rng.Bernoulli(config.cancel_fraction)) {
      const double window =
          request.deadline_seconds > 0.0 ? request.deadline_seconds : ref;
      request.cancel_time =
          request.arrival_time + rng.Uniform(0.1, 0.9) * window;
    }
    trace.push_back(std::move(request));
  }
  return trace;
}

std::vector<int> SubmitTrace(CaqeServer& server,
                             const std::vector<TraceRequest>& trace,
                             CaqeServer::ResultCallback callback) {
  std::vector<int> ids;
  for (const TraceRequest& request : trace) {
    const int id =
        server.Submit(request.query, request.contract, request.arrival_time,
                      request.deadline_seconds, callback);
    ids.push_back(id);
    if (request.cancel_time >= 0.0) {
      CAQE_CHECK(server.Cancel(id, request.cancel_time).ok());
    }
  }
  return ids;
}

}  // namespace caqe
