#include "serve/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace caqe {

namespace {

/// Fixed-point rendering with integer math only: "1.2500" for kOne*5/4.
std::string FormatFactor(int64_t factor) {
  const int64_t scaled = (factor * 10000) / Calibrator::kOne;
  std::string out = std::to_string(scaled / 10000);
  const int64_t frac = scaled % 10000;
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%04lld", static_cast<long long>(frac));
  return out + buf;
}

}  // namespace

Calibrator::Calibrator(CalibrationOptions options) : options_(options) {
  // Long traces observe one sample per completion; reserving up front keeps
  // the steady state allocation-free (alloc-gate discipline).
  error_series_.reserve(4096);
}

Calibrator::BucketKey Calibrator::KeyFor(int dims, int64_t join_total,
                                         int64_t lineage_regions, int slot,
                                         bool has_selections) {
  BucketKey key;
  if (dims <= 0 || lineage_regions <= 0 || slot < 0) return key;
  const int dims_bucket = std::min(dims - 1, kDimsBuckets - 1);
  // log4 scale over the average join output per lineage region: integer
  // shifts only, so every run buckets identically.
  int64_t avg = join_total / lineage_regions;
  int sel_bucket = 0;
  while (avg > 3 && sel_bucket < kSelBuckets - 1) {
    avg >>= 2;
    ++sel_bucket;
  }
  const int kind =
      std::min(slot * 2 + (has_selections ? 1 : 0), kKindBuckets - 1);
  key.index = (dims_bucket * kSelBuckets + sel_bucket) * kKindBuckets + kind;
  return key;
}

std::string Calibrator::BucketLabel(BucketKey key) {
  if (key.index < 0 || key.index >= kNumBuckets) return "invalid";
  const int kind = key.index % kKindBuckets;
  const int sel = (key.index / kKindBuckets) % kSelBuckets;
  const int dims = key.index / (kKindBuckets * kSelBuckets);
  return "d" + std::to_string(dims) + "_s" + std::to_string(sel) + "_k" +
         std::to_string(kind);
}

double Calibrator::CorrectSeconds(BucketKey key, double raw_seconds) const {
  if (key.index < 0 || key.index >= kNumBuckets) return raw_seconds;
  return raw_seconds *
         (static_cast<double>(buckets_[key.index].time_factor) /
          static_cast<double>(kOne));
}

double Calibrator::CorrectCardinality(BucketKey key, double raw_value) const {
  if (key.index < 0 || key.index >= kNumBuckets) return raw_value;
  return raw_value * (static_cast<double>(buckets_[key.index].card_factor) /
                      static_cast<double>(kOne));
}

int64_t Calibrator::ClampFactor(int64_t value) const {
  return std::max(options_.min_factor, std::min(options_.max_factor, value));
}

int64_t Calibrator::UpdateFactor(int64_t factor, int64_t ratio_fp) const {
  const int64_t ratio = ClampFactor(ratio_fp);
  const int64_t next =
      factor + ((ratio - factor) * options_.alpha_num) / options_.alpha_den;
  return ClampFactor(next);
}

void Calibrator::ObserveCompletion(BucketKey key,
                                   const CompletionSample& sample) {
  if (key.index < 0 || key.index >= kNumBuckets) return;
  if (sample.raw_est_seconds <= 0.0) return;
  Bucket& bucket = buckets_[key.index];

  // Estimation quality *before* this sample moves the factors: what the
  // controller would have predicted for this request right now.
  const double corrected_est =
      sample.raw_est_seconds * (static_cast<double>(bucket.time_factor) /
                                static_cast<double>(kOne));
  ErrorSample err;
  err.raw_abs_rel_error =
      std::abs(sample.observed_seconds - sample.raw_est_seconds) /
      sample.raw_est_seconds;
  err.corrected_abs_rel_error =
      std::abs(sample.observed_seconds - corrected_est) / corrected_est;
  error_series_.push_back(err);

  // Ratio samples in fixed point. llround on a deterministic double is
  // deterministic; all accumulation from here on is integer.
  const int64_t time_ratio = static_cast<int64_t>(
      std::llround(sample.observed_seconds / sample.raw_est_seconds *
                   static_cast<double>(kOne)));
  bucket.time_factor = UpdateFactor(bucket.time_factor, time_ratio);
  if (sample.raw_est_results > 0.0) {
    const int64_t card_ratio = static_cast<int64_t>(
        std::llround(static_cast<double>(sample.observed_results) /
                     sample.raw_est_results * static_cast<double>(kOne)));
    bucket.card_factor = UpdateFactor(bucket.card_factor, card_ratio);
  }
  ++bucket.samples;
  ++completions_;

  const int64_t time_drift =
      std::abs(bucket.time_factor - bucket.applied_time_factor);
  const int64_t card_drift =
      std::abs(bucket.card_factor - bucket.applied_card_factor);
  if (time_drift > options_.hysteresis || card_drift > options_.hysteresis) {
    bucket.applied_time_factor = bucket.time_factor;
    bucket.applied_card_factor = bucket.card_factor;
    shift_pending_ = true;
    ++shifts_;
  }
}

bool Calibrator::TakeShift() {
  const bool pending = shift_pending_;
  shift_pending_ = false;
  return pending;
}

int64_t Calibrator::time_factor(BucketKey key) const {
  if (key.index < 0 || key.index >= kNumBuckets) return kOne;
  return buckets_[key.index].time_factor;
}

int64_t Calibrator::card_factor(BucketKey key) const {
  if (key.index < 0 || key.index >= kNumBuckets) return kOne;
  return buckets_[key.index].card_factor;
}

int64_t Calibrator::samples(BucketKey key) const {
  if (key.index < 0 || key.index >= kNumBuckets) return 0;
  return buckets_[key.index].samples;
}

bool Calibrator::Trusted(BucketKey key) const {
  return samples(key) >= options_.trust_samples;
}

std::string Calibrator::StatusText() const {
  std::string out = "calibration: on completions=" +
                    std::to_string(completions_) +
                    " shifts=" + std::to_string(shifts_) + "\n";
  for (int i = 0; i < kNumBuckets; ++i) {
    const Bucket& bucket = buckets_[i];
    if (bucket.samples == 0) continue;
    BucketKey key;
    key.index = i;
    out += "calib " + BucketLabel(key) +
           " samples=" + std::to_string(bucket.samples) +
           " time_factor=" + FormatFactor(bucket.time_factor) +
           " card_factor=" + FormatFactor(bucket.card_factor) + "\n";
  }
  return out;
}

}  // namespace caqe
