// Deterministic synthetic arrival traces for the serving layer.
//
// A trace is a reproducible function of its seed: exponential inter-arrival
// gaps at a configurable rate, queries drawn over the server's join keys
// and output dimensions, contracts drawn from the paper's Table 2 classes
// scaled to a reference timescale, plus optional deadlines and scripted
// cancellations. The same (config, keys, dims) triple always yields the
// identical trace, which is what makes the serving determinism matrix
// (threads x SIMD) byte-comparable.
#ifndef CAQE_SERVE_TRACE_H_
#define CAQE_SERVE_TRACE_H_

#include <cstdint>
#include <vector>

#include "contracts/utility.h"
#include "query/query.h"
#include "serve/server.h"

namespace caqe {

/// Knobs of the synthetic trace generator.
struct TraceConfig {
  int num_requests = 12;
  /// Mean arrivals per virtual second (exponential gaps).
  double arrival_rate = 50.0;
  uint64_t seed = 2014;
  /// Reference timescale (virtual seconds) the contract deadlines and
  /// intervals scale against — pick something near the expected service
  /// time of one query.
  double reference_seconds = 0.5;
  /// Fraction of requests that carry a hard deadline.
  double deadline_fraction = 0.25;
  /// Fraction of requests cancelled partway through their deadline window.
  double cancel_fraction = 0.0;
  /// Preference sizes are drawn from [1, max_preference_dims] (clamped to
  /// the available output dimensions).
  int max_preference_dims = 3;
};

/// One generated request: the arrival plus an optional scripted cancel.
struct TraceRequest {
  SjQuery query;
  Contract contract;
  double arrival_time = 0.0;
  /// <= 0: no deadline.
  double deadline_seconds = 0.0;
  /// < 0: never cancelled.
  double cancel_time = -1.0;
};

/// Generates a deterministic trace over `join_keys` and `num_output_dims`
/// global dimensions.
std::vector<TraceRequest> MakeSyntheticTrace(const TraceConfig& config,
                                             const std::vector<int>& join_keys,
                                             int num_output_dims);

/// Submits every request (and its scripted cancel) of `trace` to `server`.
/// Returns the request ids in trace order.
std::vector<int> SubmitTrace(CaqeServer& server,
                             const std::vector<TraceRequest>& trace,
                             CaqeServer::ResultCallback callback = nullptr);

}  // namespace caqe

#endif  // CAQE_SERVE_TRACE_H_
