// CaqeServer: a long-lived contract-aware serving loop over one table pair.
//
// The server is created once over tables (R, T) with a fixed set of output
// dimensions and join-key predicates. Clients Submit() queries with
// progressiveness contracts (and optionally Cancel() them); Run() then
// replays the arrival trace to completion on the deterministic virtual
// clock, streaming each admitted query's results to its callback as the
// emission manager releases them.
//
// ## Startup: the bootstrap region build
//
// Regions exist only for (cell pair, predicate) combinations some query's
// predicate matched at build time, so the server builds its region
// collection once at startup over a *bootstrap workload* — one synthetic
// full-coverage query per configured join key — then clears every region's
// lineage. The bootstrap queries' workload slots become the server's free
// slot pool; grafted queries reuse them (Workload::SetQuery), keeping
// QuerySet bitmasks dense.
//
// ## Grafting and retirement
//
// Admission (see serve/admission.h) walks the regions; a graft splices the
// new query into the running shared state: region lineages extend, with
// non-pending regions (discarded by pruning, or already processed for
// earlier queries) resurrected for reprocessing so every query sees the
// full data, a fresh plan group and shared skyline evaluator attach to the
// pipeline, and the scheduler, satisfaction tracker, and emission manager
// register the slot — all without touching in-flight regions. Retirement (completion, expiry,
// cancellation) reverses the graft: lineage pruned, plan-group membership
// dropped, scheduler weight zeroed, parked emissions discarded.
//
// ## Determinism
//
// Data-plane work (joins, skyline evaluation, emission) charges the virtual
// clock exactly as in batch mode and is bit-identical across thread counts
// and SIMD builds. Control-plane work (admission, graft, retire, completion
// scans) is counted in control_ops but never charged, which yields the
// cancellation-equivalence guarantee: retiring a query whose regions were
// never processed leaves every survivor's report byte-identical to a run
// where that query was never admitted.
#ifndef CAQE_SERVE_SERVER_H_
#define CAQE_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "contracts/utility.h"
#include "data/table.h"
#include "exec/region_pipeline.h"
#include "metrics/report.h"
#include "optimizer/scheduler.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "region/region_builder.h"
#include "serve/admission.h"
#include "serve/calibration.h"
#include "serve/serving.h"
#include "skyline/point_set.h"

namespace caqe {

class AuditLedger;

class CaqeServer {
 public:
  /// Streaming consumer of one request's results: (request id, tuple id
  /// into store(), virtual report time, contract utility). Invoked
  /// synchronously from Run() in emission order.
  using ResultCallback =
      std::function<void(int request_id, int64_t tuple_id, double vtime,
                         double utility)>;

  /// Builds a server over the table pair: registers `output_dims` as the
  /// global output space, accepts queries on any join key in `join_keys`
  /// (deduplicated, sorted), partitions the inputs, and runs the bootstrap
  /// region build. Returns InvalidArgument for empty dimension/key sets or
  /// tables the bootstrap workload fails to validate against.
  static Result<std::unique_ptr<CaqeServer>> Create(
      Table r, Table t, std::vector<MappingFunction> output_dims,
      std::vector<int> join_keys, ServeOptions options);

  /// Enqueues a query arrival at virtual time `arrival_time` (>= 0).
  /// `deadline_seconds` (> 0) retires the query unconditionally that many
  /// seconds after arrival. Returns the request id. Must be called before
  /// Run().
  int Submit(SjQuery query, Contract contract, double arrival_time,
             double deadline_seconds = 0.0, ResultCallback callback = nullptr);

  /// Enqueues a cancellation of `request_id` at virtual time `cancel_time`.
  /// Cancelling a request that already finished by then is a no-op.
  /// Must be called before Run().
  Status Cancel(int request_id, double cancel_time);

  /// Replays the submitted trace to completion and returns the serving
  /// report. Callable once.
  Result<ServingReport> Run();

  /// ---- Live (wall-clock) incremental serving ----
  ///
  /// A wall-clock front-end cannot submit-then-Run: arrivals trickle in
  /// while the engine makes progress. BeginLive switches the server into an
  /// incremental mode where arrivals are ingested mid-run with *quantized
  /// virtual* timestamps (see ArrivalQuantizer) and the caller drives the
  /// engine one step at a time. Each StepLive executes exactly one
  /// iteration of Run()'s loop body, so a live session whose
  /// (kind, vtime, order) event sequence is recorded and replayed through
  /// Submit()+Run() produces a byte-identical ServingReport — the
  /// record/replay determinism oracle the net layer byte-diffs.

  /// Switches to live mode. Must be called before any Submit/Run and at
  /// most once.
  Status BeginLive();

  /// Ingests an arrival at quantized virtual time `arrival_vtime`, which
  /// must be >= the current virtual time and >= every previously ingested
  /// event time (ArrivalQuantizer guarantees both). Validates the query
  /// shape (non-empty, in-range, duplicate-free preference) instead of
  /// CHECK-failing — hostile wire input must never abort the server.
  Result<int> SubmitLive(SjQuery query, Contract contract,
                         double arrival_vtime, double deadline_seconds = 0.0,
                         ResultCallback callback = nullptr);

  /// Ingests a cancellation at quantized virtual time `cancel_vtime` (same
  /// monotonicity requirements as SubmitLive).
  Status CancelLive(int request_id, double cancel_vtime);

  /// Executes one serving-loop iteration: fire due events, run the control
  /// sweeps, process one region if any is pending. Returns false — without
  /// mutating anything, control_ops included — when there is no due event
  /// and no pending work, so an idle poll loop may call it freely.
  bool StepLive();

  /// Drains remaining work (forced retry of still-deferred requests, final
  /// emission flush) and returns the serving report. Callable once; no
  /// SubmitLive/CancelLive/StepLive may follow.
  Result<ServingReport> FinishLive();

  /// Installs the live-mode observers after construction (ServeOptions is
  /// copied at Create time, so a front-end built around an existing server
  /// attaches its hooks here). Call before the first StepLive.
  void SetLiveObservers(
      std::function<void(int request_id, AdmissionDecision decision,
                         const char* reason)>
          on_decision,
      std::function<void(int request_id, RequestStatus status)> on_finish) {
    options_.on_decision = std::move(on_decision);
    options_.on_finish = std::move(on_finish);
  }

  /// Current virtual time (live mode: what the quantizer stamps against).
  double VirtualNow() const { return clock_.Now(); }

  /// Lifecycle status of a submitted request.
  RequestStatus request_status(int request_id) const {
    return requests_[static_cast<size_t>(request_id)].status;
  }

  /// Output dimensions of the global output space (preference indices of
  /// submitted queries must stay below this).
  int num_output_dims() const { return workload_.num_output_dims(); }

  /// Tuple store backing the callbacks' tuple ids (output values).
  const PointSet& store() const { return pipeline_->store(); }

  int num_requests() const { return static_cast<int>(requests_.size()); }

  /// Introspection snapshot of one request for /statusz, /tracez, and the
  /// TRACE verb. For a running request, results/pscore read the live
  /// tracker state; for finished ones, the frozen report fields.
  struct RequestBrief {
    int id = -1;
    std::string name;
    RequestStatus status = RequestStatus::kQueued;
    int64_t results = 0;
    double pscore = 0.0;
    double submit_time = 0.0;
    /// Id of the request's root "request" span (0 before arrival fired or
    /// without an Observability attached).
    uint64_t root_span = 0;
  };
  RequestBrief BriefOf(int request_id) const;

  /// Most recently submitted request whose query name is `name`; -1 when
  /// no request matches.
  int FindRequestByName(std::string_view name) const;

  /// The admission-estimate calibrator (null unless options.calibrate).
  /// Read-only: the bench's tightening gate and /statusz read factors and
  /// the error series here.
  const Calibrator* calibrator() const {
    return calibrator_.has_value() ? &*calibrator_ : nullptr;
  }

  /// Deterministic /statusz calibration table: "calibration: off\n" or the
  /// calibrator's per-bucket factor table.
  std::string CalibrationStatusText() const;

 private:
  struct RequestState {
    int id = -1;
    SjQuery query;
    Contract contract;
    ResultCallback callback;
    double submit_time = 0.0;
    double deadline_seconds = 0.0;
    RequestStatus status = RequestStatus::kQueued;
    /// Workload slot while running; -1 otherwise.
    int slot = -1;
    double decision_time = -1.0;
    double finish_time = -1.0;
    double time_to_first_result = -1.0;
    int defers = 0;
    double expected_utility = 0.0;
    /// Admission-time service estimates (seconds from submission), kept for
    /// the observed-vs-estimated error metric. The est_* pair is corrected
    /// when calibration is on; the raw_* pair keeps the uncorrected model
    /// outputs the calibrator's completion samples are measured against.
    double est_first_seconds = 0.0;
    double est_finish_seconds = 0.0;
    /// Uncorrected service-window cost of the admitting decision (see
    /// AdmissionEstimate::raw_service_cost_seconds).
    double raw_service_cost_seconds = 0.0;
    double raw_est_results = 0.0;
    /// Calibration bucket of the last admission decision (-1 = none).
    int calibration_bucket = -1;
    int64_t lineage_regions = 0;
    int64_t parked_dropped = 0;
    int64_t results = 0;
    double pscore = 0.0;
    double satisfaction = 0.0;
    const char* reason = "";
    /// Causal span ids (0 = none yet): the root "request" span and the
    /// latest admission/graft spans — parents for downstream spans and the
    /// audit ledger's causal links (DESIGN.md §15).
    uint64_t root_span = 0;
    uint64_t decision_span = 0;
    uint64_t graft_span = 0;
  };

  struct TraceEvent {
    enum class Kind { kArrival, kCancel };
    double time = 0.0;
    int seq = 0;
    Kind kind = Kind::kArrival;
    int request_id = -1;
  };

  CaqeServer(Table r, Table t, ServeOptions options);

  Status Bootstrap(std::vector<MappingFunction> output_dims,
                   std::vector<int> join_keys);

  void HandleArrival(RequestState& request);
  void HandleCancel(RequestState& request);
  /// Re-evaluates deferred requests when capacity may have freed. Static
  /// controller: stable id (FIFO) order. Calibrated: corrected expected
  /// utility order, id tie-break (the freed slot goes to the deferred
  /// request whose contract still pays the most).
  void RetryDeferred();
  /// Calibration-shift re-preview: re-scores the deferred queue in stable
  /// id order under the shifted correction factors and commits only
  /// *upgrades* (defer -> admit). A preview that now says reject is not
  /// committed — the wait-inflated estimate will deliver that verdict at
  /// the next genuine capacity event via RetryDeferred, and downgrading
  /// here would let a mid-saturation shift discard requests the static
  /// controller would have served. Emits a kQueryRepreviewed event +
  /// kRepreview ledger record (with before/after estimates) per request.
  void RepreviewDeferred();
  /// Side-effect-free admission score of `request` at the current virtual
  /// time (counts control_ops, mutates nothing else).
  AdmissionEstimate PreviewAdmission(const RequestState& request);
  /// Retires running/deferred requests whose deadline passed.
  void CheckExpiry();
  /// Retires running requests with no live region left in their lineage.
  void CheckCompletion();
  /// Admission verdict for `request` at the current virtual time.
  AdmissionDecision Decide(RequestState& request);
  /// Splices an admitted request into the running shared state.
  Status Graft(RequestState& request);
  /// Reverses the graft and finalizes the request's report fields.
  void Retire(RequestState& request, RequestStatus final_status);
  /// Picks the next region per the configured policy.
  int PickRegion();
  void RecordEvent(ExecEvent::Kind kind, int region, int query,
                   int64_t count);
  int ActiveQueries() const;
  bool SlotAvailable() const;
  /// One iteration of the serving loop (shared by Run and StepLive).
  bool StepInternal();
  /// Drain tail shared by Run and FinishLive: forced deferred retry, final
  /// emission flush, report assembly.
  Result<ServingReport> Finish();
  /// Fires on_finish for a request that just reached a terminal status.
  void NotifyFinished(const RequestState& request);

  ServeOptions options_;
  Table r_;
  Table t_;
  Workload workload_;
  std::unique_ptr<ThreadPool> pool_owner_;
  ThreadPool* pool_ = nullptr;
  std::optional<PartitionedTable> part_r_;
  std::optional<PartitionedTable> part_t_;
  RegionCollection rc_;
  std::vector<char> pending_;
  int64_t pending_count_ = 0;
  std::optional<SatisfactionTracker> tracker_;
  VirtualClock clock_;
  EngineStats stats_;
  std::vector<QueryReport> query_reports_;
  std::unique_ptr<RegionPipeline> pipeline_;
  std::optional<ContractDrivenScheduler> scheduler_;
  /// Identity map workload slot -> tracker/report index.
  std::vector<int> identity_;
  /// Free workload slots, ascending.
  std::vector<int> free_slots_;
  /// slot -> id of the request currently running there (-1 when free).
  std::vector<int> slot_request_;
  std::vector<RequestState> requests_;
  std::vector<TraceEvent> events_;
  int64_t control_ops_ = 0;
  /// Audit ledger resolved once in Bootstrap (null without an
  /// Observability). Appends happen only on the serial driver thread at
  /// virtual timestamps, which is what makes the ledger's normalized JSONL
  /// byte-identical between a live session and its replay.
  AuditLedger* ledger_ = nullptr;
  /// Per-slot (results, pscore, weight) snapshots taken immediately before
  /// ProcessRegion, so region_step ledger records carry before/after pairs
  /// without allocating per step.
  std::vector<int64_t> step_results_before_;
  std::vector<double> step_pscore_before_;
  std::vector<double> step_weight_before_;
  /// Admission-estimate calibrator (engaged by options.calibrate). Updated
  /// only from the serial driver step — same rule as the ledger — which is
  /// what keeps calibrated reports byte-identical across threads/pipeline/
  /// compact_layout and live-vs-replay.
  std::optional<Calibrator> calibrator_;
  /// Set when a calibration shift lands; consumed at the start of the next
  /// driver step *after* that step's arrivals have fired, so a repreview
  /// upgrade only claims capacity fresh arrivals left behind (arrival
  /// priority maximizes pScore — young contracts decay fastest).
  bool repreview_pending_ = false;
  // Metrics resolved once in Bootstrap when options_.obs is attached.
  // Observations are virtual-time quantities, so both histograms are
  // deterministic across thread counts.
  Histogram* ttfr_hist_ = nullptr;
  Histogram* svc_err_hist_ = nullptr;
  // caqe_calib_* instruments (null without obs or without calibrate).
  Histogram* calib_raw_err_hist_ = nullptr;
  Histogram* calib_corr_err_hist_ = nullptr;
  Counter* calib_observations_ = nullptr;
  Counter* calib_repreviews_ = nullptr;
  Counter* calib_upgrades_ = nullptr;
  Counter* calib_shifts_ = nullptr;
  bool ran_ = false;
  /// Live (wall-clock) incremental mode: events are ingested mid-run.
  bool live_ = false;
  /// FinishLive already produced the report.
  bool finished_ = false;
  /// Next unprocessed entry of events_ (Run's former local cursor; a member
  /// so StepLive can resume).
  size_t cursor_ = 0;
  /// Set when capacity may have freed (a slot returned); gates deferred
  /// retries so they happen exactly when something could have changed.
  bool capacity_freed_ = false;
  /// Scratch for the calibrated deferred-promotion order:
  /// (corrected expected utility, request id), sorted utility-descending
  /// with id tie-break. Member so the capacity survives across retries.
  std::vector<std::pair<double, int>> retry_order_;
  int64_t admitted_count_ = 0;
};

}  // namespace caqe

#endif  // CAQE_SERVE_SERVER_H_
