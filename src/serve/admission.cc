#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "skyline/cardinality.h"

namespace caqe {

double RegionSlotCost(const OutputRegion& region, int slot,
                      const CostModel& cost) {
  const double probes = static_cast<double>(region.rows_r + region.rows_t);
  const double results = static_cast<double>(region.join_sizes[slot]);
  const double cmp_est = results * std::log2(1.0 + results);
  return cost.join_probe_seconds * probes +
         cost.join_result_seconds * results +
         cost.dominance_cmp_seconds * cmp_est + cost.schedule_seconds;
}

double BacklogCost(const RegionCollection& rc,
                   const std::vector<char>& pending, const CostModel& cost) {
  double total = 0.0;
  const int num_slots = static_cast<int>(rc.predicate_slots.size());
  for (const OutputRegion& region : rc.regions) {
    if (!pending[region.id]) continue;
    double probes = 0.0;
    double results = 0.0;
    for (int s = 0; s < num_slots; ++s) {
      if (region.join_sizes[s] <= 0) continue;
      if (!region.rql.Intersects(rc.queries_of_slot[s])) continue;
      probes += static_cast<double>(region.rows_r + region.rows_t);
      results += static_cast<double>(region.join_sizes[s]);
    }
    const double cmp_est = results * std::log2(1.0 + results);
    total += cost.join_probe_seconds * probes +
             cost.join_result_seconds * results +
             cost.dominance_cmp_seconds * cmp_est + cost.schedule_seconds;
  }
  return total;
}

AdmissionEstimate EvaluateAdmission(const SjQuery& query,
                                    const Contract& contract,
                                    const AdmissionInput& in,
                                    int64_t* control_ops) {
  AdmissionEstimate est;
  const RegionCollection& rc = *in.rc;
  const ServeOptions& options = *in.options;

  // The server's predicate slots are fixed at startup; a query on a join
  // key outside that set has no regions to graft into.
  int slot = -1;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    ++*control_ops;
    if (rc.predicate_slots[s] == query.join_key) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    est.decision = AdmissionDecision::kReject;
    est.reason = "no-predicate";
    return est;
  }

  // Walk the graftable lineage: regions whose exact join size on the slot
  // is positive and whose cell boxes survive the query's coarse selection
  // test. Already-processed regions count too — a graft resurrects them
  // for reprocessing, so every arrival sees the full data.
  double own_cost = 0.0;
  double min_cost = 0.0;
  double join_total = 0.0;
  int64_t join_total_exact = 0;
  for (const OutputRegion& region : rc.regions) {
    ++*control_ops;
    if (region.join_sizes[slot] <= 0) continue;
    const SelectionCoarse coarse =
        CoarseSelectionTest(query, in.part_r->cell(region.cell_r),
                            in.part_t->cell(region.cell_t));
    if (coarse == SelectionCoarse::kDisjoint) continue;
    const double region_cost = RegionSlotCost(region, slot, *in.cost);
    own_cost += region_cost;
    min_cost = est.lineage_regions == 0 ? region_cost
                                        : std::min(min_cost, region_cost);
    join_total += static_cast<double>(region.join_sizes[slot]);
    join_total_exact += region.join_sizes[slot];
    ++est.lineage_regions;
  }
  if (est.lineage_regions == 0) {
    if (options.admit_all && in.active_queries < options.max_active_queries &&
        in.slot_available) {
      // An admit-all server grafts even empty-lineage queries; they
      // complete immediately with zero results.
      est.decision = AdmissionDecision::kAdmit;
      est.reason = "admitted";
      return est;
    }
    est.decision = AdmissionDecision::kReject;
    est.reason = "no-data";
    return est;
  }

  const int dims = static_cast<int>(query.preference.size());
  est.estimated_results = BuchtaSkylineCardinality(join_total, dims);

  // Optimistic first result: the scheduler turns to the cheapest lineage
  // region immediately. Pessimistic finish: the entire admitted backlog
  // drains first, then all of the request's own regions run.
  const double waited = in.now - in.submit_time;
  const double backlog = BacklogCost(rc, *in.pending, *in.cost);
  ++*control_ops;
  est.est_first_seconds = waited + min_cost;
  est.est_finish_seconds = waited + backlog + own_cost;
  est.raw_first_seconds = est.est_first_seconds;
  est.raw_finish_seconds = est.est_finish_seconds;
  est.raw_estimated_results = est.estimated_results;
  est.raw_service_cost_seconds = backlog + own_cost;

  // Estimate -> observe feedback: scale the model's *cost* terms by the
  // workload bucket's learned time factor (the elapsed wait is known
  // exactly and never scaled). Time corrections apply before the deadline
  // and utility tests, so a calibration shift can flip either verdict
  // below — that is the point of re-previewing the deferred queue. The
  // cardinality factor deliberately does NOT feed the utility preview:
  // the floor is a per-result (cardinality-normalized) criterion, so only
  // the time basis answers "will results still pay when they land";
  // corrected cardinality serves progress pacing (the graft corrects the
  // tracker's total) and the reported estimate, applied after the preview.
  if (in.calibrator != nullptr) {
    const Calibrator::BucketKey bucket = Calibrator::KeyFor(
        dims, join_total_exact, est.lineage_regions, slot,
        !query.selections.empty());
    est.calibration_bucket = bucket.index;
    est.calibration_trusted = in.calibrator->Trusted(bucket);
    est.est_first_seconds =
        waited + in.calibrator->CorrectSeconds(bucket, min_cost);
    est.est_finish_seconds =
        waited + in.calibrator->CorrectSeconds(bucket, backlog + own_cost);
    ++*control_ops;
  }

  if (!options.admit_all) {
    if (in.deadline_seconds > 0.0 &&
        est.est_first_seconds >= in.deadline_seconds) {
      est.decision = AdmissionDecision::kReject;
      est.reason = "deadline";
      return est;
    }
    // Completion-feasibility: expiry retires a running request that has not
    // *finished* by its deadline, so a deadline arrival whose corrected
    // finish estimate overshoots the deadline is destined to expire —
    // admitting it burns a slot for a handful of decayed late results. Only
    // a trusted (converged) bucket may fire this: the raw pessimistic
    // finish would wholesale-reject viable deadline work, so this test is a
    // capability the estimate->observe loop unlocks rather than a static
    // policy tweak. The static controller (no calibrator) never reaches it.
    // The margin keeps borderline requests in play — an admitted request
    // still earns (decaying) utility right up to its expiry, so rejection
    // only pays when the corrected finish overshoots the deadline by
    // enough that those partial earnings are negligible.
    constexpr double kInfeasibilityMargin = 1.5;
    if (in.deadline_seconds > 0.0 && est.calibration_trusted &&
        est.est_finish_seconds >= kInfeasibilityMargin * in.deadline_seconds) {
      est.decision = AdmissionDecision::kReject;
      est.reason = "infeasible";
      return est;
    }
    // Preview the contract at both ends of the service window (Eq. 8's
    // utility model applied at admission time).
    ResultContext first_ctx;
    first_ctx.report_time = est.est_first_seconds;
    first_ctx.results_in_interval = 1;
    first_ctx.results_so_far = 1;
    first_ctx.estimated_total = std::max(1.0, est.estimated_results);
    ResultContext last_ctx;
    last_ctx.report_time = est.est_finish_seconds;
    last_ctx.results_in_interval = 1;
    last_ctx.results_so_far = static_cast<int64_t>(
        std::ceil(std::max(1.0, est.estimated_results)));
    last_ctx.estimated_total = std::max(1.0, est.estimated_results);
    const double u_first = contract->Utility(first_ctx);
    const double u_last = contract->Utility(last_ctx);
    est.expected_utility = 0.5 * (u_first + u_last);
    if (est.expected_utility < options.min_expected_utility) {
      est.decision = AdmissionDecision::kReject;
      est.reason = "low-utility";
      return est;
    }
  }

  // Reported estimate picks up the cardinality correction only after the
  // preview (see the calibration comment above).
  if (in.calibrator != nullptr && est.calibration_bucket >= 0) {
    Calibrator::BucketKey bucket;
    bucket.index = est.calibration_bucket;
    est.estimated_results =
        in.calibrator->CorrectCardinality(bucket, est.estimated_results);
  }

  if (in.active_queries >= options.max_active_queries || !in.slot_available) {
    est.decision = AdmissionDecision::kDefer;
    est.reason = "capacity";
    return est;
  }
  est.decision = AdmissionDecision::kAdmit;
  est.reason = "admitted";
  return est;
}

}  // namespace caqe
