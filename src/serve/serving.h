// Online serving layer types: requests, admission outcomes, and the
// deterministic serving report.
//
// The serving layer (src/serve/) keeps one CaqeServer alive over a fixed
// table pair and processes an *arrival trace* of contract-carrying
// skyline-over-join queries: each request is admitted, deferred, or
// rejected by a contract-aware admission controller; admitted queries are
// grafted into the running shared execution state without restarting
// in-flight regions; completed, expired, or cancelled queries are retired
// mid-run. Everything is driven by the deterministic VirtualClock, so a
// trace replays bit-identically at any thread count and with the SIMD
// kernels on or off — ServingReportText deliberately excludes every
// non-deterministic quantity (wall time, thread counts).
#ifndef CAQE_SERVE_SERVING_H_
#define CAQE_SERVE_SERVING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/virtual_clock.h"
#include "exec/options.h"
#include "metrics/report.h"

namespace caqe {

/// Admission controller verdict for one (query, contract) arrival.
enum class AdmissionDecision {
  /// Graft into the running workload now.
  kAdmit,
  /// Feasible but no capacity (active-query cap or no free workload slot);
  /// retried when capacity frees up.
  kDefer,
  /// Infeasible: no predicate slot, empty lineage, expected utility below
  /// the floor, or the deadline cannot be met.
  kReject,
};

const char* AdmissionDecisionName(AdmissionDecision decision);

/// Lifecycle state of one serving request.
enum class RequestStatus {
  /// Submitted; arrival event not yet processed.
  kQueued,
  /// Evaluated and parked by the admission controller awaiting capacity.
  kDeferred,
  /// Admitted and grafted; regions of its lineage are being processed.
  kRunning,
  /// All lineage regions resolved; the result stream is complete.
  kCompleted,
  /// Cancelled by the client before completion.
  kCancelled,
  /// Deadline passed before completion (or before admission).
  kExpired,
  /// Refused by the admission controller.
  kRejected,
};

const char* RequestStatusName(RequestStatus status);

/// Serving knobs: the batch execution knobs plus the admission policy.
struct ServeOptions {
  /// Virtual-time cost model used for contract timestamps.
  CostModel cost;
  /// Worker threads for the parallel execution phases; reports are
  /// bit-identical at every value (only wall time changes).
  int num_threads = 1;
  /// Inter-region pipelining (see ExecOptions::pipeline_regions): overlap
  /// the predicted next region's join with the current region's tail phases
  /// and flush the sharded park set in parallel. Grafts and retirements
  /// cancel any in-flight speculation first, so admission-time mutations
  /// never race it. Needs num_threads > 1; reports stay byte-identical.
  bool pipeline_regions = false;
  /// Tree-indexed coarse phase (see ExecOptions::coarse_index): the
  /// bootstrap region build classifies selections through packed box
  /// trees over the cells. Reports stay byte-identical.
  bool coarse_index = false;
  /// Cache-conscious steady-state layout (see ExecOptions::compact_layout).
  /// Reports stay byte-identical.
  bool compact_layout = true;
  /// Join-index cache bound — matters most here, where a long trace
  /// would otherwise grow the index cache without bound (see
  /// ExecOptions::join_index_cache_entries).
  int64_t join_index_cache_entries = 4096;
  /// Input partitioning structure and granularity (see ExecOptions).
  PartitionStrategy partition_strategy = PartitionStrategy::kGrid;
  int cells_per_dim = 0;
  int target_regions = 512;
  /// Region scheduling policy for admitted work. Contract-driven is the
  /// CAQE default; count-driven is the ProgXe+-style ablation the serving
  /// benchmark compares against.
  SchedulePolicy policy = SchedulePolicy::kContractDriven;
  /// Eq. 11 satisfaction feedback on the scheduler weights.
  bool feedback = true;
  /// Tuple-level dominated-region discarding (Section 6).
  bool tuple_discard = true;
  /// Theorem-1 feeder gating in the shared skyline evaluators.
  bool dva_mode = true;
  /// ---- Admission policy ----
  /// Bypass the utility/deadline rejection tests (structural rejects — an
  /// unknown join predicate — still apply). Capacity deferral still holds.
  bool admit_all = false;
  /// Self-tuning admission (see serve/calibration.h): completed requests
  /// feed observed-vs-estimated ratios back into per-workload correction
  /// factors, corrected estimates drive the deadline/utility previews, and
  /// calibration shifts re-preview the deferred queue. Changes admission
  /// *timing* only, never emitted-result correctness; reports remain
  /// byte-identical across threads/pipeline/compact_layout and
  /// live-vs-replay (the calibrator updates on the serial driver step).
  bool calibrate = false;
  /// Reject when the expected per-result utility over the request's
  /// estimated service window falls below this floor.
  double min_expected_utility = 0.05;
  /// Defer arrivals while this many queries are running.
  int max_active_queries = 16;
  /// Optional event sink: admission/retirement/scheduling events land here
  /// with virtual timestamps (export with ExecEventsJsonl).
  std::vector<ExecEvent>* trace = nullptr;
  /// ---- Live-mode observers (wall-clock front-end) ----
  /// Invoked synchronously on the driver thread when a request receives an
  /// admission verdict (including every re-evaluation of a deferred
  /// request). Observers are write-only with respect to the engine: they
  /// must not call back into the server, and attaching them never changes a
  /// report byte — a recorded live session replayed without observers
  /// produces the identical ServingReportText.
  std::function<void(int request_id, AdmissionDecision decision,
                     const char* reason)>
      on_decision;
  /// Invoked synchronously when a request reaches a terminal status
  /// (completed/cancelled/expired/rejected). Same contract as on_decision.
  std::function<void(int request_id, RequestStatus status)> on_finish;
  /// Tracing + metrics + contract-health bundle (see ExecOptions::obs).
  /// Admission decisions, TTFR, and service-time estimation error are
  /// recorded here; never read back — reports stay byte-identical.
  Observability* obs = nullptr;
};

/// Final per-request outcome, embedded in the ServingReport.
struct RequestReport {
  int request_id = -1;
  std::string name;
  RequestStatus status = RequestStatus::kQueued;
  /// Arrival (virtual) time of the request.
  double submit_time = 0.0;
  /// Time of the final admission decision (admit or reject); -1 if the
  /// request never got one (cancelled while deferred).
  double decision_time = -1.0;
  /// Time the request left the system (completed/cancelled/expired/
  /// rejected); -1 while running (never in a final report).
  double finish_time = -1.0;
  /// Seconds from submission to the first streamed result; -1 if none.
  double time_to_first_result = -1.0;
  /// Times the admission controller deferred the request.
  int defers = 0;
  /// Results streamed to the request's callback.
  int64_t results = 0;
  /// pScore (Eq. 7) over the streamed results.
  double pscore = 0.0;
  /// Average utility per streamed result.
  double satisfaction = 0.0;
  /// Admission-time expected per-result utility estimate.
  double expected_utility = 0.0;
  /// Live regions grafted into the request's lineage at admission.
  int64_t lineage_regions = 0;
  /// Parked (accepted but unemitted) candidates dropped at retirement.
  int64_t parked_dropped = 0;
  /// Stable short reason string for the admission outcome.
  std::string reason;
};

/// Outcome of one CaqeServer::Run over a submitted trace.
struct ServingReport {
  /// Per-request outcomes, by request id.
  std::vector<RequestReport> requests;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  int64_t completed = 0;
  /// admitted / submitted (0 when nothing was submitted).
  double admission_rate = 0.0;
  /// Sum of per-request pScores (the serving analogue of Eq. 6).
  double cumulative_pscore = 0.0;
  /// Virtual time when the trace drained.
  double finish_vtime = 0.0;
  /// Control-plane operations (admission scans, graft/retire lineage
  /// edits, completion checks). Deliberately *not* charged to the virtual
  /// clock: retiring a query must leave the survivors' timeline identical
  /// to a run where it was never admitted.
  int64_t control_ops = 0;
  /// Data-plane operation counters (identical across thread counts except
  /// the wall_* fields, which the report text excludes).
  EngineStats stats;
};

/// One deterministic line describing a request's final outcome. Two runs
/// produce byte-identical lines iff the request's observable outcome
/// matched.
std::string RequestReportLine(const RequestReport& request);

/// Deterministic multi-line rendering of the full report: summary counters,
/// data-plane stats (excluding wall times), then one RequestReportLine per
/// request. Byte-identical across thread counts and SIMD builds.
std::string ServingReportText(const ServingReport& report);

/// Assigns quantized, strictly increasing virtual timestamps to wall-clock
/// arrivals. A live front-end cannot use wall time for contract scoring
/// (it would break the determinism contract), so each ingested event is
/// stamped with the next free multiple of `quantum` at or above the
/// engine's current virtual time. The quantum index (not the double) is
/// what session recorders persist: `index * quantum` is re-computed
/// bit-identically on replay, which is what makes a recorded wall-clock
/// session byte-diffable against its virtual-clock replay.
class ArrivalQuantizer {
 public:
  explicit ArrivalQuantizer(double quantum = kDefaultQuantum);

  /// Smallest unused quantum index whose time is >= `virtual_now`.
  /// Strictly increasing across calls.
  int64_t Next(double virtual_now);

  double TimeOf(int64_t index) const { return index * quantum_; }
  double quantum() const { return quantum_; }

  static constexpr double kDefaultQuantum = 1e-6;

 private:
  double quantum_;
  int64_t last_ = -1;
};

}  // namespace caqe

#endif  // CAQE_SERVE_SERVING_H_
