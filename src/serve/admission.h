// Contract-aware admission control for the online serving layer.
//
// An arrival is scored against the *current* execution state: its would-be
// region lineage (every region whose predicate slot matches and whose cell
// boxes survive the coarse selection test — already-processed regions are
// resurrected and reprocessed for the newcomer, so every query sees the
// full data), the cost-model estimate of its own work, and the backlog of
// already-admitted work. The
// contract previews the utility a result would earn at the optimistic
// first-result time and at the pessimistic drain time; a request whose
// expected utility is below the policy floor — or whose deadline cannot be
// met even optimistically — is rejected outright, and a feasible request is
// deferred while the server is at capacity.
//
// Everything here is control-plane work: operations are counted in
// `control_ops` but never charged to the virtual clock, so admission
// decisions do not perturb the data-plane timeline (the cancellation-
// equivalence guarantee relies on this).
#ifndef CAQE_SERVE_ADMISSION_H_
#define CAQE_SERVE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/virtual_clock.h"
#include "contracts/utility.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "region/region_builder.h"
#include "serve/calibration.h"
#include "serve/serving.h"

namespace caqe {

/// Everything the admission controller may look at when scoring one
/// arrival. All pointers are borrowed for the duration of the call.
struct AdmissionInput {
  const RegionCollection* rc = nullptr;
  const PartitionedTable* part_r = nullptr;
  const PartitionedTable* part_t = nullptr;
  /// Regions still awaiting tuple-level processing (live backlog).
  const std::vector<char>* pending = nullptr;
  const CostModel* cost = nullptr;
  /// Current virtual time and the request's arrival time (now >= submit).
  double now = 0.0;
  double submit_time = 0.0;
  /// Request deadline in seconds after submission; <= 0 disables.
  double deadline_seconds = 0.0;
  /// Currently running (admitted, unretired) queries.
  int active_queries = 0;
  /// Whether a workload slot is available for grafting.
  bool slot_available = true;
  /// Per-workload estimate calibrator (null = raw model estimates). The
  /// controller applies the bucket's correction factors to the service-time
  /// and cardinality estimates before the deadline and utility previews.
  const Calibrator* calibrator = nullptr;
  const ServeOptions* options = nullptr;
};

/// Admission verdict plus the estimates that produced it (surfaced in the
/// request report for post-hoc inspection).
struct AdmissionEstimate {
  AdmissionDecision decision = AdmissionDecision::kReject;
  /// Stable short reason: "admitted", "capacity", "no-predicate",
  /// "no-data", "deadline", "infeasible", "low-utility".
  const char* reason = "";
  /// Expected per-result utility over the estimated service window.
  double expected_utility = 0.0;
  /// Optimistic seconds (from submission) to the first result: the
  /// cheapest lineage region processed immediately.
  double est_first_seconds = 0.0;
  /// Pessimistic seconds (from submission) to the last result: the full
  /// current backlog plus all of the request's own work.
  double est_finish_seconds = 0.0;
  /// Regions the request's lineage would contain.
  int64_t lineage_regions = 0;
  /// Buchta (Eq. 9) estimate of the request's final result cardinality
  /// over its graftable join output.
  double estimated_results = 0.0;
  /// Uncorrected model outputs (equal to the est_* fields without a
  /// calibrator). The calibrator's completion samples compare observations
  /// against these, never against its own corrections.
  double raw_first_seconds = 0.0;
  double raw_finish_seconds = 0.0;
  double raw_estimated_results = 0.0;
  /// Uncorrected service-window cost (backlog + own work, *excluding* the
  /// already-elapsed wait) — the calibration target: at completion the
  /// observed admit-to-finish time divided by this is the ratio the
  /// bucket's time factor learns.
  double raw_service_cost_seconds = 0.0;
  /// Calibration bucket the estimates were corrected with (-1 = none).
  int calibration_bucket = -1;
  /// Whether that bucket had absorbed enough completions for its factors
  /// to be decision-grade (gates the completion-feasibility test).
  bool calibration_trusted = false;
};

/// Cost-model estimate (virtual seconds) of tuple-processing `region` for
/// one predicate slot alone: probes over both cell row sets, the slot's
/// exact join output, an n log n dominance term, and the scheduling step.
/// Mirrors ContractDrivenScheduler::EstimateCost restricted to one slot.
double RegionSlotCost(const OutputRegion& region, int slot,
                      const CostModel& cost);

/// Virtual-seconds estimate of the live backlog: the summed cost of every
/// pending region over the predicate slots it currently serves.
double BacklogCost(const RegionCollection& rc,
                   const std::vector<char>& pending, const CostModel& cost);

/// Scores one arrival. Increments `*control_ops` by the number of
/// control-plane steps taken (region scans, cost sums).
AdmissionEstimate EvaluateAdmission(const SjQuery& query,
                                    const Contract& contract,
                                    const AdmissionInput& in,
                                    int64_t* control_ops);

}  // namespace caqe

#endif  // CAQE_SERVE_ADMISSION_H_
