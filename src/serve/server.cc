#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/engine.h"
#include "obs/observability.h"
#include "serve/admission.h"
#include "skyline/cardinality.h"

namespace caqe {

CaqeServer::CaqeServer(Table r, Table t, ServeOptions options)
    : options_(std::move(options)),
      r_(std::move(r)),
      t_(std::move(t)),
      clock_(options_.cost) {}

Result<std::unique_ptr<CaqeServer>> CaqeServer::Create(
    Table r, Table t, std::vector<MappingFunction> output_dims,
    std::vector<int> join_keys, ServeOptions options) {
  if (output_dims.empty()) {
    return Status::InvalidArgument("at least one output dimension required");
  }
  std::sort(join_keys.begin(), join_keys.end());
  join_keys.erase(std::unique(join_keys.begin(), join_keys.end()),
                  join_keys.end());
  if (join_keys.empty()) {
    return Status::InvalidArgument("at least one join key required");
  }
  std::unique_ptr<CaqeServer> server(
      new CaqeServer(std::move(r), std::move(t), std::move(options)));
  CAQE_RETURN_NOT_OK(
      server->Bootstrap(std::move(output_dims), std::move(join_keys)));
  return server;
}

Status CaqeServer::Bootstrap(std::vector<MappingFunction> output_dims,
                             std::vector<int> join_keys) {
  for (const MappingFunction& f : output_dims) workload_.AddOutputDim(f);
  std::vector<int> all_dims(workload_.num_output_dims());
  for (int k = 0; k < workload_.num_output_dims(); ++k) all_dims[k] = k;
  // One synthetic full-coverage query per configured join key: regions only
  // exist for predicates some build-time query matched, so the bootstrap
  // workload makes every (cell pair, key) region materialize. The synthetic
  // slots are cleared right after the build and become the free slot pool.
  for (size_t i = 0; i < join_keys.size(); ++i) {
    workload_.AddQuery(SjQuery{"__bootstrap" + std::to_string(i),
                               join_keys[i], all_dims, 1.0, {}});
  }
  CAQE_RETURN_NOT_OK(workload_.Validate(r_, t_));

  // The pool is created before partitioning so the quad-tree build and the
  // region build share it.
  const int num_threads = ResolveNumThreads(options_.num_threads);
  if (num_threads > 1) {
    pool_owner_ = std::make_unique<ThreadPool>(num_threads - 1);
  }
  pool_ = pool_owner_.get();

  ExecOptions exec;
  exec.cost = options_.cost;
  exec.partition_strategy = options_.partition_strategy;
  exec.cells_per_dim = options_.cells_per_dim;
  exec.target_regions = options_.target_regions;
  const int target = AdaptiveTargetRegions(exec, r_, t_, workload_);
  Result<PartitionedTable> part_r =
      PartitionForRegions(r_, exec, target, pool_);
  CAQE_RETURN_NOT_OK(part_r.status());
  part_r_.emplace(std::move(part_r).value());
  Result<PartitionedTable> part_t =
      PartitionForRegions(t_, exec, target, pool_);
  CAQE_RETURN_NOT_OK(part_t.status());
  part_t_.emplace(std::move(part_t).value());

  TraceSink* const spans = Observability::Spans(options_.obs);
  SelectionClassIndex sel_index;
  CoarseIndexStats index_stats;
  RegionBuildOptions build_options;
  build_options.pool = pool_;
  if (options_.coarse_index) {
    TraceSpan index_span(spans, "coarse_index_build", "serve");
    sel_index =
        BuildSelectionClassIndex(*part_r_, *part_t_, workload_, &index_stats);
    index_span.set_arg("cells",
                       part_r_->num_cells() + part_t_->num_cells());
    build_options.selection_index = &sel_index;
    build_options.index_stats = &index_stats;
  }
  Result<RegionCollection> rc =
      BuildRegions(*part_r_, *part_t_, workload_, build_options);
  CAQE_RETURN_NOT_OK(rc.status());
  if (options_.obs != nullptr && options_.coarse_index) {
    RecordCoarseIndexStats(options_.obs->metrics, index_stats);
  }
  rc_ = std::move(rc).value();
  stats_.regions_built += static_cast<int64_t>(rc_.regions.size());
  stats_.coarse_ops += rc_.coarse_ops;
  clock_.ChargeCoarseOps(rc_.coarse_ops);

  // Clear the bootstrap lineages: the server starts with no live work.
  for (OutputRegion& region : rc_.regions) {
    region.rql = QuerySet();
    region.guaranteed = QuerySet();
  }
  for (QuerySet& queries : rc_.queries_of_slot) queries = QuerySet();
  pending_.assign(rc_.regions.size(), 0);

  const int slots = workload_.num_queries();
  std::vector<Contract> placeholders(
      slots, MakeTimeStepContract(1.0));  // Rebound on every graft.
  tracker_.emplace(std::move(placeholders));
  query_reports_.resize(slots);
  identity_.resize(slots);
  for (int q = 0; q < slots; ++q) identity_[q] = q;
  slot_request_.assign(slots, -1);
  free_slots_.resize(slots);
  for (int q = 0; q < slots; ++q) free_slots_[q] = q;

  PipelineOptions pipe_options;
  pipe_options.tuple_discard = options_.tuple_discard;
  pipe_options.dva_mode = options_.dva_mode;
  pipe_options.capture_results = false;
  pipe_options.trace = options_.trace;
  pipe_options.obs = options_.obs;
  pipe_options.pipeline_regions = options_.pipeline_regions;
  pipe_options.compact_layout = options_.compact_layout;
  pipe_options.join_index_cache_entries = options_.join_index_cache_entries;
  pipe_options.on_emit = [this](int query, int64_t id, double time,
                                double utility) {
    const int request_id = slot_request_[query];
    if (request_id < 0) return;
    RequestState& request = requests_[request_id];
    if (request.time_to_first_result < 0.0) {
      request.time_to_first_result = time - request.submit_time;
      if (ttfr_hist_ != nullptr) {
        ttfr_hist_->Observe(request.time_to_first_result);
      }
      // Emission runs synchronously on the driver thread, so this append
      // keeps the ledger's serial order (and replay determinism).
      if (ledger_ != nullptr) {
        AuditRecord record;
        record.kind = AuditKind::kFirstResult;
        record.request_id = request_id;
        record.vtime = time;
        record.parent = request.graft_span;
        record.results = 1;
        ledger_->Append(record);
      }
    }
    if (request.callback) request.callback(request_id, id, time, utility);
  };
  ledger_ = Observability::Ledger(options_.obs);
  if (options_.calibrate) calibrator_.emplace();
  if (options_.obs != nullptr) {
    ttfr_hist_ = &options_.obs->metrics.histogram(
        "caqe_serve_time_to_first_result_vseconds",
        ExponentialBuckets(1e-4, 4.0, 14));
    svc_err_hist_ = &options_.obs->metrics.histogram(
        "caqe_serve_service_time_relative_error", RelativeErrorBuckets());
    if (calibrator_.has_value()) {
      MetricsRegistry& metrics = options_.obs->metrics;
      calib_raw_err_hist_ = &metrics.histogram(
          "caqe_calib_raw_relative_error", RelativeErrorBuckets());
      calib_corr_err_hist_ = &metrics.histogram(
          "caqe_calib_corrected_relative_error", RelativeErrorBuckets());
      calib_observations_ =
          &metrics.counter("caqe_calib_observations_total");
      calib_repreviews_ = &metrics.counter("caqe_calib_repreviews_total");
      calib_upgrades_ = &metrics.counter("caqe_calib_upgrades_total");
      calib_shifts_ = &metrics.counter("caqe_calib_shifts_total");
    }
  }
  pipeline_ = std::make_unique<RegionPipeline>(
      &*part_r_, &*part_t_, &workload_, &rc_, &pending_, &pending_count_,
      &*tracker_, &clock_, &stats_, &query_reports_, pool_,
      std::move(pipe_options));
  pipeline_->SetGlobalQueryIds(identity_);

  if (options_.policy != SchedulePolicy::kStaticScan) {
    SchedulerOptions sched_options;
    sched_options.feedback_enabled = options_.feedback;
    sched_options.contract_driven =
        options_.policy == SchedulePolicy::kContractDriven;
    sched_options.dynamic_workload = true;
    sched_options.obs = options_.obs;
    scheduler_.emplace(&rc_, &workload_, &*tracker_, &clock_.cost_model(),
                       sched_options);
    // The bootstrap slots start dormant: no weight, no Eq. 11 share.
    for (int q = 0; q < slots; ++q) scheduler_->RetireQuery(q);
    pipeline_->set_scheduler(&*scheduler_);
  }
  return Status::OK();
}

int CaqeServer::Submit(SjQuery query, Contract contract, double arrival_time,
                       double deadline_seconds, ResultCallback callback) {
  CAQE_CHECK(!ran_);
  CAQE_CHECK(contract != nullptr);
  RequestState request;
  request.id = static_cast<int>(requests_.size());
  request.query = std::move(query);
  request.contract = std::move(contract);
  request.callback = std::move(callback);
  request.submit_time = std::max(0.0, arrival_time);
  request.deadline_seconds = deadline_seconds;
  events_.push_back(TraceEvent{request.submit_time,
                               static_cast<int>(events_.size()),
                               TraceEvent::Kind::kArrival, request.id});
  requests_.push_back(std::move(request));
  return requests_.back().id;
}

Status CaqeServer::Cancel(int request_id, double cancel_time) {
  if (ran_) return Status::FailedPrecondition("server already ran");
  if (request_id < 0 || request_id >= static_cast<int>(requests_.size())) {
    return Status::InvalidArgument("unknown request id: " +
                                   std::to_string(request_id));
  }
  events_.push_back(TraceEvent{std::max(0.0, cancel_time),
                               static_cast<int>(events_.size()),
                               TraceEvent::Kind::kCancel, request_id});
  return Status::OK();
}

CaqeServer::RequestBrief CaqeServer::BriefOf(int request_id) const {
  const RequestState& request = requests_[static_cast<size_t>(request_id)];
  RequestBrief brief;
  brief.id = request.id;
  brief.name = request.query.name;
  brief.status = request.status;
  brief.submit_time = request.submit_time;
  brief.root_span = request.root_span;
  if (request.slot >= 0 && tracker_.has_value()) {
    const QuerySatisfaction& sat = tracker_->satisfaction(request.slot);
    brief.results = sat.results;
    brief.pscore = sat.pscore;
  } else {
    brief.results = request.results;
    brief.pscore = request.pscore;
  }
  return brief;
}

int CaqeServer::FindRequestByName(std::string_view name) const {
  for (int i = static_cast<int>(requests_.size()) - 1; i >= 0; --i) {
    if (requests_[static_cast<size_t>(i)].query.name == name) return i;
  }
  return -1;
}

int CaqeServer::ActiveQueries() const {
  int active = 0;
  for (int request_id : slot_request_) {
    if (request_id >= 0) ++active;
  }
  return active;
}

bool CaqeServer::SlotAvailable() const {
  return !free_slots_.empty() ||
         workload_.num_queries() < QuerySet::kMaxQueries;
}

void CaqeServer::RecordEvent(ExecEvent::Kind kind, int region, int query,
                             int64_t count) {
  if (options_.trace == nullptr) return;
  options_.trace->push_back(
      ExecEvent{kind, clock_.Now(), region, query, count});
}

void CaqeServer::NotifyFinished(const RequestState& request) {
  // Single point every terminal transition passes through (retire, reject,
  // cancel-before-admission, expiry, forced drain reject): the ledger's
  // terminal record with estimate-vs-observed service time lands here.
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.kind = AuditKind::kFinish;
    record.request_id = request.id;
    record.vtime = request.finish_time >= 0.0 ? request.finish_time
                                              : clock_.Now();
    record.parent = request.graft_span != 0
                        ? request.graft_span
                        : (request.decision_span != 0 ? request.decision_span
                                                      : request.root_span);
    record.phase = RequestStatusName(request.status);
    record.reason = request.reason;
    record.results = request.results;
    record.pscore = request.pscore;
    record.est_finish_seconds = request.est_finish_seconds;
    record.observed_seconds = request.finish_time >= 0.0
                                  ? request.finish_time - request.submit_time
                                  : 0.0;
    record.expected_utility = request.expected_utility;
    ledger_->Append(record);
  }
  if (options_.on_finish) options_.on_finish(request.id, request.status);
}

AdmissionEstimate CaqeServer::PreviewAdmission(const RequestState& request) {
  AdmissionInput in;
  in.rc = &rc_;
  in.part_r = &*part_r_;
  in.part_t = &*part_t_;
  in.pending = &pending_;
  in.cost = &clock_.cost_model();
  in.now = clock_.Now();
  in.submit_time = request.submit_time;
  in.deadline_seconds = request.deadline_seconds;
  in.active_queries = ActiveQueries();
  in.slot_available = SlotAvailable();
  in.calibrator = calibrator_.has_value() ? &*calibrator_ : nullptr;
  in.options = &options_;
  return EvaluateAdmission(request.query, request.contract, in,
                           &control_ops_);
}

AdmissionDecision CaqeServer::Decide(RequestState& request) {
  // Admission is control-plane: the span is wall-only and the counters are
  // observability-only, never charged to the virtual clock.
  TraceSpan span(Observability::Spans(options_.obs), "admission", "serve");
  span.set_query(request.id);
  span.set_parent(request.root_span, request.root_span);
  request.decision_span = span.id();
  const AdmissionEstimate est = PreviewAdmission(request);
  request.expected_utility = est.expected_utility;
  request.lineage_regions = est.lineage_regions;
  request.reason = est.reason;
  request.est_first_seconds = est.est_first_seconds;
  request.est_finish_seconds = est.est_finish_seconds;
  request.raw_service_cost_seconds = est.raw_service_cost_seconds;
  request.raw_est_results = est.raw_estimated_results;
  request.calibration_bucket = est.calibration_bucket;
  if (options_.obs != nullptr) {
    options_.obs->metrics
        .counter(std::string("caqe_serve_admission_decisions_total{"
                             "decision=\"") +
                 AdmissionDecisionName(est.decision) + "\",reason=\"" +
                 est.reason + "\"}")
        .Inc();
  }
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.kind = AuditKind::kDecision;
    record.request_id = request.id;
    record.vtime = clock_.Now();
    record.span = request.decision_span;
    record.parent = request.root_span;
    record.phase = AdmissionDecisionName(est.decision);
    record.reason = est.reason;
    record.est_first_seconds = est.est_first_seconds;
    record.est_finish_seconds = est.est_finish_seconds;
    record.expected_utility = est.expected_utility;
    ledger_->Append(record);
  }
  switch (est.decision) {
    case AdmissionDecision::kAdmit: {
      request.decision_time = clock_.Now();
      const Status grafted = Graft(request);
      CAQE_CHECK(grafted.ok());
      request.status = RequestStatus::kRunning;
      ++admitted_count_;
      break;
    }
    case AdmissionDecision::kDefer:
      request.status = RequestStatus::kDeferred;
      ++request.defers;
      break;
    case AdmissionDecision::kReject:
      request.decision_time = clock_.Now();
      request.finish_time = clock_.Now();
      request.status = RequestStatus::kRejected;
      break;
  }
  if (options_.on_decision) {
    options_.on_decision(request.id, est.decision, est.reason);
  }
  if (est.decision == AdmissionDecision::kReject) NotifyFinished(request);
  return est.decision;
}

Status CaqeServer::Graft(RequestState& request) {
  TraceSpan span(Observability::Spans(options_.obs), "graft", "serve");
  span.set_query(request.id);
  span.set_parent(request.decision_span != 0 ? request.decision_span
                                             : request.root_span,
                  request.root_span);
  request.graft_span = span.id();
  // Stage boundary: a graft mutates lineages, pending flags, and the
  // workload, so drop any speculative join still in flight (its deferred
  // charges were never committed — the pipeline re-joins fresh).
  pipeline_->CancelSpeculation();
  int pslot = -1;
  for (int s = 0; s < static_cast<int>(rc_.predicate_slots.size()); ++s) {
    if (rc_.predicate_slots[s] == request.query.join_key) {
      pslot = s;
      break;
    }
  }
  CAQE_CHECK(pslot >= 0);  // Admission rejects unknown predicates.

  // Acquire a workload slot: lowest free slot, else append a new one.
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.front();
    free_slots_.erase(free_slots_.begin());
    workload_.SetQuery(slot, request.query);
    rc_.slot_of_query[slot] = pslot;
    tracker_->ResetQuery(slot, request.contract, request.submit_time);
    query_reports_[slot] = QueryReport{};
  } else {
    CAQE_CHECK(workload_.num_queries() < QuerySet::kMaxQueries);
    slot = workload_.AddQuery(request.query);
    rc_.slot_of_query.push_back(pslot);
    identity_.push_back(slot);
    slot_request_.push_back(-1);
    query_reports_.push_back(QueryReport{});
    const int tracker_slot =
        tracker_->AddQuery(request.contract, request.submit_time);
    CAQE_CHECK(tracker_slot == slot);
    pipeline_->SetGlobalQueryIds(identity_);
  }
  query_reports_[slot].name = request.query.name;
  rc_.queries_of_slot[pslot].Add(slot);

  // Re-derive the region lineage: every region whose predicate matches and
  // whose cell boxes survive the coarse selection test joins the lineage.
  // Non-pending regions — discarded by earlier pruning or already
  // processed — are resurrected for reprocessing; their stale lineage is
  // cleared first so the rerun feeds only the newcomer (the old members
  // already consumed those tuples).
  int64_t live = 0;
  double join_total = 0.0;
  for (OutputRegion& region : rc_.regions) {
    ++control_ops_;
    if (region.join_sizes[pslot] <= 0) continue;
    const SelectionCoarse coarse =
        CoarseSelectionTest(request.query, part_r_->cell(region.cell_r),
                            part_t_->cell(region.cell_t));
    if (coarse == SelectionCoarse::kDisjoint) continue;
    if (!pending_[region.id]) {
      region.rql = QuerySet();
      region.guaranteed = QuerySet();
      pending_[region.id] = 1;
      ++pending_count_;
      if (scheduler_.has_value()) scheduler_->OnRegionActivated(region.id);
    }
    region.rql.Add(slot);
    if (coarse == SelectionCoarse::kContained) region.guaranteed.Add(slot);
    join_total += static_cast<double>(region.join_sizes[pslot]);
    ++live;
  }
  request.lineage_regions = live;

  const int dims = static_cast<int>(request.query.preference.size());
  double estimated_total =
      join_total > 0.0 ? BuchtaSkylineCardinality(join_total, dims) : 1.0;
  // Calibrated servers graft with the corrected cardinality guess, so the
  // tracker's Eq. 7 denominators improve together with admission.
  if (calibrator_.has_value() && request.calibration_bucket >= 0) {
    Calibrator::BucketKey bucket;
    bucket.index = request.calibration_bucket;
    estimated_total = std::max(
        1.0, calibrator_->CorrectCardinality(bucket, estimated_total));
  }
  tracker_->SetEstimatedTotal(slot, estimated_total);

  if (scheduler_.has_value()) scheduler_->AddQuery(slot);
  CAQE_RETURN_NOT_OK(pipeline_->AddPlanGroup(pslot, {slot}));
  // After the lineage extension, so the witness scan list holds exactly
  // this query's regions.
  pipeline_->emission().AddQuery(slot);

  slot_request_[slot] = request.id;
  request.slot = slot;
  if (options_.obs != nullptr) {
    options_.obs->health.SetName(request.id, request.query.name);
  }
  span.set_arg("lineage_regions", live);
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.kind = AuditKind::kGraft;
    record.request_id = request.id;
    record.vtime = clock_.Now();
    record.span = request.graft_span;
    record.parent = request.decision_span != 0 ? request.decision_span
                                               : request.root_span;
    record.lineage_regions = live;
    ledger_->Append(record);
  }
  RecordEvent(ExecEvent::Kind::kQueryAdmitted, -1, slot, live);
  return Status::OK();
}

void CaqeServer::Retire(RequestState& request, RequestStatus final_status) {
  TraceSpan span(Observability::Spans(options_.obs), "retire", "serve");
  span.set_query(request.id);
  span.set_parent(request.graft_span != 0 ? request.graft_span
                                          : request.root_span,
                  request.root_span);
  // Stage boundary: retirement prunes lineages and pending flags; see
  // Graft for why in-flight speculation is dropped first.
  pipeline_->CancelSpeculation();
  const int slot = request.slot;
  CAQE_CHECK(slot >= 0);
  const double now = clock_.Now();

  // Prune the lineage; regions left with an empty lineage stop being
  // schedulable (but stay graftable for future arrivals).
  for (OutputRegion& region : rc_.regions) {
    ++control_ops_;
    if (!region.rql.Contains(slot)) continue;
    region.rql.Remove(slot);
    region.guaranteed.Remove(slot);
    if (region.rql.empty() && pending_[region.id]) {
      pending_[region.id] = 0;
      --pending_count_;
      if (scheduler_.has_value()) scheduler_->OnRegionRemoved(region.id);
    }
  }
  rc_.queries_of_slot[rc_.slot_of_query[slot]].Remove(slot);

  // Parked candidates of a retired query are dropped, never emitted.
  std::vector<int64_t> flushed;
  pipeline_->emission().RetireQuery(slot, &flushed);
  request.parked_dropped = static_cast<int64_t>(flushed.size());
  pipeline_->RemoveQueryFromGroups(slot);
  if (scheduler_.has_value()) scheduler_->RetireQuery(slot);

  const QuerySatisfaction& satisfaction = tracker_->satisfaction(slot);
  request.results = satisfaction.results;
  request.pscore = satisfaction.pscore;
  request.satisfaction = satisfaction.average();
  request.finish_time = now;
  request.status = final_status;

  slot_request_[slot] = -1;
  request.slot = -1;
  free_slots_.insert(
      std::lower_bound(free_slots_.begin(), free_slots_.end(), slot), slot);
  capacity_freed_ = true;
  // Estimate -> observe feedback (engine state, independent of obs): a
  // completion folds its observed/estimated ratios into the workload
  // bucket's correction factors. Retire runs on the serial driver thread,
  // which is what keeps calibrated reports replay-identical.
  if (calibrator_.has_value() && final_status == RequestStatus::kCompleted &&
      request.calibration_bucket >= 0 &&
      request.raw_service_cost_seconds > 0.0 &&
      request.decision_time >= 0.0) {
    Calibrator::BucketKey bucket;
    bucket.index = request.calibration_bucket;
    Calibrator::CompletionSample sample;
    // Observed admit-to-finish service time against the admitting
    // decision's predicted service-window cost: same basis the correction
    // factors scale, so the EWMA converges on model error, not queue wait.
    sample.raw_est_seconds = request.raw_service_cost_seconds;
    sample.observed_seconds = now - request.decision_time;
    sample.raw_est_results = request.raw_est_results;
    sample.observed_results = request.results;
    const int64_t shifts_before = calibrator_->shifts();
    calibrator_->ObserveCompletion(bucket, sample);
    if (options_.obs != nullptr && !calibrator_->error_series().empty()) {
      const Calibrator::ErrorSample& err = calibrator_->error_series().back();
      calib_raw_err_hist_->Observe(err.raw_abs_rel_error);
      calib_corr_err_hist_->Observe(err.corrected_abs_rel_error);
      calib_observations_->Inc();
      if (calibrator_->shifts() > shifts_before) calib_shifts_->Inc();
      const std::string label = Calibrator::BucketLabel(bucket);
      MetricsRegistry& metrics = options_.obs->metrics;
      metrics.gauge("caqe_calib_time_factor{bucket=\"" + label + "\"}")
          .Set(static_cast<double>(calibrator_->time_factor(bucket)) /
               static_cast<double>(Calibrator::kOne));
      metrics.gauge("caqe_calib_card_factor{bucket=\"" + label + "\"}")
          .Set(static_cast<double>(calibrator_->card_factor(bucket)) /
               static_cast<double>(Calibrator::kOne));
    }
  }
  if (options_.obs != nullptr) {
    options_.obs->metrics
        .counter(std::string("caqe_serve_retired_total{status=\"") +
                 RequestStatusName(final_status) + "\"}")
        .Inc();
    // Estimation quality: completed requests compare the admission-time
    // service estimate against the observed (virtual) service time.
    if (final_status == RequestStatus::kCompleted &&
        svc_err_hist_ != nullptr && request.est_finish_seconds > 0.0) {
      const double observed = now - request.submit_time;
      svc_err_hist_->Observe((observed - request.est_finish_seconds) /
                             request.est_finish_seconds);
    }
  }
  RecordEvent(ExecEvent::Kind::kQueryRetired, -1, slot,
              request.parked_dropped);
  NotifyFinished(request);
}

void CaqeServer::HandleArrival(RequestState& request) {
  if (request.status != RequestStatus::kQueued) return;  // Pre-cancelled.
  // Root of the request's causal tree: admission (and through it graft and
  // the ledger's records) parents under this span. Arrivals fire at event
  // time on the driver thread, so span ids and ledger order are identical
  // between a live session and its replay.
  TraceSpan root(Observability::Spans(options_.obs), "request", "serve");
  root.set_query(request.id);
  request.root_span = root.id();
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.kind = AuditKind::kArrival;
    record.request_id = request.id;
    record.vtime = clock_.Now();
    record.span = request.root_span;
    ledger_->Append(record);
  }
  Decide(request);
}

void CaqeServer::HandleCancel(RequestState& request) {
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.kind = AuditKind::kCancel;
    record.request_id = request.id;
    record.vtime = clock_.Now();
    record.parent = request.root_span;
    // Status *before* the transition: what the cancel interrupted.
    record.phase = RequestStatusName(request.status);
    ledger_->Append(record);
  }
  switch (request.status) {
    case RequestStatus::kQueued:
    case RequestStatus::kDeferred:
      request.status = RequestStatus::kCancelled;
      request.finish_time = clock_.Now();
      NotifyFinished(request);
      break;
    case RequestStatus::kRunning:
      Retire(request, RequestStatus::kCancelled);
      break;
    case RequestStatus::kCompleted:
    case RequestStatus::kCancelled:
    case RequestStatus::kExpired:
    case RequestStatus::kRejected:
      break;  // Already finished; cancellation is a no-op.
  }
}

void CaqeServer::RetryDeferred() {
  if (!capacity_freed_) return;
  capacity_freed_ = false;
  if (!calibrator_.has_value()) {
    for (RequestState& request : requests_) {
      if (request.status != RequestStatus::kDeferred) continue;
      ++control_ops_;
      Decide(request);
    }
    return;
  }
  // Calibrated promotion order: with decision-grade utility previews the
  // freed slot goes to the deferred request whose corrected expected
  // utility is highest, not merely the oldest (FIFO is the only sane order
  // for the static controller — its raw previews compress toward the
  // pessimistic end and would shuffle by bias, not value). Previews are
  // deterministic and ties break on request id, so the promotion order is
  // identical across threads and on replay.
  retry_order_.clear();
  for (RequestState& request : requests_) {
    if (request.status != RequestStatus::kDeferred) continue;
    ++control_ops_;
    const AdmissionEstimate preview = PreviewAdmission(request);
    retry_order_.emplace_back(preview.expected_utility, request.id);
  }
  std::sort(retry_order_.begin(), retry_order_.end(),
            [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const std::pair<double, int>& entry : retry_order_) {
    RequestState& request = requests_[static_cast<size_t>(entry.second)];
    if (request.status != RequestStatus::kDeferred) continue;
    ++control_ops_;
    Decide(request);
  }
}

void CaqeServer::RepreviewDeferred() {
  // A calibration shift can flip an earlier defer into an admit — re-score
  // the deferred queue in stable request-id order so the upgrade order is
  // deterministic, and commit only the upgrades. A preview that now says
  // reject stays deferred: the regular capacity-event retry delivers that
  // verdict, and committing it here would let one mid-saturation shift
  // discard requests the static controller would have served.
  for (RequestState& request : requests_) {
    if (request.status != RequestStatus::kDeferred) continue;
    ++control_ops_;
    const double before_first = request.est_first_seconds;
    const double before_finish = request.est_finish_seconds;
    const AdmissionEstimate preview = PreviewAdmission(request);
    const bool upgraded = preview.decision == AdmissionDecision::kAdmit;
    if (upgraded) {
      const AdmissionDecision committed = Decide(request);
      CAQE_CHECK(committed == AdmissionDecision::kAdmit);
    }
    RecordEvent(ExecEvent::Kind::kQueryRepreviewed, -1, request.id,
                upgraded ? 1 : 0);
    if (calib_repreviews_ != nullptr) calib_repreviews_->Inc();
    if (upgraded && calib_upgrades_ != nullptr) calib_upgrades_->Inc();
    if (ledger_ != nullptr) {
      AuditRecord record;
      record.kind = AuditKind::kRepreview;
      record.request_id = request.id;
      record.vtime = clock_.Now();
      record.parent = request.root_span;
      record.phase = AdmissionDecisionName(preview.decision);
      record.reason = preview.reason;
      record.est_first_before_seconds = before_first;
      record.est_finish_before_seconds = before_finish;
      record.est_first_seconds = preview.est_first_seconds;
      record.est_finish_seconds = preview.est_finish_seconds;
      ledger_->Append(record);
    }
  }
}

std::string CaqeServer::CalibrationStatusText() const {
  if (!calibrator_.has_value()) return "calibration: off\n";
  return calibrator_->StatusText();
}

void CaqeServer::CheckExpiry() {
  const double now = clock_.Now();
  for (RequestState& request : requests_) {
    if (request.deadline_seconds <= 0.0) continue;
    if (request.status != RequestStatus::kRunning &&
        request.status != RequestStatus::kDeferred) {
      continue;
    }
    ++control_ops_;
    if (now < request.submit_time + request.deadline_seconds) continue;
    if (request.status == RequestStatus::kRunning) {
      Retire(request, RequestStatus::kExpired);
    } else {
      request.status = RequestStatus::kExpired;
      request.finish_time = now;
      NotifyFinished(request);
    }
  }
}

void CaqeServer::CheckCompletion() {
  QuerySet live;
  for (const OutputRegion& region : rc_.regions) {
    ++control_ops_;
    if (pending_[region.id]) live = live.Union(region.rql);
  }
  for (RequestState& request : requests_) {
    if (request.status != RequestStatus::kRunning) continue;
    ++control_ops_;
    if (!live.Contains(request.slot)) {
      Retire(request, RequestStatus::kCompleted);
    }
  }
}

int CaqeServer::PickRegion() {
  if (scheduler_.has_value()) {
    int64_t pick_ops = 0;
    const int rid = scheduler_->PickNext(clock_.Now(), &pick_ops);
    stats_.coarse_ops += pick_ops;
    clock_.ChargeCoarseOps(pick_ops);
    return rid;
  }
  for (int i = 0; i < static_cast<int>(pending_.size()); ++i) {
    if (pending_[i]) return i;
  }
  CAQE_CHECK(false);
  return -1;
}

bool CaqeServer::StepInternal() {
  // Idle: no due or future event and no pending region. Return without
  // touching anything — a wall-clock poll loop calls this speculatively,
  // and an idle step that swept the control plane would inflate control_ops
  // relative to the virtual-clock replay.
  if (pending_count_ == 0 && cursor_ >= events_.size()) return false;
  // Idle server with queued events: jump straight to the next arrival/
  // cancel.
  if (pending_count_ == 0 && cursor_ < events_.size()) {
    clock_.AdvanceTo(events_[cursor_].time);
  }
  // Fire every due event in (time, submission order).
  while (cursor_ < events_.size() && events_[cursor_].time <= clock_.Now()) {
    const TraceEvent& event = events_[cursor_++];
    RequestState& request = requests_[event.request_id];
    if (event.kind == TraceEvent::Kind::kArrival) {
      HandleArrival(request);
    } else {
      HandleCancel(request);
    }
  }
  // A calibration shift from the previous step's completions re-previews
  // the deferred queue now — after this step's arrivals, before the
  // capacity retry — so an upgrade only claims capacity the fresh arrivals
  // left behind.
  if (repreview_pending_) {
    repreview_pending_ = false;
    RepreviewDeferred();
  }
  RetryDeferred();
  CheckExpiry();
  CheckCompletion();
  // Completions inside CheckCompletion may have shifted the calibration
  // factors past the hysteresis; latch the flag here, still on the serial
  // driver step, so live and replayed runs re-preview at the same point in
  // the event sequence.
  if (calibrator_.has_value() && calibrator_->TakeShift()) {
    repreview_pending_ = true;
  }

  if (pending_count_ > 0) {
    // Snapshot every live slot's (results, pscore, weight) so the ledger's
    // region_step records carry before/after pairs. Scratch vectors keep
    // their capacity across steps (alloc-gate discipline).
    if (ledger_ != nullptr) {
      const size_t slots = slot_request_.size();
      if (step_results_before_.size() < slots) {
        step_results_before_.resize(slots, 0);
        step_pscore_before_.resize(slots, 0.0);
        step_weight_before_.resize(slots, 0.0);
      }
      for (size_t slot = 0; slot < slots; ++slot) {
        if (slot_request_[slot] < 0) continue;
        const QuerySatisfaction& sat =
            tracker_->satisfaction(static_cast<int>(slot));
        step_results_before_[slot] = sat.results;
        step_pscore_before_[slot] = sat.pscore;
        step_weight_before_[slot] =
            scheduler_.has_value() ? scheduler_->weight(static_cast<int>(slot))
                                   : 1.0;
      }
    }
    const int rid = PickRegion();
    {
      // Umbrella span for this region step: the pipeline's phase spans
      // parent under it (see RegionPipeline::set_trace_context), so the
      // step is one connected tree and tree-sticky sampling keeps or drops
      // it whole.
      TraceSpan region_span(Observability::Spans(options_.obs),
                            "process_region", "serve");
      region_span.set_region(rid);
      if (region_span.id() != 0) {
        pipeline_->set_trace_context(RequestTraceContext{
            /*request_id=*/-1, region_span.id(), region_span.id()});
      }
      pipeline_->ProcessRegion(rid);
    }
    if (scheduler_.has_value()) scheduler_->UpdateWeights();
    // Contract-health trajectories, keyed by *request id* (workload slots
    // are reused across requests; request ids are not).
    if (options_.obs != nullptr) {
      const double now = clock_.Now();
      for (int slot = 0; slot < static_cast<int>(slot_request_.size());
           ++slot) {
        const int request_id = slot_request_[slot];
        if (request_id < 0) continue;
        const QuerySatisfaction& sat = tracker_->satisfaction(slot);
        const double weight =
            scheduler_.has_value() ? scheduler_->weight(slot) : 1.0;
        options_.obs->health.Sample(now, request_id, sat.results,
                                    sat.pscore, weight);
        // Ledger: one region_step record per request whose contract state
        // this region moved (same dedup triple as the health timeline).
        if (ledger_ != nullptr &&
            (sat.results != step_results_before_[slot] ||
             sat.pscore != step_pscore_before_[slot] ||
             weight != step_weight_before_[slot])) {
          AuditRecord record;
          record.kind = AuditKind::kRegionStep;
          record.request_id = request_id;
          record.vtime = now;
          record.region = rid;
          record.parent = requests_[request_id].graft_span;
          record.results = sat.results;
          record.pscore_before = step_pscore_before_[slot];
          record.pscore = sat.pscore;
          record.weight = weight;
          ledger_->Append(record);
        }
      }
    }
  }
  return true;
}

Result<ServingReport> CaqeServer::Run() {
  if (ran_) return Status::FailedPrecondition("CaqeServer::Run called twice");
  ran_ = true;

  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.seq < b.seq;
                   });
  while (StepInternal()) {
  }
  return Finish();
}

Status CaqeServer::BeginLive() {
  if (ran_) return Status::FailedPrecondition("server already ran");
  if (!requests_.empty()) {
    return Status::FailedPrecondition(
        "BeginLive requires an empty submission queue");
  }
  ran_ = true;
  live_ = true;
  return Status::OK();
}

Result<int> CaqeServer::SubmitLive(SjQuery query, Contract contract,
                                   double arrival_vtime,
                                   double deadline_seconds,
                                   ResultCallback callback) {
  if (!live_ || finished_) {
    return Status::FailedPrecondition("server not accepting live arrivals");
  }
  if (contract == nullptr) {
    return Status::InvalidArgument("contract required");
  }
  // Wire input is validated, never CHECKed: a malformed query must produce
  // an error reply, not abort the server (Workload::SetQuery aborts on
  // out-of-range preferences).
  if (query.preference.empty()) {
    return Status::InvalidArgument("empty preference");
  }
  std::vector<int> sorted = query.preference;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 0 || sorted[i] >= workload_.num_output_dims()) {
      return Status::InvalidArgument("preference dimension out of range: " +
                                     std::to_string(sorted[i]));
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate preference dimension: " +
                                     std::to_string(sorted[i]));
    }
  }
  if (arrival_vtime < clock_.Now() ||
      (!events_.empty() && arrival_vtime < events_.back().time)) {
    return Status::InvalidArgument(
        "live arrival time must be monotone (quantize with "
        "ArrivalQuantizer)");
  }
  RequestState request;
  request.id = static_cast<int>(requests_.size());
  request.query = std::move(query);
  request.contract = std::move(contract);
  request.callback = std::move(callback);
  request.submit_time = arrival_vtime;
  request.deadline_seconds = deadline_seconds;
  events_.push_back(TraceEvent{request.submit_time,
                               static_cast<int>(events_.size()),
                               TraceEvent::Kind::kArrival, request.id});
  requests_.push_back(std::move(request));
  return requests_.back().id;
}

Status CaqeServer::CancelLive(int request_id, double cancel_vtime) {
  if (!live_ || finished_) {
    return Status::FailedPrecondition("server not accepting live events");
  }
  if (request_id < 0 || request_id >= static_cast<int>(requests_.size())) {
    return Status::InvalidArgument("unknown request id: " +
                                   std::to_string(request_id));
  }
  if (cancel_vtime < clock_.Now() ||
      (!events_.empty() && cancel_vtime < events_.back().time)) {
    return Status::InvalidArgument(
        "live cancel time must be monotone (quantize with "
        "ArrivalQuantizer)");
  }
  events_.push_back(TraceEvent{cancel_vtime,
                               static_cast<int>(events_.size()),
                               TraceEvent::Kind::kCancel, request_id});
  return Status::OK();
}

bool CaqeServer::StepLive() {
  CAQE_CHECK(live_ && !finished_);
  return StepInternal();
}

Result<ServingReport> CaqeServer::FinishLive() {
  if (!live_) return Status::FailedPrecondition("server not in live mode");
  if (finished_) {
    return Status::FailedPrecondition("CaqeServer::FinishLive called twice");
  }
  return Finish();
}

Result<ServingReport> CaqeServer::Finish() {
  finished_ = true;
  while (true) {
    while (StepInternal()) {
    }
    // The original Run loop's terminal iteration still swept the control
    // plane once before discovering there was nothing left — that sweep is
    // what completes a request whose final region was processed in the last
    // productive step. StepInternal's idle path is deliberately
    // mutation-free (see StepLive), so the sweep lives here.
    RetryDeferred();
    CheckExpiry();
    CheckCompletion();
    // The drain has no fresh arrivals to give priority to, so a shift's
    // re-preview runs immediately instead of waiting for the next step.
    if (calibrator_.has_value() && calibrator_->TakeShift()) {
      repreview_pending_ = true;
    }
    if (repreview_pending_) {
      repreview_pending_ = false;
      RepreviewDeferred();
    }
    if (pending_count_ > 0 || cursor_ < events_.size()) continue;
    // No live work and no future events. Give still-deferred requests one
    // forced retry (capacity must be free now); whatever still defers —
    // e.g. a zero-capacity configuration — is rejected so the loop drains.
    bool any_deferred = false;
    for (const RequestState& request : requests_) {
      if (request.status == RequestStatus::kDeferred) any_deferred = true;
    }
    if (!any_deferred) break;
    capacity_freed_ = true;
    RetryDeferred();
    for (RequestState& request : requests_) {
      if (request.status != RequestStatus::kDeferred) continue;
      request.decision_time = clock_.Now();
      request.finish_time = clock_.Now();
      request.status = RequestStatus::kRejected;
      request.reason = "capacity";
      NotifyFinished(request);
    }
  }
  CAQE_RETURN_NOT_OK(pipeline_->FinalDrain());

  ServingReport report;
  report.submitted = static_cast<int64_t>(requests_.size());
  report.admitted = admitted_count_;
  for (const RequestState& request : requests_) {
    RequestReport out;
    out.request_id = request.id;
    out.name = request.query.name;
    out.status = request.status;
    out.submit_time = request.submit_time;
    out.decision_time = request.decision_time;
    out.finish_time = request.finish_time;
    out.time_to_first_result = request.time_to_first_result;
    out.defers = request.defers;
    out.results = request.results;
    out.pscore = request.pscore;
    out.satisfaction = request.satisfaction;
    out.expected_utility = request.expected_utility;
    out.lineage_regions = request.lineage_regions;
    out.parked_dropped = request.parked_dropped;
    out.reason = request.reason;
    report.requests.push_back(std::move(out));
    switch (request.status) {
      case RequestStatus::kCompleted:
        ++report.completed;
        break;
      case RequestStatus::kCancelled:
        ++report.cancelled;
        break;
      case RequestStatus::kExpired:
        ++report.expired;
        break;
      case RequestStatus::kRejected:
        ++report.rejected;
        break;
      default:
        break;
    }
    report.cumulative_pscore += request.pscore;
  }
  report.admission_rate =
      report.submitted > 0
          ? static_cast<double>(report.admitted) /
                static_cast<double>(report.submitted)
          : 0.0;
  report.finish_vtime = clock_.Now();
  report.control_ops = control_ops_;
  report.stats = stats_;
  report.stats.virtual_seconds = clock_.Now();
  if (options_.obs != nullptr) {
    MetricsRegistry& metrics = options_.obs->metrics;
    RecordEngineStats(metrics, report.stats);
    metrics.gauge("caqe_serve_admission_rate").Set(report.admission_rate);
    metrics.gauge("caqe_serve_finish_vtime_seconds").Set(report.finish_vtime);
    metrics.counter("caqe_serve_control_ops_total").Inc(report.control_ops);
    metrics.counter("caqe_serve_submitted_total").Inc(report.submitted);
  }
  return report;
}

}  // namespace caqe
