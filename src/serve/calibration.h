// Self-tuning admission calibration: the estimate -> observe feedback loop.
//
// The admission controller scores every arrival with two model outputs: the
// cost-model service-time estimate and the Buchta (Eq. 9) result-cardinality
// estimate. Both are static models; the obs layer has recorded their
// observed-vs-estimated relative error at every completion since PR 4
// without feeding it back. The Calibrator closes that loop (ROADMAP's
// self-tuning item, the serving analogue of Eq. 11's satisfaction
// feedback): every *completed* request contributes one
// (estimated, observed) sample to a per-workload bucket, and subsequent
// admissions on that bucket get their raw estimates multiplied by the
// bucket's learned correction factors before the deadline and utility
// previews run.
//
// ## Bucket scheme
//
// Completions rarely repeat an exact query, so samples are pooled by a
// coarse workload signature: (preference dimensionality) x (log-scale
// selectivity bucket: average join output per lineage region) x (query
// kind: predicate slot + whether selections are attached). The signature is
// derived with integer arithmetic only, so two runs bucket identically.
//
// ## Integer EWMA + hysteresis
//
// Each bucket holds fixed-point (scale kOne = 2^16) correction factors,
// updated by an integer EWMA over the clamped observed/estimated ratio:
//
//   factor += (ratio_fp - factor) * alpha_num / alpha_den
//
// Integer state means no accumulation-order float drift can ever creep into
// admission decisions, and saturation clamps ([kOne/8, 8*kOne]) bound the
// damage any adversarial trace can do. A bucket's factor is compared
// against the factor last *applied* to decisions; only when the gap exceeds
// the hysteresis threshold does the calibrator raise its shift flag, which
// the server consumes to re-preview the deferred queue (repreview storms
// on every sample would churn decisions for noise).
//
// ## Determinism
//
// The calibrator follows the audit ledger's rule (DESIGN.md SS15): all state
// updates happen on the serial driver thread, at virtual timestamps, from
// deterministic inputs. Reports therefore stay byte-identical across
// threads x pipeline x compact_layout, and a recorded live session replays
// exactly — the property tests/calibration_test.cc proves on random traces.
#ifndef CAQE_SERVE_CALIBRATION_H_
#define CAQE_SERVE_CALIBRATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace caqe {

/// Calibration policy knobs. All thresholds are fixed-point against
/// Calibrator::kOne.
struct CalibrationOptions {
  /// EWMA weight alpha_num/alpha_den applied to each new ratio sample.
  int64_t alpha_num = 1;
  int64_t alpha_den = 4;
  /// Repreview the deferred queue when a bucket's factor drifts this far
  /// (fixed-point) from the factor last applied to decisions.
  int64_t hysteresis = (1 << 16) / 8;
  /// Saturation clamps on both the ratio samples and the factors.
  int64_t min_factor = (1 << 16) / 8;
  int64_t max_factor = (1 << 16) * 8;
  /// Completions a bucket must absorb before its factors are decision-grade
  /// (gates the admission feasibility test; see Trusted()).
  int64_t trust_samples = 8;
};

class Calibrator {
 public:
  /// Fixed-point scale: a factor of kOne multiplies by exactly 1.0.
  static constexpr int64_t kOne = 1 << 16;
  /// Bucket-axis sizes (see file comment for the scheme).
  static constexpr int kDimsBuckets = 8;
  static constexpr int kSelBuckets = 8;
  static constexpr int kKindBuckets = 16;
  static constexpr int kNumBuckets = kDimsBuckets * kSelBuckets * kKindBuckets;

  /// Flat bucket index; -1 = no bucket (calibration bypassed).
  struct BucketKey {
    int index = -1;
  };

  /// One completed request's estimate-vs-observation pair. Raw estimates
  /// are the *uncorrected* model outputs — calibration must converge on
  /// the model error, not chase its own corrections.
  struct CompletionSample {
    double raw_est_seconds = 0.0;
    double observed_seconds = 0.0;
    double raw_est_results = 0.0;
    int64_t observed_results = 0;
  };

  /// Per-completion estimation quality, recorded before the sample updates
  /// the factors (so "corrected" reflects what admission would have
  /// predicted at that moment). The bench's tightening gate reads this.
  struct ErrorSample {
    double raw_abs_rel_error = 0.0;
    double corrected_abs_rel_error = 0.0;
  };

  explicit Calibrator(CalibrationOptions options = {});

  /// Integer-only workload signature: `dims` preference dimensions,
  /// `join_total` summed exact join output over the `lineage_regions`
  /// lineage, predicate `slot`, selections attached or not.
  static BucketKey KeyFor(int dims, int64_t join_total,
                          int64_t lineage_regions, int slot,
                          bool has_selections);

  /// "d<dims>_s<sel>_k<kind>" — the stable bucket label used in metric
  /// names and the /statusz table.
  static std::string BucketLabel(BucketKey key);

  /// CorrectedEstimate(): scales a raw service-time estimate by the
  /// bucket's fixed-point time factor (identity for an untouched bucket or
  /// an invalid key).
  double CorrectSeconds(BucketKey key, double raw_seconds) const;
  /// Same for the Buchta cardinality estimate (separate factor).
  double CorrectCardinality(BucketKey key, double raw_value) const;

  /// Folds one completion into the bucket's factors (integer EWMA, clamped)
  /// and records the error sample. Raises the shift flag when either factor
  /// drifts past the hysteresis threshold. Serial-driver-thread only.
  void ObserveCompletion(BucketKey key, const CompletionSample& sample);

  /// True once after any hysteresis-exceeding shift; reading clears it.
  /// The server re-previews the deferred queue on true.
  bool TakeShift();

  /// Fixed-point factors (kOne = identity) for introspection and metrics.
  int64_t time_factor(BucketKey key) const;
  int64_t card_factor(BucketKey key) const;
  /// Completions folded into the bucket so far.
  int64_t samples(BucketKey key) const;
  /// True once the bucket has absorbed trust_samples completions — its
  /// factors are decision-grade, unlocking the admission-side
  /// completion-feasibility test (a fresh or invalid bucket never is).
  bool Trusted(BucketKey key) const;

  int64_t completions() const { return completions_; }
  int64_t shifts() const { return shifts_; }
  const std::vector<ErrorSample>& error_series() const {
    return error_series_;
  }

  /// Deterministic multi-line table: header counters plus one line per
  /// touched bucket (fixed-point factors rendered with integer math).
  std::string StatusText() const;

 private:
  struct Bucket {
    int64_t time_factor = kOne;
    int64_t card_factor = kOne;
    /// Factors as of the last consumed shift — the values decisions are
    /// currently based on; drift beyond the hysteresis re-arms the flag.
    int64_t applied_time_factor = kOne;
    int64_t applied_card_factor = kOne;
    int64_t samples = 0;
  };

  /// Clamped integer EWMA update; returns the new factor.
  int64_t UpdateFactor(int64_t factor, int64_t ratio_fp) const;
  int64_t ClampFactor(int64_t value) const;

  CalibrationOptions options_;
  std::array<Bucket, kNumBuckets> buckets_;
  int64_t completions_ = 0;
  int64_t shifts_ = 0;
  bool shift_pending_ = false;
  std::vector<ErrorSample> error_series_;
};

}  // namespace caqe

#endif  // CAQE_SERVE_CALIBRATION_H_
