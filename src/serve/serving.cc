#include "serve/serving.h"

#include <cmath>

#include "common/macros.h"
#include "metrics/printer.h"

namespace caqe {

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kDefer:
      return "defer";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "unknown";
}

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kDeferred:
      return "deferred";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kCompleted:
      return "completed";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::string RequestReportLine(const RequestReport& request) {
  std::string line = "request " + std::to_string(request.request_id);
  line += " name=" + request.name;
  line += " status=";
  line += RequestStatusName(request.status);
  line += " submit=" + FormatDouble(request.submit_time, 9);
  line += " decision=" + FormatDouble(request.decision_time, 9);
  line += " finish=" + FormatDouble(request.finish_time, 9);
  line += " ttfr=" + FormatDouble(request.time_to_first_result, 9);
  line += " defers=" + std::to_string(request.defers);
  line += " results=" + std::to_string(request.results);
  line += " pscore=" + FormatDouble(request.pscore, 6);
  line += " satisfaction=" + FormatDouble(request.satisfaction, 6);
  line += " expected_utility=" + FormatDouble(request.expected_utility, 6);
  line += " lineage=" + std::to_string(request.lineage_regions);
  line += " parked_dropped=" + std::to_string(request.parked_dropped);
  line += " reason=" + request.reason;
  return line;
}

std::string ServingReportText(const ServingReport& report) {
  std::string out = "serving report\n";
  out += "  submitted " + std::to_string(report.submitted);
  out += "  admitted " + std::to_string(report.admitted);
  out += " (rate " + FormatDouble(report.admission_rate, 6) + ")";
  out += "  rejected " + std::to_string(report.rejected);
  out += "  cancelled " + std::to_string(report.cancelled);
  out += "  expired " + std::to_string(report.expired);
  out += "  completed " + std::to_string(report.completed);
  out += "\n";
  out += "  cumulative_pscore " + FormatDouble(report.cumulative_pscore, 6);
  out += "  finish_vtime " + FormatDouble(report.finish_vtime, 9);
  out += "  control_ops " + std::to_string(report.control_ops);
  out += "\n";
  const EngineStats& s = report.stats;
  out += "  stats: join_probes " + std::to_string(s.join_probes);
  out += " join_results " + std::to_string(s.join_results);
  out += " dominance_cmps " + std::to_string(s.dominance_cmps);
  out += " coarse_ops " + std::to_string(s.coarse_ops);
  out += " emitted " + std::to_string(s.emitted_results);
  out += " regions_built " + std::to_string(s.regions_built);
  out += " regions_processed " + std::to_string(s.regions_processed);
  out += " regions_discarded " + std::to_string(s.regions_discarded);
  out += "\n";
  for (const RequestReport& request : report.requests) {
    out += RequestReportLine(request);
    out += "\n";
  }
  return out;
}

ArrivalQuantizer::ArrivalQuantizer(double quantum) : quantum_(quantum) {
  CAQE_CHECK(quantum > 0.0);
}

int64_t ArrivalQuantizer::Next(double virtual_now) {
  CAQE_DCHECK(virtual_now >= 0.0);
  int64_t index = static_cast<int64_t>(std::ceil(virtual_now / quantum_));
  // ceil can land one quantum short when virtual_now/quantum_ rounds down
  // to an exact integer just below the true quotient.
  while (index * quantum_ < virtual_now) ++index;
  if (index <= last_) index = last_ + 1;
  last_ = index;
  return index;
}

}  // namespace caqe
