#include "baselines/baseline_util.h"

#include <unordered_map>

#include "skyline/cardinality.h"

namespace caqe {

int64_t TotalJoinSize(const Table& r, const Table& t, int key) {
  std::unordered_map<int32_t, int64_t> counts;
  for (int64_t row = 0; row < t.num_rows(); ++row) ++counts[t.key(row, key)];
  int64_t total = 0;
  for (int64_t row = 0; row < r.num_rows(); ++row) {
    const auto it = counts.find(r.key(row, key));
    if (it != counts.end()) total += it->second;
  }
  return total;
}

void FullJoinProject(const Table& r, const Table& t, const Workload& workload,
                     int key, PointSet& out, EngineStats& stats,
                     VirtualClock& clock) {
  std::unordered_map<int32_t, std::vector<int64_t>> index;
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    index[t.key(row, key)].push_back(row);
  }
  stats.join_probes += t.num_rows();
  clock.ChargeJoinProbes(t.num_rows());

  std::vector<double> values;
  int64_t results = 0;
  for (int64_t row_r = 0; row_r < r.num_rows(); ++row_r) {
    ++stats.join_probes;
    const auto it = index.find(r.key(row_r, key));
    if (it == index.end()) continue;
    for (int64_t row_t : it->second) {
      workload.Project(r, row_r, t, row_t, values);
      out.Append(values);
      ++results;
    }
  }
  stats.join_results += results;
  clock.ChargeJoinProbes(r.num_rows());
  clock.ChargeJoinResults(results);
}

void FullJoinProjectForQuery(const Table& r, const Table& t,
                             const Workload& workload, int q, PointSet& out,
                             EngineStats& stats, VirtualClock& clock) {
  const SjQuery& query = workload.query(q);
  std::unordered_map<int32_t, std::vector<int64_t>> index;
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    index[t.key(row, query.join_key)].push_back(row);
  }
  stats.join_probes += t.num_rows();
  clock.ChargeJoinProbes(t.num_rows());

  std::vector<double> values;
  int64_t results = 0;
  for (int64_t row_r = 0; row_r < r.num_rows(); ++row_r) {
    ++stats.join_probes;
    const auto it = index.find(r.key(row_r, query.join_key));
    if (it == index.end()) continue;
    for (int64_t row_t : it->second) {
      if (!workload.SelectionsPass(q, r, row_r, t, row_t)) continue;
      workload.Project(r, row_r, t, row_t, values);
      out.Append(values);
      ++results;
    }
  }
  stats.join_results += results;
  clock.ChargeJoinProbes(r.num_rows());
  clock.ChargeJoinResults(results);
}

void SeedTrackerTotals(const Table& r, const Table& t,
                       const Workload& workload,
                       const std::vector<double>& known_result_counts,
                       SatisfactionTracker& tracker) {
  for (int q = 0; q < workload.num_queries(); ++q) {
    double total = 0.0;
    if (q < static_cast<int>(known_result_counts.size())) {
      total = known_result_counts[q];
    }
    if (total <= 0.0) {
      total = BuchtaSkylineCardinality(
          static_cast<double>(
              TotalJoinSize(r, t, workload.query(q).join_key)),
          static_cast<int>(workload.query(q).preference.size()));
    }
    tracker.SetEstimatedTotal(q, total);
  }
}

void FinalizeReport(const SatisfactionTracker& tracker,
                    const VirtualClock& clock, const WallTimer& timer,
                    ExecutionReport& report) {
  for (int q = 0; q < static_cast<int>(report.queries.size()); ++q) {
    const QuerySatisfaction& s = tracker.satisfaction(q);
    report.queries[q].pscore = s.pscore;
    report.queries[q].results = s.results;
    report.queries[q].satisfaction = s.average();
    report.queries[q].utility_trace.clear();
    for (const UtilitySample& sample : tracker.samples(q)) {
      report.queries[q].utility_trace.push_back(
          UtilityTracePoint{sample.time, sample.utility});
    }
  }
  report.workload_pscore = tracker.WorkloadPScore();
  report.average_satisfaction = tracker.WorkloadAverageSatisfaction();
  report.stats.virtual_seconds = clock.Now();
  report.stats.wall_seconds = timer.Seconds();
}

}  // namespace caqe
