// Shared helpers for the baseline engines.
#ifndef CAQE_BASELINES_BASELINE_UTIL_H_
#define CAQE_BASELINES_BASELINE_UTIL_H_

#include <chrono>
#include <vector>

#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "data/table.h"
#include "metrics/report.h"
#include "query/query.h"
#include "skyline/point_set.h"

namespace caqe {

/// Wall-clock stopwatch for engine runs.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Exact join output size of `key` between R and T (used to seed the
/// cardinality-contract estimates of the per-query baselines).
int64_t TotalJoinSize(const Table& r, const Table& t, int key);

/// Materializes the full equi-join of one query: probes a hash index over
/// T, projects every match through the workload's mapping functions into
/// `out` (width = workload.num_output_dims()), charging probes/results to
/// `stats` and `clock`.
void FullJoinProject(const Table& r, const Table& t, const Workload& workload,
                     int key, PointSet& out, EngineStats& stats,
                     VirtualClock& clock);

/// Like FullJoinProject but for workload query `q`: applies the query's
/// selection ranges in addition to its join predicate.
void FullJoinProjectForQuery(const Table& r, const Table& t,
                             const Workload& workload, int q, PointSet& out,
                             EngineStats& stats, VirtualClock& clock);

/// Seeds the tracker's per-query result-cardinality totals: the caller's
/// known exact counts when provided (ExecOptions::known_result_counts),
/// otherwise the Buchta estimate over the query's exact join size.
void SeedTrackerTotals(const Table& r, const Table& t,
                       const Workload& workload,
                       const std::vector<double>& known_result_counts,
                       SatisfactionTracker& tracker);

/// Copies tracker totals into the report's per-query entries and fills the
/// aggregate fields.
void FinalizeReport(const SatisfactionTracker& tracker,
                    const VirtualClock& clock, const WallTimer& timer,
                    ExecutionReport& report);

}  // namespace caqe

#endif  // CAQE_BASELINES_BASELINE_UTIL_H_
