#include "baselines/jfsl.h"

#include <cmath>

#include "baselines/baseline_util.h"
#include "skyline/algorithms.h"
#include "skyline/cardinality.h"

namespace caqe {

Result<ExecutionReport> JfslEngine::Execute(
    const Table& r, const Table& t, const Workload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const WallTimer timer;
  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);

  ExecutionReport report;
  report.engine = name();
  report.queries.resize(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
  }
  SeedTrackerTotals(r, t, workload, options.known_result_counts, tracker);

  for (int q : workload.QueriesByPriority()) {
    const SjQuery& query = workload.query(q);
    // Full join (with the query's selections), re-done per query.
    PointSet joined(workload.num_output_dims());
    FullJoinProjectForQuery(r, t, workload, q, joined, report.stats, clock);

    // Blocking skyline over the materialized join output in arrival order
    // (no presort — the source of JFSL's comparison blow-up in Fig. 10.b).
    int64_t cmps = 0;
    const std::vector<int64_t> sky =
        BnlSkyline(joined, query.preference, &cmps);
    report.stats.dominance_cmps += cmps;
    clock.ChargeDominanceCmps(cmps);

    // Everything is reported only now, when the query completes.
    for (int64_t id : sky) {
      const double now = clock.Now();
      const double utility = tracker.OnResult(q, now);
      clock.ChargeEmits(1);
      ++report.stats.emitted_results;
      if (options.on_result) options.on_result(q, now, utility);
      if (options.capture_results) {
        ReportedResult result;
        result.tuple_id = id;
        result.time = now;
        result.utility = utility;
        result.values.assign(joined.row(id), joined.row(id) + joined.width());
        report.queries[q].tuples.push_back(std::move(result));
      }
    }
  }

  FinalizeReport(tracker, clock, timer, report);
  return report;
}

}  // namespace caqe
