#include "baselines/progxe.h"

#include <cmath>

#include "baselines/baseline_util.h"
#include "exec/shared_core.h"
#include "partition/partitioner.h"

namespace caqe {
namespace {

// Single-query projection of the workload: keeps only the output dimensions
// the query prefers (remapped to 0..d-1), its join key, and its priority.
Workload SliceWorkload(const Workload& workload, int q) {
  const SjQuery& query = workload.query(q);
  Workload sliced;
  std::vector<int> remapped;
  for (int k : query.preference) {
    remapped.push_back(sliced.AddOutputDim(workload.output_dim(k)));
  }
  SjQuery single = query;
  single.preference = remapped;
  sliced.AddQuery(std::move(single));
  return sliced;
}

}  // namespace

Result<ExecutionReport> ProgXeEngine::Execute(
    const Table& r, const Table& t, const Workload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const WallTimer timer;
  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);

  ExecutionReport report;
  report.engine = name();
  report.queries.resize(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
  }

  // Input partitioning is query-independent; build it once (ProgXe
  // pre-partitions its inputs the same way).
  const int target_regions = AdaptiveTargetRegions(options, r, t, workload);
  Result<PartitionedTable> part_r =
      PartitionForRegions(r, options, target_regions);
  CAQE_RETURN_NOT_OK(part_r.status());
  Result<PartitionedTable> part_t =
      PartitionForRegions(t, options, target_regions);
  CAQE_RETURN_NOT_OK(part_t.status());

  CoreOptions core;
  core.policy = SchedulePolicy::kCountDriven;
  core.num_threads = options.num_threads;
  core.pipeline_regions = options.pipeline_regions;
  core.compact_layout = options.compact_layout;
  core.join_index_cache_entries = options.join_index_cache_entries;
  core.coarse_prune = true;  // ProgXe prunes its output space.
  core.feedback = false;     // Count-driven, not satisfaction-driven.
  core.dva_mode = options.dva_mode;
  core.capture_results = options.capture_results;
  core.known_result_counts = options.known_result_counts;
  core.on_result = options.on_result;

  // One independent run per query on the shared clock; joins, regions, and
  // skylines are all re-done per query.
  for (int q : workload.QueriesByPriority()) {
    const Workload sliced = SliceWorkload(workload, q);
    const std::vector<int> mapping = {q};
    CAQE_RETURN_NOT_OK(RunSharedCore(*part_r, *part_t, sliced, mapping,
                                     tracker, clock, report.stats,
                                     report.queries, core));
  }

  FinalizeReport(tracker, clock, timer, report);
  return report;
}

}  // namespace caqe
