#include "baselines/ssmj.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/baseline_util.h"
#include "skyline/algorithms.h"
#include "skyline/cardinality.h"

namespace caqe {
namespace {

// Attribute indices of one table referenced by the query's preferred output
// dimensions (duplicates removed).
std::vector<int> SideDims(const Workload& workload, const SjQuery& query,
                          bool r_side) {
  std::vector<int> dims;
  for (int k : query.preference) {
    const MappingFunction& f = workload.output_dim(k);
    dims.push_back(r_side ? f.r_attr : f.t_attr);
  }
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

// Rows of `table` in `rows` that are locally non-dominated over `dims`
// (ties kept: equal tuples cannot dominate each other).
std::vector<int64_t> LocalSkyline(const Table& table,
                                  const std::vector<int64_t>& rows,
                                  const std::vector<int>& dims,
                                  int64_t* cmps) {
  PointSet points(static_cast<int>(dims.size()));
  points.Reserve(static_cast<int64_t>(rows.size()));
  std::vector<double> values(dims.size());
  for (int64_t row : rows) {
    for (size_t i = 0; i < dims.size(); ++i) {
      values[i] = table.attr(row, dims[i]);
    }
    points.Append(values);
  }
  std::vector<int> all_dims(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) all_dims[i] = static_cast<int>(i);
  const std::vector<int64_t> sky = BnlSkyline(points, all_dims, cmps);
  std::vector<int64_t> result;
  result.reserve(sky.size());
  for (int64_t idx : sky) result.push_back(rows[idx]);
  return result;
}

// Shared skeleton of the two SSMJ variants: per query (priority order),
// group inputs by join key, materialize candidate combinations (optionally
// pruning each group's inputs to their local skylines first), run a
// sort-filter skyline, and emit at query completion.
Result<ExecutionReport> RunSsmj(const std::string& engine_name,
                                bool prune_group_inputs, const Table& r,
                                const Table& t, const Workload& workload,
                                const std::vector<Contract>& contracts,
                                const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const WallTimer timer;
  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);

  ExecutionReport report;
  report.engine = engine_name;
  report.queries.resize(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
  }
  SeedTrackerTotals(r, t, workload, options.known_result_counts, tracker);

  for (int q : workload.QueriesByPriority()) {
    const SjQuery& query = workload.query(q);
    const int key = query.join_key;

    // Group both inputs by join key, dropping rows failing this query's
    // single-sided selections (the "sort" phase; charged as probes).
    auto side_passes = [&](bool on_r, const Table& table, int64_t row) {
      for (const SelectionRange& sel : query.selections) {
        if (sel.on_r != on_r) continue;
        const double v = table.attr(row, sel.attr);
        if (v < sel.lo || v > sel.hi) return false;
      }
      return true;
    };
    std::unordered_map<int32_t, std::vector<int64_t>> groups_r;
    std::unordered_map<int32_t, std::vector<int64_t>> groups_t;
    for (int64_t row = 0; row < r.num_rows(); ++row) {
      if (side_passes(true, r, row)) groups_r[r.key(row, key)].push_back(row);
    }
    for (int64_t row = 0; row < t.num_rows(); ++row) {
      if (side_passes(false, t, row)) groups_t[t.key(row, key)].push_back(row);
    }
    report.stats.join_probes += r.num_rows() + t.num_rows();
    clock.ChargeJoinProbes(r.num_rows() + t.num_rows());

    const std::vector<int> dims_r = SideDims(workload, query, true);
    const std::vector<int> dims_t = SideDims(workload, query, false);

    PointSet candidates(workload.num_output_dims());
    std::vector<double> values;
    int64_t local_cmps = 0;
    int64_t results = 0;
    for (const auto& [value, rows_r] : groups_r) {
      const auto it = groups_t.find(value);
      if (it == groups_t.end()) continue;
      const std::vector<int64_t>& left =
          prune_group_inputs ? LocalSkyline(r, rows_r, dims_r, &local_cmps)
                             : rows_r;
      std::vector<int64_t> pruned_right;
      if (prune_group_inputs) {
        pruned_right = LocalSkyline(t, it->second, dims_t, &local_cmps);
      }
      const std::vector<int64_t>& right =
          prune_group_inputs ? pruned_right : it->second;
      candidates.Reserve(candidates.size() +
                         static_cast<int64_t>(left.size() * right.size()));
      for (int64_t row_r : left) {
        for (int64_t row_t : right) {
          workload.Project(r, row_r, t, row_t, values);
          candidates.Append(values);
          ++results;
        }
      }
    }
    report.stats.join_results += results;
    report.stats.dominance_cmps += local_cmps;
    clock.ChargeJoinResults(results);
    clock.ChargeDominanceCmps(local_cmps);

    // Global skyline over the (sorted) candidates.
    const double n = static_cast<double>(candidates.size());
    const int64_t sort_ops = static_cast<int64_t>(n * std::log2(n + 1.0));
    report.stats.coarse_ops += sort_ops;
    clock.ChargeCoarseOps(sort_ops);
    int64_t cmps = 0;
    const std::vector<int64_t> sky =
        SfsSkyline(candidates, query.preference, &cmps);
    report.stats.dominance_cmps += cmps;
    clock.ChargeDominanceCmps(cmps);

    for (int64_t id : sky) {
      const double now = clock.Now();
      const double utility = tracker.OnResult(q, now);
      clock.ChargeEmits(1);
      ++report.stats.emitted_results;
      if (options.on_result) options.on_result(q, now, utility);
      if (options.capture_results) {
        ReportedResult result;
        result.tuple_id = id;
        result.time = now;
        result.utility = utility;
        result.values.assign(candidates.row(id),
                             candidates.row(id) + candidates.width());
        report.queries[q].tuples.push_back(std::move(result));
      }
    }
  }

  FinalizeReport(tracker, clock, timer, report);
  return report;
}

}  // namespace

Result<ExecutionReport> SsmjEngine::Execute(
    const Table& r, const Table& t, const Workload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  return RunSsmj(name(), /*prune_group_inputs=*/false, r, t, workload,
                 contracts, options);
}

Result<ExecutionReport> SsmjPlusEngine::Execute(
    const Table& r, const Table& t, const Workload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  return RunSsmj(name(), /*prune_group_inputs=*/true, r, t, workload,
                 contracts, options);
}

}  // namespace caqe
