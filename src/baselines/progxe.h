// ProgXe+ baseline: progressive result generation, one query at a time.
//
// Reimplements the output-space-driven progressive execution of Raghavan &
// Rundensteiner ("Progressive result generation for multi-criteria decision
// support queries", ICDE 2010), extended as in the paper's evaluation
// (ProgXe+): the input is partitioned, output regions are derived and
// pruned at the abstract level, and regions are scheduled *count-driven* —
// maximizing early result throughput — rather than contract-driven. Each
// query is processed separately (priority order, shared clock); no work is
// shared across queries.
#ifndef CAQE_BASELINES_PROGXE_H_
#define CAQE_BASELINES_PROGXE_H_

#include <string>
#include <vector>

#include "exec/engine.h"

namespace caqe {

class ProgXeEngine : public Engine {
 public:
  std::string name() const override { return "ProgXe+"; }

  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const Workload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

}  // namespace caqe

#endif  // CAQE_BASELINES_PROGXE_H_
