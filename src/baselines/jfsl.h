// JFSL baseline: join-first, skyline-later, one query at a time.
//
// Models the non-progressive skyline-over-join processing of relaxed
// join/selection queries (Koudas et al., VLDB 2006) as characterized in the
// paper's evaluation: each query — in descending priority order — fully
// materializes its join output, then computes the skyline with an unsorted
// block-nested-loop filter, then reports every result. No work is shared
// across queries, nothing is reported before a query's skyline is complete,
// and the missing presort is what makes JFSL the comparison-count outlier
// of Figure 10.b.
#ifndef CAQE_BASELINES_JFSL_H_
#define CAQE_BASELINES_JFSL_H_

#include <string>
#include <vector>

#include "exec/engine.h"

namespace caqe {

class JfslEngine : public Engine {
 public:
  std::string name() const override { return "JFSL"; }

  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const Workload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

}  // namespace caqe

#endif  // CAQE_BASELINES_JFSL_H_
