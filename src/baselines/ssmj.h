// SSMJ baseline: skyline-sort-merge-join, one query at a time.
//
// Models the sort-based equi-join skyline processing of Jin et al.
// ("Evaluating skylines in the presence of equijoins", ICDE 2010) as
// characterized by the paper's measurements: the full join output is
// materialized per query (Figure 10.a shows SSMJ generating as many join
// tuples as JFSL), but the sort order makes the subsequent skyline filter
// far cheaper than an unsorted scan. Results are reported when a query
// completes; queries run in priority order with no cross-query sharing.
#ifndef CAQE_BASELINES_SSMJ_H_
#define CAQE_BASELINES_SSMJ_H_

#include <string>
#include <vector>

#include "exec/engine.h"

namespace caqe {

class SsmjEngine : public Engine {
 public:
  std::string name() const override { return "SSMJ"; }

  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const Workload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

/// Extension (not part of the paper's comparison): SSMJ with per-join-group
/// *input* pruning. Within each key group, locally dominated R-tuples and
/// T-tuples are discarded before the join — sound under strictly monotone
/// mapping functions, and dramatically cheaper on independent/correlated
/// data. Our reproduction found this strengthened baseline competitive
/// with CAQE at small scales (see EXPERIMENTS.md).
class SsmjPlusEngine : public Engine {
 public:
  std::string name() const override { return "SSMJ+"; }

  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const Workload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;
};

}  // namespace caqe

#endif  // CAQE_BASELINES_SSMJ_H_
