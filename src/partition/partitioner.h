// Input-space partitioning into leaf cells with join signatures (paper
// Section 5.1).
//
// Each base table is partitioned over its score attributes into an
// equi-width grid (the d-dimensional analogue of the paper's quad-tree
// leaves). A leaf cell records its per-dimension bounds, its member rows,
// and — per join-key column — a *signature*: the sorted set of distinct key
// values of its members. Signature intersection decides at coarse level
// whether a pair of cells can produce any join result for a predicate.
#ifndef CAQE_PARTITION_PARTITIONER_H_
#define CAQE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/table.h"

namespace caqe {

/// A non-empty leaf cell of a partitioned table.
struct LeafCell {
  /// Per-attribute lower bounds (tight over member rows).
  std::vector<double> lower;
  /// Per-attribute upper bounds (tight over member rows).
  std::vector<double> upper;
  /// Row indices of members in the underlying table.
  std::vector<int64_t> rows;
  /// signatures[k] = sorted distinct values of join-key column k among the
  /// member rows.
  std::vector<std::vector<int32_t>> signatures;
  /// signature_counts[k][i] = number of member rows whose key-column k value
  /// equals signatures[k][i]. Lets callers compute exact equi-join output
  /// sizes between two cells without touching tuples.
  std::vector<std::vector<int32_t>> signature_counts;
};

/// Exact number of equi-join result pairs between two cells on one key
/// column: sum over shared key values of count_a * count_b. If `ops` is
/// non-null it is incremented by the number of merge steps.
int64_t ExactJoinSize(const std::vector<int32_t>& keys_a,
                      const std::vector<int32_t>& counts_a,
                      const std::vector<int32_t>& keys_b,
                      const std::vector<int32_t>& counts_b,
                      int64_t* ops = nullptr);

/// True when sorted signature vectors `a` and `b` share a value, i.e. the
/// coarse join test |Sig_a ∩ Sig_b| != 0 of Section 5.1 passes. If `ops` is
/// non-null, it is incremented by the number of elementary comparison steps.
bool SignaturesIntersect(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b,
                         int64_t* ops = nullptr);

/// A table partitioned into non-empty leaf cells.
class PartitionedTable {
 public:
  PartitionedTable(const Table* table, int cells_per_dim)
      : table_(table), cells_per_dim_(cells_per_dim) {}

  const Table& table() const { return *table_; }
  int cells_per_dim() const { return cells_per_dim_; }
  int num_cells() const { return static_cast<int>(cells_.size()); }
  const LeafCell& cell(int i) const { return cells_[i]; }
  const std::vector<LeafCell>& cells() const { return cells_; }

  /// Total rows across cells (equals table().num_rows()).
  int64_t TotalRows() const;

  void AddCell(LeafCell cell) { cells_.push_back(std::move(cell)); }

 private:
  const Table* table_;
  int cells_per_dim_;
  std::vector<LeafCell> cells_;
};

/// Partitions `table` into an equi-width grid with `slices[k]` slices along
/// score attribute k (slices.size() == num_attrs, each >= 1), dropping
/// empty cells and computing tight bounds and signatures. Attribute slice
/// boundaries are derived from the observed min/max per attribute.
///
/// Returns InvalidArgument for invalid slice vectors or an empty table.
Result<PartitionedTable> PartitionTableSlices(const Table& table,
                                              const std::vector<int>& slices);

/// Uniform-grid convenience wrapper: `cells_per_dim` slices per attribute.
Result<PartitionedTable> PartitionTable(const Table& table, int cells_per_dim);

/// Chooses a per-dimension slice vector whose cell count approaches
/// `target_cells` by repeatedly doubling slice counts round-robin across
/// dimensions (yields intermediate totals like 2x2x1x1 that a uniform grid
/// cannot express).
std::vector<int> ChooseSliceVector(int num_attrs, int64_t target_cells);

/// Adaptive d-dimensional quad-tree partitioning — the structure the paper
/// assumes for its input abstraction (Section 5.1). A node holding more
/// than `max_rows_per_cell` rows splits at the midpoint of its bounding box
/// in every attribute (2^d children, empty children dropped) until the
/// limit or `max_depth` is reached. Dense areas get fine cells, sparse
/// areas coarse ones — unlike the equi-width grid, cell populations are
/// balanced under skew.
///
/// Returns InvalidArgument for non-positive limits or an empty table.
///
/// With a pool, per-node quadrant classification runs in deterministic
/// row stripes and leaf finalization (bound + signature computation) runs
/// concurrently across leaves; split order, tie-breaks, cell ids, and cell
/// contents are byte-identical to the serial build at any thread count.
Result<PartitionedTable> PartitionTableQuadTree(const Table& table,
                                                int64_t max_rows_per_cell,
                                                int max_depth = 16,
                                                ThreadPool* pool = nullptr);

/// Budgeted quad-tree partitioning: repeatedly splits the most populated
/// node until at least `target_cells` leaves exist (or nothing can split).
/// Controls granularity directly — a plain row cap can overshoot by 2^d
/// cells per level in high dimensions. Parallelizes like
/// PartitionTableQuadTree; the greedy split loop itself stays serial.
Result<PartitionedTable> PartitionTableQuadTreeTarget(const Table& table,
                                                      int64_t target_cells,
                                                      int max_depth = 16,
                                                      ThreadPool* pool =
                                                          nullptr);

}  // namespace caqe

#endif  // CAQE_PARTITION_PARTITIONER_H_
