// Packed spatial index over partition cells (and other box/point sets).
//
// The coarse MQLA phase compares axis-aligned boxes: selection ranges
// against cell bounds during region discovery, and region corner points
// against each other during the coarse skyline prune.  Both comparisons
// are embarrassingly monotone — a subtree whose minimum bounding rectangle
// fails a test cannot contain an entry that passes it — so a bulk-loaded
// R-tree over the boxes turns the flat O(cells) scans into best-first
// branch-and-bound traversals.
//
// Determinism contract: construction is a pure function of the entry
// boxes (packed STR-style bulk load, sort ties broken by entry id), and
// every traversal reports results in terms of the ORIGINAL entry ids, so
// the indexed coarse phase can charge exactly the ops the flat scan would
// have charged.  Traversal-shape counters (nodes visited/pruned, entries
// tested) are kept in CoarseIndexStats, strictly outside ExecutionReport.
#ifndef CAQE_PARTITION_CELL_INDEX_H_
#define CAQE_PARTITION_CELL_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace caqe {

/// Traversal-shape statistics for the tree-indexed coarse phase.  These
/// describe how much work the index did (and saved) and MUST stay out of
/// EngineStats/ExecutionReport: reports are byte-identical across
/// coarse_index off/on, while these counters obviously are not.  They are
/// exported through the obs metrics registry as caqe_coarse_index_*.
struct CoarseIndexStats {
  int64_t trees_built = 0;     ///< Packed trees constructed.
  int64_t build_entries = 0;   ///< Total entries across those trees.
  int64_t nodes_visited = 0;   ///< Tree nodes popped/expanded during queries.
  int64_t nodes_pruned = 0;    ///< Subtrees cut off without descending.
  int64_t entries_tested = 0;  ///< Individual entries compared at leaves.
  int64_t entries_bulk = 0;    ///< Entries classified wholesale via node MBRs.
  int64_t scan_equiv = 0;      ///< Entry touches the flat scan would have made.

  void Merge(const CoarseIndexStats& other) {
    trees_built += other.trees_built;
    build_entries += other.build_entries;
    nodes_visited += other.nodes_visited;
    nodes_pruned += other.nodes_pruned;
    entries_tested += other.entries_tested;
    entries_bulk += other.entries_bulk;
    scan_equiv += other.scan_equiv;
  }

  /// Entry touches actually performed: node expansions plus per-entry leaf
  /// tests.  Compared against scan_equiv to show the branch-and-bound win.
  int64_t Visits() const { return nodes_visited + entries_tested; }
};

/// One per-attribute selection interval, in the index's coordinate space.
struct IndexRange {
  int attr = 0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Per-entry outcome of ClassifyRanges, mirroring SelectionCoarse.
enum : uint8_t {
  kIndexDisjoint = 0,
  kIndexOverlap = 1,
  kIndexContained = 2,
};

/// A packed (bulk-loaded) R-tree over `n` axis-aligned boxes of fixed
/// width.  Construction recursively sorts entries along alternating
/// dimensions by box center (STR-style packing; ties broken by entry id)
/// and slices them into balanced runs, so every subtree owns a contiguous
/// slot range and the layout is a pure function of the input.
class PackedBoxTree {
 public:
  static constexpr int kLeafCap = 16;  ///< Max entries per leaf.
  static constexpr int kFanout = 8;    ///< Target children per internal node.

  /// Returns the `width`-vector lower/upper corner of entry `id`.
  using CornerFn = std::function<const double*(int64_t)>;

  /// Bulk loads the tree over boxes [lower_of(i), upper_of(i)].
  void Build(int width, int64_t n, const CornerFn& lower_of,
             const CornerFn& upper_of);

  /// Bulk loads over degenerate boxes (points): row i of the row-major
  /// `points` array is both corners of entry i.
  void BuildPoints(int width, int64_t n, const double* points);

  bool empty() const { return num_entries_ == 0; }
  int width() const { return width_; }
  int64_t num_entries() const { return num_entries_; }

  /// Classifies every entry against a conjunction of per-attribute ranges:
  /// out[id] = kIndexDisjoint / kIndexOverlap / kIndexContained, with the
  /// exact semantics of region_builder's CoarseSelectionTest (disjoint if
  /// any range misses the box entirely; contained iff every range covers
  /// it; overlap otherwise).  Subtrees that are wholly disjoint or wholly
  /// contained are marked in bulk without descending.  An empty range list
  /// classifies everything as contained.  `out` must have num_entries()
  /// slots indexed by ORIGINAL entry id.
  void ClassifyRanges(const std::vector<IndexRange>& ranges, uint8_t* out,
                      CoarseIndexStats* stats) const;

  /// Best-first branch-and-bound for the coarse prune: returns the
  /// smallest ORIGINAL entry id whose lower corner fully dominates the
  /// point `victim_lower` (every coordinate <=, at least one <), or -1 if
  /// no entry does.  This is exactly the entry the serial ascending-id
  /// scan of ScanPointsFullyDominatingRegion would hit first, which is
  /// what makes serial-identical op charging possible.  The tree must
  /// have been built over points (lower == upper); only lower corners are
  /// consulted.
  int64_t FirstDominatorPos(const double* victim_lower,
                            CoarseIndexStats* stats) const;

  // --- Structural introspection (tests + DESIGN.md invariants) ---

  struct Node {
    int64_t entry_begin = 0;  ///< First slot of the subtree's entry run.
    int64_t entry_end = 0;    ///< One past the last slot.
    int32_t child_begin = 0;  ///< Index into child_ids(); 0 children = leaf.
    int32_t child_count = 0;
    int64_t min_pos = 0;      ///< Smallest original entry id in the subtree.
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<int32_t>& child_ids() const { return child_ids_; }
  /// MBR corners of node `v` (width() doubles each).
  const double* node_lower(int32_t v) const {
    return node_lo_.data() + static_cast<int64_t>(v) * width_;
  }
  const double* node_upper(int32_t v) const {
    return node_hi_.data() + static_cast<int64_t>(v) * width_;
  }
  /// Box corners stored at packed slot `slot`, and the original entry id
  /// that slot holds.
  const double* slot_lower(int64_t slot) const {
    return entry_lo_.data() + slot * width_;
  }
  const double* slot_upper(int64_t slot) const {
    return entry_hi_.data() + slot * width_;
  }
  int64_t slot_entry_id(int64_t slot) const { return entry_pos_[slot]; }

 private:
  int32_t BuildNode(std::vector<int64_t>& perm, int64_t lo, int64_t hi,
                    int depth);

  // Build-time scratch: by-id corner arrays and the next packed slot.
  const std::vector<double>* build_lo_ = nullptr;
  const std::vector<double>* build_hi_ = nullptr;
  int64_t next_slot_ = 0;

  int width_ = 0;
  int64_t num_entries_ = 0;
  std::vector<Node> nodes_;         // nodes_[0] is the root when non-empty.
  std::vector<int32_t> child_ids_;  // Flat child lists, per-node contiguous.
  std::vector<double> node_lo_, node_hi_;    // Node MBRs, width_ per node.
  std::vector<double> entry_lo_, entry_hi_;  // Entry boxes in packed order.
  std::vector<int64_t> entry_pos_;           // Packed slot -> original id.
};

}  // namespace caqe

#endif  // CAQE_PARTITION_CELL_INDEX_H_
