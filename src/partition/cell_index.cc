#include "partition/cell_index.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>

#include "common/macros.h"

namespace caqe {
namespace {

/// True when `lower` fully dominates the point `victim`: lower[k] <=
/// victim[k] everywhere with at least one strict coordinate.  Mirrors
/// region_dominance's PointFullyDominatesRegion.  Applied to a node MBR
/// lower corner this is a sound pruning bound: the MBR lower is the
/// coordinate-wise min of the entry corners, so if any entry dominated
/// the victim the MBR lower would too — a failing node cannot hide a
/// dominating entry.
bool LowerFullyDominates(const double* lower, const double* victim,
                         int width) {
  bool strict = false;
  for (int k = 0; k < width; ++k) {
    if (lower[k] > victim[k]) return false;
    if (lower[k] < victim[k]) strict = true;
  }
  return strict;
}

}  // namespace

void PackedBoxTree::Build(int width, int64_t n, const CornerFn& lower_of,
                          const CornerFn& upper_of) {
  CAQE_CHECK(width >= 0);
  CAQE_CHECK(n >= 0);
  width_ = width;
  num_entries_ = n;
  nodes_.clear();
  child_ids_.clear();
  node_lo_.clear();
  node_hi_.clear();
  entry_pos_.clear();
  entry_lo_.clear();
  entry_hi_.clear();
  if (n == 0) return;
  // Stage the boxes by original id so the recursion can sort and slice
  // without re-invoking the accessors.
  std::vector<double> staged_lo(static_cast<size_t>(n) * width);
  std::vector<double> staged_hi(static_cast<size_t>(n) * width);
  for (int64_t i = 0; width > 0 && i < n; ++i) {
    std::memcpy(staged_lo.data() + i * width, lower_of(i),
                sizeof(double) * static_cast<size_t>(width));
    std::memcpy(staged_hi.data() + i * width, upper_of(i),
                sizeof(double) * static_cast<size_t>(width));
  }
  // The recursion permutes ids; entry arrays are filled leaf-by-leaf in
  // DFS order, which is what makes every subtree's slot range contiguous.
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  entry_lo_.assign(static_cast<size_t>(n) * width, 0.0);
  entry_hi_.assign(static_cast<size_t>(n) * width, 0.0);
  entry_pos_.assign(static_cast<size_t>(n), 0);
  build_lo_ = &staged_lo;
  build_hi_ = &staged_hi;
  next_slot_ = 0;
  BuildNode(perm, 0, n, /*depth=*/0);
  build_lo_ = nullptr;
  build_hi_ = nullptr;
  CAQE_CHECK(next_slot_ == n);
}

void PackedBoxTree::BuildPoints(int width, int64_t n, const double* points) {
  const auto row = [points, width](int64_t i) { return points + i * width; };
  Build(width, n, row, row);
}

int32_t PackedBoxTree::BuildNode(std::vector<int64_t>& perm, int64_t lo,
                                 int64_t hi, int depth) {
  const int64_t count = hi - lo;
  CAQE_CHECK(count > 0);
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  node_lo_.resize(node_lo_.size() + static_cast<size_t>(width_));
  node_hi_.resize(node_hi_.size() + static_cast<size_t>(width_));
  const std::vector<double>& by_id_lo = *build_lo_;
  const std::vector<double>& by_id_hi = *build_hi_;

  if (count <= kLeafCap) {
    // Leaf: copy the run's boxes into the packed arrays in id-sorted order
    // so leaf slots ascend by original id (FirstDominatorPos scans them).
    std::sort(perm.begin() + lo, perm.begin() + hi);
    const int64_t begin = next_slot_;
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t src = perm[static_cast<size_t>(s)];
      std::memcpy(entry_lo_.data() + next_slot_ * width_,
                  by_id_lo.data() + src * width_,
                  sizeof(double) * static_cast<size_t>(width_));
      std::memcpy(entry_hi_.data() + next_slot_ * width_,
                  by_id_hi.data() + src * width_,
                  sizeof(double) * static_cast<size_t>(width_));
      entry_pos_[static_cast<size_t>(next_slot_)] = src;
      ++next_slot_;
    }
    Node& node = nodes_[static_cast<size_t>(id)];
    node.entry_begin = begin;
    node.entry_end = next_slot_;
    node.min_pos = perm[static_cast<size_t>(lo)];
    double* nlo = node_lo_.data() + static_cast<int64_t>(id) * width_;
    double* nhi = node_hi_.data() + static_cast<int64_t>(id) * width_;
    for (int k = 0; k < width_; ++k) {
      nlo[k] = entry_lo_[static_cast<size_t>(begin * width_ + k)];
      nhi[k] = entry_hi_[static_cast<size_t>(begin * width_ + k)];
    }
    for (int64_t slot = begin + 1; slot < next_slot_; ++slot) {
      const double* elo = entry_lo_.data() + slot * width_;
      const double* ehi = entry_hi_.data() + slot * width_;
      for (int k = 0; k < width_; ++k) {
        nlo[k] = std::min(nlo[k], elo[k]);
        nhi[k] = std::max(nhi[k], ehi[k]);
      }
    }
    return id;
  }

  // Internal node: order the run along one alternating dimension by box
  // center, breaking ties by original id (full determinism), then cut it
  // into ~kFanout balanced slices.
  const int dim = width_ > 0 ? depth % width_ : 0;
  if (width_ > 0) {
    std::sort(perm.begin() + lo, perm.begin() + hi,
              [&](int64_t a, int64_t b) {
                const double ca = by_id_lo[static_cast<size_t>(a * width_ +
                                                               dim)] +
                                  by_id_hi[static_cast<size_t>(a * width_ +
                                                               dim)];
                const double cb = by_id_lo[static_cast<size_t>(b * width_ +
                                                               dim)] +
                                  by_id_hi[static_cast<size_t>(b * width_ +
                                                               dim)];
                if (ca != cb) return ca < cb;
                return a < b;
              });
  } else {
    std::sort(perm.begin() + lo, perm.begin() + hi);
  }
  const int64_t max_children =
      (count + kLeafCap - 1) / kLeafCap;  // Enough to respect kLeafCap.
  const int64_t num_children =
      std::min<int64_t>(kFanout, std::max<int64_t>(2, max_children));
  std::vector<int32_t> children;
  children.reserve(static_cast<size_t>(num_children));
  for (int64_t c = 0; c < num_children; ++c) {
    const int64_t child_lo = lo + count * c / num_children;
    const int64_t child_hi = lo + count * (c + 1) / num_children;
    if (child_lo >= child_hi) continue;
    children.push_back(BuildNode(perm, child_lo, child_hi, depth + 1));
  }
  Node& node = nodes_[static_cast<size_t>(id)];
  node.child_begin = static_cast<int32_t>(child_ids_.size());
  node.child_count = static_cast<int32_t>(children.size());
  child_ids_.insert(child_ids_.end(), children.begin(), children.end());
  node.entry_begin = nodes_[static_cast<size_t>(children.front())].entry_begin;
  node.entry_end = nodes_[static_cast<size_t>(children.back())].entry_end;
  node.min_pos = nodes_[static_cast<size_t>(children.front())].min_pos;
  double* nlo = node_lo_.data() + static_cast<int64_t>(id) * width_;
  double* nhi = node_hi_.data() + static_cast<int64_t>(id) * width_;
  bool first = true;
  for (int32_t child : children) {
    node.min_pos =
        std::min(node.min_pos, nodes_[static_cast<size_t>(child)].min_pos);
    const double* clo = node_lower(child);
    const double* chi = node_upper(child);
    for (int k = 0; k < width_; ++k) {
      if (first) {
        nlo[k] = clo[k];
        nhi[k] = chi[k];
      } else {
        nlo[k] = std::min(nlo[k], clo[k]);
        nhi[k] = std::max(nhi[k], chi[k]);
      }
    }
    first = false;
  }
  return id;
}

void PackedBoxTree::ClassifyRanges(const std::vector<IndexRange>& ranges,
                                   uint8_t* out,
                                   CoarseIndexStats* stats) const {
  if (num_entries_ == 0) return;
  if (ranges.empty()) {
    // No selection on this side: every cell is trivially contained.
    std::memset(out, kIndexContained, static_cast<size_t>(num_entries_));
    if (stats != nullptr) stats->entries_bulk += num_entries_;
    return;
  }
  const auto mark = [&](const Node& node, uint8_t cls) {
    for (int64_t slot = node.entry_begin; slot < node.entry_end; ++slot) {
      out[entry_pos_[static_cast<size_t>(slot)]] = cls;
    }
  };
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(v)];
    if (stats != nullptr) ++stats->nodes_visited;
    const double* nlo = node_lower(v);
    const double* nhi = node_upper(v);
    // A range that misses the node MBR misses every entry; a range that
    // covers the MBR covers every entry.  Both tests are exact because
    // the MBR is the coordinate-wise min/max of the entry boxes.
    bool all_disjoint = false;
    bool all_contained = true;
    for (const IndexRange& range : ranges) {
      const double lo = nlo[range.attr];
      const double hi = nhi[range.attr];
      if (lo > range.hi || hi < range.lo) {
        all_disjoint = true;
        break;
      }
      if (lo < range.lo || hi > range.hi) all_contained = false;
    }
    if (all_disjoint || all_contained) {
      mark(node, all_disjoint ? kIndexDisjoint : kIndexContained);
      if (stats != nullptr) {
        ++stats->nodes_pruned;
        stats->entries_bulk += node.entry_end - node.entry_begin;
      }
      continue;
    }
    if (node.child_count == 0) {
      for (int64_t slot = node.entry_begin; slot < node.entry_end; ++slot) {
        if (stats != nullptr) ++stats->entries_tested;
        const double* elo = slot_lower(slot);
        const double* ehi = slot_upper(slot);
        uint8_t cls = kIndexContained;
        for (const IndexRange& range : ranges) {
          if (elo[range.attr] > range.hi || ehi[range.attr] < range.lo) {
            cls = kIndexDisjoint;
            break;
          }
          if (elo[range.attr] < range.lo || ehi[range.attr] > range.hi) {
            cls = kIndexOverlap;
          }
        }
        out[entry_pos_[static_cast<size_t>(slot)]] = cls;
      }
      continue;
    }
    for (int32_t c = 0; c < node.child_count; ++c) {
      stack.push_back(child_ids_[static_cast<size_t>(node.child_begin + c)]);
    }
  }
}

int64_t PackedBoxTree::FirstDominatorPos(const double* victim_lower,
                                         CoarseIndexStats* stats) const {
  if (num_entries_ == 0) return -1;
  // Best-first on subtree min_pos: the frontier is ordered by the smallest
  // original id a subtree could still contribute, so the first dominator
  // found at id p closes the search as soon as every frontier bound is
  // >= p — exactly the entry the serial ascending-id scan finds first.
  using Frontier = std::pair<int64_t, int32_t>;  // (min_pos, node)
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;
  const Node& root = nodes_[0];
  if (LowerFullyDominates(node_lower(0), victim_lower, width_)) {
    frontier.emplace(root.min_pos, 0);
  } else if (stats != nullptr) {
    ++stats->nodes_pruned;
  }
  int64_t best = num_entries_;  // Sentinel: "no dominator in [0, n)".
  while (!frontier.empty() && frontier.top().first < best) {
    const int32_t v = frontier.top().second;
    frontier.pop();
    const Node& node = nodes_[static_cast<size_t>(v)];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.child_count == 0) {
      for (int64_t slot = node.entry_begin; slot < node.entry_end; ++slot) {
        const int64_t pos = entry_pos_[static_cast<size_t>(slot)];
        if (pos >= best) continue;
        if (stats != nullptr) ++stats->entries_tested;
        if (LowerFullyDominates(slot_lower(slot), victim_lower, width_)) {
          best = pos;
          break;  // Leaf slots ascend by id; later slots can't improve.
        }
      }
      continue;
    }
    for (int32_t c = 0; c < node.child_count; ++c) {
      const int32_t child =
          child_ids_[static_cast<size_t>(node.child_begin + c)];
      const Node& child_node = nodes_[static_cast<size_t>(child)];
      if (child_node.min_pos >= best ||
          !LowerFullyDominates(node_lower(child), victim_lower, width_)) {
        if (stats != nullptr) ++stats->nodes_pruned;
        continue;
      }
      frontier.emplace(child_node.min_pos, child);
    }
  }
  return best == num_entries_ ? -1 : best;
}

}  // namespace caqe
