#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/thread_pool.h"

namespace caqe {

bool SignaturesIntersect(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b, int64_t* ops) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (ops != nullptr) ++*ops;
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

int64_t ExactJoinSize(const std::vector<int32_t>& keys_a,
                      const std::vector<int32_t>& counts_a,
                      const std::vector<int32_t>& keys_b,
                      const std::vector<int32_t>& counts_b, int64_t* ops) {
  CAQE_DCHECK(keys_a.size() == counts_a.size());
  CAQE_DCHECK(keys_b.size() == counts_b.size());
  int64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < keys_a.size() && j < keys_b.size()) {
    if (ops != nullptr) ++*ops;
    if (keys_a[i] == keys_b[j]) {
      total += static_cast<int64_t>(counts_a[i]) * counts_b[j];
      ++i;
      ++j;
    } else if (keys_a[i] < keys_b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

int64_t PartitionedTable::TotalRows() const {
  int64_t total = 0;
  for (const LeafCell& c : cells_) {
    total += static_cast<int64_t>(c.rows.size());
  }
  return total;
}

Result<PartitionedTable> PartitionTableSlices(const Table& table,
                                              const std::vector<int>& slices) {
  if (static_cast<int>(slices.size()) != table.num_attrs()) {
    return Status::InvalidArgument("one slice count per attribute required");
  }
  int max_slices = 1;
  for (int s : slices) {
    if (s < 1) return Status::InvalidArgument("slice counts must be >= 1");
    max_slices = std::max(max_slices, s);
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot partition an empty table");
  }
  const int d = table.num_attrs();
  const int64_t n = table.num_rows();

  // Observed per-attribute ranges define the grid extent.
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (int64_t row = 0; row < n; ++row) {
    for (int k = 0; k < d; ++k) {
      const double v = table.attr(row, k);
      lo[k] = std::min(lo[k], v);
      hi[k] = std::max(hi[k], v);
    }
  }

  // Map each row to its flattened grid cell id.
  std::unordered_map<int64_t, std::vector<int64_t>> buckets;
  for (int64_t row = 0; row < n; ++row) {
    int64_t id = 0;
    for (int k = 0; k < d; ++k) {
      const double span = hi[k] - lo[k];
      int slot = 0;
      if (span > 0.0 && slices[k] > 1) {
        slot = static_cast<int>((table.attr(row, k) - lo[k]) / span *
                                slices[k]);
        slot = std::min(slot, slices[k] - 1);
      }
      id = id * slices[k] + slot;
    }
    buckets[id].push_back(row);
  }

  PartitionedTable result(&table, max_slices);
  const int num_keys = table.num_keys();
  for (auto& [id, rows] : buckets) {
    LeafCell cell;
    cell.rows = std::move(rows);
    std::sort(cell.rows.begin(), cell.rows.end());
    cell.lower.assign(d, std::numeric_limits<double>::infinity());
    cell.upper.assign(d, -std::numeric_limits<double>::infinity());
    for (int64_t row : cell.rows) {
      for (int k = 0; k < d; ++k) {
        const double v = table.attr(row, k);
        cell.lower[k] = std::min(cell.lower[k], v);
        cell.upper[k] = std::max(cell.upper[k], v);
      }
    }
    cell.signatures.resize(num_keys);
    cell.signature_counts.resize(num_keys);
    for (int j = 0; j < num_keys; ++j) {
      std::vector<int32_t> all;
      all.reserve(cell.rows.size());
      for (int64_t row : cell.rows) all.push_back(table.key(row, j));
      std::sort(all.begin(), all.end());
      std::vector<int32_t>& sig = cell.signatures[j];
      std::vector<int32_t>& counts = cell.signature_counts[j];
      for (size_t i = 0; i < all.size();) {
        size_t end = i;
        while (end < all.size() && all[end] == all[i]) ++end;
        sig.push_back(all[i]);
        counts.push_back(static_cast<int32_t>(end - i));
        i = end;
      }
    }
    result.AddCell(std::move(cell));
  }
  return result;
}

Result<PartitionedTable> PartitionTable(const Table& table,
                                        int cells_per_dim) {
  if (cells_per_dim < 1) {
    return Status::InvalidArgument("cells_per_dim must be >= 1");
  }
  return PartitionTableSlices(
      table, std::vector<int>(table.num_attrs(), cells_per_dim));
}

namespace {

// Finalizes one quad-tree leaf: tight bounds + signatures over `rows`.
LeafCell MakeLeaf(const Table& table, std::vector<int64_t> rows) {
  const int d = table.num_attrs();
  const int num_keys = table.num_keys();
  LeafCell cell;
  cell.rows = std::move(rows);
  std::sort(cell.rows.begin(), cell.rows.end());
  cell.lower.assign(d, std::numeric_limits<double>::infinity());
  cell.upper.assign(d, -std::numeric_limits<double>::infinity());
  for (int64_t row : cell.rows) {
    for (int k = 0; k < d; ++k) {
      const double v = table.attr(row, k);
      cell.lower[k] = std::min(cell.lower[k], v);
      cell.upper[k] = std::max(cell.upper[k], v);
    }
  }
  cell.signatures.resize(num_keys);
  cell.signature_counts.resize(num_keys);
  for (int j = 0; j < num_keys; ++j) {
    std::vector<int32_t> all;
    all.reserve(cell.rows.size());
    for (int64_t row : cell.rows) all.push_back(table.key(row, j));
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < all.size();) {
      size_t end = i;
      while (end < all.size() && all[end] == all[i]) ++end;
      cell.signatures[j].push_back(all[i]);
      cell.signature_counts[j].push_back(static_cast<int32_t>(end - i));
      i = end;
    }
  }
  return cell;
}

}  // namespace

namespace {

struct QuadNode {
  std::vector<int64_t> rows;
  std::vector<double> lower;
  std::vector<double> upper;
  int depth = 0;
};

QuadNode QuadRoot(const Table& table) {
  const int d = table.num_attrs();
  QuadNode root;
  root.lower.assign(d, std::numeric_limits<double>::infinity());
  root.upper.assign(d, -std::numeric_limits<double>::infinity());
  root.rows.resize(table.num_rows());
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    root.rows[row] = row;
    for (int k = 0; k < d; ++k) {
      const double v = table.attr(row, k);
      root.lower[k] = std::min(root.lower[k], v);
      root.upper[k] = std::max(root.upper[k], v);
    }
  }
  return root;
}

// Below this many rows the chunk fork/join costs more than the work;
// quadrant classification and leaf finalization run serially. The stripe
// merge below makes the output identical at any chunk count, so the
// cutoff cannot change results.
constexpr int64_t kParallelMinRows = 4096;

// Splits `node` at its box midpoint in every dimension into non-empty
// children, emitted in ascending quadrant-id order. Returns false (leaving
// `node` untouched) when the node cannot be split (degenerate box, or all
// rows in one quadrant). With a pool, row classification runs in
// deterministic stripes: each chunk buckets its contiguous row slice, and
// per-quadrant row lists are concatenated in chunk order — byte-identical
// to the serial ascending-row classification at any thread count.
bool QuadSplit(const Table& table, const QuadNode& node,
               std::vector<QuadNode>& children_out, ThreadPool* pool) {
  const int d = table.num_attrs();
  if (node.lower == node.upper) return false;
  std::vector<double> mid(d);
  for (int k = 0; k < d; ++k) {
    mid[k] = 0.5 * (node.lower[k] + node.upper[k]);
  }
  const int64_t n = static_cast<int64_t>(node.rows.size());
  ThreadPool* const split_pool = n >= kParallelMinRows ? pool : nullptr;
  const int chunks = NumChunks(split_pool, n, /*min_chunk=*/1);
  std::vector<std::unordered_map<uint32_t, std::vector<int64_t>>> stripes(
      chunks);
  RunChunks(split_pool, chunks, [&](int c) {
    const auto [begin, end] = ChunkRange(n, chunks, c);
    auto& local = stripes[c];
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = node.rows[static_cast<size_t>(i)];
      uint32_t quadrant = 0;
      for (int k = 0; k < d; ++k) {
        if (table.attr(row, k) > mid[k]) quadrant |= uint32_t{1} << k;
      }
      local[quadrant].push_back(row);
    }
  });
  std::vector<uint32_t> quadrants;
  for (const auto& stripe : stripes) {
    for (const auto& [quadrant, rows] : stripe) quadrants.push_back(quadrant);
  }
  std::sort(quadrants.begin(), quadrants.end());
  quadrants.erase(std::unique(quadrants.begin(), quadrants.end()),
                  quadrants.end());
  if (quadrants.size() <= 1) return false;
  for (uint32_t quadrant : quadrants) {
    QuadNode child;
    child.depth = node.depth + 1;
    for (auto& stripe : stripes) {
      const auto it = stripe.find(quadrant);
      if (it == stripe.end()) continue;
      child.rows.insert(child.rows.end(), it->second.begin(),
                        it->second.end());
    }
    child.lower.resize(d);
    child.upper.resize(d);
    for (int k = 0; k < d; ++k) {
      const bool high = (quadrant >> k) & 1;
      child.lower[k] = high ? mid[k] : node.lower[k];
      child.upper[k] = high ? node.upper[k] : mid[k];
    }
    children_out.push_back(std::move(child));
  }
  return true;
}

// Finalizes the gathered leaf row lists concurrently (tight bounds +
// signature sorts dominate the build) and appends the cells in gathering
// order, so cell ids match the serial build at any thread count.
void FinalizeLeaves(const Table& table,
                    std::vector<std::vector<int64_t>>& leaf_rows,
                    ThreadPool* pool, PartitionedTable& result) {
  const int64_t num_leaves = static_cast<int64_t>(leaf_rows.size());
  std::vector<LeafCell> cells(static_cast<size_t>(num_leaves));
  int64_t total_rows = 0;
  for (const auto& rows : leaf_rows) {
    total_rows += static_cast<int64_t>(rows.size());
  }
  ThreadPool* const leaf_pool = total_rows >= kParallelMinRows ? pool : nullptr;
  ParallelFor(leaf_pool, num_leaves, /*min_chunk=*/1, [&](int64_t i) {
    cells[static_cast<size_t>(i)] =
        MakeLeaf(table, std::move(leaf_rows[static_cast<size_t>(i)]));
  });
  for (LeafCell& cell : cells) result.AddCell(std::move(cell));
}

Status ValidateQuadArgs(const Table& table, int max_depth) {
  if (max_depth < 0) {
    return Status::InvalidArgument("max_depth must be >= 0");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot partition an empty table");
  }
  if (table.num_attrs() > 20) {
    return Status::InvalidArgument(
        "quad-tree partitioning supports at most 20 attributes");
  }
  return Status::OK();
}

}  // namespace

Result<PartitionedTable> PartitionTableQuadTree(const Table& table,
                                                int64_t max_rows_per_cell,
                                                int max_depth,
                                                ThreadPool* pool) {
  if (max_rows_per_cell < 1) {
    return Status::InvalidArgument("max_rows_per_cell must be >= 1");
  }
  CAQE_RETURN_NOT_OK(ValidateQuadArgs(table, max_depth));

  PartitionedTable result(&table, 0);
  std::vector<std::vector<int64_t>> leaf_rows;
  std::vector<QuadNode> stack;
  stack.push_back(QuadRoot(table));
  while (!stack.empty()) {
    QuadNode node = std::move(stack.back());
    stack.pop_back();
    std::vector<QuadNode> children;
    if (static_cast<int64_t>(node.rows.size()) <= max_rows_per_cell ||
        node.depth >= max_depth || !QuadSplit(table, node, children, pool)) {
      leaf_rows.push_back(std::move(node.rows));
      continue;
    }
    for (QuadNode& child : children) stack.push_back(std::move(child));
  }
  FinalizeLeaves(table, leaf_rows, pool, result);
  return result;
}

Result<PartitionedTable> PartitionTableQuadTreeTarget(const Table& table,
                                                      int64_t target_cells,
                                                      int max_depth,
                                                      ThreadPool* pool) {
  if (target_cells < 1) {
    return Status::InvalidArgument("target_cells must be >= 1");
  }
  CAQE_RETURN_NOT_OK(ValidateQuadArgs(table, max_depth));

  // Greedily split the most populated splittable node until the leaf
  // budget is met. The heap loop stays serial (split order is part of the
  // deterministic output); only the per-node row classification and the
  // final leaf finalization parallelize.
  auto by_rows = [](const QuadNode& a, const QuadNode& b) {
    return a.rows.size() < b.rows.size();
  };
  std::vector<QuadNode> heap;
  heap.push_back(QuadRoot(table));
  std::vector<QuadNode> leaves;
  while (!heap.empty() &&
         static_cast<int64_t>(heap.size() + leaves.size()) < target_cells) {
    std::pop_heap(heap.begin(), heap.end(), by_rows);
    QuadNode node = std::move(heap.back());
    heap.pop_back();
    std::vector<QuadNode> children;
    if (node.depth >= max_depth || !QuadSplit(table, node, children, pool)) {
      leaves.push_back(std::move(node));
      continue;
    }
    for (QuadNode& child : children) {
      heap.push_back(std::move(child));
      std::push_heap(heap.begin(), heap.end(), by_rows);
    }
  }
  PartitionedTable result(&table, 0);
  std::vector<std::vector<int64_t>> leaf_rows;
  leaf_rows.reserve(heap.size() + leaves.size());
  for (QuadNode& node : heap) leaf_rows.push_back(std::move(node.rows));
  for (QuadNode& node : leaves) leaf_rows.push_back(std::move(node.rows));
  FinalizeLeaves(table, leaf_rows, pool, result);
  return result;
}

std::vector<int> ChooseSliceVector(int num_attrs, int64_t target_cells) {
  std::vector<int> slices(std::max(1, num_attrs), 1);
  int64_t cells = 1;
  int dim = 0;
  while (cells * 2 <= target_cells) {
    slices[dim] *= 2;
    cells *= 2;
    dim = (dim + 1) % static_cast<int>(slices.size());
  }
  return slices;
}

}  // namespace caqe
