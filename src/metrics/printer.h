// Console table / CSV rendering used by the benchmark harness.
#ifndef CAQE_METRICS_PRINTER_H_
#define CAQE_METRICS_PRINTER_H_

#include <string>
#include <vector>

namespace caqe {

/// Accumulates rows and renders them as an aligned ASCII table or CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Aligned, pipe-separated table with a header rule.
  std::string Render() const;

  /// RFC-4180-ish CSV (no quoting of embedded commas; callers avoid them).
  std::string RenderCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.345").
std::string FormatDouble(double v, int precision = 3);

/// Large-count formatting with thousands separators ("1,234,567").
std::string FormatCount(int64_t v);

}  // namespace caqe

#endif  // CAQE_METRICS_PRINTER_H_
