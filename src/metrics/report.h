// Execution metrics and reports shared by all engines.
#ifndef CAQE_METRICS_REPORT_H_
#define CAQE_METRICS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace caqe {

/// Raw operation counters accumulated by an engine run. These back the
/// paper's CPU/memory utilization figures: join_results is the memory proxy
/// (Figure 10.a), dominance_cmps the CPU proxy (Figure 10.b), and
/// virtual_seconds the execution-time proxy (Figure 10.c).
struct EngineStats {
  int64_t join_probes = 0;
  int64_t join_results = 0;
  int64_t dominance_cmps = 0;
  int64_t coarse_ops = 0;
  int64_t emitted_results = 0;
  int64_t regions_built = 0;
  int64_t regions_processed = 0;
  int64_t regions_discarded = 0;
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Wall-clock breakdown of the shared core's phases (benchmarking only;
  /// every other field is deterministic, these are not). region_build
  /// covers the coarse join, join the tuple-level join kernel, eval
  /// projection + shared-skyline evaluation, discard the tuple-level
  /// dominated-region scan.
  double wall_region_build_seconds = 0.0;
  double wall_join_seconds = 0.0;
  double wall_eval_seconds = 0.0;
  double wall_discard_seconds = 0.0;
};

/// One reported (progressively emitted) result tuple.
struct ReportedResult {
  int64_t tuple_id = 0;
  /// Virtual report time tau.ts, seconds since execution start.
  double time = 0.0;
  /// Utility the query's contract assigned at report time.
  double utility = 0.0;
  /// Projected output values; captured only when ExecOptions requests it.
  std::vector<double> values;
};

/// A reported result's (time, utility) pair, always captured (unlike full
/// tuple values) so progressiveness metrics can be computed offline with a
/// cross-engine horizon.
struct UtilityTracePoint {
  double time = 0.0;
  double utility = 0.0;
};

/// Per-query outcome.
struct QueryReport {
  std::string name;
  /// pScore (Eq. 7): sum of result utilities.
  double pscore = 0.0;
  /// Number of results reported.
  int64_t results = 0;
  /// Average utility per result — the per-query satisfaction metric.
  double satisfaction = 0.0;
  /// Captured results (empty unless requested).
  std::vector<ReportedResult> tuples;
  /// (time, utility) of every reported result, in report order.
  std::vector<UtilityTracePoint> utility_trace;
};

/// Outcome of one engine execution over one workload.
struct ExecutionReport {
  std::string engine;
  EngineStats stats;
  std::vector<QueryReport> queries;
  /// Sum of per-query pScores (the Contract-MQP objective, Eq. 6).
  double workload_pscore = 0.0;
  /// Mean per-query satisfaction (Figures 9 and 11 y-axis).
  double average_satisfaction = 0.0;
};

}  // namespace caqe

#endif  // CAQE_METRICS_REPORT_H_
