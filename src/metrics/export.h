// Report serialization: CSV exports for offline analysis and plotting.
#ifndef CAQE_METRICS_EXPORT_H_
#define CAQE_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/options.h"
#include "metrics/report.h"

namespace caqe {

/// One row per engine: headline metrics of a comparison run.
/// Columns: engine, avg_satisfaction, workload_pscore, join_results,
/// skyline_cmps, coarse_ops, emitted, regions_built, regions_processed,
/// regions_discarded, virtual_seconds, wall_seconds.
std::string ReportSummaryCsv(const std::vector<ExecutionReport>& reports);

/// One row per query of one report.
/// Columns: engine, query, results, pscore, satisfaction.
std::string QueryBreakdownCsv(const ExecutionReport& report);

/// One row per reported result of one report (the cumulative-utility
/// curves behind the progressiveness plots).
/// Columns: engine, query, time, utility.
std::string UtilityTraceCsv(const ExecutionReport& report);

/// Human/tool-readable name of an ExecEvent kind (stable identifiers:
/// "region_scheduled", "region_discarded", "query_pruned",
/// "results_emitted", "query_admitted", "query_retired").
const char* ExecEventKindName(ExecEvent::Kind kind);

/// One JSON object per line per event, in stream order:
///   {"kind":"region_scheduled","vtime":0.000123,"region":4,"query":-1,
///    "count":0}
/// Virtual times print with 9 decimals (the repository's deterministic
/// time format), so two runs' exports byte-match iff their event streams
/// match. This makes serving-mode scheduling decisions post-hoc
/// inspectable with standard JSONL tooling.
///
/// `query_names`, when non-empty, adds a `"name"` field to every event with
/// a resolvable query index (names[event.query]). Names are caller data and
/// are JSON-escaped — a query named `a"b\c` exports as `"a\"b\\c"`.
std::string ExecEventsJsonl(const std::vector<ExecEvent>& events,
                            const std::vector<std::string>& query_names = {});

/// Writes `content` to `path`, overwriting. Returns an error Status on I/O
/// failure.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace caqe

#endif  // CAQE_METRICS_EXPORT_H_
