// Report serialization: CSV exports for offline analysis and plotting.
#ifndef CAQE_METRICS_EXPORT_H_
#define CAQE_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/report.h"

namespace caqe {

/// One row per engine: headline metrics of a comparison run.
/// Columns: engine, avg_satisfaction, workload_pscore, join_results,
/// skyline_cmps, coarse_ops, emitted, regions_built, regions_processed,
/// regions_discarded, virtual_seconds, wall_seconds.
std::string ReportSummaryCsv(const std::vector<ExecutionReport>& reports);

/// One row per query of one report.
/// Columns: engine, query, results, pscore, satisfaction.
std::string QueryBreakdownCsv(const ExecutionReport& report);

/// One row per reported result of one report (the cumulative-utility
/// curves behind the progressiveness plots).
/// Columns: engine, query, time, utility.
std::string UtilityTraceCsv(const ExecutionReport& report);

/// Writes `content` to `path`, overwriting. Returns an error Status on I/O
/// failure.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace caqe

#endif  // CAQE_METRICS_EXPORT_H_
