#include "metrics/export.h"

#include <cstdio>

#include "common/json_util.h"
#include "metrics/printer.h"

namespace caqe {

std::string ReportSummaryCsv(const std::vector<ExecutionReport>& reports) {
  TablePrinter table({"engine", "avg_satisfaction", "workload_pscore",
                      "join_results", "skyline_cmps", "coarse_ops",
                      "emitted", "regions_built", "regions_processed",
                      "regions_discarded", "virtual_seconds",
                      "wall_seconds"});
  for (const ExecutionReport& report : reports) {
    const EngineStats& s = report.stats;
    table.AddRow({report.engine, FormatDouble(report.average_satisfaction, 6),
                  FormatDouble(report.workload_pscore, 6),
                  std::to_string(s.join_results),
                  std::to_string(s.dominance_cmps),
                  std::to_string(s.coarse_ops),
                  std::to_string(s.emitted_results),
                  std::to_string(s.regions_built),
                  std::to_string(s.regions_processed),
                  std::to_string(s.regions_discarded),
                  FormatDouble(s.virtual_seconds, 6),
                  FormatDouble(s.wall_seconds, 6)});
  }
  return table.RenderCsv();
}

std::string QueryBreakdownCsv(const ExecutionReport& report) {
  TablePrinter table({"engine", "query", "results", "pscore",
                      "satisfaction"});
  for (const QueryReport& query : report.queries) {
    table.AddRow({report.engine, query.name, std::to_string(query.results),
                  FormatDouble(query.pscore, 6),
                  FormatDouble(query.satisfaction, 6)});
  }
  return table.RenderCsv();
}

std::string UtilityTraceCsv(const ExecutionReport& report) {
  TablePrinter table({"engine", "query", "time", "utility"});
  for (const QueryReport& query : report.queries) {
    for (const UtilityTracePoint& point : query.utility_trace) {
      table.AddRow({report.engine, query.name, FormatDouble(point.time, 9),
                    FormatDouble(point.utility, 6)});
    }
  }
  return table.RenderCsv();
}

const char* ExecEventKindName(ExecEvent::Kind kind) {
  switch (kind) {
    case ExecEvent::Kind::kRegionScheduled:
      return "region_scheduled";
    case ExecEvent::Kind::kRegionDiscarded:
      return "region_discarded";
    case ExecEvent::Kind::kQueryPruned:
      return "query_pruned";
    case ExecEvent::Kind::kResultsEmitted:
      return "results_emitted";
    case ExecEvent::Kind::kQueryAdmitted:
      return "query_admitted";
    case ExecEvent::Kind::kQueryRetired:
      return "query_retired";
    case ExecEvent::Kind::kQueryRepreviewed:
      return "query_repreviewed";
  }
  return "unknown";
}

std::string ExecEventsJsonl(const std::vector<ExecEvent>& events,
                            const std::vector<std::string>& query_names) {
  std::string out;
  for (const ExecEvent& event : events) {
    out += "{\"kind\":\"";
    out += ExecEventKindName(event.kind);
    out += "\",\"vtime\":";
    out += FormatDouble(event.vtime, 9);
    out += ",\"region\":";
    out += std::to_string(event.region);
    out += ",\"query\":";
    out += std::to_string(event.query);
    if (event.query >= 0 &&
        event.query < static_cast<int>(query_names.size())) {
      out += ",\"name\":";
      JsonAppendString(out, query_names[event.query]);
    }
    out += ",\"count\":";
    out += std::to_string(event.count);
    out += "}\n";
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const int close_status = std::fclose(file);
  if (written != content.size() || close_status != 0) {
    return Status::Internal("short write to: " + path);
  }
  return Status::OK();
}

}  // namespace caqe
