#include "metrics/printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace caqe {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CAQE_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CAQE_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::RenderCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatCount(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const int n = static_cast<int>(digits.size());
  for (int i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return (v < 0 ? "-" : "") + out;
}

}  // namespace caqe
