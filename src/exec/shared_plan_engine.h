// Engines built on the shared region-based execution core.
#ifndef CAQE_EXEC_SHARED_PLAN_ENGINE_H_
#define CAQE_EXEC_SHARED_PLAN_ENGINE_H_

#include <string>
#include <vector>

#include "exec/engine.h"
#include "exec/shared_core.h"

namespace caqe {

/// Shared-plan engine parameterized by core policy knobs. Factory functions
/// below produce the named configurations used in the paper's evaluation
/// and the ablation studies.
class SharedPlanEngine : public Engine {
 public:
  /// `policy_overrides` fixes the core policy regardless of ExecOptions;
  /// feedback/prune flags of ExecOptions are ANDed with the template (an
  /// engine that disables feedback by design keeps it off even when the
  /// caller's options enable it).
  SharedPlanEngine(std::string name, SchedulePolicy policy, bool coarse_prune,
                   bool feedback, bool tuple_discard = true)
      : name_(std::move(name)),
        policy_(policy),
        coarse_prune_(coarse_prune),
        feedback_(feedback),
        tuple_discard_(tuple_discard) {}

  std::string name() const override { return name_; }

  Result<ExecutionReport> Execute(const Table& r, const Table& t,
                                  const Workload& workload,
                                  const std::vector<Contract>& contracts,
                                  const ExecOptions& options) override;

 private:
  std::string name_;
  SchedulePolicy policy_;
  bool coarse_prune_;
  bool feedback_;
  bool tuple_discard_;
};

/// CAQE: contract-driven scheduling, coarse pruning, satisfaction feedback.
SharedPlanEngine MakeCaqeEngine();

/// S-JFSL (paper Section 7.1): pipelines join tuples over the min-max
/// cuboid plan in static scan order — execution sharing without contract
/// awareness.
SharedPlanEngine MakeSJfslEngine();

/// Ablations of CAQE's design choices.
SharedPlanEngine MakeCaqeNoFeedbackEngine();
SharedPlanEngine MakeCaqeNoPruneEngine();
SharedPlanEngine MakeCaqeCountDrivenEngine();

}  // namespace caqe

#endif  // CAQE_EXEC_SHARED_PLAN_ENGINE_H_
