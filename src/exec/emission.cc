#include "exec/emission.h"

#include <algorithm>

#include "region/region_dominance.h"

namespace caqe {

EmissionManager::EmissionManager(const Workload* workload,
                                 const RegionCollection* rc,
                                 const PointSet* store,
                                 const std::vector<char>* pending)
    : workload_(workload), rc_(rc), store_(store), pending_(pending) {
  shards_.resize(workload_->num_queries());
  // Two passes: size every scan list first so the fills below never
  // reallocate mid-growth, and pre-bucket the hot per-shard maps — parked
  // candidates trickle in one at a time, and incremental rehashing of a
  // default-sized table was pure churn.
  std::vector<size_t> serving_counts(shards_.size(), 0);
  for (const OutputRegion& region : rc_->regions) {
    region.rql.ForEach([&](int q) { ++serving_counts[q]; });
  }
  for (size_t q = 0; q < shards_.size(); ++q) {
    shards_[q].serving.reserve(serving_counts[q]);
    shards_[q].parked_index.reserve(16);
    shards_[q].witness_of.reserve(64);
  }
  for (const OutputRegion& region : rc_->regions) {
    region.rql.ForEach(
        [&](int q) { shards_[q].serving.push_back(region.id); });
  }
}

int EmissionManager::FindWitness(int q, int64_t id) {
  QueryShard& shard = shards_[q];
  const double* point = store_->row(id);
  const std::vector<int>& dims = workload_->query(q).preference;
  for (int region_id : shard.serving) {
    if (!(*pending_)[region_id]) continue;
    const OutputRegion& region = rc_->regions[region_id];
    if (!region.rql.Contains(q)) continue;  // Pruned for q meanwhile.
    ++shard.coarse_ops;
    if (RegionCanDominatePoint(region, point, dims)) return region_id;
  }
  return -1;
}

void EmissionManager::Park(int q, int64_t id, int witness) {
  QueryShard& shard = shards_[q];
  const int32_t* slot = shard.parked_index.find(witness);
  if (slot == nullptr) {
    int32_t fresh;
    if (!shard.free_buckets.empty()) {
      fresh = shard.free_buckets.back();
      shard.free_buckets.pop_back();
    } else {
      fresh = static_cast<int32_t>(shard.bucket_pool.size());
      shard.bucket_pool.emplace_back();
    }
    shard.parked_index.insert_or_assign(witness, fresh);
    shard.bucket_pool[fresh].push_back(id);
  } else {
    shard.bucket_pool[*slot].push_back(id);
  }
  shard.witness_of.insert_or_assign(id, witness);
}

/// Detaches `region`'s parked bucket into `shard.resolve_scratch` and
/// recycles the bucket slot. Returns false when the region has no parked
/// candidates.
bool EmissionManager::DetachBucket(QueryShard& shard, int region) {
  const int32_t* slot = shard.parked_index.find(region);
  if (slot == nullptr) return false;
  const int32_t freed = *slot;
  shard.resolve_scratch.swap(shard.bucket_pool[freed]);
  shard.bucket_pool[freed].clear();
  shard.parked_index.erase(region);
  shard.free_buckets.push_back(freed);
  return !shard.resolve_scratch.empty();
}

void EmissionManager::ReleaseAllBuckets(QueryShard& shard) {
  shard.parked_index.clear();
  shard.free_buckets.clear();
  for (size_t i = 0; i < shard.bucket_pool.size(); ++i) {
    shard.bucket_pool[i].clear();
    shard.free_buckets.push_back(static_cast<int32_t>(i));
  }
}

void EmissionManager::OnAccepted(int q, int64_t id,
                                 std::vector<int64_t>& emit_now) {
  const int witness = FindWitness(q, id);
  if (witness < 0) {
    emit_now.push_back(id);
  } else {
    Park(q, id, witness);
  }
}

void EmissionManager::OnEvicted(int q, int64_t id) {
  // Stale entries stay in parked buckets; witness_of is authoritative.
  shards_[q].witness_of.erase(id);
}

void EmissionManager::OnRegionResolvedForQuery(
    int region, int q, std::vector<std::pair<int, int64_t>>& emit_now) {
  QueryShard& shard = shards_[q];
  // The resolved region can never be re-picked as a witness here — it is
  // no longer pending, or was pruned for q — so re-parks during the scan
  // only touch other buckets (possibly recycling the slot just freed).
  if (!DetachBucket(shard, region)) return;
  std::vector<int64_t>& ids = shard.resolve_scratch;
  for (int64_t id : ids) {
    const int* w = shard.witness_of.find(id);
    if (w == nullptr || *w != region) {
      continue;  // Evicted or re-parked meanwhile.
    }
    shard.witness_of.erase(id);
    const int witness = FindWitness(q, id);
    if (witness < 0) {
      emit_now.emplace_back(q, id);
    } else {
      Park(q, id, witness);
    }
  }
  ids.clear();
}

void EmissionManager::ResolveAndRegister(int region, int q,
                                         const std::vector<int64_t>* accepted,
                                         const std::vector<int64_t>* dead,
                                         std::vector<int64_t>& resolved,
                                         std::vector<int64_t>& direct) {
  // Bucket resolution first, then acceptance registration — the relative
  // order the serial emission phase used within this query.
  QueryShard& shard = shards_[q];
  if (DetachBucket(shard, region)) {
    std::vector<int64_t>& ids = shard.resolve_scratch;
    for (int64_t id : ids) {
      const int* w = shard.witness_of.find(id);
      if (w == nullptr || *w != region) continue;
      shard.witness_of.erase(id);
      const int witness = FindWitness(q, id);
      if (witness < 0) {
        resolved.push_back(id);
      } else {
        Park(q, id, witness);
      }
    }
    ids.clear();
  }
  if (accepted == nullptr) return;
  for (int64_t id : *accepted) {
    if (dead != nullptr &&
        std::binary_search(dead->begin(), dead->end(), id)) {
      continue;
    }
    OnAccepted(q, id, direct);
  }
}

void EmissionManager::FlushRegion(
    int region, const std::vector<std::vector<int64_t>>& accepted,
    const std::vector<std::vector<int64_t>>& dead, ThreadPool* pool,
    std::vector<std::vector<int64_t>>& resolved,
    std::vector<std::vector<int64_t>>& direct) {
  const int64_t n = static_cast<int64_t>(shards_.size());
  if (static_cast<int64_t>(resolved.size()) < n) resolved.resize(n);
  if (static_cast<int64_t>(direct.size()) < n) direct.resize(n);
  // One task per chunk of shards. Shards share no mutable state and the
  // witness-scan inputs (store rows, pending flags, lineages, scan lists)
  // are frozen during the emission phase, so the concurrent flush leaves
  // every shard — park state, outputs, coarse ops — exactly as the serial
  // q-order sweep would.
  ParallelFor(pool, n, /*min_chunk=*/1, [&](int64_t q) {
    resolved[q].clear();
    direct[q].clear();
    const size_t uq = static_cast<size_t>(q);
    ResolveAndRegister(region, static_cast<int>(q),
                       uq < accepted.size() ? &accepted[uq] : nullptr,
                       uq < dead.size() && !dead[uq].empty() ? &dead[uq]
                                                             : nullptr,
                       resolved[q], direct[q]);
  });
}

void EmissionManager::AddQuery(int q) {
  if (q >= static_cast<int>(shards_.size())) {
    shards_.resize(q + 1);
  }
  QueryShard& shard = shards_[q];
  ReleaseAllBuckets(shard);
  shard.witness_of.clear();
  shard.serving.clear();
  // The query's scan list is its post-graft lineage, ascending region id —
  // the same order the constructor produces for initial queries.
  for (const OutputRegion& region : rc_->regions) {
    if (region.rql.Contains(q)) shard.serving.push_back(region.id);
  }
}

void EmissionManager::RetireQuery(int q, std::vector<int64_t>* flushed) {
  if (q < 0 || q >= static_cast<int>(shards_.size())) return;
  QueryShard& shard = shards_[q];
  if (flushed != nullptr) {
    shard.witness_of.ForEach(
        [&](int64_t id, int) { flushed->push_back(id); });
    // witness_of iteration order is slot (hash) order; ascending tuple id
    // (= acceptance order within a region, region order across) makes the
    // flush deterministic.
    std::sort(flushed->begin(), flushed->end());
  }
  ReleaseAllBuckets(shard);
  shard.witness_of.clear();
  shard.serving.clear();
}

void EmissionManager::OnRegionResolved(
    int region, std::vector<std::pair<int, int64_t>>& emit_now) {
  for (int q = 0; q < static_cast<int>(shards_.size()); ++q) {
    OnRegionResolvedForQuery(region, q, emit_now);
  }
}

void EmissionManager::DrainAll(
    std::vector<std::pair<int, int64_t>>& emit_now) {
  for (int q = 0; q < static_cast<int>(shards_.size()); ++q) {
    QueryShard& shard = shards_[q];
    shard.parked_index.ForEach([&](int64_t region, int32_t slot) {
      (void)region;
      for (int64_t id : shard.bucket_pool[slot]) {
        if (!shard.witness_of.erase(id)) continue;
        emit_now.emplace_back(q, id);
      }
    });
    ReleaseAllBuckets(shard);
  }
}

int64_t EmissionManager::coarse_ops() const {
  int64_t total = 0;
  for (const QueryShard& shard : shards_) total += shard.coarse_ops;
  return total;
}

int64_t EmissionManager::parked(int q) const {
  CAQE_DCHECK(q >= 0 && q < static_cast<int>(shards_.size()));
  return static_cast<int64_t>(shards_[q].witness_of.size());
}

}  // namespace caqe
