#include "exec/emission.h"

#include <algorithm>

#include "region/region_dominance.h"

namespace caqe {

EmissionManager::EmissionManager(const Workload* workload,
                                 const RegionCollection* rc,
                                 const PointSet* store,
                                 const std::vector<char>* pending)
    : workload_(workload), rc_(rc), store_(store), pending_(pending) {
  const int n = workload_->num_queries();
  parked_.resize(n);
  witness_of_.resize(n);
  serving_.resize(n);
  for (const OutputRegion& region : rc_->regions) {
    region.rql.ForEach([&](int q) { serving_[q].push_back(region.id); });
  }
}

int EmissionManager::FindWitness(int q, int64_t id) {
  const double* point = store_->row(id);
  const std::vector<int>& dims = workload_->query(q).preference;
  for (int region_id : serving_[q]) {
    if (!(*pending_)[region_id]) continue;
    const OutputRegion& region = rc_->regions[region_id];
    if (!region.rql.Contains(q)) continue;  // Pruned for q meanwhile.
    ++coarse_ops_;
    if (RegionCanDominatePoint(region, point, dims)) return region_id;
  }
  return -1;
}

void EmissionManager::Park(int q, int64_t id, int witness) {
  parked_[q][witness].push_back(id);
  witness_of_[q][id] = witness;
}

void EmissionManager::OnAccepted(int q, int64_t id,
                                 std::vector<int64_t>& emit_now) {
  const int witness = FindWitness(q, id);
  if (witness < 0) {
    emit_now.push_back(id);
  } else {
    Park(q, id, witness);
  }
}

void EmissionManager::OnEvicted(int q, int64_t id) {
  // Stale entries stay in parked_ buckets; witness_of_ is authoritative.
  witness_of_[q].erase(id);
}

void EmissionManager::OnRegionResolvedForQuery(
    int region, int q, std::vector<std::pair<int, int64_t>>& emit_now) {
  auto bucket = parked_[q].find(region);
  if (bucket == parked_[q].end()) return;
  std::vector<int64_t> ids = std::move(bucket->second);
  parked_[q].erase(bucket);
  for (int64_t id : ids) {
    auto it = witness_of_[q].find(id);
    if (it == witness_of_[q].end() || it->second != region) {
      continue;  // Evicted or re-parked meanwhile.
    }
    witness_of_[q].erase(it);
    const int witness = FindWitness(q, id);
    if (witness < 0) {
      emit_now.emplace_back(q, id);
    } else {
      Park(q, id, witness);
    }
  }
}

void EmissionManager::AddQuery(int q) {
  if (q >= static_cast<int>(parked_.size())) {
    parked_.resize(q + 1);
    witness_of_.resize(q + 1);
    serving_.resize(q + 1);
  }
  parked_[q].clear();
  witness_of_[q].clear();
  serving_[q].clear();
  // The query's scan list is its post-graft lineage, ascending region id —
  // the same order the constructor produces for initial queries.
  for (const OutputRegion& region : rc_->regions) {
    if (region.rql.Contains(q)) serving_[q].push_back(region.id);
  }
}

void EmissionManager::RetireQuery(int q, std::vector<int64_t>* flushed) {
  if (q < 0 || q >= static_cast<int>(parked_.size())) return;
  if (flushed != nullptr) {
    for (const auto& [id, witness] : witness_of_[q]) {
      (void)witness;
      flushed->push_back(id);
    }
    // witness_of_ iteration order is hash-dependent; ascending tuple id
    // (= acceptance order within a region, region order across) makes the
    // flush deterministic.
    std::sort(flushed->begin(), flushed->end());
  }
  parked_[q].clear();
  witness_of_[q].clear();
  serving_[q].clear();
}

void EmissionManager::OnRegionResolved(
    int region, std::vector<std::pair<int, int64_t>>& emit_now) {
  for (int q = 0; q < static_cast<int>(parked_.size()); ++q) {
    OnRegionResolvedForQuery(region, q, emit_now);
  }
}

void EmissionManager::DrainAll(
    std::vector<std::pair<int, int64_t>>& emit_now) {
  for (int q = 0; q < static_cast<int>(parked_.size()); ++q) {
    for (auto& [region, ids] : parked_[q]) {
      for (int64_t id : ids) {
        auto it = witness_of_[q].find(id);
        if (it == witness_of_[q].end()) continue;
        witness_of_[q].erase(it);
        emit_now.emplace_back(q, id);
      }
    }
    parked_[q].clear();
  }
}

int64_t EmissionManager::parked(int q) const {
  CAQE_DCHECK(q >= 0 && q < static_cast<int>(witness_of_.size()));
  return static_cast<int64_t>(witness_of_[q].size());
}

}  // namespace caqe
