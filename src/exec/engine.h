// Abstract engine interface implemented by CAQE and every baseline.
#ifndef CAQE_EXEC_ENGINE_H_
#define CAQE_EXEC_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "contracts/utility.h"
#include "data/table.h"
#include "exec/options.h"
#include "metrics/report.h"
#include "partition/partitioner.h"
#include "query/query.h"

namespace caqe {

/// A multi-query execution strategy for skyline-over-join workloads.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Engine label used in reports ("CAQE", "S-JFSL", ...).
  virtual std::string name() const = 0;

  /// Executes `workload` over R and T, scoring results against
  /// `contracts[i]` for query i. Returns the execution report or an error
  /// for invalid inputs.
  virtual Result<ExecutionReport> Execute(
      const Table& r, const Table& t, const Workload& workload,
      const std::vector<Contract>& contracts, const ExecOptions& options) = 0;
};

/// Picks a grid granularity so that the number of cell pairs stays near
/// `options.target_regions` (used by every region-based engine).
int ChooseCellsPerDim(const ExecOptions& options, int num_attrs,
                      int64_t num_rows);

/// Exact equi-join output size of key column `key` between R and T
/// (hash-count based, O(|R| + |T|)).
int64_t ExactTotalJoinSize(const Table& r, const Table& t, int key);

/// Partitions a table for region-based execution: honors an explicit
/// options.cells_per_dim, otherwise chooses a slice vector targeting
/// sqrt(target_regions) cells (bounded so cells keep >= 8 rows on average).
/// With a pool, the quad-tree strategy finalizes cells concurrently
/// (deterministic stripes — identical cells at any thread count).
Result<PartitionedTable> PartitionForRegions(const Table& table,
                                             const ExecOptions& options,
                                             int target_regions,
                                             ThreadPool* pool = nullptr);

/// Scales the region-count target down for small workloads so the coarse
/// machinery (region build, dependency graph, benefit scans) stays
/// proportional to the tuple-level work: aims for at least ~500 expected
/// join results per region, within [16, options.target_regions].
int AdaptiveTargetRegions(const ExecOptions& options, const Table& r,
                          const Table& t, const Workload& workload);

}  // namespace caqe

#endif  // CAQE_EXEC_ENGINE_H_
