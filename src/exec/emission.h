// Progressive result reporting with safety guarantees (paper Section 6,
// "Progressive Result Reporting").
//
// A skyline candidate of query Q may be emitted once no *pending* region
// serving Q can produce a tuple dominating it: for every pending region the
// lower (best) corner must fail to weakly dominate the candidate in Q's
// preference subspace. Emitted results are final — they can never be
// retracted, because future tuples all come from pending regions.
//
// The manager is witness-based: a blocked candidate remembers one pending
// region that blocks it and is re-examined only when that witness is
// resolved (processed, discarded, or pruned for the query), which keeps the
// re-scan cost proportional to actual state changes.
//
// The park set is sharded per query: each query owns its parked buckets,
// witness map, scan list, and safety-scan op counter, and no shard ever
// reads another shard's state. That makes the per-region flush barrier
// (FlushRegion) embarrassingly parallel without a single lock — the shared
// inputs of a witness scan (store rows, pending flags, region lineages) are
// frozen for the duration of the emission phase — while every serial entry
// point keeps working on one shard at a time, byte-identically.
#ifndef CAQE_EXEC_EMISSION_H_
#define CAQE_EXEC_EMISSION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/thread_pool.h"
#include "query/query.h"
#include "region/region_builder.h"
#include "skyline/point_set.h"

namespace caqe {

/// Manages safe progressive emission for all queries of one engine run.
class EmissionManager {
 public:
  /// `store` maps tuple id -> output values (id == row). `pending` flags
  /// regions still awaiting tuple-level processing; the engine mutates it.
  /// All pointers must outlive the manager; `rc` lineages may shrink.
  EmissionManager(const Workload* workload, const RegionCollection* rc,
                  const PointSet* store, const std::vector<char>* pending);

  /// Registers a tuple newly accepted into query `q`'s skyline. If it is
  /// already safe it is appended to `emit_now`; otherwise it is parked
  /// under a blocking witness region.
  void OnAccepted(int q, int64_t id, std::vector<int64_t>& emit_now);

  /// Drops a candidate evicted from query `q`'s skyline. Ignores unknown
  /// ids (tuples evicted before ever being accepted at this node).
  void OnEvicted(int q, int64_t id);

  /// Called when `region` stops threatening query `q` (processed, or q was
  /// pruned from its lineage). Newly safe candidates of q are appended to
  /// `emit_now`.
  void OnRegionResolvedForQuery(int region, int q,
                                std::vector<std::pair<int, int64_t>>& emit_now);

  /// Called when `region` is fully resolved (processed or discarded):
  /// re-examines the parked candidates of every query.
  void OnRegionResolved(int region,
                        std::vector<std::pair<int, int64_t>>& emit_now);

  /// The flush barrier of one processed region, all queries at once: per
  /// query, resolves the region's parked bucket (appending newly safe ids
  /// to `resolved[q]`) and then registers the query's accepted tuples of
  /// this region — `accepted[q]` minus `dead[q]` — appending immediately
  /// safe ones to `direct[q]`. `dead[q]` must be sorted ascending (the
  /// membership test is a binary search over the caller's reusable buffer
  /// — a region's eviction count is small, so sorted vectors beat hash
  /// sets and allocate nothing at steady state). Exactly the serial
  /// OnRegionResolved + per-query OnAccepted sequence, shard by shard; with
  /// a pool the shards run concurrently (they share no mutable state, and
  /// the witness-scan inputs are frozen during the emission phase), so
  /// outputs, park state, and per-shard coarse ops are identical at any
  /// thread count. The caller merges `direct`/`resolved` in the serial emit
  /// order (see RegionPipeline).
  void FlushRegion(int region,
                   const std::vector<std::vector<int64_t>>& accepted,
                   const std::vector<std::vector<int64_t>>& dead,
                   ThreadPool* pool,
                   std::vector<std::vector<int64_t>>& resolved,
                   std::vector<std::vector<int64_t>>& direct);

  /// Emits whatever is still parked (used as a final drain; with correct
  /// resolution bookkeeping it returns nothing and the engine asserts so).
  void DrainAll(std::vector<std::pair<int, int64_t>>& emit_now);

  /// Serving graft: (re)initializes query `q`'s emission state, growing
  /// the shard vector as needed. The scan list is rebuilt from the current
  /// region lineages, which at graft time contain exactly `q`'s regions.
  void AddQuery(int q);

  /// Serving retirement: discards query `q`'s parked candidates and scan
  /// list. When `flushed` is non-null the parked tuple ids are appended to
  /// it in ascending id order (deterministic), letting the caller decide
  /// whether to emit or drop them; retired queries' candidates are
  /// otherwise never emitted.
  void RetireQuery(int q, std::vector<int64_t>* flushed = nullptr);

  /// Coarse-level operations spent on safety scans (sum over the per-query
  /// shards; addition is order-free, so the total is identical whether the
  /// shards were flushed serially or in parallel).
  int64_t coarse_ops() const;

  /// Number of currently parked (accepted, unemitted, unevicted)
  /// candidates of query `q`.
  int64_t parked(int q) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Everything one query's emission logic touches. Shards are mutually
  /// disjoint by construction — the basis of the lock-free parallel flush.
  struct QueryShard {
    /// Witness region -> slot in `bucket_pool` holding the region's parked
    /// candidate ids (buckets may contain stale ids of evicted candidates;
    /// filtered on resolution). Resolution returns the slot — cleared,
    /// capacity kept — to `free_buckets`, so parking under a fresh witness
    /// recycles an old bucket instead of heap-allocating: witnesses move
    /// to ever-later regions as execution proceeds, and a map of owned
    /// vectors here churned a node + vector per new witness per region.
    FlatMap64<int32_t> parked_index;
    std::vector<std::vector<int64_t>> bucket_pool;
    std::vector<int32_t> free_buckets;
    /// id -> current witness (absent once emitted or evicted);
    /// authoritative over the buckets. Flat map: a node-based map here
    /// allocated on every park and freed on every emit/evict.
    FlatMap64<int> witness_of;
    /// Region ids serving the query (scan list for witness search).
    std::vector<int> serving;
    /// Reusable buffer a bucket's ids are swapped into during resolution
    /// (re-parks push into other buckets mid-iteration, so the bucket
    /// cannot be iterated in place).
    std::vector<int64_t> resolve_scratch;
    /// Safety-scan operations charged by this shard.
    int64_t coarse_ops = 0;
  };

  /// Returns a pending region id blocking (q, id), or -1 when safe.
  /// Charges shard q's coarse_ops; reads only flush-frozen shared state.
  int FindWitness(int q, int64_t id);

  void Park(int q, int64_t id, int witness);

  /// Moves `region`'s parked ids into `shard.resolve_scratch` and returns
  /// the bucket slot to the free list. False when nothing was parked.
  static bool DetachBucket(QueryShard& shard, int region);

  /// Empties every bucket (capacity kept) and rebuilds the free list.
  static void ReleaseAllBuckets(QueryShard& shard);

  /// One shard's share of FlushRegion: resolve the region's bucket, then
  /// register the accepted survivors — the serial order within the shard.
  /// `dead`, when non-null, is sorted ascending.
  void ResolveAndRegister(int region, int q,
                          const std::vector<int64_t>* accepted,
                          const std::vector<int64_t>* dead,
                          std::vector<int64_t>& resolved,
                          std::vector<int64_t>& direct);

  const Workload* workload_;
  const RegionCollection* rc_;
  const PointSet* store_;
  const std::vector<char>* pending_;
  std::vector<QueryShard> shards_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_EMISSION_H_
