// Progressive result reporting with safety guarantees (paper Section 6,
// "Progressive Result Reporting").
//
// A skyline candidate of query Q may be emitted once no *pending* region
// serving Q can produce a tuple dominating it: for every pending region the
// lower (best) corner must fail to weakly dominate the candidate in Q's
// preference subspace. Emitted results are final — they can never be
// retracted, because future tuples all come from pending regions.
//
// The manager is witness-based: a blocked candidate remembers one pending
// region that blocks it and is re-examined only when that witness is
// resolved (processed, discarded, or pruned for the query), which keeps the
// re-scan cost proportional to actual state changes.
#ifndef CAQE_EXEC_EMISSION_H_
#define CAQE_EXEC_EMISSION_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/query.h"
#include "region/region_builder.h"
#include "skyline/point_set.h"

namespace caqe {

/// Manages safe progressive emission for all queries of one engine run.
class EmissionManager {
 public:
  /// `store` maps tuple id -> output values (id == row). `pending` flags
  /// regions still awaiting tuple-level processing; the engine mutates it.
  /// All pointers must outlive the manager; `rc` lineages may shrink.
  EmissionManager(const Workload* workload, const RegionCollection* rc,
                  const PointSet* store, const std::vector<char>* pending);

  /// Registers a tuple newly accepted into query `q`'s skyline. If it is
  /// already safe it is appended to `emit_now`; otherwise it is parked
  /// under a blocking witness region.
  void OnAccepted(int q, int64_t id, std::vector<int64_t>& emit_now);

  /// Drops a candidate evicted from query `q`'s skyline. Ignores unknown
  /// ids (tuples evicted before ever being accepted at this node).
  void OnEvicted(int q, int64_t id);

  /// Called when `region` stops threatening query `q` (processed, or q was
  /// pruned from its lineage). Newly safe candidates of q are appended to
  /// `emit_now`.
  void OnRegionResolvedForQuery(int region, int q,
                                std::vector<std::pair<int, int64_t>>& emit_now);

  /// Called when `region` is fully resolved (processed or discarded):
  /// re-examines the parked candidates of every query.
  void OnRegionResolved(int region,
                        std::vector<std::pair<int, int64_t>>& emit_now);

  /// Emits whatever is still parked (used as a final drain; with correct
  /// resolution bookkeeping it returns nothing and the engine asserts so).
  void DrainAll(std::vector<std::pair<int, int64_t>>& emit_now);

  /// Serving graft: (re)initializes query `q`'s emission state, growing
  /// per-query storage as needed. The scan list is rebuilt from the current
  /// region lineages, which at graft time contain exactly `q`'s regions.
  void AddQuery(int q);

  /// Serving retirement: discards query `q`'s parked candidates and scan
  /// list. When `flushed` is non-null the parked tuple ids are appended to
  /// it in ascending id order (deterministic), letting the caller decide
  /// whether to emit or drop them; retired queries' candidates are
  /// otherwise never emitted.
  void RetireQuery(int q, std::vector<int64_t>* flushed = nullptr);

  /// Coarse-level operations spent on safety scans.
  int64_t coarse_ops() const { return coarse_ops_; }

  /// Number of currently parked (accepted, unemitted, unevicted)
  /// candidates of query `q`.
  int64_t parked(int q) const;

 private:
  /// Returns a pending region id blocking (q, id), or -1 when safe.
  int FindWitness(int q, int64_t id);

  void Park(int q, int64_t id, int witness);

  const Workload* workload_;
  const RegionCollection* rc_;
  const PointSet* store_;
  const std::vector<char>* pending_;
  /// Per query: witness region -> parked candidate ids (may contain stale
  /// ids of evicted candidates; filtered on resolution).
  std::vector<std::unordered_map<int, std::vector<int64_t>>> parked_;
  /// Per query: id -> current witness (absent once emitted or evicted).
  std::vector<std::unordered_map<int64_t, int>> witness_of_;
  /// Initial region ids serving each query (scan list for witness search).
  std::vector<std::vector<int>> serving_;
  int64_t coarse_ops_ = 0;
};

}  // namespace caqe

#endif  // CAQE_EXEC_EMISSION_H_
