#include "exec/shared_plan_engine.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/thread_pool.h"
#include "obs/observability.h"

namespace caqe {


Result<ExecutionReport> SharedPlanEngine::Execute(
    const Table& r, const Table& t, const Workload& workload,
    const std::vector<Contract>& contracts, const ExecOptions& options) {
  CAQE_RETURN_NOT_OK(workload.Validate(r, t));
  if (static_cast<int>(contracts.size()) != workload.num_queries()) {
    return Status::InvalidArgument("one contract per query required");
  }
  const auto wall_start = std::chrono::steady_clock::now();

  // One pool serves partitioning and the execution core (the core only
  // creates its own when none is handed in). The calling thread always
  // participates in chunked work, so num_threads total = pool size + 1.
  const int num_threads = ResolveNumThreads(options.num_threads);
  std::unique_ptr<ThreadPool> pool_owner;
  if (num_threads > 1) {
    pool_owner = std::make_unique<ThreadPool>(num_threads - 1);
  }
  ThreadPool* const pool = pool_owner.get();

  const int target_regions = AdaptiveTargetRegions(options, r, t, workload);
  Result<PartitionedTable> part_r =
      PartitionForRegions(r, options, target_regions, pool);
  CAQE_RETURN_NOT_OK(part_r.status());
  Result<PartitionedTable> part_t =
      PartitionForRegions(t, options, target_regions, pool);
  CAQE_RETURN_NOT_OK(part_t.status());

  SatisfactionTracker tracker(contracts);
  VirtualClock clock(options.cost);
  ExecutionReport report;
  report.engine = name_;
  report.queries.resize(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    report.queries[q].name = workload.query(q).name;
  }

  std::vector<int> identity(workload.num_queries());
  std::iota(identity.begin(), identity.end(), 0);

  CoreOptions core;
  core.policy = policy_;
  core.num_threads = options.num_threads;
  core.pipeline_regions = options.pipeline_regions;
  core.coarse_index = options.coarse_index;
  core.compact_layout = options.compact_layout;
  core.join_index_cache_entries = options.join_index_cache_entries;
  core.pool = pool;
  core.coarse_prune = coarse_prune_ && options.coarse_prune;
  core.feedback = feedback_ && options.feedback_enabled;
  core.tuple_discard = tuple_discard_;
  core.dva_mode = options.dva_mode;
  core.capture_results = options.capture_results;
  core.known_result_counts = options.known_result_counts;
  core.trace = options.trace;
  core.on_result = options.on_result;
  core.obs = options.obs;

  CAQE_RETURN_NOT_OK(RunSharedCore(*part_r, *part_t, workload, identity,
                                   tracker, clock, report.stats,
                                   report.queries, core));

  for (int q = 0; q < workload.num_queries(); ++q) {
    const QuerySatisfaction& s = tracker.satisfaction(q);
    report.queries[q].pscore = s.pscore;
    report.queries[q].results = s.results;
    report.queries[q].satisfaction = s.average();
    for (const UtilitySample& sample : tracker.samples(q)) {
      report.queries[q].utility_trace.push_back(
          UtilityTracePoint{sample.time, sample.utility});
    }
  }
  report.workload_pscore = tracker.WorkloadPScore();
  report.average_satisfaction = tracker.WorkloadAverageSatisfaction();
  report.stats.virtual_seconds = clock.Now();
  report.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (options.obs != nullptr) {
    RecordEngineStats(options.obs->metrics, report.stats);
  }
  return report;
}

SharedPlanEngine MakeCaqeEngine() {
  return SharedPlanEngine("CAQE", SchedulePolicy::kContractDriven,
                          /*coarse_prune=*/true, /*feedback=*/true);
}

SharedPlanEngine MakeSJfslEngine() {
  return SharedPlanEngine("S-JFSL", SchedulePolicy::kStaticScan,
                          /*coarse_prune=*/false, /*feedback=*/false,
                          /*tuple_discard=*/false);
}

SharedPlanEngine MakeCaqeNoFeedbackEngine() {
  return SharedPlanEngine("CAQE-nofb", SchedulePolicy::kContractDriven,
                          /*coarse_prune=*/true, /*feedback=*/false);
}

SharedPlanEngine MakeCaqeNoPruneEngine() {
  return SharedPlanEngine("CAQE-noprune", SchedulePolicy::kContractDriven,
                          /*coarse_prune=*/false, /*feedback=*/true);
}

SharedPlanEngine MakeCaqeCountDrivenEngine() {
  return SharedPlanEngine("CAQE-count", SchedulePolicy::kCountDriven,
                          /*coarse_prune=*/true, /*feedback=*/false);
}

}  // namespace caqe
