// Tuple-level equi-join between leaf-cell pairs, with cached hash indexes.
#ifndef CAQE_EXEC_JOIN_KERNEL_H_
#define CAQE_EXEC_JOIN_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <future>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "metrics/report.h"
#include "partition/partitioner.h"
#include "region/region_builder.h"

namespace caqe {

class Counter;

/// One join match between a row of R and a row of T; `slot_mask` has bit s
/// set when distinct-predicate slot s matched the pair.
struct JoinMatch {
  int64_t row_r = 0;
  int64_t row_t = 0;
  uint32_t slot_mask = 0;
};

/// Flat open-addressing CSR-style equi-join index over one (T-cell, key
/// column) pair: a power-of-two slot table mapping key -> entry, one
/// contiguous key/offset array per entry, and one contiguous row-id array
/// holding every entry's matches back to back. Built in two passes with no
/// per-key vectors; probing a key touches one slot run plus one contiguous
/// id run — no node chasing. Entry creation order is first occurrence in
/// cell-row order and each entry's ids keep cell-row order, so iteration
/// over Find() runs reproduces the legacy
/// unordered_map<int32_t, vector<int64_t>> push_back order exactly (the
/// differential test in tests/flat_index_test.cc asserts this).
class FlatKeyIndex {
 public:
  /// A contiguous run of matching row ids (empty when the key is absent).
  struct Run {
    const int64_t* data = nullptr;
    int64_t size = 0;
    const int64_t* begin() const { return data; }
    const int64_t* end() const { return data + size; }
    bool empty() const { return size == 0; }
  };

  /// Two-pass build over `rows`: count ids per distinct key, prefix-sum
  /// into offsets, then fill the id array in row order.
  void Build(const Table& t, const std::vector<int64_t>& rows,
             int key_column);

  Run Find(int32_t key) const {
    if (slots_ == nullptr) return Run{};
    uint32_t slot = Hash(key) & mask_;
    while (true) {
      const uint32_t stored = slots_[slot];
      if (stored == 0) return Run{};
      const uint32_t entry = stored - 1;
      if (keys_[entry] == key) {
        return Run{ids_ + starts_[entry],
                   static_cast<int64_t>(starts_[entry + 1] - starts_[entry])};
      }
      slot = (slot + 1) & mask_;
    }
  }

  bool empty() const { return num_keys_ == 0; }
  int64_t num_keys() const { return num_keys_; }
  int64_t num_ids() const { return num_ids_; }

  /// Releases all storage (cache eviction reclaims the memory — keeping
  /// capacity here would defeat the cache's memory bound).
  void Release() {
    std::vector<char>().swap(blob_);
    slots_ = nullptr;
    keys_ = nullptr;
    starts_ = nullptr;
    ids_ = nullptr;
    mask_ = 0;
    num_keys_ = 0;
    num_ids_ = 0;
  }

 private:
  static uint32_t Hash(int32_t key) {
    // Fibonacci multiplicative hash; the slot table is power-of-two sized.
    return static_cast<uint32_t>(key) * 2654435761u;
  }

  /// All four arrays live in one blob — a build is a single allocation
  /// (descending alignment order, so every array lands aligned):
  ///   ids    int64  x n            concatenated row ids, per entry in
  ///                                cell-row order
  ///   slots  uint32 x slot_count   entry index + 1, 0 = empty; sized
  ///                                >= 2x the row count
  ///   starts uint32 x (n + 1)      per-entry id-run offsets into ids
  ///   keys   int32  x n            per-entry key, first-occurrence order
  std::vector<char> blob_;
  uint32_t mask_ = 0;
  const uint32_t* slots_ = nullptr;
  const int32_t* keys_ = nullptr;
  const uint32_t* starts_ = nullptr;
  const int64_t* ids_ = nullptr;
  int64_t num_keys_ = 0;
  int64_t num_ids_ = 0;
};

/// Output of JoinForSpeculation: the match sequence plus the probe/result
/// counts and the consumed-but-uncharged index cache keys. Nothing is
/// charged to EngineStats until the caller validates the speculation and
/// commits serially (CommitSpeculation + adding probes/results), so a
/// mispredicted region costs nothing observable.
struct SpeculativeJoin {
  std::vector<JoinMatch> matches;
  int64_t probes = 0;
  int64_t results = 0;
  /// CacheKey values of indexes this join consumed whose build cost had not
  /// been charged yet at speculation time.
  std::vector<int64_t> uncharged_keys;

  void Clear() {
    matches.clear();
    probes = 0;
    results = 0;
    uncharged_keys.clear();
  }
};

/// Evaluates the equi-join between the cells of one output region over a
/// subset of predicate slots. Hash indexes over T-cells are built lazily
/// and cached across regions (each T-cell/key pair is indexed once per
/// engine run — the shared-scan part of the shared plan), or built ahead of
/// time by PrefetchIndexes so the scheduler-driven Join loop finds them
/// ready. The cache is bounded: beyond `cache_capacity` built entries, the
/// least-recently-used ones are released deterministically at the end of a
/// join (the `charged` flag survives eviction, so a rebuilt index is never
/// re-charged and reports are byte-identical at any capacity).
class CellJoinKernel {
 public:
  CellJoinKernel(const PartitionedTable* part_r, const PartitionedTable* part_t)
      : part_r_(part_r), part_t_(part_t) {}

  /// Waits for any still-running prefetch tasks (they write into the
  /// cache, which must outlive them).
  ~CellJoinKernel();

  /// Chooses between the flat CSR index (default) and the legacy
  /// unordered_map index. Probe order and charge accounting are identical;
  /// only layout and wall time differ. Call before any Join.
  void set_compact_layout(bool on) { compact_layout_ = on; }

  /// Bounds the number of built index entries kept across joins
  /// (<= 0 means unbounded). Evictions release storage only — never the
  /// first-use charge state — so reports are identical at any value.
  void set_cache_capacity(int64_t entries) { cache_capacity_ = entries; }

  /// Built-index evictions performed so far (also exported through the
  /// obs counter when attached).
  int64_t cache_evictions() const { return cache_evictions_; }
  /// Index builds performed (initial builds and rebuilds after eviction).
  int64_t index_builds() const { return index_builds_; }

  /// Optional obs counters (caqe_join_index_*); never feed reports.
  void SetObsCounters(Counter* builds, Counter* evictions) {
    builds_counter_ = builds;
    evictions_counter_ = evictions;
  }

  /// Kicks off background construction of every (T-cell, key) index a
  /// region of `rc` can still need. Purely a wall-clock pipeline: probe
  /// counters are charged when a region first *consumes* an index, so
  /// EngineStats totals are identical with and without prefetching (an
  /// index built speculatively for a region that is later discarded is
  /// never charged — exactly as if it had never been built). No-op without
  /// a pool.
  void PrefetchIndexes(const RegionCollection& rc, ThreadPool* pool);

  /// Appends matches for `region` over the slots in `slots_mask` to `out`.
  /// Pairs matching multiple slots appear once with a combined mask, in
  /// first-matching-slot order. Probe/result counters accumulate into
  /// `stats`. With a pool, R-rows are probed in parallel chunks merged in
  /// row order, so the match sequence is identical to the serial scan.
  void Join(const RegionCollection& rc, const OutputRegion& region,
            uint32_t slots_mask, std::vector<JoinMatch>& out,
            EngineStats& stats, ThreadPool* pool = nullptr);

  /// Speculative variant of Join for the inter-region pipeline: produces
  /// the identical match sequence (serial probe order) but mutates no
  /// EngineStats and no first-use `charged` flags — counts and consumed
  /// uncharged cache keys are recorded in `out` instead. Safe to run on a
  /// worker thread while the owner is *not* calling Join/IndexFor (the
  /// pipeline serializes all index-cache access on the speculation future).
  void JoinForSpeculation(const RegionCollection& rc,
                          const OutputRegion& region, uint32_t slots_mask,
                          SpeculativeJoin& out);

  /// Serially commits the index build costs a validated speculation
  /// consumed: charges each still-uncharged key's cell rows to
  /// `stats.join_probes`, exactly what first-use charging in IndexFor would
  /// have done. Idempotent per key; a dropped speculation simply never
  /// commits and the next real consumer charges instead.
  void CommitSpeculation(const std::vector<int64_t>& uncharged_keys,
                         EngineStats& stats);

  /// Collision-free cache key for a (T-cell, key-column) pair: cell in the
  /// high 32 bits, column in the low 32. Exposed for the regression test —
  /// the previous `cell * 64 + column` scheme aliased whenever
  /// `key_column >= 64`.
  static int64_t CacheKey(int cell_t, int key_column) {
    return (static_cast<int64_t>(cell_t) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(key_column));
  }

 private:
  using KeyIndex = std::unordered_map<int32_t, std::vector<int64_t>>;

  struct CacheEntry {
    /// Exactly one of the two layouts is populated, per compact_layout_.
    KeyIndex map_index;
    FlatKeyIndex flat_index;
    /// Whether the index storage is currently populated (false after an
    /// eviction; the entry itself — and its charge state — persists).
    bool built = false;
    /// Valid only for prefetched entries; consumers wait on it before
    /// reading the index, then drop it (a cleared future marks the entry
    /// safe for eviction).
    std::shared_future<void> ready;
    /// Whether the index's build cost (one probe per cell row) has been
    /// charged to EngineStats yet. Charging happens at first consumption,
    /// never at build time — see PrefetchIndexes. Survives eviction.
    bool charged = false;
    /// LRU stamp (monotone use serial) for deterministic eviction.
    uint64_t last_used = 0;
  };

  void BuildInto(int cell_t, int key_column, CacheEntry& entry);
  /// Bumps the build counters (control thread only).
  void CountBuild();
  CacheEntry& EntryFor(int cell_t, int key_column);
  const CacheEntry& IndexFor(int cell_t, int key_column, EngineStats& stats);
  /// IndexFor without side effects on stats/charged: records the key in
  /// `uncharged` when its build cost is still unclaimed.
  const CacheEntry& IndexForSpeculation(int cell_t, int key_column,
                                        std::vector<int64_t>& uncharged);
  /// Releases least-recently-used built entries beyond the capacity.
  /// Entries used by the current join (last_used >= floor) and entries
  /// with an in-flight prefetch are never touched. Deterministic: eviction
  /// order is ascending last_used serial.
  void EvictOverflow(uint64_t floor);
  /// `indexes` points at `num_indexes` (slot, entry) pairs — a fixed
  /// caller-side array, since slots are bounded by the 32-bit mask and a
  /// per-join heap vector here would be steady-state churn.
  void ProbeRows(const RegionCollection& rc, const OutputRegion& region,
                 const std::pair<int, const CacheEntry*>* indexes,
                 int num_indexes, std::vector<JoinMatch>& out,
                 int64_t& probes, int64_t& results, ThreadPool* pool) const;

  const PartitionedTable* part_r_;
  const PartitionedTable* part_t_;
  bool compact_layout_ = true;
  int64_t cache_capacity_ = 4096;
  int64_t built_entries_ = 0;
  int64_t cache_evictions_ = 0;
  int64_t index_builds_ = 0;
  uint64_t use_serial_ = 0;
  Counter* builds_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  /// CacheKey(cell_t, key_column) -> entry. Entries are never erased
  /// (pointer stability for prefetch tasks; charge state must persist) —
  /// eviction releases an entry's index storage only.
  std::unordered_map<int64_t, CacheEntry> index_cache_;
  /// Allocation-free scratch map from row_t to a slot in `hits`:
  /// open-addressing with generation stamps, so the per-row reset is O(1)
  /// and steady-state probing never touches the heap (a node-based map
  /// here allocated and freed one node per matched row per region — the
  /// dominant steady-state churn on multi-slot workloads). The emit order
  /// stays the first-seen order the `hits` vector records; the table only
  /// answers membership.
  struct HitTable {
    std::vector<int64_t> keys;
    std::vector<size_t> slots;
    std::vector<uint32_t> stamps;
    uint32_t gen = 0;
    size_t mask = 0;
    size_t entries = 0;

    void clear() {
      if (++gen == 0) {  // Stamp wraparound: invalidate everything.
        std::fill(stamps.begin(), stamps.end(), 0u);
        gen = 1;
      }
      entries = 0;
    }

    /// Returns the hits-slot reference for `key`; `inserted` reports
    /// whether the key is new this generation (caller then assigns the
    /// slot).
    size_t& FindOrInsert(int64_t key, bool& inserted) {
      if (entries + 1 > (mask + 1) / 2) Grow();
      size_t i = Hash(key) & mask;
      while (stamps[i] == gen && keys[i] != key) i = (i + 1) & mask;
      inserted = stamps[i] != gen;
      if (inserted) {
        stamps[i] = gen;
        keys[i] = key;
        ++entries;
      }
      return slots[i];
    }

    static size_t Hash(int64_t key) {
      return static_cast<size_t>(
          static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull >> 32);
    }

    void Grow();
  };

  /// Reusable probe scratch (ProbeRows is serialized per kernel: Join on
  /// the control thread, JoinForSpeculation rendezvoused on its future).
  struct ProbeShard {
    std::vector<JoinMatch> out;
    int64_t probes = 0;
    int64_t results = 0;
    std::vector<std::pair<int64_t, uint32_t>> hits;
    HitTable hit_of_row;
  };
  mutable std::vector<ProbeShard> probe_shards_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_JOIN_KERNEL_H_
