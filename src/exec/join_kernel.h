// Tuple-level equi-join between leaf-cell pairs, with cached hash indexes.
#ifndef CAQE_EXEC_JOIN_KERNEL_H_
#define CAQE_EXEC_JOIN_KERNEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "metrics/report.h"
#include "partition/partitioner.h"
#include "region/region_builder.h"

namespace caqe {

/// One join match between a row of R and a row of T; `slot_mask` has bit s
/// set when distinct-predicate slot s matched the pair.
struct JoinMatch {
  int64_t row_r = 0;
  int64_t row_t = 0;
  uint32_t slot_mask = 0;
};

/// Evaluates the equi-join between the cells of one output region over a
/// subset of predicate slots. Hash indexes over T-cells are built lazily
/// and cached across regions (each T-cell/key pair is indexed once per
/// engine run — the shared-scan part of the shared plan).
class CellJoinKernel {
 public:
  CellJoinKernel(const PartitionedTable* part_r, const PartitionedTable* part_t)
      : part_r_(part_r), part_t_(part_t) {}

  /// Appends matches for `region` over the slots in `slots_mask` to `out`.
  /// Pairs matching multiple slots appear once with a combined mask.
  /// Probe/result counters accumulate into `stats`.
  void Join(const RegionCollection& rc, const OutputRegion& region,
            uint32_t slots_mask, std::vector<JoinMatch>& out,
            EngineStats& stats);

 private:
  using KeyIndex = std::unordered_map<int32_t, std::vector<int64_t>>;

  const KeyIndex& IndexFor(int cell_t, int key_column, EngineStats& stats);

  const PartitionedTable* part_r_;
  const PartitionedTable* part_t_;
  /// (cell_t, key_column) -> index.
  std::unordered_map<int64_t, KeyIndex> index_cache_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_JOIN_KERNEL_H_
