// Tuple-level equi-join between leaf-cell pairs, with cached hash indexes.
#ifndef CAQE_EXEC_JOIN_KERNEL_H_
#define CAQE_EXEC_JOIN_KERNEL_H_

#include <cstdint>
#include <future>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "metrics/report.h"
#include "partition/partitioner.h"
#include "region/region_builder.h"

namespace caqe {

/// One join match between a row of R and a row of T; `slot_mask` has bit s
/// set when distinct-predicate slot s matched the pair.
struct JoinMatch {
  int64_t row_r = 0;
  int64_t row_t = 0;
  uint32_t slot_mask = 0;
};

/// Output of JoinForSpeculation: the match sequence plus the probe/result
/// counts and the consumed-but-uncharged index cache keys. Nothing is
/// charged to EngineStats until the caller validates the speculation and
/// commits serially (CommitSpeculation + adding probes/results), so a
/// mispredicted region costs nothing observable.
struct SpeculativeJoin {
  std::vector<JoinMatch> matches;
  int64_t probes = 0;
  int64_t results = 0;
  /// CacheKey values of indexes this join consumed whose build cost had not
  /// been charged yet at speculation time.
  std::vector<int64_t> uncharged_keys;

  void Clear() {
    matches.clear();
    probes = 0;
    results = 0;
    uncharged_keys.clear();
  }
};

/// Evaluates the equi-join between the cells of one output region over a
/// subset of predicate slots. Hash indexes over T-cells are built lazily
/// and cached across regions (each T-cell/key pair is indexed once per
/// engine run — the shared-scan part of the shared plan), or built ahead of
/// time by PrefetchIndexes so the scheduler-driven Join loop finds them
/// ready.
class CellJoinKernel {
 public:
  CellJoinKernel(const PartitionedTable* part_r, const PartitionedTable* part_t)
      : part_r_(part_r), part_t_(part_t) {}

  /// Waits for any still-running prefetch tasks (they write into the
  /// cache, which must outlive them).
  ~CellJoinKernel();

  /// Kicks off background construction of every (T-cell, key) index a
  /// region of `rc` can still need. Purely a wall-clock pipeline: probe
  /// counters are charged when a region first *consumes* an index, so
  /// EngineStats totals are identical with and without prefetching (an
  /// index built speculatively for a region that is later discarded is
  /// never charged — exactly as if it had never been built). No-op without
  /// a pool.
  void PrefetchIndexes(const RegionCollection& rc, ThreadPool* pool);

  /// Appends matches for `region` over the slots in `slots_mask` to `out`.
  /// Pairs matching multiple slots appear once with a combined mask, in
  /// first-matching-slot order. Probe/result counters accumulate into
  /// `stats`. With a pool, R-rows are probed in parallel chunks merged in
  /// row order, so the match sequence is identical to the serial scan.
  void Join(const RegionCollection& rc, const OutputRegion& region,
            uint32_t slots_mask, std::vector<JoinMatch>& out,
            EngineStats& stats, ThreadPool* pool = nullptr);

  /// Speculative variant of Join for the inter-region pipeline: produces
  /// the identical match sequence (serial probe order) but mutates no
  /// EngineStats and no first-use `charged` flags — counts and consumed
  /// uncharged cache keys are recorded in `out` instead. Safe to run on a
  /// worker thread while the owner is *not* calling Join/IndexFor (the
  /// pipeline serializes all index-cache access on the speculation future).
  void JoinForSpeculation(const RegionCollection& rc,
                          const OutputRegion& region, uint32_t slots_mask,
                          SpeculativeJoin& out);

  /// Serially commits the index build costs a validated speculation
  /// consumed: charges each still-uncharged key's cell rows to
  /// `stats.join_probes`, exactly what first-use charging in IndexFor would
  /// have done. Idempotent per key; a dropped speculation simply never
  /// commits and the next real consumer charges instead.
  void CommitSpeculation(const std::vector<int64_t>& uncharged_keys,
                         EngineStats& stats);

  /// Collision-free cache key for a (T-cell, key-column) pair: cell in the
  /// high 32 bits, column in the low 32. Exposed for the regression test —
  /// the previous `cell * 64 + column` scheme aliased whenever
  /// `key_column >= 64`.
  static int64_t CacheKey(int cell_t, int key_column) {
    return (static_cast<int64_t>(cell_t) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(key_column));
  }

 private:
  using KeyIndex = std::unordered_map<int32_t, std::vector<int64_t>>;

  struct CacheEntry {
    KeyIndex index;
    /// Valid only for prefetched entries; consumers wait on it before
    /// reading `index`.
    std::shared_future<void> ready;
    /// Whether the index's build cost (one probe per cell row) has been
    /// charged to EngineStats yet. Charging happens at first consumption,
    /// never at build time — see PrefetchIndexes.
    bool charged = false;
  };

  void BuildInto(int cell_t, int key_column, KeyIndex& index) const;
  const KeyIndex& IndexFor(int cell_t, int key_column, EngineStats& stats);
  /// IndexFor without side effects on stats/charged: records the key in
  /// `uncharged` when its build cost is still unclaimed.
  const KeyIndex& IndexForSpeculation(int cell_t, int key_column,
                                      std::vector<int64_t>& uncharged);
  void ProbeRows(const RegionCollection& rc, const OutputRegion& region,
                 const std::vector<std::pair<int, const KeyIndex*>>& indexes,
                 std::vector<JoinMatch>& out, int64_t& probes,
                 int64_t& results, ThreadPool* pool) const;

  const PartitionedTable* part_r_;
  const PartitionedTable* part_t_;
  /// CacheKey(cell_t, key_column) -> entry.
  std::unordered_map<int64_t, CacheEntry> index_cache_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_JOIN_KERNEL_H_
