#include "exec/region_pipeline.h"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "common/alloc_hook.h"
#include "obs/observability.h"
#include "region/region_dominance.h"

namespace caqe {
namespace {

/// Regions the alloc accounting treats as warmup: caches, arenas, and
/// reusable scratch discover their high-water marks here. Past the window
/// the steady counters measure the residual churn the alloc gate bounds.
constexpr int64_t kWarmupRegions = 32;

}  // namespace

std::string PlanGroupSelectionKey(const SjQuery& query) {
  std::vector<SelectionRange> sorted = query.selections;
  std::sort(sorted.begin(), sorted.end(),
            [](const SelectionRange& a, const SelectionRange& b) {
              return std::tie(a.on_r, a.attr, a.lo, a.hi) <
                     std::tie(b.on_r, b.attr, b.lo, b.hi);
            });
  std::string key;
  for (const SelectionRange& sel : sorted) {
    key += (sel.on_r ? "r" : "t") + std::to_string(sel.attr) + ":" +
           std::to_string(sel.lo) + ".." + std::to_string(sel.hi) + ";";
  }
  return key;
}

RegionPipeline::RegionPipeline(const PartitionedTable* part_r,
                               const PartitionedTable* part_t,
                               const Workload* workload, RegionCollection* rc,
                               std::vector<char>* pending,
                               int64_t* pending_count,
                               SatisfactionTracker* tracker,
                               VirtualClock* clock, EngineStats* stats,
                               std::vector<QueryReport>* reports,
                               ThreadPool* pool, PipelineOptions options)
    : part_r_(part_r),
      part_t_(part_t),
      workload_(workload),
      rc_(rc),
      pending_(pending),
      pending_count_(pending_count),
      tracker_(tracker),
      clock_(clock),
      stats_(stats),
      reports_(reports),
      pool_(pool),
      options_(std::move(options)),
      kernel_(part_r, part_t),
      store_(workload->num_output_dims()),
      emission_(workload, rc, &store_, pending),
      active_groups_(&arena_),
      group_cmps_(&arena_),
      emitted_per_query_(&arena_),
      dim_cols_(&arena_) {
  // Configure the kernel before any index work starts: the layout and
  // cache bound must be fixed by the time the prefetch builds indexes.
  kernel_.set_compact_layout(options_.compact_layout);
  kernel_.set_cache_capacity(options_.join_index_cache_entries);
  if (options_.obs != nullptr) {
    // Resolve hot-path metrics once; observations are virtual-time deltas,
    // so the histograms are identical across thread counts.
    region_service_hist_ = &options_.obs->metrics.histogram(
        "caqe_region_service_virtual_seconds",
        ExponentialBuckets(1e-6, 4.0, 12));
    emission_latency_hist_ = &options_.obs->metrics.histogram(
        "caqe_emission_latency_virtual_seconds",
        ExponentialBuckets(1e-6, 4.0, 12));
    kernel_.SetObsCounters(
        &options_.obs->metrics.counter("caqe_join_index_builds_total"),
        &options_.obs->metrics.counter("caqe_join_index_evictions_total"));
    if (AllocHookActive()) {
      alloc_regions_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_regions_total");
      alloc_warmup_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_warmup_allocs_total");
      alloc_steady_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_allocs_total");
      alloc_steady_regions_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_regions_total");
      alloc_phase_join_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_join_total");
      alloc_phase_eval_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_eval_total");
      alloc_phase_discard_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_discard_total");
      alloc_phase_emission_counter_ =
          &options_.obs->metrics.counter("caqe_alloc_steady_emission_total");
    }
  }
  // Kick off background construction of the join-kernel hash indexes the
  // regions will need, overlapping the caller's coarse prune / plan build /
  // scheduler setup (probe counters are charged at first use, so the
  // prefetch is invisible to EngineStats and the virtual clock).
  kernel_.PrefetchIndexes(*rc_, pool_);
  accepted_events_.resize(workload_->num_queries());
  evicted_events_.resize(workload_->num_queries());
  discard_tests_.resize(rc_->regions.size(), 0);
  discard_hits_.resize(rc_->regions.size(), 0);
}

RegionPipeline::~RegionPipeline() {
  if (spec_.done.valid()) spec_.done.wait();
}

void RegionPipeline::CancelSpeculation() {
  if (spec_.rid < 0) return;
  spec_.done.get();
  spec_.rid = -1;
}

uint32_t RegionPipeline::ComputeSlotsMask(const OutputRegion& region) const {
  uint32_t mask = 0;
  for (int s = 0; s < static_cast<int>(rc_->predicate_slots.size()); ++s) {
    if (region.join_sizes[s] > 0 &&
        region.rql.Intersects(rc_->queries_of_slot[s])) {
      mask |= uint32_t{1} << s;
    }
  }
  return mask;
}

void RegionPipeline::MaybeLaunchSpeculation(int current_rid) {
  if (!options_.pipeline_regions || pool_ == nullptr) return;
  CAQE_DCHECK(spec_.rid < 0);
  int next = -1;
  if (scheduler_ != nullptr) {
    // The runner-up of the PickNext scan that chose the current region,
    // recorded during the already-charged scan — prediction costs no ops.
    next = scheduler_->runner_up();
  } else {
    // Static-scan fallback. The pending set only ever shrinks, so the next
    // pick is the smallest id still pending past the current one — unless
    // this region's discard scan resolves it, which validation catches.
    const int64_t num_regions = static_cast<int64_t>(rc_->regions.size());
    for (int64_t i = current_rid + 1; i < num_regions; ++i) {
      if ((*pending_)[i]) {
        next = static_cast<int>(i);
        break;
      }
    }
  }
  if (next < 0 || next == current_rid ||
      next >= static_cast<int>(rc_->regions.size()) || !(*pending_)[next]) {
    return;
  }
  const uint32_t mask = ComputeSlotsMask(rc_->regions[next]);
  if (mask == 0) return;
  spec_.rid = next;
  spec_.slots_mask = mask;
  const int width = store_.width();
  // The task reads only state frozen until the next rendezvous: region
  // cells/join sizes, the base tables, the index cache (all later accesses
  // are serialized on `done`), and the pure projection. It deliberately
  // never reads region lineages, the pending flags, or the tuple store,
  // which this region's remaining phases mutate concurrently.
  spec_.done = pool_->Submit([this, next, mask, width] {
    kernel_.JoinForSpeculation(*rc_, rc_->regions[next], mask, spec_.join);
    const int64_t n = static_cast<int64_t>(spec_.join.matches.size());
    spec_.projected.resize(static_cast<size_t>(n) * width);
    std::vector<double>& values = spec_.project_values;
    for (int64_t i = 0; i < n; ++i) {
      const JoinMatch& match = spec_.join.matches[i];
      workload_->Project(part_r_->table(), match.row_r, part_t_->table(),
                         match.row_t, values);
      std::copy(values.begin(), values.end(),
                spec_.projected.data() + i * width);
    }
  });
}

void RegionPipeline::Record(ExecEvent::Kind kind, int region, int query,
                            int64_t count) {
  if (options_.trace == nullptr) return;
  options_.trace->push_back(
      ExecEvent{kind, clock_->Now(), region, query, count});
}

void RegionPipeline::EnsureQueryCapacity() {
  const size_t n = static_cast<size_t>(workload_->num_queries());
  if (accepted_events_.size() < n) {
    accepted_events_.resize(n);
    evicted_events_.resize(n);
  }
}

Status RegionPipeline::BuildPlanGroups() {
  for (int s = 0; s < static_cast<int>(rc_->predicate_slots.size()); ++s) {
    if (rc_->queries_of_slot[s].empty()) continue;
    // Partition the slot's queries by identical selections.
    std::map<std::string, std::vector<int>> by_selection;
    rc_->queries_of_slot[s].ForEach([&](int q) {
      by_selection[PlanGroupSelectionKey(workload_->query(q))].push_back(q);
    });
    for (auto& [key, members] : by_selection) {
      (void)key;
      CAQE_RETURN_NOT_OK(AddPlanGroup(s, std::move(members)));
    }
  }
  return Status::OK();
}

Status RegionPipeline::AddPlanGroup(int slot, std::vector<int> queries) {
  // Groups live behind unique_ptr so the evaluator's pointer into the
  // group's cuboid stays valid.
  auto group = std::make_unique<PlanGroup>();
  group->slot = slot;
  group->queries = std::move(queries);
  for (int q : group->queries) group->query_set.Add(q);
  group->selections = workload_->query(group->queries.front()).selections;
  std::vector<Subspace> prefs;
  for (int q : group->queries) {
    prefs.push_back(Subspace::FromDims(workload_->query(q).preference));
  }
  Result<MinMaxCuboid> cuboid = MinMaxCuboid::Build(prefs);
  CAQE_RETURN_NOT_OK(cuboid.status());
  group->cuboid = std::move(cuboid).value();
  group->evaluator = std::make_unique<SharedSkylineEvaluator>(
      workload_->num_output_dims(), &group->cuboid, options_.dva_mode,
      options_.compact_layout ? &store_ : nullptr);
  groups_.push_back(std::move(group));
  return Status::OK();
}

void RegionPipeline::RemoveQueryFromGroups(int q) {
  for (auto& group : groups_) {
    if (!group->query_set.Contains(q)) continue;
    group->query_set.Remove(q);
    if (group->query_set.empty()) {
      // Dormant group: no member can ever receive events again (serving
      // grafts always form new groups), so free the evaluator state.
      group->evaluator.reset();
    } else if (group->evaluator != nullptr) {
      QuerySet active_locals;
      for (size_t local = 0; local < group->queries.size(); ++local) {
        if (group->query_set.Contains(group->queries[local])) {
          active_locals.Add(static_cast<int>(local));
        }
      }
      group->evaluator->ReleaseQueries(active_locals);
    }
    return;
  }
}

void RegionPipeline::EmitResult(int q, int64_t id) {
  const int global_q = global_query_ids_[q];
  const double now = clock_->Now();
  const double utility = tracker_->OnResult(global_q, now);
  clock_->ChargeEmits(1);
  ++stats_->emitted_results;
  if (options_.on_result) options_.on_result(global_q, now, utility);
  if (options_.on_emit) options_.on_emit(global_q, id, now, utility);
  if (emission_latency_hist_ != nullptr) {
    emission_latency_hist_->Observe(now - region_vstart_);
  }
  if (options_.capture_results) {
    ReportedResult result;
    result.tuple_id = id;
    result.time = now;
    result.utility = utility;
    result.values.assign(store_.row(id), store_.row(id) + store_.width());
    (*reports_)[global_q].tuples.push_back(std::move(result));
  }
}

void RegionPipeline::ProcessRegion(int rid) {
  CAQE_DCHECK((*pending_)[rid]);
  // Control-thread heap traffic of this region, measured when the alloc
  // interposer is linked in (bench/tests). Snapshot before any work.
  AllocCounts alloc_before{};
  if (alloc_regions_counter_ != nullptr) alloc_before = ThreadAllocCounts();
  // Per-phase attribution for the steady window only: warmup growth is
  // expected and uninteresting; the phase split tells the alloc gate where
  // any residual steady churn lives.
  const bool steady_accounting =
      alloc_regions_counter_ != nullptr && regions_accounted_ >= kWarmupRegions;
  AllocCounts phase_mark = alloc_before;
  const auto take_phase = [&](Counter* phase_counter) {
    if (!steady_accounting) return;
    const AllocCounts now = ThreadAllocCounts();
    phase_counter->Inc(static_cast<int64_t>(now.allocs - phase_mark.allocs));
    phase_mark = now;
  };
  // New epoch: all arena scratch from the previous region is recycled.
  arena_.Reset();
  active_groups_.OnEpochReset();
  group_cmps_.OnEpochReset();
  emitted_per_query_.OnEpochReset();
  dim_cols_.OnEpochReset();
  column_block_.Clear();
  EnsureQueryCapacity();
  clock_->ChargeScheduleSteps(1);
  region_vstart_ = clock_->Now();
  Record(ExecEvent::Kind::kRegionScheduled, rid, -1, 0);
  OutputRegion& region = rc_->regions[rid];
  EngineStats& stats = *stats_;
  const Workload& workload = *workload_;
  TraceSink* const spans = Observability::Spans(options_.obs);

  // ---- Tuple-level join over the slots still serving queries. ----
  const uint32_t slots_mask = ComputeSlotsMask(region);
  matches_.clear();
  bool use_speculation = false;
  if (spec_.rid >= 0) {
    // Rendezvous with the in-flight speculation: every index-cache access
    // is serialized on this future, and `get` propagates any build error
    // exactly where the serial join would have thrown it.
    spec_.done.get();
    use_speculation = spec_.rid == rid && spec_.slots_mask == slots_mask;
    spec_.rid = -1;
    if (use_speculation) {
      matches_.swap(spec_.join.matches);
      consumed_projected_.swap(spec_.projected);
    }
    // On a misprediction (or a mask gone stale under a prune/graft) the
    // buffers are simply dropped: nothing was charged, so the fresh join
    // below is the serial execution verbatim.
  }
  {
    TraceSpan span(spans, "join", "pipeline", &stats.wall_join_seconds);
    span.set_region(rid);
    span.set_parent(trace_ctx_.parent_span, trace_ctx_.root_span);
    const int64_t probes_before = stats.join_probes;
    const int64_t results_before = stats.join_results;
    if (use_speculation) {
      // Identical match sequence, computed early; commit its deferred
      // charges serially — byte-identical to having joined right here.
      kernel_.CommitSpeculation(spec_.join.uncharged_keys, stats);
      stats.join_probes += spec_.join.probes;
      stats.join_results += spec_.join.results;
    } else {
      kernel_.Join(*rc_, region, slots_mask, matches_, stats, pool_);
    }
    clock_->ChargeJoinProbes(stats.join_probes - probes_before);
    clock_->ChargeJoinResults(stats.join_results - results_before);
    span.set_arg("join_results", stats.join_results - results_before);
  }
  // Launch the predicted next region's join + projection now so it overlaps
  // this region's eval, discard, and emission phases.
  MaybeLaunchSpeculation(rid);
  take_phase(alloc_phase_join_counter_);

  // ---- Project and evaluate over the shared cuboid plans. ----
  for (auto& events : accepted_events_) events.clear();
  for (auto& events : evicted_events_) events.clear();
  const int64_t cmps_before = stats.dominance_cmps;
  const int64_t num_matches = static_cast<int64_t>(matches_.size());
  const int64_t base_id = store_.size();
  {
    TraceSpan span(spans, "eval", "pipeline", &stats.wall_eval_seconds);
    span.set_region(rid);
    span.set_parent(trace_ctx_.parent_span, trace_ctx_.root_span);
    // Materialize every match into the store first (ids are sequential in
    // match order, exactly as the serial append-per-match produced them);
    // rows are disjoint, so chunks project concurrently.
    store_.Reserve(store_.size() + num_matches);
    store_.AppendUninitialized(num_matches);
    if (use_speculation) {
      // The speculation already projected every match (same pure function,
      // same order); rows are contiguous, so one copy materializes them.
      if (num_matches > 0) {
        std::copy(consumed_projected_.data(),
                  consumed_projected_.data() + num_matches * store_.width(),
                  store_.mutable_row(base_id));
      }
    } else {
      const int project_chunks = NumChunks(pool_, num_matches,
                                           /*min_chunk=*/512);
      if (project_scratch_.size() < static_cast<size_t>(project_chunks)) {
        project_scratch_.resize(project_chunks);
      }
      RunChunks(pool_, project_chunks, [&](int c) {
        const auto [begin, end] = ChunkRange(num_matches, project_chunks, c);
        std::vector<double>& values = project_scratch_[c];
        for (int64_t i = begin; i < end; ++i) {
          const JoinMatch& match = matches_[i];
          workload.Project(part_r_->table(), match.row_r, part_t_->table(),
                           match.row_t, values);
          std::copy(values.begin(), values.end(),
                    store_.mutable_row(base_id + i));
        }
      });
    }

    // Plan groups own disjoint evaluators and disjoint query sets, so
    // they consume the match stream concurrently. Each group sees the
    // matches in stream order, which makes every per-query event
    // sequence — and each group's comparison count — identical to the
    // serial interleaving.
    active_groups_.clear();
    for (const auto& group : groups_) {
      if (group->evaluator == nullptr) continue;
      if (((slots_mask >> group->slot) & 1) == 0) continue;
      if (!region.rql.Intersects(group->query_set)) continue;
      active_groups_.push_back(group.get());
    }
    group_cmps_.clear();
    for (size_t gi = 0; gi < active_groups_.size(); ++gi) {
      group_cmps_.push_back(0);
    }
    RunChunks(active_groups_.size() > 1 ? pool_ : nullptr,
              static_cast<int>(active_groups_.size()), [&](int gi) {
      PlanGroup* group = active_groups_[gi];
      int64_t cmps = 0;
      for (int64_t i = 0; i < num_matches; ++i) {
        const JoinMatch& match = matches_[i];
        if (((match.slot_mask >> group->slot) & 1) == 0) continue;
        // The group's common selections must hold for this join pair.
        bool passes = true;
        for (const SelectionRange& sel : group->selections) {
          const double v =
              sel.on_r ? part_r_->table().attr(match.row_r, sel.attr)
                       : part_t_->table().attr(match.row_t, sel.attr);
          if (v < sel.lo || v > sel.hi) {
            passes = false;
            break;
          }
        }
        if (!passes) continue;
        const int64_t id = base_id + i;
        const SharedInsertOutcome& outcome =
            group->evaluator->InsertReusing(store_.row(id), id, &cmps);
        outcome.accepted.ForEach([&](int local) {
          const int q = group->queries[local];
          // Retired members keep their cuboid node alive until the whole
          // group retires; drop their events (no-op in the batch path).
          if (!group->query_set.Contains(q)) return;
          accepted_events_[q].push_back(id);
        });
        for (const auto& [local, evicted_id] : outcome.evictions) {
          const int q = group->queries[local];
          if (!group->query_set.Contains(q)) continue;
          evicted_events_[q].push_back(evicted_id);
        }
      }
      group_cmps_[gi] = cmps;
    });
    for (int64_t cmps : group_cmps_) stats.dominance_cmps += cmps;
    span.set_arg("dominance_cmps", stats.dominance_cmps - cmps_before);
  }
  clock_->ChargeDominanceCmps(stats.dominance_cmps - cmps_before);
  take_phase(alloc_phase_eval_counter_);

  // ---- Region complete. ----
  (*pending_)[rid] = 0;
  --(*pending_count_);
  ++stats.regions_processed;
  if (scheduler_ != nullptr) scheduler_->OnRegionRemoved(rid);

  // Apply this region's evictions to the emission manager *before* any
  // discard/resolution scan: a parked candidate dominated by one of this
  // region's tuples must be deregistered before resolutions can unpark
  // (and wrongly emit) it. The per-query eviction lists double as the
  // flush barrier's dead sets — sorted in place (a tuple is evicted from a
  // query's preference node at most once, so they are duplicate-free) for
  // the binary-search membership test in FlushRegion.
  for (int q = 0; q < workload.num_queries(); ++q) {
    for (int64_t id : evicted_events_[q]) {
      emission_.OnEvicted(q, id);
    }
    std::sort(evicted_events_[q].begin(), evicted_events_[q].end());
  }

  resolved_emits_.clear();
  std::vector<std::pair<int, int64_t>>& resolved_emits = resolved_emits_;
  // ---- Dominated-region discarding (Section 6, tuple level). ----
  // Every accepted tuple is a real join result; even if later evicted,
  // what it dominates stays dominated (its evictor dominates more).
  //
  // Per query, a read-only dominance scan over the surviving regions runs
  // chunked on the pool; lineage pruning then applies serially in region
  // order. In the serial original, the only state a query's scan mutates
  // is the region being pruned — and its test count stops at the pruning
  // hit — so the split charges the exact same discard_ops and fires the
  // same events in the same order.
  int64_t discard_ops = 0;
  {
    TraceSpan span(spans, "discard", "pipeline",
                   &stats.wall_discard_seconds);
    span.set_region(rid);
    span.set_parent(trace_ctx_.parent_span, trace_ctx_.root_span);
    const int64_t num_regions = static_cast<int64_t>(rc_->regions.size());
    if (discard_tests_.size() < static_cast<size_t>(num_regions)) {
      discard_tests_.resize(num_regions, 0);
      discard_hits_.resize(num_regions, 0);
    }
    for (int q = 0;
         options_.tuple_discard && q < workload.num_queries(); ++q) {
      if (accepted_events_[q].empty()) continue;
      const std::vector<int>& dims = workload.query(q).preference;
      // Gather this query's accepted tuples once, in event order; every
      // region then scans the same contiguous block with the batch
      // kernel, which stops (and counts) exactly where the serial
      // per-tuple loop broke.
      const int64_t accepted_n =
          static_cast<int64_t>(accepted_events_[q].size());
      accepted_view_.Reset(dims);
      if (options_.compact_layout) {
        // Slice the region's SoA transpose: accepted ids all lie in
        // [base_id, base_id + num_matches) (they were accepted this
        // region), so each compared dimension is one unit-stride gather
        // from the block's column. The block is built lazily at the first
        // discarding query of the region and shared by the rest.
        if (column_block_.size() == 0) {
          column_block_.BuildFrom(store_, base_id, num_matches);
        }
        dim_cols_.clear();
        for (int d : dims) dim_cols_.push_back(column_block_.col(d));
        accepted_view_.AssignFromColumns(dim_cols_.data(), base_id,
                                         accepted_events_[q].data(),
                                         accepted_n);
      } else {
        accepted_view_.Reserve(accepted_n);
        for (int64_t id : accepted_events_[q]) {
          accepted_view_.PushPoint(store_.row(id));
        }
      }
      // Below this much total work (region × tuple tests) the fork/join
      // overhead exceeds the scan itself; stay on the calling thread.
      // Counts and hits are identical either way.
      constexpr int64_t kParallelMinWork = 8192;
      ThreadPool* const scan_pool =
          num_regions * accepted_n >= kParallelMinWork ? pool_ : nullptr;
      // Phase 1 (parallel, read-only): per region, count dominance tests
      // up to and including the first dominating tuple, if any.
      ParallelFor(scan_pool, num_regions, /*min_chunk=*/16, [&](int64_t i) {
        const OutputRegion& other = rc_->regions[i];
        discard_tests_[i] = 0;
        discard_hits_[i] = 0;
        if (!(*pending_)[other.id] || !other.rql.Contains(q)) return;
        bool hit = false;
        discard_tests_[i] =
            ScanPointsFullyDominatingRegion(accepted_view_, other, &hit);
        discard_hits_[i] = hit ? 1 : 0;
      });
      // Phase 2 (serial, region order): apply prunes and resolutions.
      for (int64_t i = 0; i < num_regions; ++i) {
        discard_ops += discard_tests_[i];
        if (!discard_hits_[i]) continue;
        OutputRegion& other = rc_->regions[i];
        other.rql.Remove(q);
        Record(ExecEvent::Kind::kQueryPruned, other.id, q, 0);
        emission_.OnRegionResolvedForQuery(other.id, q, resolved_emits);
        if (other.rql.empty()) {
          (*pending_)[other.id] = 0;
          --(*pending_count_);
          ++stats.regions_discarded;
          Record(ExecEvent::Kind::kRegionDiscarded, other.id, -1, 0);
          if (scheduler_ != nullptr) scheduler_->OnRegionRemoved(other.id);
          emission_.OnRegionResolved(other.id, resolved_emits);
        }
      }
    }
    span.set_arg("discard_ops", discard_ops);
  }
  stats.coarse_ops += discard_ops;
  clock_->ChargeCoarseOps(discard_ops);
  take_phase(alloc_phase_discard_counter_);

  // ---- Progressive emission. ----
  {
    TraceSpan span(spans, "emission", "pipeline");
    span.set_region(rid);
    span.set_parent(trace_ctx_.parent_span, trace_ctx_.root_span);
    const int64_t emitted_before = stats.emitted_results;
    const int64_t emission_ops_before = emission_.coarse_ops();
    // Flush barrier over the sharded park set: per query, resolve this
    // region's parked bucket and register the newly accepted tuples —
    // shard-parallel when pipelining is on, identical state either way.
    // Emission then merges the shard outputs in the exact serial emit
    // order: each query's immediately-safe acceptances in query order,
    // then the discard-phase resolutions, then this region's bucket
    // resolutions in query order.
    if (flush_resolved_.size() <
        static_cast<size_t>(workload.num_queries())) {
      flush_resolved_.resize(workload.num_queries());
      flush_direct_.resize(workload.num_queries());
    }
    emission_.FlushRegion(rid, accepted_events_, evicted_events_,
                          options_.pipeline_regions ? pool_ : nullptr,
                          flush_resolved_, flush_direct_);
    emitted_per_query_.clear();
    for (int q = 0; q < workload.num_queries(); ++q) {
      emitted_per_query_.push_back(0);
    }
    for (int q = 0; q < workload.num_queries(); ++q) {
      for (int64_t id : flush_direct_[q]) EmitResult(q, id);
      emitted_per_query_[q] += static_cast<int64_t>(flush_direct_[q].size());
    }
    for (const auto& [q, id] : resolved_emits) {
      EmitResult(q, id);
      ++emitted_per_query_[q];
    }
    for (int q = 0; q < workload.num_queries(); ++q) {
      for (int64_t id : flush_resolved_[q]) {
        EmitResult(q, id);
        ++emitted_per_query_[q];
      }
    }
    for (int q = 0; q < workload.num_queries(); ++q) {
      if (emitted_per_query_[q] > 0) {
        Record(ExecEvent::Kind::kResultsEmitted, rid, q,
               emitted_per_query_[q]);
      }
    }
    const int64_t emission_ops = emission_.coarse_ops() - emission_ops_before;
    stats.coarse_ops += emission_ops;
    clock_->ChargeCoarseOps(emission_ops);
    span.set_arg("emitted", stats.emitted_results - emitted_before);
  }
  take_phase(alloc_phase_emission_counter_);
  if (region_service_hist_ != nullptr) {
    region_service_hist_->Observe(clock_->Now() - region_vstart_);
  }
  ++regions_accounted_;
  if (alloc_regions_counter_ != nullptr) {
    // Warmup regions grow caches and scratch capacities; past the window
    // the steady counters measure the residual churn the alloc gate bounds
    // (allocs/region = steady_allocs_total / steady_regions_total).
    const AllocCounts after = ThreadAllocCounts();
    const int64_t delta =
        static_cast<int64_t>(after.allocs - alloc_before.allocs);
    alloc_regions_counter_->Inc();
    if (regions_accounted_ <= kWarmupRegions) {
      alloc_warmup_counter_->Inc(delta);
    } else {
      alloc_steady_counter_->Inc(delta);
      alloc_steady_regions_counter_->Inc();
    }
  }
}

Status RegionPipeline::FinalDrain() {
  // A speculation launched while processing the last region (predicting a
  // region that got resolved meanwhile) is still in flight; drop it.
  CancelSpeculation();
  // With every region resolved, nothing can remain parked.
  std::vector<std::pair<int, int64_t>> leftovers;
  emission_.DrainAll(leftovers);
  CAQE_DCHECK(leftovers.empty());
  for (const auto& [q, id] : leftovers) EmitResult(q, id);
  return Status::OK();
}

}  // namespace caqe
