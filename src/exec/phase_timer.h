// Wall-clock phase accounting shared by the execution core and pipeline.
#ifndef CAQE_EXEC_PHASE_TIMER_H_
#define CAQE_EXEC_PHASE_TIMER_H_

#include <chrono>

namespace caqe {

/// Wall-clock accumulator for the per-phase EngineStats breakdown. The
/// measured phases are exactly the parallel ones, so the benchmark can
/// attribute speedup; every deterministic quantity is untouched by timing.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_PHASE_TIMER_H_
