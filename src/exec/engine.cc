#include "exec/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace caqe {

int ChooseCellsPerDim(const ExecOptions& options, int num_attrs,
                      int64_t num_rows) {
  if (options.cells_per_dim > 0) return options.cells_per_dim;
  // Region count is (cells per table)^2, so aim each table at
  // sqrt(target_regions) cells: cells_per_dim = target^(1/(2d)).
  const double target = std::max(16, options.target_regions);
  int cpd = std::max(
      2, static_cast<int>(std::floor(
             std::pow(target, 1.0 / (2.0 * std::max(1, num_attrs))))));
  // Avoid over-partitioning tiny tables (aim for >= 8 rows per cell).
  while (cpd > 1 &&
         std::pow(cpd, num_attrs) * 8.0 > static_cast<double>(num_rows)) {
    --cpd;
  }
  return std::max(1, cpd);
}

Result<PartitionedTable> PartitionForRegions(const Table& table,
                                             const ExecOptions& options,
                                             int target_regions,
                                             ThreadPool* pool) {
  int64_t target_cells = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(
             std::sqrt(static_cast<double>(target_regions)))));
  target_cells = std::max<int64_t>(
      1, std::min(target_cells, table.num_rows() / 8));
  if (options.partition_strategy == PartitionStrategy::kQuadTree) {
    return PartitionTableQuadTreeTarget(table, target_cells,
                                        /*max_depth=*/16, pool);
  }
  if (options.cells_per_dim > 0) {
    return PartitionTable(table, options.cells_per_dim);
  }
  return PartitionTableSlices(
      table, ChooseSliceVector(table.num_attrs(), target_cells));
}

int64_t ExactTotalJoinSize(const Table& r, const Table& t, int key) {
  std::unordered_map<int32_t, int64_t> counts;
  for (int64_t row = 0; row < t.num_rows(); ++row) ++counts[t.key(row, key)];
  int64_t total = 0;
  for (int64_t row = 0; row < r.num_rows(); ++row) {
    const auto it = counts.find(r.key(row, key));
    if (it != counts.end()) total += it->second;
  }
  return total;
}

int AdaptiveTargetRegions(const ExecOptions& options, const Table& r,
                          const Table& t, const Workload& workload) {
  if (options.cells_per_dim > 0) return options.target_regions;
  int64_t max_join = 0;
  for (int key : workload.DistinctJoinKeys()) {
    max_join = std::max(max_join, ExactTotalJoinSize(r, t, key));
  }
  const int64_t by_work = std::max<int64_t>(16, max_join / 500);
  return static_cast<int>(
      std::min<int64_t>(options.target_regions, by_work));
}

}  // namespace caqe
