// The shared region-based execution core (paper Sections 4-6) parameterized
// by scheduling policy. CAQE, S-JFSL, ProgXe+ and the ablation variants are
// thin wrappers around this core with different knobs.
#ifndef CAQE_EXEC_SHARED_CORE_H_
#define CAQE_EXEC_SHARED_CORE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "exec/options.h"
#include "metrics/report.h"
#include "partition/partitioner.h"
#include "query/query.h"

namespace caqe {

/// Core execution knobs (reduced from ExecOptions by each engine).
struct CoreOptions {
  SchedulePolicy policy = SchedulePolicy::kContractDriven;
  /// Worker threads for the parallel phases (region build, join kernel,
  /// plan-group evaluation, discard scans). 1 = serial, 0 = all hardware
  /// threads. Reports are bit-identical at every value — work counters and
  /// the virtual clock charge the same totals (see DESIGN.md, "Concurrency
  /// model").
  int num_threads = 1;
  /// Inter-region pipelining (see ExecOptions::pipeline_regions). Needs
  /// num_threads > 1 to have any effect; reports stay bit-identical.
  bool pipeline_regions = false;
  /// Tree-indexed coarse phase (see ExecOptions::coarse_index): drive the
  /// region build's selection tests and the coarse prune from packed box
  /// trees instead of flat scans. Reports stay bit-identical.
  bool coarse_index = false;
  /// Optional externally owned worker pool. When set, the core uses it for
  /// all parallel phases instead of creating its own (the pool must have
  /// been sized consistently with num_threads); callers that partition
  /// with the same pool avoid a second thread spin-up.
  ThreadPool* pool = nullptr;
  /// Cache-conscious steady-state layout (see ExecOptions::compact_layout).
  /// Reports stay byte-identical.
  bool compact_layout = true;
  /// Join-index cache bound (see ExecOptions::join_index_cache_entries).
  int64_t join_index_cache_entries = 4096;
  bool coarse_prune = true;
  bool feedback = true;
  /// Tuple-level dominated-region discarding (Section 6). CAQE's source of
  /// the "20x fewer join results" claim; the S-JFSL strawman pipelines
  /// every region and leaves this off.
  bool tuple_discard = true;
  bool dva_mode = true;
  bool capture_results = false;
  /// Exact final result counts by *global* query id (see
  /// ExecOptions::known_result_counts). Empty or non-positive entries fall
  /// back to the Buchta estimate.
  std::vector<double> known_result_counts;
  /// Optional event sink (see ExecOptions::trace).
  std::vector<ExecEvent>* trace = nullptr;
  /// Optional streaming consumer, called with *global* query ids (see
  /// ExecOptions::on_result).
  std::function<void(int query, double time, double utility)> on_result;
  /// Optional tracing/metrics/health bundle (see ExecOptions::obs).
  Observability* obs = nullptr;
};

/// Executes `workload` over the partitioned inputs with the shared
/// region-based machinery: coarse join (regions), optional coarse skyline
/// prune, per-predicate min-max cuboid plans, policy-driven region
/// scheduling, tuple-level join/project/skyline, dominated-region
/// discarding, and safe progressive emission.
///
/// `global_query_ids[i]` maps workload query i to its index in `tracker`
/// and `reports` — identity for shared engines; a singleton for the
/// per-query baselines which run the core once per query on a shared clock.
/// Counters accumulate into `stats`; report entries are appended for
/// emitted results when capture is on.
Status RunSharedCore(const PartitionedTable& part_r,
                     const PartitionedTable& part_t, const Workload& workload,
                     const std::vector<int>& global_query_ids,
                     SatisfactionTracker& tracker, VirtualClock& clock,
                     EngineStats& stats, std::vector<QueryReport>& reports,
                     const CoreOptions& core_options);

}  // namespace caqe

#endif  // CAQE_EXEC_SHARED_CORE_H_
