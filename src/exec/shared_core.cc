#include "exec/shared_core.h"

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "exec/region_pipeline.h"
#include "obs/observability.h"
#include "optimizer/scheduler.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"
#include "skyline/cardinality.h"

namespace caqe {

Status RunSharedCore(const PartitionedTable& part_r,
                     const PartitionedTable& part_t, const Workload& workload,
                     const std::vector<int>& global_query_ids,
                     SatisfactionTracker& tracker, VirtualClock& clock,
                     EngineStats& stats, std::vector<QueryReport>& reports,
                     const CoreOptions& core_options) {
  if (static_cast<int>(global_query_ids.size()) != workload.num_queries()) {
    return Status::InvalidArgument("global_query_ids size mismatch");
  }

  // Worker pool for the parallel phases. The calling thread always
  // participates in chunked work, so `num_threads` total threads means
  // `num_threads - 1` pool workers; 1 keeps today's fully serial path.
  // Declared before the pipeline: the pipeline's join kernel waits for any
  // in-flight prefetch task in its destructor before the pool (declared
  // earlier, destroyed later) joins its workers.
  const int num_threads = ResolveNumThreads(core_options.num_threads);
  std::unique_ptr<ThreadPool> pool_owner;
  ThreadPool* pool = core_options.pool;
  if (pool == nullptr && num_threads > 1) {
    pool_owner = std::make_unique<ThreadPool>(num_threads - 1);
    pool = pool_owner.get();
  }

  Observability* const obs = core_options.obs;
  TraceSink* const spans = Observability::Spans(obs);

  // ---- Multi-query output look-ahead: coarse join. ----
  // With coarse_index on, the per-side selection classes are derived once
  // from packed box trees and the per-pair query loop becomes bit-set
  // algebra; the index build is charged to the region-build wall span so
  // the off/on wall comparison stays honest.  Traversal counters live in
  // CoarseIndexStats (outside the report) and are exported as metrics.
  SelectionClassIndex sel_index;
  CoarseIndexStats index_stats;
  Result<RegionCollection> rc_result = [&] {
    TraceSpan span(spans, "region_build", "core",
                   &stats.wall_region_build_seconds);
    RegionBuildOptions build_options;
    build_options.pool = pool;
    if (core_options.coarse_index) {
      TraceSpan index_span(spans, "coarse_index_build", "core");
      sel_index = BuildSelectionClassIndex(part_r, part_t, workload,
                                           &index_stats);
      index_span.set_arg("cells",
                         part_r.num_cells() + part_t.num_cells());
      build_options.selection_index = &sel_index;
      build_options.index_stats = &index_stats;
    }
    return BuildRegions(part_r, part_t, workload, build_options);
  }();
  CAQE_RETURN_NOT_OK(rc_result.status());
  RegionCollection rc = std::move(rc_result).value();
  stats.regions_built += static_cast<int64_t>(rc.regions.size());
  stats.coarse_ops += rc.coarse_ops;
  clock.ChargeCoarseOps(rc.coarse_ops);

  // Scheduling state the pipeline mutates (region completion + discards).
  std::vector<char> pending(rc.regions.size(), 0);
  int64_t pending_count = 0;

  // The pipeline starts the join-kernel index prefetch in its constructor,
  // overlapping the coarse prune / plan build / scheduler setup below. Its
  // emission manager is built from the pre-prune lineages, which charges
  // the identical operation counts (the witness scan skips non-pending
  // regions and non-serving lineage entries before charging anything).
  PipelineOptions pipe_options;
  pipe_options.tuple_discard = core_options.tuple_discard;
  pipe_options.dva_mode = core_options.dva_mode;
  pipe_options.capture_results = core_options.capture_results;
  pipe_options.trace = core_options.trace;
  pipe_options.on_result = core_options.on_result;
  pipe_options.obs = obs;
  pipe_options.pipeline_regions = core_options.pipeline_regions;
  pipe_options.compact_layout = core_options.compact_layout;
  pipe_options.join_index_cache_entries =
      core_options.join_index_cache_entries;
  RegionPipeline pipeline(&part_r, &part_t, &workload, &rc, &pending,
                          &pending_count, &tracker, &clock, &stats, &reports,
                          pool, std::move(pipe_options));
  pipeline.SetGlobalQueryIds(global_query_ids);

  // ---- Coarse skyline prune (MQLA). ----
  if (core_options.coarse_prune) {
    CoarsePruneOptions prune_options;
    prune_options.use_index = core_options.coarse_index;
    if (core_options.coarse_index) prune_options.index_stats = &index_stats;
    const CoarsePruneStats prune =
        CoarseSkylinePrune(rc, workload, prune_options);
    stats.coarse_ops += prune.coarse_ops;
    stats.regions_discarded += prune.pruned_regions;
    clock.ChargeCoarseOps(prune.coarse_ops);
  }

  // Export the index traversal shape through obs (never the report: the
  // report is byte-identical across coarse_index off/on by construction).
  if (obs != nullptr && core_options.coarse_index) {
    RecordCoarseIndexStats(obs->metrics, index_stats);
  }

  // ---- Per-(predicate, selections) min-max cuboid plans. ----
  CAQE_RETURN_NOT_OK(pipeline.BuildPlanGroups());

  // ---- Result-cardinality estimates for cardinality contracts. ----
  for (int q = 0; q < workload.num_queries(); ++q) {
    const int global_q = global_query_ids[q];
    double total = 0.0;
    if (global_q < static_cast<int>(core_options.known_result_counts.size())) {
      total = core_options.known_result_counts[global_q];
    }
    if (total <= 0.0) {
      const int slot = rc.slot_of_query[q];
      total = BuchtaSkylineCardinality(
          static_cast<double>(rc.total_join_sizes[slot]),
          static_cast<int>(workload.query(q).preference.size()));
    }
    tracker.SetEstimatedTotal(global_q, total);
  }

  // ---- Scheduling state. ----
  for (const OutputRegion& region : rc.regions) {
    if (!region.rql.empty()) {
      pending[region.id] = 1;
      ++pending_count;
    }
  }

  SchedulerOptions sched_options;
  sched_options.feedback_enabled = core_options.feedback;
  sched_options.contract_driven =
      core_options.policy == SchedulePolicy::kContractDriven;
  sched_options.obs = obs;
  std::optional<ContractDrivenScheduler> scheduler;
  if (core_options.policy != SchedulePolicy::kStaticScan) {
    scheduler.emplace(&rc, &workload, &tracker, &clock.cost_model(),
                      sched_options);
    pipeline.set_scheduler(&scheduler.value());
  }
  int static_cursor = 0;

  // Contract-health introspection: bind query names once, then sample the
  // (pScore, results, weight) triple after every region at virtual time —
  // deduped by ContractHealth, deterministic across thread counts.
  if (obs != nullptr) {
    for (int q = 0; q < workload.num_queries(); ++q) {
      obs->health.SetName(global_query_ids[q], workload.query(q).name);
    }
  }
  auto sample_health = [&] {
    if (obs == nullptr) return;
    const double now = clock.Now();
    for (int q = 0; q < workload.num_queries(); ++q) {
      const int global_q = global_query_ids[q];
      const QuerySatisfaction& sat = tracker.satisfaction(global_q);
      const double weight =
          scheduler.has_value() ? scheduler->weight(q) : 1.0;
      obs->health.Sample(now, global_q, sat.results, sat.pscore, weight);
    }
  };
  sample_health();

  while (pending_count > 0) {
    // ---- Pick the next region. ----
    int rid = -1;
    if (scheduler.has_value()) {
      int64_t pick_ops = 0;
      rid = scheduler->PickNext(clock.Now(), &pick_ops);
      stats.coarse_ops += pick_ops;
      clock.ChargeCoarseOps(pick_ops);
    } else {
      while (static_cursor < static_cast<int>(pending.size()) &&
             !pending[static_cursor]) {
        ++static_cursor;
      }
      CAQE_CHECK(static_cursor < static_cast<int>(pending.size()));
      rid = static_cursor;
    }

    // ---- Tuple-level processing (join, project, evaluate, discard,
    // emission) — see RegionPipeline::ProcessRegion. ----
    {
      // Umbrella span: the pipeline's phase spans (join/eval/discard/
      // emission) parent under it, so each region step is one connected
      // causal tree and tree-sticky sampling keeps or drops it whole.
      TraceSpan region_span(spans, "process_region", "core");
      region_span.set_region(rid);
      if (spans != nullptr) {
        pipeline.set_trace_context(RequestTraceContext{
            /*request_id=*/-1, region_span.id(), region_span.id()});
      }
      pipeline.ProcessRegion(rid);
    }

    // ---- Satisfaction feedback (Eq. 11). ----
    if (scheduler.has_value()) scheduler->UpdateWeights();
    sample_health();
  }

  return pipeline.FinalDrain();
}

}  // namespace caqe
