#include "exec/shared_core.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <optional>
#include <unordered_set>

#include "common/thread_pool.h"
#include "cuboid/min_max_cuboid.h"
#include "cuboid/shared_skyline.h"
#include "exec/emission.h"
#include "exec/join_kernel.h"
#include "optimizer/scheduler.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"
#include "region/region_dominance.h"
#include "skyline/cardinality.h"
#include "skyline/point_set.h"

namespace caqe {
namespace {

/// Queries sharing one join predicate *and* the same selections share a
/// min-max cuboid plan: they see the same join-tuple stream, so their
/// subspace skylines can be evaluated together (Section 4.1 restricts
/// sharing to queries identical up to their skyline dimensions).
struct PlanGroup {
  int slot = 0;
  /// Workload-local query indices, in group order (= cuboid query order).
  std::vector<int> queries;
  /// Same members as `queries`, as a set (fast lineage intersection).
  QuerySet query_set;
  /// The group's common selections (shared by every member).
  std::vector<SelectionRange> selections;
  MinMaxCuboid cuboid;
  std::unique_ptr<SharedSkylineEvaluator> evaluator;
};

// Canonical grouping key for a query's selections.
std::string SelectionKey(const SjQuery& query) {
  std::vector<SelectionRange> sorted = query.selections;
  std::sort(sorted.begin(), sorted.end(),
            [](const SelectionRange& a, const SelectionRange& b) {
              return std::tie(a.on_r, a.attr, a.lo, a.hi) <
                     std::tie(b.on_r, b.attr, b.lo, b.hi);
            });
  std::string key;
  for (const SelectionRange& sel : sorted) {
    key += (sel.on_r ? "r" : "t") + std::to_string(sel.attr) + ":" +
           std::to_string(sel.lo) + ".." + std::to_string(sel.hi) + ";";
  }
  return key;
}

/// Wall-clock accumulator for the per-phase EngineStats breakdown. The
/// measured phases are exactly the parallel ones, so the benchmark can
/// attribute speedup; every deterministic quantity is untouched by timing.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Status RunSharedCore(const PartitionedTable& part_r,
                     const PartitionedTable& part_t, const Workload& workload,
                     const std::vector<int>& global_query_ids,
                     SatisfactionTracker& tracker, VirtualClock& clock,
                     EngineStats& stats, std::vector<QueryReport>& reports,
                     const CoreOptions& core_options) {
  if (static_cast<int>(global_query_ids.size()) != workload.num_queries()) {
    return Status::InvalidArgument("global_query_ids size mismatch");
  }

  // Worker pool for the parallel phases. The calling thread always
  // participates in chunked work, so `num_threads` total threads means
  // `num_threads - 1` pool workers; 1 keeps today's fully serial path.
  // Declared before the join kernel: the kernel's destructor waits for any
  // in-flight prefetch task before the pool (declared earlier, destroyed
  // later) joins its workers.
  const int num_threads = ResolveNumThreads(core_options.num_threads);
  std::unique_ptr<ThreadPool> pool_owner;
  if (num_threads > 1) {
    pool_owner = std::make_unique<ThreadPool>(num_threads - 1);
  }
  ThreadPool* const pool = pool_owner.get();

  // ---- Multi-query output look-ahead: coarse join. ----
  Result<RegionCollection> rc_result = [&] {
    PhaseTimer timer(&stats.wall_region_build_seconds);
    return BuildRegions(part_r, part_t, workload, pool);
  }();
  CAQE_RETURN_NOT_OK(rc_result.status());
  RegionCollection rc = std::move(rc_result).value();
  stats.regions_built += static_cast<int64_t>(rc.regions.size());
  stats.coarse_ops += rc.coarse_ops;
  clock.ChargeCoarseOps(rc.coarse_ops);

  // Kick off background construction of the join-kernel hash indexes the
  // regions will need, overlapping the coarse prune / plan build /
  // scheduler setup below (probe counters are charged at first use, so the
  // prefetch is invisible to EngineStats and the virtual clock).
  CellJoinKernel kernel(&part_r, &part_t);
  kernel.PrefetchIndexes(rc, pool);

  // ---- Coarse skyline prune (MQLA). ----
  if (core_options.coarse_prune) {
    const CoarsePruneStats prune = CoarseSkylinePrune(rc, workload);
    stats.coarse_ops += prune.coarse_ops;
    stats.regions_discarded += prune.pruned_regions;
    clock.ChargeCoarseOps(prune.coarse_ops);
  }

  // ---- Per-(predicate, selections) min-max cuboid plans. ----
  // Groups live behind unique_ptr so the evaluator's pointer into the
  // group's cuboid stays valid.
  std::vector<std::unique_ptr<PlanGroup>> groups;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if (rc.queries_of_slot[s].empty()) continue;
    // Partition the slot's queries by identical selections.
    std::map<std::string, std::vector<int>> by_selection;
    rc.queries_of_slot[s].ForEach([&](int q) {
      by_selection[SelectionKey(workload.query(q))].push_back(q);
    });
    for (auto& [key, members] : by_selection) {
      (void)key;
      auto group = std::make_unique<PlanGroup>();
      group->slot = s;
      group->queries = std::move(members);
      for (int q : group->queries) group->query_set.Add(q);
      group->selections = workload.query(group->queries.front()).selections;
      std::vector<Subspace> prefs;
      for (int q : group->queries) {
        prefs.push_back(Subspace::FromDims(workload.query(q).preference));
      }
      Result<MinMaxCuboid> cuboid = MinMaxCuboid::Build(prefs);
      CAQE_RETURN_NOT_OK(cuboid.status());
      group->cuboid = std::move(cuboid).value();
      group->evaluator = std::make_unique<SharedSkylineEvaluator>(
          workload.num_output_dims(), &group->cuboid, core_options.dva_mode);
      groups.push_back(std::move(group));
    }
  }

  // ---- Result-cardinality estimates for cardinality contracts. ----
  for (int q = 0; q < workload.num_queries(); ++q) {
    const int global_q = global_query_ids[q];
    double total = 0.0;
    if (global_q < static_cast<int>(core_options.known_result_counts.size())) {
      total = core_options.known_result_counts[global_q];
    }
    if (total <= 0.0) {
      const int slot = rc.slot_of_query[q];
      total = BuchtaSkylineCardinality(
          static_cast<double>(rc.total_join_sizes[slot]),
          static_cast<int>(workload.query(q).preference.size()));
    }
    tracker.SetEstimatedTotal(global_q, total);
  }

  // ---- Scheduling state. ----
  std::vector<char> pending(rc.regions.size(), 0);
  int64_t pending_count = 0;
  for (const OutputRegion& region : rc.regions) {
    if (!region.rql.empty()) {
      pending[region.id] = 1;
      ++pending_count;
    }
  }

  SchedulerOptions sched_options;
  sched_options.feedback_enabled = core_options.feedback;
  sched_options.contract_driven =
      core_options.policy == SchedulePolicy::kContractDriven;
  std::optional<ContractDrivenScheduler> scheduler;
  if (core_options.policy != SchedulePolicy::kStaticScan) {
    scheduler.emplace(&rc, &workload, &tracker, &clock.cost_model(),
                      sched_options);
  }
  int static_cursor = 0;

  PointSet store(workload.num_output_dims());
  EmissionManager emission(&workload, &rc, &store, &pending);

  std::vector<JoinMatch> matches;
  // Per-query accepted/evicted events of the current region.
  std::vector<std::vector<int64_t>> accepted_events(workload.num_queries());
  std::vector<std::vector<int64_t>> evicted_events(workload.num_queries());
  // Per-region scratch of the two-phase dominated-region discard scan, plus
  // the column-gathered accepted tuples of the query being scanned (batch
  // kernel input, rebuilt per query in event order).
  std::vector<int64_t> discard_tests(rc.regions.size(), 0);
  std::vector<char> discard_hits(rc.regions.size(), 0);
  SubspaceView accepted_view;

  auto record = [&](ExecEvent::Kind kind, int region, int query,
                    int64_t count) {
    if (core_options.trace == nullptr) return;
    core_options.trace->push_back(
        ExecEvent{kind, clock.Now(), region, query, count});
  };

  auto emit_result = [&](int q, int64_t id) {
    const int global_q = global_query_ids[q];
    const double now = clock.Now();
    const double utility = tracker.OnResult(global_q, now);
    clock.ChargeEmits(1);
    ++stats.emitted_results;
    if (core_options.on_result) core_options.on_result(global_q, now, utility);
    if (core_options.capture_results) {
      ReportedResult result;
      result.tuple_id = id;
      result.time = now;
      result.utility = utility;
      result.values.assign(store.row(id),
                           store.row(id) + store.width());
      reports[global_q].tuples.push_back(std::move(result));
    }
  };

  while (pending_count > 0) {
    // ---- Pick the next region. ----
    int rid = -1;
    if (scheduler.has_value()) {
      int64_t pick_ops = 0;
      rid = scheduler->PickNext(clock.Now(), &pick_ops);
      stats.coarse_ops += pick_ops;
      clock.ChargeCoarseOps(pick_ops);
    } else {
      while (static_cursor < static_cast<int>(pending.size()) &&
             !pending[static_cursor]) {
        ++static_cursor;
      }
      CAQE_CHECK(static_cursor < static_cast<int>(pending.size()));
      rid = static_cursor;
    }
    clock.ChargeScheduleSteps(1);
    record(ExecEvent::Kind::kRegionScheduled, rid, -1, 0);
    OutputRegion& region = rc.regions[rid];

    // ---- Tuple-level join over the slots still serving queries. ----
    uint32_t slots_mask = 0;
    for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
      if (region.join_sizes[s] > 0 &&
          region.rql.Intersects(rc.queries_of_slot[s])) {
        slots_mask |= uint32_t{1} << s;
      }
    }
    matches.clear();
    {
      PhaseTimer timer(&stats.wall_join_seconds);
      const int64_t probes_before = stats.join_probes;
      const int64_t results_before = stats.join_results;
      kernel.Join(rc, region, slots_mask, matches, stats, pool);
      clock.ChargeJoinProbes(stats.join_probes - probes_before);
      clock.ChargeJoinResults(stats.join_results - results_before);
    }

    // ---- Project and evaluate over the shared cuboid plans. ----
    for (auto& events : accepted_events) events.clear();
    for (auto& events : evicted_events) events.clear();
    const int64_t cmps_before = stats.dominance_cmps;
    const int64_t num_matches = static_cast<int64_t>(matches.size());
    {
      PhaseTimer timer(&stats.wall_eval_seconds);
      // Materialize every match into the store first (ids are sequential in
      // match order, exactly as the serial append-per-match produced them);
      // rows are disjoint, so chunks project concurrently.
      store.Reserve(store.size() + num_matches);
      const int64_t base_id = store.AppendUninitialized(num_matches);
      const int project_chunks = NumChunks(pool, num_matches,
                                           /*min_chunk=*/512);
      RunChunks(pool, project_chunks, [&](int c) {
        const auto [begin, end] = ChunkRange(num_matches, project_chunks, c);
        std::vector<double> values;
        for (int64_t i = begin; i < end; ++i) {
          const JoinMatch& match = matches[i];
          workload.Project(part_r.table(), match.row_r, part_t.table(),
                           match.row_t, values);
          std::copy(values.begin(), values.end(),
                    store.mutable_row(base_id + i));
        }
      });

      // Plan groups own disjoint evaluators and disjoint query sets, so
      // they consume the match stream concurrently. Each group sees the
      // matches in stream order, which makes every per-query event
      // sequence — and each group's comparison count — identical to the
      // serial interleaving.
      std::vector<PlanGroup*> active;
      for (const auto& group : groups) {
        if (((slots_mask >> group->slot) & 1) == 0) continue;
        if (!region.rql.Intersects(group->query_set)) continue;
        active.push_back(group.get());
      }
      std::vector<int64_t> group_cmps(active.size(), 0);
      RunChunks(active.size() > 1 ? pool : nullptr,
                static_cast<int>(active.size()), [&](int gi) {
        PlanGroup* group = active[gi];
        int64_t cmps = 0;
        for (int64_t i = 0; i < num_matches; ++i) {
          const JoinMatch& match = matches[i];
          if (((match.slot_mask >> group->slot) & 1) == 0) continue;
          // The group's common selections must hold for this join pair.
          bool passes = true;
          for (const SelectionRange& sel : group->selections) {
            const double v =
                sel.on_r ? part_r.table().attr(match.row_r, sel.attr)
                         : part_t.table().attr(match.row_t, sel.attr);
            if (v < sel.lo || v > sel.hi) {
              passes = false;
              break;
            }
          }
          if (!passes) continue;
          const int64_t id = base_id + i;
          const SharedInsertOutcome outcome =
              group->evaluator->Insert(store.row(id), id, &cmps);
          outcome.accepted.ForEach([&](int local) {
            accepted_events[group->queries[local]].push_back(id);
          });
          for (const auto& [local, ids] : outcome.evictions) {
            std::vector<int64_t>& sink =
                evicted_events[group->queries[local]];
            sink.insert(sink.end(), ids.begin(), ids.end());
          }
        }
        group_cmps[gi] = cmps;
      });
      for (int64_t cmps : group_cmps) stats.dominance_cmps += cmps;
    }
    clock.ChargeDominanceCmps(stats.dominance_cmps - cmps_before);

    // ---- Region complete. ----
    pending[rid] = 0;
    --pending_count;
    ++stats.regions_processed;
    if (scheduler.has_value()) scheduler->OnRegionRemoved(rid);

    // Apply this region's evictions to the emission manager *before* any
    // discard/resolution scan: a parked candidate dominated by one of this
    // region's tuples must be deregistered before resolutions can unpark
    // (and wrongly emit) it.
    std::vector<std::unordered_set<int64_t>> dead(workload.num_queries());
    for (int q = 0; q < workload.num_queries(); ++q) {
      for (int64_t id : evicted_events[q]) {
        emission.OnEvicted(q, id);
        dead[q].insert(id);
      }
    }

    std::vector<std::pair<int, int64_t>> resolved_emits;
    // ---- Dominated-region discarding (Section 6, tuple level). ----
    // Every accepted tuple is a real join result; even if later evicted,
    // what it dominates stays dominated (its evictor dominates more).
    //
    // Per query, a read-only dominance scan over the surviving regions runs
    // chunked on the pool; lineage pruning then applies serially in region
    // order. In the serial original, the only state a query's scan mutates
    // is the region being pruned — and its test count stops at the pruning
    // hit — so the split charges the exact same discard_ops and fires the
    // same events in the same order.
    int64_t discard_ops = 0;
    {
      PhaseTimer timer(&stats.wall_discard_seconds);
      const int64_t num_regions = static_cast<int64_t>(rc.regions.size());
      for (int q = 0;
           core_options.tuple_discard && q < workload.num_queries(); ++q) {
        if (accepted_events[q].empty()) continue;
        const std::vector<int>& dims = workload.query(q).preference;
        // Gather this query's accepted tuples once, in event order; every
        // region then scans the same contiguous block with the batch
        // kernel, which stops (and counts) exactly where the serial
        // per-tuple loop broke.
        const int64_t accepted_n =
            static_cast<int64_t>(accepted_events[q].size());
        accepted_view.Reset(dims);
        accepted_view.Reserve(accepted_n);
        for (int64_t id : accepted_events[q]) {
          accepted_view.PushPoint(store.row(id));
        }
        // Below this much total work (region × tuple tests) the fork/join
        // overhead exceeds the scan itself; stay on the calling thread.
        // Counts and hits are identical either way.
        constexpr int64_t kParallelMinWork = 8192;
        ThreadPool* const scan_pool =
            num_regions * accepted_n >= kParallelMinWork ? pool : nullptr;
        // Phase 1 (parallel, read-only): per region, count dominance tests
        // up to and including the first dominating tuple, if any.
        ParallelFor(scan_pool, num_regions, /*min_chunk=*/16, [&](int64_t i) {
          const OutputRegion& other = rc.regions[i];
          discard_tests[i] = 0;
          discard_hits[i] = 0;
          if (!pending[other.id] || !other.rql.Contains(q)) return;
          bool hit = false;
          discard_tests[i] =
              ScanPointsFullyDominatingRegion(accepted_view, other, &hit);
          discard_hits[i] = hit ? 1 : 0;
        });
        // Phase 2 (serial, region order): apply prunes and resolutions.
        for (int64_t i = 0; i < num_regions; ++i) {
          discard_ops += discard_tests[i];
          if (!discard_hits[i]) continue;
          OutputRegion& other = rc.regions[i];
          other.rql.Remove(q);
          record(ExecEvent::Kind::kQueryPruned, other.id, q, 0);
          emission.OnRegionResolvedForQuery(other.id, q, resolved_emits);
          if (other.rql.empty()) {
            pending[other.id] = 0;
            --pending_count;
            ++stats.regions_discarded;
            record(ExecEvent::Kind::kRegionDiscarded, other.id, -1, 0);
            if (scheduler.has_value()) scheduler->OnRegionRemoved(other.id);
            emission.OnRegionResolved(other.id, resolved_emits);
          }
        }
      }
    }
    stats.coarse_ops += discard_ops;
    clock.ChargeCoarseOps(discard_ops);

    // ---- Progressive emission. ----
    const int64_t emission_ops_before = emission.coarse_ops();
    emission.OnRegionResolved(rid, resolved_emits);
    std::vector<int64_t> direct_emits;
    std::vector<int64_t> emitted_per_query(workload.num_queries(), 0);
    for (int q = 0; q < workload.num_queries(); ++q) {
      direct_emits.clear();
      for (int64_t id : accepted_events[q]) {
        if (dead[q].contains(id)) continue;
        emission.OnAccepted(q, id, direct_emits);
      }
      for (int64_t id : direct_emits) emit_result(q, id);
      emitted_per_query[q] += static_cast<int64_t>(direct_emits.size());
    }
    for (const auto& [q, id] : resolved_emits) {
      emit_result(q, id);
      ++emitted_per_query[q];
    }
    for (int q = 0; q < workload.num_queries(); ++q) {
      if (emitted_per_query[q] > 0) {
        record(ExecEvent::Kind::kResultsEmitted, rid, q,
               emitted_per_query[q]);
      }
    }
    const int64_t emission_ops =
        emission.coarse_ops() - emission_ops_before;
    stats.coarse_ops += emission_ops;
    clock.ChargeCoarseOps(emission_ops);

    // ---- Satisfaction feedback (Eq. 11). ----
    if (scheduler.has_value()) scheduler->UpdateWeights();
  }

  // With every region resolved, nothing can remain parked.
  std::vector<std::pair<int, int64_t>> leftovers;
  emission.DrainAll(leftovers);
  CAQE_DCHECK(leftovers.empty());
  for (const auto& [q, id] : leftovers) emit_result(q, id);

  return Status::OK();
}

}  // namespace caqe
