// The per-region tuple-level pipeline (paper Sections 4-6) factored out of
// the batch execution loop so both RunSharedCore and the online serving
// layer (src/serve/) can drive it.
//
// A RegionPipeline owns everything a region's tuple-level processing needs
// — join kernel, tuple store, plan groups (min-max cuboids + shared skyline
// evaluators), and the safe-emission manager — while the caller owns the
// scheduling state (pending flags, scheduler, the loop itself). Calling
// ProcessRegion(rid) performs exactly the batch loop body: join, project,
// shared skyline evaluation, dominated-region discarding, and progressive
// emission, charging the identical operation counts to the virtual clock.
//
// The serving layer additionally mutates the pipeline between regions:
// AddPlanGroup splices a grafted query batch in, RemoveQueryFromGroups
// retires one, and the per-event query_set membership filter makes both
// invisible to the batch path (where memberships never change).
#ifndef CAQE_EXEC_REGION_PIPELINE_H_
#define CAQE_EXEC_REGION_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "cuboid/min_max_cuboid.h"
#include "cuboid/shared_skyline.h"
#include "exec/emission.h"
#include "exec/join_kernel.h"
#include "exec/options.h"
#include "metrics/report.h"
#include "obs/trace_context.h"
#include "optimizer/scheduler.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "region/region_builder.h"
#include "skyline/dominance_batch.h"
#include "skyline/point_set.h"

namespace caqe {

class Counter;
class Histogram;
struct Observability;

/// Queries sharing one join predicate *and* the same selections share a
/// min-max cuboid plan: they see the same join-tuple stream, so their
/// subspace skylines can be evaluated together (Section 4.1 restricts
/// sharing to queries identical up to their skyline dimensions).
struct PlanGroup {
  int slot = 0;
  /// Workload-local query indices, in group order (= cuboid query order).
  /// Stable for the group's lifetime — local indices into the cuboid.
  std::vector<int> queries;
  /// The *current* members as a set; retirement removes queries here while
  /// `queries` keeps the local-index mapping intact.
  QuerySet query_set;
  /// The group's common selections (shared by every member).
  std::vector<SelectionRange> selections;
  MinMaxCuboid cuboid;
  std::unique_ptr<SharedSkylineEvaluator> evaluator;
};

/// Canonical grouping key for a query's selections (order-insensitive).
std::string PlanGroupSelectionKey(const SjQuery& query);

/// Knobs of the per-region pipeline (reduced from CoreOptions).
struct PipelineOptions {
  /// Tuple-level dominated-region discarding (Section 6).
  bool tuple_discard = true;
  /// Theorem-1 feeder gating in the shared skyline evaluators.
  bool dva_mode = true;
  /// Capture per-result values into the reports vector.
  bool capture_results = false;
  /// Optional event sink (see ExecOptions::trace).
  std::vector<ExecEvent>* trace = nullptr;
  /// Optional streaming consumer, called with global query ids.
  std::function<void(int query, double time, double utility)> on_result;
  /// Serving-layer emission hook: (global query, tuple id, virtual time,
  /// utility) for every emitted result, fired after on_result. The tuple id
  /// indexes store().
  std::function<void(int query, int64_t id, double time, double utility)>
      on_emit;
  /// Optional tracing/metrics/health bundle (see ExecOptions::obs).
  Observability* obs = nullptr;
  /// Inter-region pipelining (see ExecOptions::pipeline_regions): overlap
  /// the predicted next region's join + projection with this region's
  /// discard scan and emission flush, and flush the sharded park set in
  /// parallel. Requires a pool to have any effect; byte-identical reports
  /// either way.
  bool pipeline_regions = false;
  /// Cache-conscious steady-state layout (see ExecOptions::compact_layout):
  /// flat CSR join indexes, SoA column-block discard gathers, store-backed
  /// incremental skylines. Reports stay byte-identical.
  bool compact_layout = true;
  /// Join-index cache bound (see ExecOptions::join_index_cache_entries).
  int64_t join_index_cache_entries = 4096;
};

/// Tuple-level processing of one region collection. See file comment.
class RegionPipeline {
 public:
  /// All pointers must outlive the pipeline. `pending`/`pending_count` are
  /// caller-owned scheduling state mutated by ProcessRegion (the processed
  /// region completes; discard scans may resolve others). Construction
  /// starts the join-kernel index prefetch; the emission manager's witness
  /// scan lists are built from the current lineages (safe to build before a
  /// coarse prune — resolved entries are skipped by the pending/lineage
  /// checks without charging, so operation counts are unchanged).
  RegionPipeline(const PartitionedTable* part_r,
                 const PartitionedTable* part_t, const Workload* workload,
                 RegionCollection* rc, std::vector<char>* pending,
                 int64_t* pending_count, SatisfactionTracker* tracker,
                 VirtualClock* clock, EngineStats* stats,
                 std::vector<QueryReport>* reports, ThreadPool* pool,
                 PipelineOptions options);

  /// Waits for any in-flight speculative join (the task writes into
  /// pipeline-owned buffers, which must outlive it).
  ~RegionPipeline();

  /// Maps workload query index -> tracker/report index. Identity for the
  /// shared engines and the server; a singleton for per-query baselines.
  void SetGlobalQueryIds(std::vector<int> ids) {
    global_query_ids_ = std::move(ids);
  }

  /// The scheduler notified of region removals (processed or discarded by
  /// the scans ProcessRegion runs). May be null (static-scan policy).
  void set_scheduler(ContractDrivenScheduler* scheduler) {
    scheduler_ = scheduler;
  }

  /// Causal attribution for the spans the next ProcessRegion emits: the
  /// driver sets this to its umbrella "process_region" span so the
  /// join/eval/discard/emission phase spans parent under it (one connected
  /// tree per region step; see DESIGN.md §15). Observability-only — the
  /// context never feeds a decision.
  void set_trace_context(const RequestTraceContext& ctx) { trace_ctx_ = ctx; }

  /// Batch setup: builds one plan group per (predicate slot, selection key)
  /// over the workload's current queries (Section 4.1 sharing).
  Status BuildPlanGroups();

  /// Serving graft: builds one plan group for `queries` (identical
  /// selections, same predicate slot). The group's evaluator starts empty —
  /// sound because every member sees exactly the join tuples of regions
  /// processed from now on.
  Status AddPlanGroup(int slot, std::vector<int> queries);

  /// Serving retirement: removes query `q` from its plan group. A group
  /// left without members drops its evaluator; otherwise the evaluator
  /// releases the subspace skylines only `q` needed (see
  /// SharedSkylineEvaluator::ReleaseQueries).
  void RemoveQueryFromGroups(int q);

  /// Processes region `rid` tuple-level: the exact batch loop body (charge
  /// schedule step, join, project, evaluate, discard scan, emission).
  /// Requires (*pending)[rid] on entry.
  void ProcessRegion(int rid);

  /// Final drain: asserts nothing is parked (holds whenever every region
  /// was resolved) and emits leftovers defensively.
  Status FinalDrain();

  /// Waits for and drops any in-flight speculative join without committing
  /// anything — its charges stay unclaimed, exactly as if it never ran.
  /// The serving layer calls this before grafting or retiring a query
  /// (stage-boundary mutations of the region/workload state the speculation
  /// reads); also safe to call at any stage boundary.
  void CancelSpeculation();

  EmissionManager& emission() { return emission_; }
  CellJoinKernel& kernel() { return kernel_; }
  const PointSet& store() const { return store_; }

 private:
  void EmitResult(int q, int64_t id);
  void Record(ExecEvent::Kind kind, int region, int query, int64_t count);
  /// Grows per-query scratch to the workload's current size (no-op in the
  /// batch path where the workload never grows).
  void EnsureQueryCapacity();
  /// Bit s set when slot s has join results and still serves a lineage
  /// query of `region` — the slots the tuple-level join must cover.
  uint32_t ComputeSlotsMask(const OutputRegion& region) const;
  /// Launches the speculative join + projection of the predicted next
  /// region (scheduler runner-up, or the next pending id under static
  /// scan) on the pool. No-op unless pipelining is enabled with a pool and
  /// a plausible prediction exists.
  void MaybeLaunchSpeculation(int current_rid);

  const PartitionedTable* part_r_;
  const PartitionedTable* part_t_;
  const Workload* workload_;
  RegionCollection* rc_;
  std::vector<char>* pending_;
  int64_t* pending_count_;
  SatisfactionTracker* tracker_;
  VirtualClock* clock_;
  EngineStats* stats_;
  std::vector<QueryReport>* reports_;
  ThreadPool* pool_;
  PipelineOptions options_;
  ContractDrivenScheduler* scheduler_ = nullptr;
  RequestTraceContext trace_ctx_;

  std::vector<int> global_query_ids_;
  // Metrics resolved once at construction when an Observability is attached
  // (null otherwise). Virtual-time histograms: deterministic observations.
  Histogram* region_service_hist_ = nullptr;
  Histogram* emission_latency_hist_ = nullptr;
  /// Allocation-accounting counters (non-null only with an Observability
  /// *and* the bench/test alloc interposer linked in — see
  /// common/alloc_hook.h). They count the control thread's heap traffic per
  /// ProcessRegion, split warmup vs steady state; never read back, so
  /// reports stay byte-identical whether or not the hook is present.
  Counter* alloc_regions_counter_ = nullptr;
  Counter* alloc_warmup_counter_ = nullptr;
  Counter* alloc_steady_counter_ = nullptr;
  Counter* alloc_steady_regions_counter_ = nullptr;
  /// Steady-state attribution by pipeline phase (same gating as above):
  /// which phase the residual churn comes from, for the alloc-gate table.
  Counter* alloc_phase_join_counter_ = nullptr;
  Counter* alloc_phase_eval_counter_ = nullptr;
  Counter* alloc_phase_discard_counter_ = nullptr;
  Counter* alloc_phase_emission_counter_ = nullptr;
  /// ProcessRegion invocations so far (warmup window index).
  int64_t regions_accounted_ = 0;
  /// Virtual time the region currently in ProcessRegion was scheduled at
  /// (emission latency = emit vtime - this).
  double region_vstart_ = 0.0;
  CellJoinKernel kernel_;
  PointSet store_;
  EmissionManager emission_;
  std::vector<std::unique_ptr<PlanGroup>> groups_;

  // Per-region scratch, reused across calls. Together with the epoch arena
  // below this is what makes a steady-state region allocation-free: every
  // buffer either keeps its capacity across regions (the vectors here) or
  // comes out of the arena, which converges to one block after warmup.
  std::vector<JoinMatch> matches_;
  std::vector<std::vector<int64_t>> accepted_events_;
  std::vector<std::vector<int64_t>> evicted_events_;
  std::vector<int64_t> discard_tests_;
  std::vector<char> discard_hits_;
  SubspaceView accepted_view_;
  // Emission flush-barrier scratch (per-query shard outputs).
  std::vector<std::vector<int64_t>> flush_resolved_;
  std::vector<std::vector<int64_t>> flush_direct_;
  // Emission merge scratch (resolved (q, id) pairs of the discard phase).
  std::vector<std::pair<int, int64_t>> resolved_emits_;
  // Per-chunk projection scratch (chunks run on pool threads; each chunk
  // owns its slot).
  std::vector<std::vector<double>> project_scratch_;

  /// Epoch arena for the small per-region control scratch (active-group
  /// list, per-group comparison counts, emission tallies, column-pointer
  /// tables). Reset at each ProcessRegion entry; only the control thread
  /// allocates from it.
  Arena arena_;
  ArenaVector<PlanGroup*> active_groups_;
  ArenaVector<int64_t> group_cmps_;
  ArenaVector<int64_t> emitted_per_query_;
  ArenaVector<const double*> dim_cols_;
  /// SoA transpose of this region's appended store rows (compact_layout):
  /// built lazily at the first discard scan of a region, sliced per query
  /// into accepted_view_ via AssignFromColumns.
  ColumnBlock column_block_;

  /// One in-flight speculation at a time: the stage-graph edge that lets
  /// region k+1's join/projection overlap region k's eval/discard/emission.
  /// The worker task owns `join`/`projected` until `done` is ready; the
  /// control thread validates (rid + slots mask) before consuming and
  /// commits all charges serially, so a misprediction is free and a hit is
  /// byte-identical to the fresh computation.
  struct Speculation {
    /// Predicted region id; -1 when idle.
    int rid = -1;
    /// Slots mask snapshotted at launch; consumption requires it to still
    /// match (lineage prunes or grafts in between invalidate it).
    uint32_t slots_mask = 0;
    SpeculativeJoin join;
    /// Row-major projected output values (matches x store width).
    std::vector<double> projected;
    /// Per-row projection scratch of the worker task (owned by the task
    /// until `done` is ready; reused across launches).
    std::vector<double> project_values;
    std::future<void> done;
  };
  Speculation spec_;
  /// Projected buffer of the speculation consumed by the current
  /// ProcessRegion (swapped out before the next launch reuses spec_).
  std::vector<double> consumed_projected_;
};

}  // namespace caqe

#endif  // CAQE_EXEC_REGION_PIPELINE_H_
