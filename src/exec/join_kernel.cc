#include "exec/join_kernel.h"

#include <bit>

namespace caqe {

const CellJoinKernel::KeyIndex& CellJoinKernel::IndexFor(int cell_t,
                                                         int key_column,
                                                         EngineStats& stats) {
  const int64_t cache_key =
      static_cast<int64_t>(cell_t) * 64 + key_column;
  auto it = index_cache_.find(cache_key);
  if (it != index_cache_.end()) return it->second;

  KeyIndex index;
  const LeafCell& cell = part_t_->cell(cell_t);
  const Table& t = part_t_->table();
  for (int64_t row : cell.rows) {
    index[t.key(row, key_column)].push_back(row);
  }
  stats.join_probes += static_cast<int64_t>(cell.rows.size());
  return index_cache_.emplace(cache_key, std::move(index)).first->second;
}

void CellJoinKernel::Join(const RegionCollection& rc,
                          const OutputRegion& region, uint32_t slots_mask,
                          std::vector<JoinMatch>& out, EngineStats& stats) {
  if (slots_mask == 0) return;
  const LeafCell& cell_r = part_r_->cell(region.cell_r);
  const Table& r = part_r_->table();
  const bool single_slot = std::popcount(slots_mask) == 1;

  // Resolve the indexes up front so probing is tight.
  std::vector<std::pair<int, const KeyIndex*>> slot_indexes;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if ((slots_mask >> s) & 1) {
      slot_indexes.emplace_back(
          s, &IndexFor(region.cell_t, rc.predicate_slots[s], stats));
    }
  }

  std::unordered_map<int64_t, uint32_t> dedupe;
  for (int64_t row_r : cell_r.rows) {
    if (!single_slot) dedupe.clear();
    for (const auto& [slot, index] : slot_indexes) {
      ++stats.join_probes;
      const auto hit = index->find(r.key(row_r, rc.predicate_slots[slot]));
      if (hit == index->end()) continue;
      for (int64_t row_t : hit->second) {
        if (single_slot) {
          out.push_back(JoinMatch{row_r, row_t, uint32_t{1} << slot});
          ++stats.join_results;
        } else {
          dedupe[row_t] |= uint32_t{1} << slot;
        }
      }
    }
    if (!single_slot) {
      for (const auto& [row_t, mask] : dedupe) {
        out.push_back(JoinMatch{row_r, row_t, mask});
        ++stats.join_results;
      }
    }
  }
}

}  // namespace caqe
