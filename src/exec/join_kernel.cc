#include "exec/join_kernel.h"

#include <algorithm>
#include <array>
#include <unordered_set>
#include <utility>

#include "obs/metrics_registry.h"

namespace caqe {

void FlatKeyIndex::Build(const Table& t, const std::vector<int64_t>& rows,
                         int key_column) {
  const size_t n = rows.size();
  if (n == 0) {
    Release();
    return;
  }
  // Slot table: power of two >= 2x the row count (distinct keys <= rows),
  // so the load factor stays below 0.5 even when every key is unique.
  size_t slot_count = 64;
  while (slot_count < n * 2) slot_count <<= 1;

  // One blob, one allocation (grow-only across rebuilds of this entry).
  const size_t ids_bytes = n * sizeof(int64_t);
  const size_t slots_bytes = slot_count * sizeof(uint32_t);
  const size_t starts_bytes = (n + 1) * sizeof(uint32_t);
  const size_t need = ids_bytes + slots_bytes + starts_bytes +
                      n * sizeof(int32_t);
  if (blob_.capacity() < need) {
    blob_.reserve(std::max(need, blob_.capacity() * 2));
  }
  if (blob_.size() < need) blob_.resize(need);
  int64_t* const ids = reinterpret_cast<int64_t*>(blob_.data());
  uint32_t* const slots = reinterpret_cast<uint32_t*>(blob_.data() + ids_bytes);
  uint32_t* const starts =
      reinterpret_cast<uint32_t*>(blob_.data() + ids_bytes + slots_bytes);
  int32_t* const keys = reinterpret_cast<int32_t*>(blob_.data() + ids_bytes +
                                                   slots_bytes + starts_bytes);
  std::fill(slots, slots + slot_count, 0u);
  mask_ = static_cast<uint32_t>(slot_count - 1);

  // Pass 1: discover entries in first-occurrence row order; each entry's
  // id count accumulates in starts[entry + 1] (safe: entries < n and
  // starts has n + 1 slots).
  uint32_t num_keys = 0;
  for (int64_t row : rows) {
    const int32_t key = t.key(row, key_column);
    uint32_t slot = Hash(key) & mask_;
    while (true) {
      const uint32_t stored = slots[slot];
      if (stored == 0) {
        slots[slot] = num_keys + 1;
        keys[num_keys] = key;
        starts[num_keys + 1] = 1;
        ++num_keys;
        break;
      }
      if (keys[stored - 1] == key) {
        ++starts[stored];
        break;
      }
      slot = (slot + 1) & mask_;
    }
  }

  // In-place prefix sum: starts[e] = first offset of entry e's run.
  starts[0] = 0;
  for (uint32_t e = 1; e <= num_keys; ++e) starts[e] += starts[e - 1];
  const uint32_t total = starts[num_keys];

  // Pass 2: fill each entry's contiguous run in row order, using starts[e]
  // itself as the fill cursor (reproducing the legacy per-key push_back
  // order), then shift the cursors back down: after the fill starts[e]
  // holds entry e's run *end*, which is exactly entry e+1's start.
  for (int64_t row : rows) {
    const int32_t key = t.key(row, key_column);
    uint32_t slot = Hash(key) & mask_;
    while (keys[slots[slot] - 1] != key) slot = (slot + 1) & mask_;
    ids[starts[slots[slot] - 1]++] = row;
  }
  for (uint32_t e = num_keys; e > 0; --e) starts[e] = starts[e - 1];
  starts[0] = 0;

  slots_ = slots;
  keys_ = keys;
  starts_ = starts;
  ids_ = ids;
  num_keys_ = static_cast<int64_t>(num_keys);
  num_ids_ = static_cast<int64_t>(total);
}

void CellJoinKernel::HitTable::Grow() {
  const size_t new_cap = keys.empty() ? 64 : (mask + 1) * 2;
  std::vector<int64_t> old_keys = std::move(keys);
  std::vector<size_t> old_slots = std::move(slots);
  std::vector<uint32_t> old_stamps = std::move(stamps);
  keys.assign(new_cap, 0);
  slots.assign(new_cap, 0);
  stamps.assign(new_cap, 0);
  const size_t old_mask = mask;
  mask = new_cap - 1;
  if (gen == 0) gen = 1;  // Fresh table: stamp 0 now means "empty".
  // Re-seat the current generation's entries (growth can hit mid-row);
  // stale generations are dropped — clear() invalidated them already.
  for (size_t i = 0; i <= old_mask && !old_keys.empty(); ++i) {
    if (old_stamps[i] != gen) continue;
    size_t j = Hash(old_keys[i]) & mask;
    while (stamps[j] == gen) j = (j + 1) & mask;
    stamps[j] = gen;
    keys[j] = old_keys[i];
    slots[j] = old_slots[i];
  }
}

CellJoinKernel::~CellJoinKernel() {
  for (auto& [key, entry] : index_cache_) {
    (void)key;
    if (entry.ready.valid()) entry.ready.wait();
  }
}

void CellJoinKernel::BuildInto(int cell_t, int key_column,
                               CacheEntry& entry) {
  const LeafCell& cell = part_t_->cell(cell_t);
  const Table& t = part_t_->table();
  if (compact_layout_) {
    entry.flat_index.Build(t, cell.rows, key_column);
  } else {
    for (int64_t row : cell.rows) {
      entry.map_index[t.key(row, key_column)].push_back(row);
    }
  }
}

void CellJoinKernel::CountBuild() {
  // Always called on the control thread (lazy builds and prefetch
  // submission), never from the worker tasks themselves.
  ++index_builds_;
  if (builds_counter_ != nullptr) builds_counter_->Inc();
}

CellJoinKernel::CacheEntry& CellJoinKernel::EntryFor(int cell_t,
                                                     int key_column) {
  const int64_t cache_key = CacheKey(cell_t, key_column);
  auto it = index_cache_.find(cache_key);
  if (it == index_cache_.end()) {
    it = index_cache_.try_emplace(cache_key).first;
  }
  CacheEntry& entry = it->second;
  if (entry.ready.valid()) {
    entry.ready.get();
    entry.ready = {};  // Consumed: the entry is evictable from here on.
  }
  if (!entry.built) {
    BuildInto(cell_t, key_column, entry);
    CountBuild();
    entry.built = true;
    ++built_entries_;
  }
  entry.last_used = ++use_serial_;
  return entry;
}

const CellJoinKernel::CacheEntry& CellJoinKernel::IndexFor(
    int cell_t, int key_column, EngineStats& stats) {
  CacheEntry& entry = EntryFor(cell_t, key_column);
  if (!entry.charged) {
    entry.charged = true;
    stats.join_probes +=
        static_cast<int64_t>(part_t_->cell(cell_t).rows.size());
  }
  return entry;
}

const CellJoinKernel::CacheEntry& CellJoinKernel::IndexForSpeculation(
    int cell_t, int key_column, std::vector<int64_t>& uncharged) {
  CacheEntry& entry = EntryFor(cell_t, key_column);
  // Leave `charged` untouched: the cost is claimed only if the caller
  // validates the speculation and calls CommitSpeculation.
  if (!entry.charged) uncharged.push_back(CacheKey(cell_t, key_column));
  return entry;
}

void CellJoinKernel::CommitSpeculation(
    const std::vector<int64_t>& uncharged_keys, EngineStats& stats) {
  for (const int64_t cache_key : uncharged_keys) {
    CacheEntry& entry = index_cache_.at(cache_key);
    if (entry.charged) continue;
    entry.charged = true;
    const int cell_t = static_cast<int>(cache_key >> 32);
    stats.join_probes +=
        static_cast<int64_t>(part_t_->cell(cell_t).rows.size());
  }
}

void CellJoinKernel::EvictOverflow(uint64_t floor) {
  if (cache_capacity_ <= 0 || built_entries_ <= cache_capacity_) return;
  // Collect evictable built entries: already consumed (no in-flight
  // prefetch) and not used by the join that just ran. Sorting by the use
  // serial makes the eviction order deterministic regardless of map
  // iteration order.
  std::vector<std::pair<uint64_t, CacheEntry*>> candidates;
  for (auto& [key, entry] : index_cache_) {
    (void)key;
    if (!entry.built || entry.ready.valid() || entry.last_used >= floor) {
      continue;
    }
    candidates.emplace_back(entry.last_used, &entry);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [serial, entry] : candidates) {
    (void)serial;
    if (built_entries_ <= cache_capacity_) break;
    entry->map_index = KeyIndex{};
    entry->flat_index.Release();
    entry->built = false;
    --built_entries_;
    ++cache_evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->Inc();
  }
}

void CellJoinKernel::PrefetchIndexes(const RegionCollection& rc,
                                     ThreadPool* pool) {
  if (pool == nullptr) return;
  // Collect every (cell_t, key) pair some region can still need, in region
  // order so high-fanout cells (scanned first) tend to be ready first.
  std::vector<std::pair<int, int>> needed;
  std::unordered_set<int64_t> seen;
  for (const OutputRegion& region : rc.regions) {
    for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
      if (region.join_sizes[s] <= 0) continue;
      if (!region.rql.Intersects(rc.queries_of_slot[s])) continue;
      const int key_column = rc.predicate_slots[s];
      const int64_t key = CacheKey(region.cell_t, key_column);
      if (!seen.insert(key).second) continue;
      auto it = index_cache_.find(key);
      if (it != index_cache_.end() &&
          (it->second.built || it->second.ready.valid())) {
        continue;
      }
      needed.emplace_back(region.cell_t, key_column);
    }
  }
  // Create the cache slots on this thread so the background builders never
  // touch the map structure itself (unordered_map element references stay
  // valid across later insertions).
  for (const auto& [cell_t, key_column] : needed) {
    CacheEntry& entry = index_cache_[CacheKey(cell_t, key_column)];
    entry.built = true;
    ++built_entries_;
    CountBuild();
    entry.ready =
        pool->Submit([this, &entry, cell_t = cell_t,
                      key_column = key_column] {
              BuildInto(cell_t, key_column, entry);
            })
            .share();
  }
}

void CellJoinKernel::Join(const RegionCollection& rc,
                          const OutputRegion& region, uint32_t slots_mask,
                          std::vector<JoinMatch>& out, EngineStats& stats,
                          ThreadPool* pool) {
  if (slots_mask == 0) return;
  const uint64_t floor = use_serial_ + 1;

  // Resolve the indexes up front so probing is tight (this is also where
  // lazy builds and first-use charging happen, on the calling thread).
  std::array<std::pair<int, const CacheEntry*>, 32> slot_indexes;
  int num_slots = 0;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if ((slots_mask >> s) & 1) {
      slot_indexes[num_slots++] = {
          s, &IndexFor(region.cell_t, rc.predicate_slots[s], stats)};
    }
  }
  int64_t probes = 0;
  int64_t results = 0;
  ProbeRows(rc, region, slot_indexes.data(), num_slots, out, probes, results,
            pool);
  stats.join_probes += probes;
  stats.join_results += results;
  EvictOverflow(floor);
}

void CellJoinKernel::JoinForSpeculation(const RegionCollection& rc,
                                        const OutputRegion& region,
                                        uint32_t slots_mask,
                                        SpeculativeJoin& out) {
  out.Clear();
  if (slots_mask == 0) return;
  const uint64_t floor = use_serial_ + 1;
  std::array<std::pair<int, const CacheEntry*>, 32> slot_indexes;
  int num_slots = 0;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if ((slots_mask >> s) & 1) {
      slot_indexes[num_slots++] = {
          s, &IndexForSpeculation(region.cell_t, rc.predicate_slots[s],
                                  out.uncharged_keys)};
    }
  }
  // Serial probing (single chunk): the match order is the canonical one
  // every chunked merge reproduces, so a consumed speculation is
  // indistinguishable from a fresh Join.
  ProbeRows(rc, region, slot_indexes.data(), num_slots, out.matches,
            out.probes, out.results, /*pool=*/nullptr);
  EvictOverflow(floor);
}

void CellJoinKernel::ProbeRows(
    const RegionCollection& rc, const OutputRegion& region,
    const std::pair<int, const CacheEntry*>* slot_indexes, int num_indexes,
    std::vector<JoinMatch>& out, int64_t& probes, int64_t& results,
    ThreadPool* pool) const {
  const LeafCell& cell_r = part_r_->cell(region.cell_r);
  const Table& r = part_r_->table();
  const bool single_slot = num_indexes == 1;
  const bool flat = compact_layout_;

  const int64_t num_rows = static_cast<int64_t>(cell_r.rows.size());
  constexpr int64_t kMinRowsPerChunk = 128;
  const int chunks = NumChunks(pool, num_rows, kMinRowsPerChunk);

  if (probe_shards_.size() < static_cast<size_t>(chunks)) {
    probe_shards_.resize(chunks);
  }

  RunChunks(pool, chunks, [&](int c) {
    const auto [begin, end] = ChunkRange(num_rows, chunks, c);
    ProbeShard& shard = probe_shards_[c];
    shard.out.clear();
    shard.probes = 0;
    shard.results = 0;
    // Multi-slot matches are emitted in first-seen order per row (not hash
    // order) so the sequence is independent of map internals.
    auto& hits = shard.hits;
    auto& hit_of_row = shard.hit_of_row;
    hits.clear();
    hit_of_row.clear();
    // Emits one (row_t, slot) hit; shared by both index layouts.
    const auto emit = [&](int64_t row_r, int64_t row_t, int slot) {
      if (single_slot) {
        shard.out.push_back(JoinMatch{row_r, row_t, uint32_t{1} << slot});
        ++shard.results;
      } else {
        bool inserted = false;
        size_t& pos = hit_of_row.FindOrInsert(row_t, inserted);
        if (inserted) {
          pos = hits.size();
          hits.emplace_back(row_t, 0);
        }
        hits[pos].second |= uint32_t{1} << slot;
      }
    };
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row_r = cell_r.rows[i];
      if (!single_slot) {
        hits.clear();
        hit_of_row.clear();
      }
      for (int s = 0; s < num_indexes; ++s) {
        const auto& [slot, entry] = slot_indexes[s];
        ++shard.probes;
        const int32_t key = r.key(row_r, rc.predicate_slots[slot]);
        if (flat) {
          for (int64_t row_t : entry->flat_index.Find(key)) {
            emit(row_r, row_t, slot);
          }
        } else {
          const auto hit = entry->map_index.find(key);
          if (hit == entry->map_index.end()) continue;
          for (int64_t row_t : hit->second) emit(row_r, row_t, slot);
        }
      }
      if (!single_slot) {
        for (const auto& [row_t, mask] : hits) {
          shard.out.push_back(JoinMatch{row_r, row_t, mask});
          ++shard.results;
        }
      }
    }
  });

  // Merge in chunk order: identical match sequence and counter totals at
  // every thread count.
  for (int c = 0; c < chunks; ++c) {
    ProbeShard& shard = probe_shards_[c];
    out.insert(out.end(), shard.out.begin(), shard.out.end());
    probes += shard.probes;
    results += shard.results;
  }
}

}  // namespace caqe
