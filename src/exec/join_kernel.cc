#include "exec/join_kernel.h"

#include <unordered_set>
#include <utility>

namespace caqe {

CellJoinKernel::~CellJoinKernel() {
  for (auto& [key, entry] : index_cache_) {
    (void)key;
    if (entry.ready.valid()) entry.ready.wait();
  }
}

void CellJoinKernel::BuildInto(int cell_t, int key_column,
                               KeyIndex& index) const {
  const LeafCell& cell = part_t_->cell(cell_t);
  const Table& t = part_t_->table();
  for (int64_t row : cell.rows) {
    index[t.key(row, key_column)].push_back(row);
  }
}

void CellJoinKernel::PrefetchIndexes(const RegionCollection& rc,
                                     ThreadPool* pool) {
  if (pool == nullptr) return;
  // Collect every (cell_t, key) pair some region can still need, in region
  // order so high-fanout cells (scanned first) tend to be ready first.
  std::vector<std::pair<int, int>> needed;
  std::unordered_set<int64_t> seen;
  for (const OutputRegion& region : rc.regions) {
    for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
      if (region.join_sizes[s] <= 0) continue;
      if (!region.rql.Intersects(rc.queries_of_slot[s])) continue;
      const int key_column = rc.predicate_slots[s];
      const int64_t key = CacheKey(region.cell_t, key_column);
      if (!seen.insert(key).second || index_cache_.contains(key)) continue;
      needed.emplace_back(region.cell_t, key_column);
    }
  }
  // Create the cache slots on this thread so the background builders never
  // touch the map structure itself (unordered_map element references stay
  // valid across later insertions).
  for (const auto& [cell_t, key_column] : needed) {
    CacheEntry& entry = index_cache_[CacheKey(cell_t, key_column)];
    entry.ready =
        pool->Submit([this, &entry, cell_t = cell_t,
                      key_column = key_column] {
              BuildInto(cell_t, key_column, entry.index);
            })
            .share();
  }
}

const CellJoinKernel::KeyIndex& CellJoinKernel::IndexFor(int cell_t,
                                                         int key_column,
                                                         EngineStats& stats) {
  const int64_t cache_key = CacheKey(cell_t, key_column);
  auto it = index_cache_.find(cache_key);
  if (it == index_cache_.end()) {
    it = index_cache_.try_emplace(cache_key).first;
    BuildInto(cell_t, key_column, it->second.index);
  }
  CacheEntry& entry = it->second;
  if (entry.ready.valid()) entry.ready.get();
  if (!entry.charged) {
    entry.charged = true;
    stats.join_probes +=
        static_cast<int64_t>(part_t_->cell(cell_t).rows.size());
  }
  return entry.index;
}

const CellJoinKernel::KeyIndex& CellJoinKernel::IndexForSpeculation(
    int cell_t, int key_column, std::vector<int64_t>& uncharged) {
  const int64_t cache_key = CacheKey(cell_t, key_column);
  auto it = index_cache_.find(cache_key);
  if (it == index_cache_.end()) {
    it = index_cache_.try_emplace(cache_key).first;
    BuildInto(cell_t, key_column, it->second.index);
  }
  CacheEntry& entry = it->second;
  if (entry.ready.valid()) entry.ready.get();
  // Leave `charged` untouched: the cost is claimed only if the caller
  // validates the speculation and calls CommitSpeculation.
  if (!entry.charged) uncharged.push_back(cache_key);
  return entry.index;
}

void CellJoinKernel::CommitSpeculation(
    const std::vector<int64_t>& uncharged_keys, EngineStats& stats) {
  for (const int64_t cache_key : uncharged_keys) {
    CacheEntry& entry = index_cache_.at(cache_key);
    if (entry.charged) continue;
    entry.charged = true;
    const int cell_t = static_cast<int>(cache_key >> 32);
    stats.join_probes +=
        static_cast<int64_t>(part_t_->cell(cell_t).rows.size());
  }
}

void CellJoinKernel::Join(const RegionCollection& rc,
                          const OutputRegion& region, uint32_t slots_mask,
                          std::vector<JoinMatch>& out, EngineStats& stats,
                          ThreadPool* pool) {
  if (slots_mask == 0) return;

  // Resolve the indexes up front so probing is tight (this is also where
  // lazy builds and first-use charging happen, on the calling thread).
  std::vector<std::pair<int, const KeyIndex*>> slot_indexes;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if ((slots_mask >> s) & 1) {
      slot_indexes.emplace_back(
          s, &IndexFor(region.cell_t, rc.predicate_slots[s], stats));
    }
  }
  int64_t probes = 0;
  int64_t results = 0;
  ProbeRows(rc, region, slot_indexes, out, probes, results, pool);
  stats.join_probes += probes;
  stats.join_results += results;
}

void CellJoinKernel::JoinForSpeculation(const RegionCollection& rc,
                                        const OutputRegion& region,
                                        uint32_t slots_mask,
                                        SpeculativeJoin& out) {
  out.Clear();
  if (slots_mask == 0) return;
  std::vector<std::pair<int, const KeyIndex*>> slot_indexes;
  for (int s = 0; s < static_cast<int>(rc.predicate_slots.size()); ++s) {
    if ((slots_mask >> s) & 1) {
      slot_indexes.emplace_back(
          s, &IndexForSpeculation(region.cell_t, rc.predicate_slots[s],
                                  out.uncharged_keys));
    }
  }
  // Serial probing (single chunk): the match order is the canonical one
  // every chunked merge reproduces, so a consumed speculation is
  // indistinguishable from a fresh Join.
  ProbeRows(rc, region, slot_indexes, out.matches, out.probes, out.results,
            /*pool=*/nullptr);
}

void CellJoinKernel::ProbeRows(
    const RegionCollection& rc, const OutputRegion& region,
    const std::vector<std::pair<int, const KeyIndex*>>& slot_indexes,
    std::vector<JoinMatch>& out, int64_t& probes, int64_t& results,
    ThreadPool* pool) const {
  const LeafCell& cell_r = part_r_->cell(region.cell_r);
  const Table& r = part_r_->table();
  const bool single_slot = slot_indexes.size() == 1;

  const int64_t num_rows = static_cast<int64_t>(cell_r.rows.size());
  constexpr int64_t kMinRowsPerChunk = 128;
  const int chunks = NumChunks(pool, num_rows, kMinRowsPerChunk);

  struct Shard {
    std::vector<JoinMatch> out;
    int64_t probes = 0;
    int64_t results = 0;
  };
  std::vector<Shard> shards(chunks);

  RunChunks(pool, chunks, [&](int c) {
    const auto [begin, end] = ChunkRange(num_rows, chunks, c);
    Shard& shard = shards[c];
    // Multi-slot matches are emitted in first-seen order per row (not hash
    // order) so the sequence is independent of map internals.
    std::vector<std::pair<int64_t, uint32_t>> hits;
    std::unordered_map<int64_t, size_t> hit_of_row;
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row_r = cell_r.rows[i];
      if (!single_slot) {
        hits.clear();
        hit_of_row.clear();
      }
      for (const auto& [slot, index] : slot_indexes) {
        ++shard.probes;
        const auto hit = index->find(r.key(row_r, rc.predicate_slots[slot]));
        if (hit == index->end()) continue;
        for (int64_t row_t : hit->second) {
          if (single_slot) {
            shard.out.push_back(JoinMatch{row_r, row_t, uint32_t{1} << slot});
            ++shard.results;
          } else {
            const auto [pos, inserted] =
                hit_of_row.try_emplace(row_t, hits.size());
            if (inserted) hits.emplace_back(row_t, 0);
            hits[pos->second].second |= uint32_t{1} << slot;
          }
        }
      }
      if (!single_slot) {
        for (const auto& [row_t, mask] : hits) {
          shard.out.push_back(JoinMatch{row_r, row_t, mask});
          ++shard.results;
        }
      }
    }
  });

  // Merge in chunk order: identical match sequence and counter totals at
  // every thread count.
  for (Shard& shard : shards) {
    out.insert(out.end(), shard.out.begin(), shard.out.end());
    probes += shard.probes;
    results += shard.results;
  }
}

}  // namespace caqe
