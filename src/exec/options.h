// Engine execution options.
#ifndef CAQE_EXEC_OPTIONS_H_
#define CAQE_EXEC_OPTIONS_H_

#include <functional>
#include <vector>

#include "common/virtual_clock.h"

namespace caqe {

struct Observability;

/// One observable event of an engine execution, for debugging and
/// post-hoc analysis of scheduling decisions.
struct ExecEvent {
  enum class Kind {
    /// A region was picked for tuple-level processing.
    kRegionScheduled,
    /// A region was discarded without processing (lineage emptied).
    kRegionDiscarded,
    /// One query was pruned from a region's lineage.
    kQueryPruned,
    /// `count` results of `query` were emitted.
    kResultsEmitted,
    /// Serving layer: `query` was admitted and grafted into the running
    /// workload (`count` = number of live regions in its lineage).
    kQueryAdmitted,
    /// Serving layer: `query` was retired mid-run (`count` = parked
    /// candidates dropped with it).
    kQueryRetired,
    /// Serving layer: a calibration shift re-previewed deferred request
    /// `query` (`count` = 1 when the re-preview upgraded it to an admit).
    kQueryRepreviewed,
  };
  Kind kind = Kind::kRegionScheduled;
  /// Virtual time of the event.
  double vtime = 0.0;
  int region = -1;
  int query = -1;
  int64_t count = 0;
};

/// Input partitioning structure used by region-based engines.
enum class PartitionStrategy {
  /// Equi-width grid with an auto-chosen per-dimension slice vector.
  kGrid,
  /// Adaptive d-dimensional quad tree (the paper's Section 5.1 structure):
  /// balanced cell populations under skew.
  kQuadTree,
};

/// Region scheduling policy of the shared execution core.
enum class SchedulePolicy {
  /// CSM-based contract-driven ordering (CAQE, Algorithm 1).
  kContractDriven,
  /// Count-driven ordering: estimated early results per second (the
  /// ProgXe+ policy).
  kCountDriven,
  /// Static scan order (region id order) — the S-JFSL strawman that shares
  /// the plan but ignores contracts.
  kStaticScan,
};

/// Options accepted by every engine.
struct ExecOptions {
  /// Virtual-time cost model used for contract timestamps.
  CostModel cost;
  /// Worker threads for the parallel execution phases of region-based
  /// engines (coarse join, join-kernel index prefetch and probing,
  /// plan-group skyline evaluation, tuple-level discard scans).
  /// 1 (default) runs today's serial path; 0 uses every hardware thread.
  /// Contract scores are charged in *virtual* time per unit of work, so
  /// reports are bit-identical across thread counts — only wall_seconds
  /// changes. Engines that cannot use threads (JFSL, SSMJ) ignore this.
  int num_threads = 1;
  /// Input partitioning structure (grid or quad tree).
  PartitionStrategy partition_strategy = PartitionStrategy::kGrid;
  /// Grid slices per attribute when partitioning inputs; 0 picks a value
  /// automatically so the region count stays near `target_regions`
  /// (ignored by the quad-tree strategy).
  int cells_per_dim = 0;
  /// Soft cap used by the automatic granularity choice.
  int target_regions = 512;
  /// Enables Theorem-1 feeder gating in the shared skyline evaluator
  /// (strict-dominator form — exact even under value ties). Turning it off
  /// disables the comparison-sharing shortcut; results are identical.
  bool dva_mode = true;
  /// Capture per-result values and timestamps in the report (tests and
  /// examples; benchmarks leave it off).
  bool capture_results = false;
  /// Apply Eq. 11 satisfaction feedback (CAQE default; ablation knob).
  bool feedback_enabled = true;
  /// Overlap the region pipeline across scheduler picks: while region k
  /// runs its discard scan and emission flush, the join + projection of the
  /// *predicted* next region execute speculatively on the worker pool, and
  /// the sharded emission park set is flushed in parallel. Speculation is
  /// validated against the actual pick (Algorithm 1's order is never
  /// altered) and all counters are committed serially, so reports, events
  /// and obs spans are byte-identical with the flag on or off at any
  /// num_threads. Requires num_threads > 1 to have any effect. Default off.
  bool pipeline_regions = false;
  /// Drive the coarse phase from bulk-loaded packed box trees instead of
  /// flat scans: region discovery classifies each query's selection ranges
  /// against a cell R-tree (whole subtrees accepted/rejected via their
  /// MBRs) and the coarse skyline prune finds each region's first
  /// dominator by best-first branch-and-bound. Op charging is
  /// serial-identical, so reports are byte-identical with the flag on or
  /// off at any num_threads — only wall time and the caqe_coarse_index_*
  /// metrics change. Default off.
  bool coarse_index = false;
  /// Run the coarse-level (MQLA) skyline prune before scheduling (CAQE
  /// default; ablation knob).
  bool coarse_prune = true;
  /// Cache-conscious steady-state layout for the region hot path: flat
  /// CSR join indexes instead of node-based maps, arena/SoA scratch for
  /// the discard scan, and store-backed incremental skylines. Probe order
  /// and every charge are identical either way, so reports are
  /// byte-identical with the flag on or off — only memory layout, steady-
  /// state allocation counts, and wall time change. Default on; the off
  /// position exists for the alloc/perf A-B benchmark and as a
  /// determinism cross-check in the matrix scripts.
  bool compact_layout = true;
  /// Bound on built join-index cache entries kept across regions; beyond
  /// it, least-recently-used indexes are released deterministically
  /// (<= 0 means unbounded — the pre-bound behavior). First-use charge
  /// state survives eviction, so reports are identical at any value.
  int64_t join_index_cache_entries = 4096;
  /// Optional exact final result cardinalities, one per query (index =
  /// query index). When provided, cardinality contracts (C4/C5) score
  /// against the true N of Table 2 instead of the Buchta estimate; entries
  /// <= 0 fall back to the estimate. The benchmark harness fills this from
  /// a calibration run so all engines are scored identically.
  std::vector<double> known_result_counts;
  /// When non-null, region-based engines append their scheduling /
  /// discarding / emission events here (caller keeps ownership; must
  /// outlive the Execute call).
  std::vector<ExecEvent>* trace = nullptr;
  /// Streaming consumer: invoked synchronously for every reported result,
  /// in report order — (query index, virtual report time, utility). This is
  /// how an application consumes progressive results instead of waiting
  /// for the final report.
  std::function<void(int query, double time, double utility)> on_result;
  /// Tracing + metrics + contract-health bundle (src/obs/). Null (default)
  /// disables all observability at the cost of one branch per span.
  /// Observability never feeds the deterministic counters or the virtual
  /// clock: reports are byte-identical with or without it.
  Observability* obs = nullptr;
};

}  // namespace caqe

#endif  // CAQE_EXEC_OPTIONS_H_
