#include "cuboid/min_max_cuboid.h"

#include <algorithm>
#include <map>

namespace caqe {

Result<MinMaxCuboid> MinMaxCuboid::Build(
    const std::vector<Subspace>& preferences) {
  if (preferences.empty()) {
    return Status::InvalidArgument("no query preferences given");
  }
  if (preferences.size() > QuerySet::kMaxQueries) {
    return Status::InvalidArgument("too many queries (max 64)");
  }
  Subspace uni;
  for (const Subspace& p : preferences) {
    if (p.empty()) {
      return Status::InvalidArgument("empty query preference");
    }
    uni = uni.Union(p);
  }
  if (uni.size() > 20) {
    return Status::InvalidArgument(
        "union of preferences spans too many dimensions (max 20)");
  }

  // Candidate subspaces: every non-empty submask of the union that serves
  // at least one query (Def. 6).
  struct Candidate {
    QuerySet serves;
    QuerySet preference_of;
  };
  std::map<uint32_t, Candidate> candidates;
  const uint32_t u = uni.mask();
  for (uint32_t sub = u; sub != 0; sub = (sub - 1) & u) {
    const Subspace s(sub);
    Candidate c;
    for (size_t q = 0; q < preferences.size(); ++q) {
      if (s.IsSubsetOf(preferences[q])) c.serves.Add(static_cast<int>(q));
      if (s == preferences[q]) c.preference_of.Add(static_cast<int>(q));
    }
    if (!c.serves.empty()) candidates.emplace(sub, c);
  }

  // Retention test (Def. 7). Condition 2 reduces to "no strict superspace
  // candidate with the same serve set" because QServe is antitone: U ⊆ V
  // implies QServe(V) ⊆ QServe(U).
  MinMaxCuboid cuboid;
  cuboid.union_space_ = uni;
  for (const auto& [mask, cand] : candidates) {
    const Subspace s(mask);
    const bool cond1 = (s.size() == 1) || (cand.serves.size() > 1);
    const bool cond3 = !cand.preference_of.empty();
    bool cond2 = true;
    if (!cond1 && !cond3) {
      for (const auto& [other_mask, other] : candidates) {
        const Subspace o(other_mask);
        if (s.IsStrictSubsetOf(o) && cand.serves == other.serves) {
          cond2 = false;
          break;
        }
      }
    }
    if (cond1 || cond2 || cond3) {
      CuboidNode node;
      node.subspace = s;
      node.serves = cand.serves;
      node.preference_of = cand.preference_of;
      node.level = s.size() - 1;
      cuboid.nodes_.push_back(node);
    }
  }

  // Descending size so feeders precede the nodes they feed.
  std::sort(cuboid.nodes_.begin(), cuboid.nodes_.end(),
            [](const CuboidNode& a, const CuboidNode& b) {
              if (a.subspace.size() != b.subspace.size()) {
                return a.subspace.size() > b.subspace.size();
              }
              return a.subspace < b.subspace;
            });

  // Feeder: smallest strict superspace node (ties by order).
  for (size_t i = 0; i < cuboid.nodes_.size(); ++i) {
    int best = -1;
    int best_size = Subspace::kMaxDims + 1;
    for (size_t j = 0; j < cuboid.nodes_.size(); ++j) {
      if (i == j) continue;
      if (cuboid.nodes_[i].subspace.IsStrictSubsetOf(
              cuboid.nodes_[j].subspace) &&
          cuboid.nodes_[j].subspace.size() < best_size) {
        best = static_cast<int>(j);
        best_size = cuboid.nodes_[j].subspace.size();
      }
    }
    cuboid.nodes_[i].feeder = best;
  }

  cuboid.preference_nodes_.resize(preferences.size(), -1);
  for (size_t q = 0; q < preferences.size(); ++q) {
    const int node = cuboid.FindNode(preferences[q]);
    CAQE_CHECK(node >= 0);  // Guaranteed by condition 3.
    cuboid.preference_nodes_[q] = node;
  }
  return cuboid;
}

int MinMaxCuboid::FindNode(Subspace s) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].subspace == s) return static_cast<int>(i);
  }
  return -1;
}

int64_t MinMaxCuboid::FullSkycubeSize() const {
  return (int64_t{1} << union_space_.size()) - 1;
}

}  // namespace caqe
