// The min-max cuboid shared plan structure (paper Section 4.1, Def. 6/7).
//
// For a workload of skyline preferences over a common output space, the
// min-max cuboid is the subset of the skycube lattice that (provably)
// suffices to share skyline evaluation: all singletons, every subspace
// serving more than one query, every query's full preference, and maximal
// subspaces not subsumed by a superspace serving the same queries. Only
// subspaces that serve at least one query are considered (Def. 6).
#ifndef CAQE_CUBOID_MIN_MAX_CUBOID_H_
#define CAQE_CUBOID_MIN_MAX_CUBOID_H_

#include <cstdint>
#include <vector>

#include "common/query_set.h"
#include "common/status.h"
#include "cuboid/subspace.h"

namespace caqe {

/// One lattice node retained by the min-max cuboid.
struct CuboidNode {
  Subspace subspace;
  /// QServe(U, S_Q): queries whose preference is a superset of `subspace`
  /// (Def. 6). Never empty for retained nodes.
  QuerySet serves;
  /// Queries whose full preference equals `subspace` — the node publishes
  /// these queries' final skylines.
  QuerySet preference_of;
  /// Index (into MinMaxCuboid::nodes()) of the smallest strict superspace
  /// node, or -1 when none exists. Used by the shared evaluator to feed a
  /// node only with tuples accepted by its feeder (Theorem 1 top-down).
  int feeder = -1;
  /// Lattice level: number of dimensions minus one (singletons are level 0,
  /// matching the paper's Figure 6).
  int level = 0;
};

/// The full set of query preferences plus the retained lattice nodes.
class MinMaxCuboid {
 public:
  /// Builds the min-max cuboid for query preferences `preferences`
  /// (preferences[i] is query i's skyline subspace). All preferences must
  /// be non-empty and the union must span at most Subspace::kMaxDims
  /// dimensions. Nodes are ordered by descending subspace size (feeders
  /// before fed nodes), ties by ascending mask.
  static Result<MinMaxCuboid> Build(const std::vector<Subspace>& preferences);

  const std::vector<CuboidNode>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Union of all query preferences.
  Subspace union_space() const { return union_space_; }

  /// Index of the node whose subspace equals query `q`'s preference.
  int preference_node(int q) const {
    CAQE_DCHECK(q >= 0 && q < static_cast<int>(preference_nodes_.size()));
    return preference_nodes_[q];
  }

  /// Index of the node with subspace `s`, or -1.
  int FindNode(Subspace s) const;

  /// Number of nodes in the corresponding *full* skycube (2^d - 1, d =
  /// union dimensionality). Retained-vs-full is the sharing headroom
  /// reported by the ablation benchmarks.
  int64_t FullSkycubeSize() const;

 private:
  std::vector<CuboidNode> nodes_;
  std::vector<int> preference_nodes_;
  Subspace union_space_;
};

}  // namespace caqe

#endif  // CAQE_CUBOID_MIN_MAX_CUBOID_H_
