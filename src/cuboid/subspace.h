// Subspace (skyline dimension subset) algebra over the workload's output
// space (paper Section 2.1: a subspace is a subset of the full space D).
#ifndef CAQE_CUBOID_SUBSPACE_H_
#define CAQE_CUBOID_SUBSPACE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace caqe {

/// A set of output-dimension indices in [0, 32), stored as a bitmask.
class Subspace {
 public:
  static constexpr int kMaxDims = 32;

  constexpr Subspace() = default;
  explicit constexpr Subspace(uint32_t mask) : mask_(mask) {}

  /// Subspace from explicit dimension indices.
  static Subspace FromDims(const std::vector<int>& dims) {
    Subspace s;
    for (int d : dims) {
      CAQE_DCHECK(d >= 0 && d < kMaxDims);
      s.mask_ |= uint32_t{1} << d;
    }
    return s;
  }

  /// Full space over the first `n` dimensions.
  static Subspace FullSpace(int n) {
    CAQE_DCHECK(n >= 0 && n <= kMaxDims);
    return Subspace(n == kMaxDims ? ~uint32_t{0} : ((uint32_t{1} << n) - 1));
  }

  uint32_t mask() const { return mask_; }
  int size() const { return std::popcount(mask_); }
  bool empty() const { return mask_ == 0; }

  bool Contains(int dim) const {
    CAQE_DCHECK(dim >= 0 && dim < kMaxDims);
    return (mask_ >> dim) & 1;
  }
  /// True when this is a (non-strict) subset of `other`.
  bool IsSubsetOf(Subspace other) const {
    return (mask_ & ~other.mask_) == 0;
  }
  /// True when this is a strict subset of `other`.
  bool IsStrictSubsetOf(Subspace other) const {
    return IsSubsetOf(other) && mask_ != other.mask_;
  }

  Subspace Union(Subspace other) const { return Subspace(mask_ | other.mask_); }
  Subspace Intersect(Subspace other) const {
    return Subspace(mask_ & other.mask_);
  }

  /// Member dimension indices, ascending.
  std::vector<int> Dims() const {
    std::vector<int> dims;
    uint32_t rest = mask_;
    while (rest != 0) {
      dims.push_back(std::countr_zero(rest));
      rest &= rest - 1;
    }
    return dims;
  }

  friend bool operator==(Subspace a, Subspace b) { return a.mask_ == b.mask_; }
  friend bool operator!=(Subspace a, Subspace b) { return a.mask_ != b.mask_; }
  friend bool operator<(Subspace a, Subspace b) { return a.mask_ < b.mask_; }

  /// Renders e.g. "{d0,d2}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int d : Dims()) {
      if (!first) out += ",";
      out += "d" + std::to_string(d);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint32_t mask_ = 0;
};

}  // namespace caqe

#endif  // CAQE_CUBOID_SUBSPACE_H_
