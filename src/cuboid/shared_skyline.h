// Shared incremental skyline evaluation over the min-max cuboid.
//
// All queries of a plan group see the same join-tuple stream (same join
// predicate), so their subspace skylines can be maintained together. The
// evaluator exploits Theorem 1 top-down: a tuple *strictly* dominated in a
// superspace (worse in every dimension) is dominated in every subspace,
// hence it can be gated out of the whole subtree. Each cuboid node is
// therefore fed only with tuples not strictly dominated at its feeder (its
// smallest superspace node, ultimately a synthetic root over the union of
// all preferences), which shrinks the candidate stream dramatically as it
// flows down the lattice — this is the comparison sharing of paper
// Section 4.1.
//
// Requiring the gating dominator to be strict makes the shortcut exact
// even under value ties (the paper needs the DVA assumption because it
// gates on any domination); a rejection by a merely tying dominator falls
// through to the children. dva_mode = false disables gating entirely
// (every node sees every tuple) — useful to measure what the gating buys.
#ifndef CAQE_CUBOID_SHARED_SKYLINE_H_
#define CAQE_CUBOID_SHARED_SKYLINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/query_set.h"
#include "cuboid/min_max_cuboid.h"
#include "skyline/incremental.h"

namespace caqe {

/// Per-insert outcome across the workload's queries.
struct SharedInsertOutcome {
  /// Queries at whose preference node the tuple was accepted.
  QuerySet accepted;
  /// Flat (query, evicted tuple id) pairs for preference-node evictions
  /// caused by this insert, in node order then QuerySet order then member
  /// order. Flat pairs (rather than per-query id vectors) keep the
  /// steady-state insert free of nested-vector churn: the buffer is reused
  /// across InsertReusing calls.
  std::vector<std::pair<int, int64_t>> evictions;
};

/// Maintains one incremental skyline per min-max cuboid node plus a root
/// skyline over the union space, with Theorem-1 feeder gating in DVA mode.
class SharedSkylineEvaluator {
 public:
  /// `width` is the global output dimensionality; `cuboid` must outlive the
  /// evaluator. A non-null `backing` store (row index == inserted id) is
  /// forwarded to every node skyline so accepted points are referenced, not
  /// copied (see IncrementalSkyline's backing constructor).
  SharedSkylineEvaluator(int width, const MinMaxCuboid* cuboid, bool dva_mode,
                         const PointSet* backing = nullptr);

  /// Inserts one projected join tuple (width() values) with external id.
  /// Comparison counts accumulate into `comparisons` when non-null.
  SharedInsertOutcome Insert(const double* values, int64_t id,
                             int64_t* comparisons = nullptr);

  /// Allocation-free Insert for the region hot path: returns a reference to
  /// an internal outcome whose buffers are reused across calls. The
  /// reference is valid until the next InsertReusing/Insert call.
  const SharedInsertOutcome& InsertReusing(const double* values, int64_t id,
                                           int64_t* comparisons = nullptr);

  /// Serving-layer retirement support: releases every cuboid node that no
  /// query in `active_locals` (local indices into the cuboid's query order)
  /// needs, keeping each active preference node plus its transitive feeder
  /// chain (the gating path) and the root. Released nodes free their
  /// skyline state and are skipped by subsequent Inserts — no comparisons
  /// are charged for them, and their (retired) queries receive no further
  /// events. The batch path never calls this.
  void ReleaseQueries(const QuerySet& active_locals);

  /// Skyline at query q's preference node: exactly SKY_{P_q} of all tuples
  /// inserted so far (in both modes, including under value ties).
  const IncrementalSkyline& query_skyline(int q) const;

  /// Skyline at cuboid node `n`.
  const IncrementalSkyline& node_skyline(int n) const;

  /// Current root (union-space) skyline size.
  int64_t root_size() const { return root_->size(); }

  bool dva_mode() const { return dva_mode_; }
  const MinMaxCuboid& cuboid() const { return *cuboid_; }

 private:
  int width_;
  const MinMaxCuboid* cuboid_;
  bool dva_mode_;
  std::unique_ptr<IncrementalSkyline> root_;
  /// One skyline per node; null for the node aliasing the root subspace.
  std::vector<std::unique_ptr<IncrementalSkyline>> node_skylines_;
  int root_alias_node_ = -1;  // Node whose subspace equals the union space.
  std::vector<char> accepted_scratch_;
  /// Nodes released by ReleaseQueries (skipped in Insert). Empty until the
  /// first release, so the batch path pays nothing.
  std::vector<char> released_;
  /// Reused buffers backing InsertReusing (per-insert scratch). The root's
  /// evicted ids stay live across the node loop (the root-alias node reads
  /// them), so node inserts use their own buffer.
  SharedInsertOutcome outcome_;
  std::vector<int64_t> evicted_scratch_;
  std::vector<int64_t> node_evicted_scratch_;
};

}  // namespace caqe

#endif  // CAQE_CUBOID_SHARED_SKYLINE_H_
