#include "cuboid/shared_skyline.h"

namespace caqe {

SharedSkylineEvaluator::SharedSkylineEvaluator(int width,
                                               const MinMaxCuboid* cuboid,
                                               bool dva_mode,
                                               const PointSet* backing)
    : width_(width), cuboid_(cuboid), dva_mode_(dva_mode) {
  CAQE_CHECK(cuboid_ != nullptr);
  root_ = std::make_unique<IncrementalSkyline>(
      width_, cuboid_->union_space().Dims(), backing);
  const auto& nodes = cuboid_->nodes();
  node_skylines_.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].subspace == cuboid_->union_space()) {
      root_alias_node_ = static_cast<int>(i);
    } else {
      node_skylines_[i] = std::make_unique<IncrementalSkyline>(
          width_, nodes[i].subspace.Dims(), backing);
    }
  }
  accepted_scratch_.resize(nodes.size(), 0);
}

SharedInsertOutcome SharedSkylineEvaluator::Insert(const double* values,
                                                   int64_t id,
                                                   int64_t* comparisons) {
  return InsertReusing(values, id, comparisons);
}

const SharedInsertOutcome& SharedSkylineEvaluator::InsertReusing(
    const double* values, int64_t id, int64_t* comparisons) {
  SharedInsertOutcome& out = outcome_;
  out.accepted = QuerySet{};
  out.evictions.clear();

  // Every per-node insert below runs the batched dominance scans of
  // IncrementalSkyline::InsertInto (one SIMD kernel call per window phase);
  // the strictly_dominated bit feeding the Theorem-1 gate comes from the
  // kernel's all-dimension strict flag, so gating decisions are identical
  // to the scalar path's.
  evicted_scratch_.clear();
  bool root_strict = false;
  const bool root_accepted = root_->InsertInto(
      values, id, evicted_scratch_, &root_strict, comparisons);
  const auto& nodes = cuboid_->nodes();

  // Scratch codes: 0 = rejected by a strict dominator (gate children),
  // 1 = accepted, 2 = rejected by a tied dominator (children must still
  // see the tuple — a tie on their dimensions breaks Theorem 1's
  // strictness argument).
  const char root_code = root_accepted ? 1 : (root_strict ? 0 : 2);

  // Nodes are ordered feeders-first (descending subspace size), so
  // accepted_scratch_[feeder] is final before a fed node is visited.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const CuboidNode& node = nodes[i];
    if (!released_.empty() && released_[i]) {
      // Code 2 (pass-through) is safe: the feeder closure guarantees no
      // kept node reads a released node's scratch, and 2 never gates.
      accepted_scratch_[i] = 2;
      continue;
    }
    if (static_cast<int>(i) == root_alias_node_) {
      accepted_scratch_[i] = root_code;
      node.preference_of.ForEach([&](int q) {
        if (root_accepted) out.accepted.Add(q);
        for (int64_t evicted_id : evicted_scratch_) {
          out.evictions.emplace_back(q, evicted_id);
        }
      });
      continue;
    }
    const char feeder_code = (node.feeder >= 0)
                                 ? accepted_scratch_[node.feeder]
                                 : root_code;
    if (dva_mode_ && feeder_code == 0) {
      // A strict dominator in the feeder space dominates strictly in every
      // subspace: gate the whole subtree.
      accepted_scratch_[i] = 0;
      continue;
    }
    node_evicted_scratch_.clear();
    bool node_strict = false;
    const bool node_accepted = node_skylines_[i]->InsertInto(
        values, id, node_evicted_scratch_, &node_strict, comparisons);
    accepted_scratch_[i] = node_accepted ? 1 : (node_strict ? 0 : 2);
    node.preference_of.ForEach([&](int q) {
      if (node_accepted) out.accepted.Add(q);
      for (int64_t evicted_id : node_evicted_scratch_) {
        out.evictions.emplace_back(q, evicted_id);
      }
    });
  }
  return out;
}

void SharedSkylineEvaluator::ReleaseQueries(const QuerySet& active_locals) {
  const auto& nodes = cuboid_->nodes();
  if (released_.empty()) released_.resize(nodes.size(), 0);
  std::vector<char> keep(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].preference_of.Intersects(active_locals)) keep[i] = 1;
  }
  // Feeders come before fed nodes, so a descending sweep closes the gating
  // chain: every kept node drags its feeder (transitively) into the keep
  // set before the feeder itself is visited.
  for (size_t i = nodes.size(); i-- > 0;) {
    if (keep[i] && nodes[i].feeder >= 0) keep[nodes[i].feeder] = 1;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (keep[i] || static_cast<int>(i) == root_alias_node_) continue;
    released_[i] = 1;
    node_skylines_[i].reset();
  }
}

const IncrementalSkyline& SharedSkylineEvaluator::query_skyline(int q) const {
  const int node = cuboid_->preference_node(q);
  return node_skyline(node);
}

const IncrementalSkyline& SharedSkylineEvaluator::node_skyline(int n) const {
  CAQE_DCHECK(n >= 0 && n < static_cast<int>(node_skylines_.size()));
  if (n == root_alias_node_) return *root_;
  return *node_skylines_[n];
}

}  // namespace caqe
