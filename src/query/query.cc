#include "query/query.h"

#include <algorithm>

namespace caqe {

std::vector<int> Workload::DistinctJoinKeys() const {
  std::vector<int> keys;
  for (const SjQuery& q : queries_) keys.push_back(q.join_key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<int> Workload::QueriesByPriority() const {
  std::vector<int> order(queries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return queries_[a].priority > queries_[b].priority;
  });
  return order;
}

Status Workload::Validate(const Table& r, const Table& t) const {
  if (queries_.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (output_dims_.empty()) {
    return Status::InvalidArgument("workload has no output dimensions");
  }
  for (const MappingFunction& f : output_dims_) {
    if (f.r_attr < 0 || f.r_attr >= r.num_attrs()) {
      return Status::InvalidArgument("mapping references invalid R attribute");
    }
    if (f.t_attr < 0 || f.t_attr >= t.num_attrs()) {
      return Status::InvalidArgument("mapping references invalid T attribute");
    }
    if (f.wr < 0.0 || f.wt < 0.0) {
      return Status::InvalidArgument(
          "mapping weights must be non-negative (monotonicity)");
    }
  }
  for (const SjQuery& q : queries_) {
    if (q.join_key < 0 || q.join_key >= r.num_keys() ||
        q.join_key >= t.num_keys()) {
      return Status::InvalidArgument("query " + q.name +
                                     " references invalid join key column");
    }
    if (q.preference.empty()) {
      return Status::InvalidArgument("query " + q.name +
                                     " has empty preference");
    }
    std::vector<int> sorted = q.preference;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("query " + q.name +
                                     " has duplicate preference dimensions");
    }
    if (q.priority < 0.0 || q.priority > 1.0) {
      return Status::InvalidArgument("query " + q.name +
                                     " priority outside [0, 1]");
    }
    for (const SelectionRange& sel : q.selections) {
      const Table& side = sel.on_r ? r : t;
      if (sel.attr < 0 || sel.attr >= side.num_attrs()) {
        return Status::InvalidArgument(
            "query " + q.name + " selection references invalid attribute");
      }
      if (sel.lo > sel.hi) {
        return Status::InvalidArgument("query " + q.name +
                                       " selection has lo > hi");
      }
    }
  }
  if (num_queries() > 64) {
    return Status::InvalidArgument("workloads are limited to 64 queries");
  }
  return Status::OK();
}

}  // namespace caqe
