// Workload builders matching the paper's experimental study (Section 7.1):
// queries over the same base tables that differ in their skyline dimensions.
#ifndef CAQE_QUERY_WORKLOAD_GENERATOR_H_
#define CAQE_QUERY_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "query/query.h"

namespace caqe {

/// How priorities are assigned to generated queries (Section 7.2: for
/// contracts {C1, C2} queries with more skyline dimensions get higher
/// priority; for {C3, C4} fewer dimensions get higher priority; for {C5}
/// priorities are uniformly assigned).
enum class PriorityPolicy {
  /// More skyline dimensions => higher priority.
  kDimIncreasing,
  /// Fewer skyline dimensions => higher priority.
  kDimDecreasing,
  /// Priorities spread evenly over [0, 1] in query order.
  kUniform,
  /// Priorities drawn uniformly at random (seeded).
  kRandom,
};

/// Builds the paper's canonical workload: output dimension k is
/// f_k = R.a_k + T.a_k for k in [0, num_output_dims), and the queries are
/// the first `num_queries` subspaces of size >= 2 (ordered by size, then
/// lexicographically), all joining on key column `join_key`.
///
/// With num_output_dims = 4 and num_queries = 11 this reproduces the
/// |S_Q| = 11 workload of the evaluation (all 6+4+1 multi-dimensional
/// subspaces of a 4-d output space).
///
/// Returns InvalidArgument when num_queries exceeds the number of available
/// subspaces of size >= 2, or num_output_dims is not in [2, 16].
Result<Workload> MakeSubspaceWorkload(int num_output_dims, int join_key,
                                      int num_queries, PriorityPolicy policy,
                                      uint64_t seed = 7);

/// Builds a randomized workload: each query gets a random non-empty
/// preference of size in [2, num_output_dims], a random join key in
/// [0, num_join_keys), and a policy-assigned priority.
Result<Workload> MakeRandomWorkload(int num_output_dims, int num_join_keys,
                                    int num_queries, PriorityPolicy policy,
                                    uint64_t seed);

}  // namespace caqe

#endif  // CAQE_QUERY_WORKLOAD_GENERATOR_H_
