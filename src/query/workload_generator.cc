#include "query/workload_generator.h"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "common/rng.h"

namespace caqe {
namespace {

// All subsets of {0..d-1} with >= 2 elements, ordered by size then by
// ascending bitmask (lexicographic on members).
std::vector<std::vector<int>> MultiDimSubspaces(int d) {
  std::vector<uint32_t> masks;
  for (uint32_t m = 1; m < (uint32_t{1} << d); ++m) {
    if (std::popcount(m) >= 2) masks.push_back(m);
  }
  std::stable_sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    const int pa = std::popcount(a);
    const int pb = std::popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });
  std::vector<std::vector<int>> subs;
  subs.reserve(masks.size());
  for (uint32_t m : masks) {
    std::vector<int> dims;
    for (int k = 0; k < d; ++k) {
      if ((m >> k) & 1) dims.push_back(k);
    }
    subs.push_back(std::move(dims));
  }
  return subs;
}

void AssignPriorities(std::vector<SjQuery>& queries, PriorityPolicy policy,
                      uint64_t seed) {
  const int n = static_cast<int>(queries.size());
  if (n == 0) return;
  Rng rng(seed);
  // Ranks of queries by dimension count (stable on index).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  switch (policy) {
    case PriorityPolicy::kDimIncreasing:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return queries[a].preference.size() > queries[b].preference.size();
      });
      break;
    case PriorityPolicy::kDimDecreasing:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return queries[a].preference.size() < queries[b].preference.size();
      });
      break;
    case PriorityPolicy::kUniform:
      break;  // Keep query order.
    case PriorityPolicy::kRandom:
      for (int i = 0; i < n; ++i) {
        queries[i].priority = rng.Uniform(0.0, 1.0);
      }
      return;
  }
  // Evenly spaced priorities in [0.05, 1.0]; order[0] gets the highest.
  for (int rank = 0; rank < n; ++rank) {
    const double p =
        (n == 1) ? 1.0 : 1.0 - 0.95 * static_cast<double>(rank) / (n - 1);
    queries[order[rank]].priority = p;
  }
}

}  // namespace

Result<Workload> MakeSubspaceWorkload(int num_output_dims, int join_key,
                                      int num_queries, PriorityPolicy policy,
                                      uint64_t seed) {
  if (num_output_dims < 2 || num_output_dims > 16) {
    return Status::InvalidArgument("num_output_dims must be in [2, 16]");
  }
  const std::vector<std::vector<int>> subs = MultiDimSubspaces(num_output_dims);
  if (num_queries < 1 || num_queries > static_cast<int>(subs.size())) {
    return Status::InvalidArgument(
        "num_queries must be in [1, " + std::to_string(subs.size()) + "]");
  }

  Workload wl;
  for (int k = 0; k < num_output_dims; ++k) {
    wl.AddOutputDim(MappingFunction{/*r_attr=*/k, /*t_attr=*/k,
                                    /*wr=*/1.0, /*wt=*/1.0});
  }
  std::vector<SjQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    SjQuery q;
    q.name = "Q" + std::to_string(i + 1);
    q.join_key = join_key;
    q.preference = subs[i];
    queries.push_back(std::move(q));
  }
  AssignPriorities(queries, policy, seed);
  for (SjQuery& q : queries) wl.AddQuery(std::move(q));
  return wl;
}

Result<Workload> MakeRandomWorkload(int num_output_dims, int num_join_keys,
                                    int num_queries, PriorityPolicy policy,
                                    uint64_t seed) {
  if (num_output_dims < 2 || num_output_dims > 16) {
    return Status::InvalidArgument("num_output_dims must be in [2, 16]");
  }
  if (num_join_keys < 1) {
    return Status::InvalidArgument("num_join_keys must be >= 1");
  }
  if (num_queries < 1 || num_queries > 64) {
    return Status::InvalidArgument("num_queries must be in [1, 64]");
  }
  Rng rng(seed);
  Workload wl;
  for (int k = 0; k < num_output_dims; ++k) {
    wl.AddOutputDim(MappingFunction{k, k, 1.0, 1.0});
  }
  std::vector<SjQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    SjQuery q;
    q.name = "Q" + std::to_string(i + 1);
    q.join_key = static_cast<int>(rng.UniformInt(0, num_join_keys - 1));
    const int size =
        static_cast<int>(rng.UniformInt(2, num_output_dims));
    std::vector<int> dims(num_output_dims);
    for (int k = 0; k < num_output_dims; ++k) dims[k] = k;
    std::shuffle(dims.begin(), dims.end(), rng.engine());
    dims.resize(size);
    std::sort(dims.begin(), dims.end());
    q.preference = std::move(dims);
    queries.push_back(std::move(q));
  }
  AssignPriorities(queries, policy, seed + 1);
  for (SjQuery& q : queries) wl.AddQuery(std::move(q));
  return wl;
}

}  // namespace caqe
