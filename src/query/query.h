// Skyline-over-join query and workload definitions (paper Section 2.2).
//
// A workload defines a single *global output space*: a set of output
// dimensions X = {x_1, ..., x_D}, each produced by a monotone scalar mapping
// function f_k over one attribute of R and one of T (paper Figure 1 — all
// queries draw from a common pool of mapping functions). Each query then
// specifies (a) which equi-join predicate combines R and T and (b) its
// skyline preference: a subset of the global output dimensions. Smaller
// output values are preferred.
#ifndef CAQE_QUERY_QUERY_H_
#define CAQE_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "data/table.h"

namespace caqe {

/// A monotone scalar mapping function x = wr * R.attr[r_attr] +
/// wt * T.attr[t_attr] with non-negative weights (paper PROJECT operator,
/// Example 5). Monotonicity in both inputs is what lets region bounds be
/// derived from input-cell corner points.
struct MappingFunction {
  int r_attr = 0;
  int t_attr = 0;
  double wr = 1.0;
  double wt = 1.0;

  double Apply(double r_value, double t_value) const {
    return wr * r_value + wt * t_value;
  }
};

/// Query priority classes used by the experimental study (Section 7.1).
enum class PriorityClass { kHigh, kMedium, kLow };

/// Returns the class for a priority value in [0, 1]: HIGH is [0.7, 1],
/// MEDIUM is [0.4, 0.7), LOW is [0, 0.4).
inline PriorityClass ClassifyPriority(double priority) {
  if (priority >= 0.7) return PriorityClass::kHigh;
  if (priority >= 0.4) return PriorityClass::kMedium;
  return PriorityClass::kLow;
}

/// A range selection on one input attribute (inclusive bounds). The
/// paper's shared plans fold selects into the coarse abstraction
/// (Section 4.1, "generating shared plans for selects ... can be applied
/// as is"): a leaf cell whose bounding box misses the range disqualifies
/// the query at coarse level without touching tuples.
struct SelectionRange {
  /// True: applies to an R attribute; false: to a T attribute.
  bool on_r = true;
  /// Input attribute index.
  int attr = 0;
  double lo = 0.0;
  double hi = 0.0;
};

/// One skyline-over-join query Q_i = SJ[JC, F, X, P](R, T), optionally with
/// input selections.
struct SjQuery {
  /// Human-readable label, e.g. "Q3".
  std::string name;
  /// Index of the join-key column used by the equi-join predicate JC_i.
  int join_key = 0;
  /// Skyline preference P_i: indices into the workload's output dimensions.
  /// Must be non-empty and duplicate-free.
  std::vector<int> preference;
  /// Scheduling priority pr_i in [0, 1]; competitors process queries in
  /// descending priority order (Section 7.1).
  double priority = 1.0;
  /// Conjunctive input selections; a join pair contributes to this query
  /// only when every range holds (defaults to none — the common
  /// aggregate-initialized form {name, key, preference, priority} stays
  /// valid).
  std::vector<SelectionRange> selections;
};

/// A workload of skyline-over-join queries over tables R and T.
class Workload {
 public:
  Workload() = default;

  /// Appends a global output dimension produced by `f`; returns its index.
  int AddOutputDim(const MappingFunction& f) {
    output_dims_.push_back(f);
    return static_cast<int>(output_dims_.size()) - 1;
  }

  /// Appends a query; returns its index. The query must reference existing
  /// output dimensions.
  int AddQuery(SjQuery query) {
    CAQE_CHECK(!query.preference.empty());
    for (int dim : query.preference) {
      CAQE_CHECK(dim >= 0 && dim < num_output_dims());
    }
    queries_.push_back(std::move(query));
    return static_cast<int>(queries_.size()) - 1;
  }

  /// Rebinds query slot `i` (the serving layer reuses retired slots so
  /// QuerySet bitmasks stay dense). Same validity requirements as AddQuery.
  void SetQuery(int i, SjQuery query) {
    CAQE_DCHECK(i >= 0 && i < num_queries());
    CAQE_CHECK(!query.preference.empty());
    for (int dim : query.preference) {
      CAQE_CHECK(dim >= 0 && dim < num_output_dims());
    }
    queries_[i] = std::move(query);
  }

  int num_output_dims() const {
    return static_cast<int>(output_dims_.size());
  }
  int num_queries() const { return static_cast<int>(queries_.size()); }

  const MappingFunction& output_dim(int k) const {
    CAQE_DCHECK(k >= 0 && k < num_output_dims());
    return output_dims_[k];
  }
  const SjQuery& query(int i) const {
    CAQE_DCHECK(i >= 0 && i < num_queries());
    return queries_[i];
  }
  const std::vector<SjQuery>& queries() const { return queries_; }
  const std::vector<MappingFunction>& output_dims() const {
    return output_dims_;
  }

  /// Computes all D output values for the join pair (row_r, row_t) into
  /// `out` (resized to num_output_dims()).
  void Project(const Table& r, int64_t row_r, const Table& t, int64_t row_t,
               std::vector<double>& out) const {
    out.resize(output_dims_.size());
    for (size_t k = 0; k < output_dims_.size(); ++k) {
      const MappingFunction& f = output_dims_[k];
      out[k] = f.Apply(r.attr(row_r, f.r_attr), t.attr(row_t, f.t_attr));
    }
  }

  /// True when the join pair (row_r, row_t) satisfies every selection of
  /// query `q`.
  bool SelectionsPass(int q, const Table& r, int64_t row_r, const Table& t,
                      int64_t row_t) const {
    for (const SelectionRange& sel : queries_[q].selections) {
      const double v = sel.on_r ? r.attr(row_r, sel.attr)
                                : t.attr(row_t, sel.attr);
      if (v < sel.lo || v > sel.hi) return false;
    }
    return true;
  }

  /// Indices of join-key columns referenced by at least one query,
  /// ascending and duplicate-free.
  std::vector<int> DistinctJoinKeys() const;

  /// Query indices sorted by descending priority (ties by index). This is
  /// the processing order used by the non-shared competitor techniques.
  std::vector<int> QueriesByPriority() const;

  /// Validates the workload against concrete tables: every mapping function
  /// must reference valid attributes and every query a valid key column.
  Status Validate(const Table& r, const Table& t) const;

 private:
  std::vector<MappingFunction> output_dims_;
  std::vector<SjQuery> queries_;
};

}  // namespace caqe

#endif  // CAQE_QUERY_QUERY_H_
