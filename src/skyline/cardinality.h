// Skyline cardinality estimation (paper Equation 9).
#ifndef CAQE_SKYLINE_CARDINALITY_H_
#define CAQE_SKYLINE_CARDINALITY_H_

#include <cstdint>

namespace caqe {

/// Buchta's estimate of the expected number of maxima among n i.i.d. points
/// in d dimensions with independently distributed coordinates:
///
///   E[|SKY|] ~= ln(n)^(d-1) / (d-1)!
///
/// (C. Buchta, "On the average number of maxima in a set of vectors", IPL
/// 1989.) CAQE uses it with n = sigma * |L_a| * |L_b| to estimate how many
/// skyline results a region's join output contributes (Equation 9). Returns
/// at least 1.0 for n >= 1 and 0.0 for n < 1.
double BuchtaSkylineCardinality(double n, int d);

/// Region-level specialization of Equation 9: expected skyline results from
/// joining cells with `cell_rows_r` and `cell_rows_t` tuples at selectivity
/// `sigma`, evaluated over `d` skyline dimensions.
double EstimateRegionSkylineCardinality(double sigma, int64_t cell_rows_r,
                                        int64_t cell_rows_t, int d);

}  // namespace caqe

#endif  // CAQE_SKYLINE_CARDINALITY_H_
