// Pairwise dominance tests (paper Definitions 1 and 2).
//
// Smaller values are preferred in every dimension. A point `a` dominates `b`
// in a dimension subset V iff a[k] <= b[k] for all k in V and a[k] < b[k]
// for at least one k in V.
#ifndef CAQE_SKYLINE_DOMINANCE_H_
#define CAQE_SKYLINE_DOMINANCE_H_

#include <cstdint>
#include <vector>

namespace caqe {

/// Outcome of a single dominance comparison between points a and b.
enum class DomResult {
  /// a dominates b (a is at least as good everywhere, strictly better once).
  kDominates,
  /// b dominates a.
  kDominatedBy,
  /// Equal on every compared dimension (neither dominates; both can be in a
  /// skyline together under strict-dominance semantics).
  kEqual,
  /// Each is strictly better than the other in some dimension.
  kIncomparable,
};

/// Compares a and b over the dimension indices in `dims` in a single pass.
inline DomResult CompareDominance(const double* a, const double* b,
                                  const int* dims, int ndims) {
  bool a_better = false;
  bool b_better = false;
  for (int i = 0; i < ndims; ++i) {
    const int k = dims[i];
    if (a[k] < b[k]) {
      a_better = true;
      if (b_better) return DomResult::kIncomparable;
    } else if (b[k] < a[k]) {
      b_better = true;
      if (a_better) return DomResult::kIncomparable;
    }
  }
  if (a_better) return DomResult::kDominates;
  if (b_better) return DomResult::kDominatedBy;
  return DomResult::kEqual;
}

inline DomResult CompareDominance(const double* a, const double* b,
                                  const std::vector<int>& dims) {
  return CompareDominance(a, b, dims.data(), static_cast<int>(dims.size()));
}

/// True iff a dominates b over `dims` (Definition 2; Definition 1 when dims
/// is the full space).
inline bool Dominates(const double* a, const double* b,
                      const std::vector<int>& dims) {
  return CompareDominance(a, b, dims) == DomResult::kDominates;
}

/// True iff a weakly dominates b over `dims`: a[k] <= b[k] for all k. Weak
/// dominance is what corner-point (region-level) pruning needs — a lower
/// corner that ties a tuple still means some feasible future tuple could
/// dominate it.
inline bool WeaklyDominates(const double* a, const double* b,
                            const int* dims, int ndims) {
  for (int i = 0; i < ndims; ++i) {
    const int k = dims[i];
    if (a[k] > b[k]) return false;
  }
  return true;
}

inline bool WeaklyDominates(const double* a, const double* b,
                            const std::vector<int>& dims) {
  return WeaklyDominates(a, b, dims.data(), static_cast<int>(dims.size()));
}

}  // namespace caqe

#endif  // CAQE_SKYLINE_DOMINANCE_H_
