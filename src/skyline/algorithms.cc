#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"

namespace caqe {
namespace {

int64_t Bump(int64_t* counter) {
  if (counter != nullptr) ++*counter;
  return 0;
}

}  // namespace

std::vector<int64_t> BruteForceSkyline(const PointSet& points,
                                       const std::vector<int>& dims,
                                       int64_t* comparisons) {
  const int64_t n = points.size();
  std::vector<int64_t> result;
  for (int64_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (int64_t j = 0; j < n && !dominated; ++j) {
      if (i == j) continue;
      Bump(comparisons);
      dominated = Dominates(points.row(j), points.row(i), dims);
    }
    if (!dominated) result.push_back(i);
  }
  return result;
}

std::vector<int64_t> BnlSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons) {
  std::vector<int64_t> window;
  const int64_t n = points.size();
  // Skylines are typically tiny relative to n; a small up-front slab
  // absorbs the early regrows of the hot window without overcommitting.
  window.reserve(static_cast<size_t>(std::min<int64_t>(n, 64)));
  for (int64_t i = 0; i < n; ++i) {
    const double* p = points.row(i);
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const double* q = points.row(window[w]);
      Bump(comparisons);
      const DomResult r = CompareDominance(p, q, dims);
      if (r == DomResult::kDominatedBy) {
        dominated = true;
        // Points after `w` were not evicted; keep the remainder untouched.
        for (size_t rest = w; rest < window.size(); ++rest) {
          window[keep++] = window[rest];
        }
        break;
      }
      if (r != DomResult::kDominates) {
        window[keep++] = window[w];
      }
      // r == kDominates: q is evicted (not copied forward).
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

namespace {

// Recursive worker over a set of row ids. `depth` rotates the split
// dimension.
std::vector<int64_t> DncRecurse(const PointSet& points,
                                const std::vector<int>& dims,
                                std::vector<int64_t> rows, size_t depth,
                                size_t failed_splits, int64_t* comparisons) {
  constexpr size_t kBnlCutoff = 32;
  if (rows.size() <= kBnlCutoff || failed_splits >= dims.size()) {
    // Small base case (or no separating dimension found after a full
    // rotation): plain windowed scan over the subset.
    std::vector<int64_t> window;
    for (int64_t row : rows) {
      const double* p = points.row(row);
      bool dominated = false;
      size_t keep = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        Bump(comparisons);
        const DomResult r =
            CompareDominance(p, points.row(window[w]), dims);
        if (r == DomResult::kDominatedBy) {
          dominated = true;
          for (size_t rest = w; rest < window.size(); ++rest) {
            window[keep++] = window[rest];
          }
          break;
        }
        if (r != DomResult::kDominates) window[keep++] = window[w];
      }
      window.resize(keep);
      if (!dominated) window.push_back(row);
    }
    return window;
  }

  // Split at the median *value* of the rotation dimension so the boundary
  // is strict: every lower-half value < every upper-half value.
  const int dim = dims[depth % dims.size()];
  std::vector<int64_t> order = rows;
  std::nth_element(order.begin(), order.begin() + order.size() / 2,
                   order.end(), [&](int64_t a, int64_t b) {
                     return points.row(a)[dim] < points.row(b)[dim];
                   });
  const double pivot = points.row(order[order.size() / 2])[dim];
  std::vector<int64_t> lower;
  std::vector<int64_t> upper;
  for (int64_t row : rows) {
    (points.row(row)[dim] < pivot ? lower : upper).push_back(row);
  }
  if (lower.empty() || upper.empty()) {
    // The dimension cannot separate these points (all values tie at the
    // minimum); rotate to the next dimension, giving up after a full
    // rotation without a successful split.
    return DncRecurse(points, dims, std::move(rows), depth + 1,
                      failed_splits + 1, comparisons);
  }

  const std::vector<int64_t> sky_lower = DncRecurse(
      points, dims, std::move(lower), depth + 1, 0, comparisons);
  const std::vector<int64_t> sky_upper = DncRecurse(
      points, dims, std::move(upper), depth + 1, 0, comparisons);

  // Across a strict boundary, upper points can never dominate lower points
  // (they are strictly worse in `dim`), so only filter upper against lower.
  std::vector<int64_t> result = sky_lower;
  for (int64_t row : sky_upper) {
    bool dominated = false;
    for (int64_t champion : sky_lower) {
      Bump(comparisons);
      if (CompareDominance(points.row(champion), points.row(row), dims) ==
          DomResult::kDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(row);
  }
  return result;
}

}  // namespace

std::vector<int64_t> DivideConquerSkyline(const PointSet& points,
                                          const std::vector<int>& dims,
                                          int64_t* comparisons) {
  std::vector<int64_t> rows(points.size());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int64_t> result =
      DncRecurse(points, dims, std::move(rows), 0, 0, comparisons);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int64_t> SfsSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons) {
  const int64_t n = points.size();
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* p = points.row(i);
    for (int k : dims) score[i] += p[k];
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) { return score[a] < score[b]; });

  // After sorting by a monotone function, no point can dominate one that
  // precedes it, so the window only grows.
  std::vector<int64_t> window;
  window.reserve(static_cast<size_t>(std::min<int64_t>(n, 64)));
  for (int64_t idx = 0; idx < n; ++idx) {
    const int64_t i = order[idx];
    const double* p = points.row(i);
    bool dominated = false;
    for (int64_t w : window) {
      Bump(comparisons);
      const DomResult r = CompareDominance(points.row(w), p, dims);
      if (r == DomResult::kDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace caqe
