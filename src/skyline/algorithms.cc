#include "skyline/algorithms.h"

#include <algorithm>
#include <numeric>

#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace caqe {
namespace {

int64_t Bump(int64_t* counter) {
  if (counter != nullptr) ++*counter;
  return 0;
}

/// Decoded per-candidate outcomes of a batch flag byte, relative to the
/// probe: probe dominates the candidate / candidate dominates the probe.
inline bool ProbeDominates(uint8_t f) {
  return (f & kBatchABetter) != 0 && (f & kBatchBBetter) == 0;
}
inline bool ProbeDominated(uint8_t f) {
  return (f & kBatchBBetter) != 0 && (f & kBatchABetter) == 0;
}

/// Reusable state of a batched windowed skyline scan: the candidate window
/// gathered column-wise plus per-insert scratch. One instance serves a whole
/// scan, so the hot loop performs no allocations after warm-up.
struct WindowScratch {
  explicit WindowScratch(const std::vector<int>& dims)
      : view(dims), probe(dims.size()) {}

  SubspaceView view;
  std::vector<uint8_t> flags;
  std::vector<double> probe;
};

/// One BNL window step for points.row(row): batch-compares the probe against
/// the whole window, then replays the serial loop's decisions from the flag
/// bytes — members the probe dominates are evicted up to (exclusive) the
/// first member dominating the probe, everything after that point survives
/// untouched, and the comparison charge stops at the dominating member
/// exactly as the serial break did.
void WindowInsert(const PointSet& points, int64_t row,
                  std::vector<int64_t>& window, WindowScratch& scratch,
                  int64_t* comparisons) {
  GatherPoint(points.row(row), scratch.view.dims(), scratch.probe.data());
  const int64_t w = scratch.view.size();
  scratch.flags.resize(static_cast<size_t>(w));
  BatchDominanceFlags(scratch.probe.data(), scratch.view, 0, w,
                      scratch.flags.data());

  bool dominated = false;
  int64_t keep = 0;
  int64_t j = 0;
  for (; j < w; ++j) {
    const uint8_t f = scratch.flags[j];
    if (ProbeDominated(f)) {
      dominated = true;
      break;
    }
    if (!ProbeDominates(f)) {
      window[keep] = window[j];
      scratch.view.MoveRow(keep, j);
      ++keep;
    }
  }
  if (dominated) {
    // Members at and after the dominator were not visited serially; keep
    // the remainder untouched.
    for (int64_t rest = j; rest < w; ++rest) {
      window[keep] = window[rest];
      scratch.view.MoveRow(keep, rest);
      ++keep;
    }
  }
  window.resize(static_cast<size_t>(keep));
  scratch.view.Truncate(keep);
  if (comparisons != nullptr) *comparisons += dominated ? j + 1 : w;
  if (!dominated) {
    window.push_back(row);
    scratch.view.PushGathered(scratch.probe.data());
  }
}

/// Windowed skyline scan over `rows` in order; returns surviving row ids in
/// window (insertion) order.
std::vector<int64_t> WindowSkylineScan(const PointSet& points,
                                       const std::vector<int>& dims,
                                       const std::vector<int64_t>& rows,
                                       int64_t* comparisons) {
  std::vector<int64_t> window;
  const int64_t n = static_cast<int64_t>(rows.size());
  // Skylines are typically tiny relative to n; a small up-front slab
  // absorbs the early regrows of the hot window without overcommitting.
  window.reserve(static_cast<size_t>(std::min<int64_t>(n, 64)));
  WindowScratch scratch(dims);
  scratch.view.Reserve(std::min<int64_t>(n, 64));
  for (int64_t row : rows) {
    WindowInsert(points, row, window, scratch, comparisons);
  }
  return window;
}

}  // namespace

std::vector<int64_t> BruteForceSkyline(const PointSet& points,
                                       const std::vector<int>& dims,
                                       int64_t* comparisons) {
  // Deliberately stays on the scalar one-pair CompareDominance: this is the
  // oracle the batch kernels are differentially tested against.
  const int64_t n = points.size();
  std::vector<int64_t> result;
  for (int64_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (int64_t j = 0; j < n && !dominated; ++j) {
      if (i == j) continue;
      Bump(comparisons);
      dominated = Dominates(points.row(j), points.row(i), dims);
    }
    if (!dominated) result.push_back(i);
  }
  return result;
}

std::vector<int64_t> BnlSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons) {
  std::vector<int64_t> rows(points.size());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int64_t> window =
      WindowSkylineScan(points, dims, rows, comparisons);
  std::sort(window.begin(), window.end());
  return window;
}

namespace {

// Recursive worker over a set of row ids. `depth` rotates the split
// dimension.
std::vector<int64_t> DncRecurse(const PointSet& points,
                                const std::vector<int>& dims,
                                std::vector<int64_t> rows, size_t depth,
                                size_t failed_splits, int64_t* comparisons) {
  constexpr size_t kBnlCutoff = 32;
  if (rows.size() <= kBnlCutoff || failed_splits >= dims.size()) {
    // Small base case (or no separating dimension found after a full
    // rotation): plain windowed scan over the subset.
    return WindowSkylineScan(points, dims, rows, comparisons);
  }

  // Split at the median *value* of the rotation dimension so the boundary
  // is strict: every lower-half value < every upper-half value.
  const int dim = dims[depth % dims.size()];
  std::vector<int64_t> order = rows;
  std::nth_element(order.begin(), order.begin() + order.size() / 2,
                   order.end(), [&](int64_t a, int64_t b) {
                     return points.row(a)[dim] < points.row(b)[dim];
                   });
  const double pivot = points.row(order[order.size() / 2])[dim];
  std::vector<int64_t> lower;
  std::vector<int64_t> upper;
  for (int64_t row : rows) {
    (points.row(row)[dim] < pivot ? lower : upper).push_back(row);
  }
  if (lower.empty() || upper.empty()) {
    // The dimension cannot separate these points (all values tie at the
    // minimum); rotate to the next dimension, giving up after a full
    // rotation without a successful split.
    return DncRecurse(points, dims, std::move(rows), depth + 1,
                      failed_splits + 1, comparisons);
  }

  const std::vector<int64_t> sky_lower = DncRecurse(
      points, dims, std::move(lower), depth + 1, 0, comparisons);
  const std::vector<int64_t> sky_upper = DncRecurse(
      points, dims, std::move(upper), depth + 1, 0, comparisons);

  // Across a strict boundary, upper points can never dominate lower points
  // (they are strictly worse in `dim`), so only filter upper against lower.
  // The champion scan batches each upper point against the gathered lower
  // skyline; the comparison charge stops at the first dominating champion,
  // as the serial break did.
  std::vector<int64_t> result = sky_lower;
  SubspaceView champions(dims);
  champions.Reserve(static_cast<int64_t>(sky_lower.size()));
  for (int64_t champion : sky_lower) champions.PushPoint(points.row(champion));
  const int64_t m = champions.size();
  std::vector<uint8_t> flags(static_cast<size_t>(m));
  std::vector<double> probe(dims.size());
  for (int64_t row : sky_upper) {
    GatherPoint(points.row(row), dims, probe.data());
    BatchDominanceFlags(probe.data(), champions, 0, m, flags.data());
    bool dominated = false;
    int64_t j = 0;
    for (; j < m; ++j) {
      if (ProbeDominated(flags[j])) {
        dominated = true;
        break;
      }
    }
    if (comparisons != nullptr) *comparisons += dominated ? j + 1 : m;
    if (!dominated) result.push_back(row);
  }
  return result;
}

}  // namespace

std::vector<int64_t> DivideConquerSkyline(const PointSet& points,
                                          const std::vector<int>& dims,
                                          int64_t* comparisons) {
  std::vector<int64_t> rows(points.size());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int64_t> result =
      DncRecurse(points, dims, std::move(rows), 0, 0, comparisons);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int64_t> SfsSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons) {
  const int64_t n = points.size();
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> score(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* p = points.row(i);
    for (int k : dims) score[i] += p[k];
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) { return score[a] < score[b]; });

  // After sorting by a monotone function, no point can dominate one that
  // precedes it, so the window only grows; each candidate batches against
  // the gathered window in one call.
  std::vector<int64_t> window;
  window.reserve(static_cast<size_t>(std::min<int64_t>(n, 64)));
  WindowScratch scratch(dims);
  scratch.view.Reserve(std::min<int64_t>(n, 64));
  for (int64_t idx = 0; idx < n; ++idx) {
    const int64_t i = order[idx];
    GatherPoint(points.row(i), dims, scratch.probe.data());
    const int64_t w = scratch.view.size();
    scratch.flags.resize(static_cast<size_t>(w));
    BatchDominanceFlags(scratch.probe.data(), scratch.view, 0, w,
                        scratch.flags.data());
    bool dominated = false;
    int64_t j = 0;
    for (; j < w; ++j) {
      if (ProbeDominated(scratch.flags[j])) {
        dominated = true;
        break;
      }
    }
    if (comparisons != nullptr) *comparisons += dominated ? j + 1 : w;
    if (!dominated) {
      window.push_back(i);
      scratch.view.PushGathered(scratch.probe.data());
    }
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace caqe
