// Flat storage for fixed-width real-valued points (join-result tuples).
#ifndef CAQE_SKYLINE_POINT_SET_H_
#define CAQE_SKYLINE_POINT_SET_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace caqe {

/// A dense, row-major collection of `width`-dimensional points.
///
/// Skyline kernels operate on PointSet rows via raw pointers to avoid
/// per-point allocations; row index doubles as a stable point id within the
/// set.
class PointSet {
 public:
  explicit PointSet(int width) : width_(width) { CAQE_CHECK(width >= 1); }

  int width() const { return width_; }
  int64_t size() const {
    return static_cast<int64_t>(data_.size()) / width_;
  }
  bool empty() const { return data_.empty(); }

  /// Pointer to the `row`-th point (width() doubles).
  const double* row(int64_t row) const {
    CAQE_DCHECK(row >= 0 && row < size());
    return data_.data() + row * width_;
  }

  /// Appends a point; returns its row index.
  int64_t Append(const double* values) {
    data_.insert(data_.end(), values, values + width_);
    return size() - 1;
  }

  /// Appends `n` zero-initialized points and returns the first new row
  /// index; callers fill them via mutable_row (e.g. concurrently, one
  /// writer per row).
  int64_t AppendUninitialized(int64_t n) {
    const int64_t base = size();
    data_.resize(data_.size() + static_cast<size_t>(n) * width_);
    return base;
  }

  /// Writable pointer to the `row`-th point.
  double* mutable_row(int64_t row) {
    CAQE_DCHECK(row >= 0 && row < size());
    return data_.data() + row * width_;
  }
  int64_t Append(const std::vector<double>& values) {
    CAQE_DCHECK(static_cast<int>(values.size()) == width_);
    return Append(values.data());
  }

  void Reserve(int64_t n) { data_.reserve(n * width_); }
  void Clear() { data_.clear(); }

 private:
  int width_;
  std::vector<double> data_;
};

}  // namespace caqe

#endif  // CAQE_SKYLINE_POINT_SET_H_
