// Flat storage for fixed-width real-valued points (join-result tuples).
#ifndef CAQE_SKYLINE_POINT_SET_H_
#define CAQE_SKYLINE_POINT_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace caqe {

/// A dense, row-major collection of `width`-dimensional points.
///
/// Skyline kernels operate on PointSet rows via raw pointers to avoid
/// per-point allocations; row index doubles as a stable point id within the
/// set.
class PointSet {
 public:
  explicit PointSet(int width) : width_(width) { CAQE_CHECK(width >= 1); }

  int width() const { return width_; }
  int64_t size() const {
    return static_cast<int64_t>(data_.size()) / width_;
  }
  bool empty() const { return data_.empty(); }

  /// Pointer to the `row`-th point (width() doubles).
  const double* row(int64_t row) const {
    CAQE_DCHECK(row >= 0 && row < size());
    return data_.data() + row * width_;
  }

  /// Appends a point; returns its row index.
  int64_t Append(const double* values) {
    data_.insert(data_.end(), values, values + width_);
    return size() - 1;
  }

  /// Appends `n` zero-initialized points and returns the first new row
  /// index; callers fill them via mutable_row (e.g. concurrently, one
  /// writer per row).
  int64_t AppendUninitialized(int64_t n) {
    const int64_t base = size();
    data_.resize(data_.size() + static_cast<size_t>(n) * width_);
    return base;
  }

  /// Writable pointer to the `row`-th point.
  double* mutable_row(int64_t row) {
    CAQE_DCHECK(row >= 0 && row < size());
    return data_.data() + row * width_;
  }
  int64_t Append(const std::vector<double>& values) {
    CAQE_DCHECK(static_cast<int>(values.size()) == width_);
    return Append(values.data());
  }

  /// Ensures capacity for `n` points. Grows geometrically: an exact
  /// reserve on a monotonically growing store would reallocate (and copy
  /// the whole store) on every call that extends it.
  void Reserve(int64_t n) {
    const size_t need = static_cast<size_t>(n) * width_;
    if (need <= data_.capacity()) return;
    data_.reserve(std::max(need, data_.capacity() * 2));
  }
  void Clear() { data_.clear(); }

 private:
  int width_;
  std::vector<double> data_;
};

/// Column-major (structure-of-arrays) transpose of a contiguous row range
/// [base, base + size) of a PointSet. Built once per region over the rows
/// the region appended, it lets subspace consumers hand whole columns to
/// SubspaceView::AssignFromColumns — a unit-stride gather per compared
/// dimension — instead of walking row-major storage point by point. The
/// column buffers are reused across BuildFrom calls (grow-only), so a
/// steady-state region transposes without allocating.
class ColumnBlock {
 public:
  /// (Re)builds the transpose over rows [base, base + n) of `store`.
  void BuildFrom(const PointSet& store, int64_t base, int64_t n) {
    CAQE_DCHECK(base >= 0 && n >= 0 && base + n <= store.size());
    const int width = store.width();
    if (static_cast<int>(cols_.size()) < width) cols_.resize(width);
    for (int d = 0; d < width; ++d) {
      cols_[d].resize(static_cast<size_t>(n));
    }
    for (int64_t i = 0; i < n; ++i) {
      const double* r = store.row(base + i);
      for (int d = 0; d < width; ++d) {
        cols_[d][static_cast<size_t>(i)] = r[d];
      }
    }
    base_ = base;
    n_ = n;
    width_ = width;
  }

  void Clear() { n_ = 0; }

  int64_t base() const { return base_; }
  int64_t size() const { return n_; }
  int width() const { return width_; }
  /// True when row id `id` (a PointSet row index) is inside the block.
  bool Contains(int64_t id) const { return id >= base_ && id < base_ + n_; }

  /// Contiguous values of dimension `d`, one per row, for rows
  /// [base(), base() + size()).
  const double* col(int d) const {
    CAQE_DCHECK(d >= 0 && d < width_);
    return cols_[static_cast<size_t>(d)].data();
  }

 private:
  std::vector<std::vector<double>> cols_;
  int64_t base_ = 0;
  int64_t n_ = 0;
  int width_ = 0;
};

}  // namespace caqe

#endif  // CAQE_SKYLINE_POINT_SET_H_
