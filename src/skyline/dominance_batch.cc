#include "skyline/dominance_batch.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(CAQE_SIMD_DISABLED)
#define CAQE_HAVE_AVX2_BACKEND 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(CAQE_SIMD_DISABLED)
#define CAQE_HAVE_NEON_BACKEND 1
#include <arm_neon.h>
#endif

namespace caqe {
namespace {

// Raw kernel signatures: `cols[k]` points at the first candidate's value of
// compared dimension k (already offset by the caller), n candidates each.
using FlagsFn = void (*)(const double* a, const double* const* cols,
                         int64_t n, int ndims, uint8_t* out);
using WeakFn = void (*)(const double* a, const double* const* cols,
                        int64_t n, int ndims, uint8_t* out);

// ---- Scalar backend (the bit-compatibility reference). ----

void FlagsScalar(const double* a, const double* const* cols, int64_t n,
                 int ndims, uint8_t* out) {
  for (int64_t j = 0; j < n; ++j) {
    uint8_t any = 0;
    uint8_t all = kBatchAStrict | kBatchBStrict;
    for (int k = 0; k < ndims; ++k) {
      const double av = a[k];
      const double bv = cols[k][j];
      if (av < bv) {
        any |= kBatchABetter;
        all &= static_cast<uint8_t>(~kBatchBStrict);
      } else if (bv < av) {
        any |= kBatchBBetter;
        all &= static_cast<uint8_t>(~kBatchAStrict);
      } else {
        all = 0;
      }
      if (any == (kBatchABetter | kBatchBBetter)) {
        // Incomparable is final and excludes both strict bits.
        all = 0;
        break;
      }
    }
    out[j] = static_cast<uint8_t>(any | all);
  }
}

void WeakScalar(const double* a, const double* const* cols, int64_t n,
                int ndims, uint8_t* out) {
  for (int64_t j = 0; j < n; ++j) {
    uint8_t weak = 1;
    for (int k = 0; k < ndims; ++k) {
      if (a[k] > cols[k][j]) {
        weak = 0;
        break;
      }
    }
    out[j] = weak;
  }
}

// ---- AVX2 backend: 4 candidates per iteration. ----
//
// All four outcome bits are accumulated branchlessly as lane masks; IEEE
// ordered comparisons are exact, so the per-lane movemask bits reproduce the
// scalar backend's flags byte for byte.

#if CAQE_HAVE_AVX2_BACKEND

__attribute__((target("avx2"))) void FlagsAvx2(const double* a,
                                               const double* const* cols,
                                               int64_t n, int ndims,
                                               uint8_t* out) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d a_any = _mm256_setzero_pd();
    __m256d b_any = _mm256_setzero_pd();
    __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d a_all = ones;
    __m256d b_all = ones;
    for (int k = 0; k < ndims; ++k) {
      const __m256d av = _mm256_set1_pd(a[k]);
      const __m256d bv = _mm256_loadu_pd(cols[k] + j);
      const __m256d lt = _mm256_cmp_pd(av, bv, _CMP_LT_OQ);
      const __m256d gt = _mm256_cmp_pd(av, bv, _CMP_GT_OQ);
      a_any = _mm256_or_pd(a_any, lt);
      b_any = _mm256_or_pd(b_any, gt);
      a_all = _mm256_and_pd(a_all, lt);
      b_all = _mm256_and_pd(b_all, gt);
    }
    const int ma = _mm256_movemask_pd(a_any);
    const int mb = _mm256_movemask_pd(b_any);
    const int mas = _mm256_movemask_pd(a_all);
    const int mbs = _mm256_movemask_pd(b_all);
    for (int l = 0; l < 4; ++l) {
      out[j + l] = static_cast<uint8_t>(
          (((ma >> l) & 1) * kBatchABetter) |
          (((mb >> l) & 1) * kBatchBBetter) |
          (((mas >> l) & 1) * kBatchAStrict) |
          (((mbs >> l) & 1) * kBatchBStrict));
    }
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    FlagsScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

__attribute__((target("avx2"))) void WeakAvx2(const double* a,
                                              const double* const* cols,
                                              int64_t n, int ndims,
                                              uint8_t* out) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d violated = _mm256_setzero_pd();
    for (int k = 0; k < ndims; ++k) {
      const __m256d av = _mm256_set1_pd(a[k]);
      const __m256d bv = _mm256_loadu_pd(cols[k] + j);
      violated = _mm256_or_pd(violated, _mm256_cmp_pd(av, bv, _CMP_GT_OQ));
    }
    const int mv = _mm256_movemask_pd(violated);
    for (int l = 0; l < 4; ++l) {
      out[j + l] = static_cast<uint8_t>(((mv >> l) & 1) ^ 1);
    }
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    WeakScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

// ---- AVX-512 backend: 8 candidates per iteration. ----
//
// Same branchless accumulation as AVX2, but comparisons land directly in
// 8-bit mask registers (__mmask8), so the per-candidate flag assembly is
// pure bit arithmetic — no movemask extraction. The ordered (OQ)
// comparisons match the scalar semantics exactly, so the output stays bit
// compatible with every other backend.

__attribute__((target("avx512f"))) void FlagsAvx512(const double* a,
                                                    const double* const* cols,
                                                    int64_t n, int ndims,
                                                    uint8_t* out) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __mmask8 a_any = 0;
    __mmask8 b_any = 0;
    __mmask8 a_all = 0xFF;
    __mmask8 b_all = 0xFF;
    for (int k = 0; k < ndims; ++k) {
      const __m512d av = _mm512_set1_pd(a[k]);
      const __m512d bv = _mm512_loadu_pd(cols[k] + j);
      const __mmask8 lt = _mm512_cmp_pd_mask(av, bv, _CMP_LT_OQ);
      const __mmask8 gt = _mm512_cmp_pd_mask(av, bv, _CMP_GT_OQ);
      a_any |= lt;
      b_any |= gt;
      a_all &= lt;
      b_all &= gt;
    }
    for (int l = 0; l < 8; ++l) {
      out[j + l] = static_cast<uint8_t>(
          (((a_any >> l) & 1) * kBatchABetter) |
          (((b_any >> l) & 1) * kBatchBBetter) |
          (((a_all >> l) & 1) * kBatchAStrict) |
          (((b_all >> l) & 1) * kBatchBStrict));
    }
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    FlagsScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

__attribute__((target("avx512f"))) void WeakAvx512(const double* a,
                                                   const double* const* cols,
                                                   int64_t n, int ndims,
                                                   uint8_t* out) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __mmask8 violated = 0;
    for (int k = 0; k < ndims; ++k) {
      const __m512d av = _mm512_set1_pd(a[k]);
      const __m512d bv = _mm512_loadu_pd(cols[k] + j);
      violated |= _mm512_cmp_pd_mask(av, bv, _CMP_GT_OQ);
    }
    for (int l = 0; l < 8; ++l) {
      out[j + l] = static_cast<uint8_t>(((violated >> l) & 1) ^ 1);
    }
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    WeakScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

#endif  // CAQE_HAVE_AVX2_BACKEND

// ---- NEON backend: 2 candidates per iteration (aarch64 float64x2). ----

#if CAQE_HAVE_NEON_BACKEND

void FlagsNeon(const double* a, const double* const* cols, int64_t n,
               int ndims, uint8_t* out) {
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint64x2_t a_any = vdupq_n_u64(0);
    uint64x2_t b_any = vdupq_n_u64(0);
    uint64x2_t a_all = vdupq_n_u64(~uint64_t{0});
    uint64x2_t b_all = vdupq_n_u64(~uint64_t{0});
    for (int k = 0; k < ndims; ++k) {
      const float64x2_t av = vdupq_n_f64(a[k]);
      const float64x2_t bv = vld1q_f64(cols[k] + j);
      const uint64x2_t lt = vcltq_f64(av, bv);
      const uint64x2_t gt = vcgtq_f64(av, bv);
      a_any = vorrq_u64(a_any, lt);
      b_any = vorrq_u64(b_any, gt);
      a_all = vandq_u64(a_all, lt);
      b_all = vandq_u64(b_all, gt);
    }
    uint64_t lanes_a_any[2], lanes_b_any[2], lanes_a_all[2], lanes_b_all[2];
    vst1q_u64(lanes_a_any, a_any);
    vst1q_u64(lanes_b_any, b_any);
    vst1q_u64(lanes_a_all, a_all);
    vst1q_u64(lanes_b_all, b_all);
    for (int l = 0; l < 2; ++l) {
      out[j + l] = static_cast<uint8_t>(
          (lanes_a_any[l] ? kBatchABetter : 0) |
          (lanes_b_any[l] ? kBatchBBetter : 0) |
          (lanes_a_all[l] ? kBatchAStrict : 0) |
          (lanes_b_all[l] ? kBatchBStrict : 0));
    }
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    FlagsScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

void WeakNeon(const double* a, const double* const* cols, int64_t n,
              int ndims, uint8_t* out) {
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    uint64x2_t violated = vdupq_n_u64(0);
    for (int k = 0; k < ndims; ++k) {
      const float64x2_t av = vdupq_n_f64(a[k]);
      const float64x2_t bv = vld1q_f64(cols[k] + j);
      violated = vorrq_u64(violated, vcgtq_f64(av, bv));
    }
    out[j] = vgetq_lane_u64(violated, 0) == 0 ? 1 : 0;
    out[j + 1] = vgetq_lane_u64(violated, 1) == 0 ? 1 : 0;
  }
  if (j < n) {
    const double* tail_cols[kBatchMaxDims];
    for (int k = 0; k < ndims; ++k) tail_cols[k] = cols[k] + j;
    WeakScalar(a, tail_cols, n - j, ndims, out + j);
  }
}

#endif  // CAQE_HAVE_NEON_BACKEND

// ---- Runtime dispatch. ----

struct KernelTable {
  FlagsFn flags = &FlagsScalar;
  WeakFn weak = &WeakScalar;
  const char* isa = "scalar";
};

bool ScalarForcedByEnv() {
  const char* env = std::getenv("CAQE_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
         std::strcmp(env, "scalar") == 0 || std::strcmp(env, "0") == 0;
}

// Looks up the kernel pair for a named ISA; returns false when the backend
// is compiled out or the CPU lacks the feature. "scalar" always succeeds.
bool KernelsForIsa(const char* isa, KernelTable* table) {
  if (std::strcmp(isa, "scalar") == 0) {
    *table = KernelTable{};
    return true;
  }
#if CAQE_HAVE_AVX2_BACKEND
  if (std::strcmp(isa, "avx512") == 0 &&
      __builtin_cpu_supports("avx512f")) {
    table->flags = &FlagsAvx512;
    table->weak = &WeakAvx512;
    table->isa = "avx512";
    return true;
  }
  if (std::strcmp(isa, "avx2") == 0 && __builtin_cpu_supports("avx2")) {
    table->flags = &FlagsAvx2;
    table->weak = &WeakAvx2;
    table->isa = "avx2";
    return true;
  }
#endif
#if CAQE_HAVE_NEON_BACKEND
  if (std::strcmp(isa, "neon") == 0) {
    table->flags = &FlagsNeon;
    table->weak = &WeakNeon;
    table->isa = "neon";
    return true;
  }
#endif
  return false;
}

KernelTable SelectKernels() {
  KernelTable table;
  if (ScalarForcedByEnv()) return table;
  // CAQE_SIMD can also pin one vector ISA (forced only when the CPU has
  // it, so a pinned binary still runs everywhere — just unpinned).
  const char* env = std::getenv("CAQE_SIMD");
  if (env != nullptr && KernelsForIsa(env, &table)) return table;
  if (KernelsForIsa("avx512", &table)) return table;
  if (KernelsForIsa("avx2", &table)) return table;
  if (KernelsForIsa("neon", &table)) return table;
  return table;
}

const KernelTable& ActiveKernels() {
  static const KernelTable table = SelectKernels();
  return table;
}

// Builds the per-call offset column-pointer array.
inline int PrepareCols(const SubspaceView& view, int64_t begin,
                       const double** cols) {
  const int ndims = view.ndims();
  CAQE_DCHECK(ndims <= kBatchMaxDims);
  for (int k = 0; k < ndims; ++k) cols[k] = view.col(k) + begin;
  return ndims;
}

}  // namespace

void BatchDominanceFlags(const double* a, const SubspaceView& view,
                         int64_t begin, int64_t end, uint8_t* out) {
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  const int64_t n = end - begin;
  // Small batches (the common case: incremental skylines average O(1)
  // candidates per insert) go straight to the scalar reference kernel —
  // the vector backends would only run their scalar tail anyway, and the
  // indirect dispatch plus vector-function prologue costs more than the
  // comparisons themselves. Bit-identical by construction: every backend
  // reproduces FlagsScalar byte for byte.
  if (n < kBatchSmallN) {
    FlagsScalar(a, cols, n, ndims, out);
    return;
  }
  ActiveKernels().flags(a, cols, n, ndims, out);
}

void BatchDominanceFlagsScalar(const double* a, const SubspaceView& view,
                               int64_t begin, int64_t end, uint8_t* out) {
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  FlagsScalar(a, cols, end - begin, ndims, out);
}

void BatchCompareDominance(const double* a, const SubspaceView& view,
                           int64_t begin, int64_t end, DomResult* out) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  // Flag bytes decode losslessly into the four-way DomResult; reuse a small
  // stack block so the conversion stays allocation-free.
  constexpr int64_t kBlock = 256;
  uint8_t flags[kBlock];
  for (int64_t done = 0; done < n; done += kBlock) {
    const int64_t len = std::min<int64_t>(kBlock, n - done);
    BatchDominanceFlags(a, view, begin + done, begin + done + len, flags);
    for (int64_t j = 0; j < len; ++j) out[done + j] = BatchDomResult(flags[j]);
  }
}

void BatchWeaklyDominates(const double* a, const SubspaceView& view,
                          int64_t begin, int64_t end, uint8_t* out) {
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  const int64_t n = end - begin;
  if (n < kBatchSmallN) {
    WeakScalar(a, cols, n, ndims, out);
    return;
  }
  ActiveKernels().weak(a, cols, n, ndims, out);
}

void BatchWeaklyDominatesScalar(const double* a, const SubspaceView& view,
                                int64_t begin, int64_t end, uint8_t* out) {
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  WeakScalar(a, cols, end - begin, ndims, out);
}

const char* BatchKernelIsaName() { return ActiveKernels().isa; }

bool BatchKernelSimdActive() {
  return std::strcmp(ActiveKernels().isa, "scalar") != 0;
}

std::vector<const char*> BatchKernelAvailableIsas() {
  std::vector<const char*> isas;
  KernelTable table;
  for (const char* isa : {"avx512", "avx2", "neon"}) {
    if (KernelsForIsa(isa, &table)) isas.push_back(isa);
  }
  isas.push_back("scalar");
  return isas;
}

bool BatchDominanceFlagsForIsa(const char* isa, const double* a,
                               const SubspaceView& view, int64_t begin,
                               int64_t end, uint8_t* out) {
  KernelTable table;
  if (!KernelsForIsa(isa, &table)) return false;
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return true;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  table.flags(a, cols, end - begin, ndims, out);
  return true;
}

bool BatchWeaklyDominatesForIsa(const char* isa, const double* a,
                                const SubspaceView& view, int64_t begin,
                                int64_t end, uint8_t* out) {
  KernelTable table;
  if (!KernelsForIsa(isa, &table)) return false;
  CAQE_DCHECK(begin >= 0 && begin <= end && end <= view.size());
  if (begin == end) return true;
  const double* cols[kBatchMaxDims];
  const int ndims = PrepareCols(view, begin, cols);
  table.weak(a, cols, end - begin, ndims, out);
  return true;
}

}  // namespace caqe
