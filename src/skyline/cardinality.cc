#include "skyline/cardinality.h"

#include <cmath>

#include "common/macros.h"

namespace caqe {

double BuchtaSkylineCardinality(double n, int d) {
  CAQE_DCHECK(d >= 1);
  if (n < 1.0) return 0.0;
  if (d == 1) return 1.0;
  double factorial = 1.0;
  for (int k = 2; k <= d - 1; ++k) factorial *= k;
  const double log_n = std::log(n);
  const double estimate = std::pow(log_n, d - 1) / factorial;
  // At least one point is always maximal.
  return std::fmax(1.0, estimate);
}

double EstimateRegionSkylineCardinality(double sigma, int64_t cell_rows_r,
                                        int64_t cell_rows_t, int d) {
  const double join_results =
      sigma * static_cast<double>(cell_rows_r) * static_cast<double>(cell_rows_t);
  return BuchtaSkylineCardinality(join_results, d);
}

}  // namespace caqe
