#include "skyline/incremental.h"

#include <algorithm>

namespace caqe {
namespace {

/// Candidate-dominates-probe / probe-dominates-candidate patterns of a
/// batch flag byte (probe gathered as `a`, members as `b`).
inline bool MemberDominatesProbe(uint8_t f) {
  return (f & kBatchBBetter) != 0 && (f & kBatchABetter) == 0;
}
inline bool ProbeDominatesMember(uint8_t f) {
  return (f & kBatchABetter) != 0 && (f & kBatchBBetter) == 0;
}

}  // namespace

InsertOutcome IncrementalSkyline::Insert(const double* values,
                                         int64_t external_id,
                                         int64_t* comparisons) {
  InsertOutcome outcome;
  outcome.accepted = InsertInto(values, external_id, outcome.evicted,
                                &outcome.strictly_dominated, comparisons);
  return outcome;
}

bool IncrementalSkyline::InsertInto(const double* values, int64_t external_id,
                                    std::vector<int64_t>& evicted,
                                    bool* strictly_dominated,
                                    int64_t* comparisons) {
  *strictly_dominated = false;
  GatherPoint(values, dims_, probe_.data());
  // Summing the gathered values in view order reproduces ScoreOf's
  // dims_-order accumulation bit for bit.
  double score = 0.0;
  for (double v : probe_) score += v;

  // Members are kept sorted by ascending monotone score (sum over dims_).
  // Since m dominates t implies score(m) < score(t) strictly, only the
  // prefix with smaller scores can dominate the new point, and only the
  // suffix with larger scores can be evicted by it — the Sort-Filter-
  // Skyline argument applied to an incrementally maintained window.
  const auto boundary = std::partition_point(
      members_.begin(), members_.end(),
      [&](const Member& m) { return m.score < score; });
  const size_t prefix_end =
      static_cast<size_t>(boundary - members_.begin());
  flags_.resize(members_.size());

  // Phase 1 (batched): is the new point dominated by a smaller-score
  // member? The whole prefix is flagged in one kernel call; the walk over
  // the flag bytes replays the serial loop — on a domination hit it keeps
  // scanning for a *strict* dominator (better in every compared dimension,
  // the kBatchBStrict bit) whose existence licenses subspace gating in the
  // shared evaluator, and the comparison charge stops where the serial
  // break did (at the strict dominator, else after the full prefix).
  // The prefix is flagged in blocks of galloping size rather than one
  // kernel call: the serial loop this walk replays usually breaks within
  // the first few members (a strict dominator near the front), so flagging
  // the whole prefix up front would compute hundreds of comparisons the
  // walk never reads. Block boundaries cannot change any flag byte — each
  // candidate's byte is a pure function of (probe, candidate) — and the
  // walk below visits indexes in the same order with the same break rule,
  // so outcome and comparison charge are identical to the one-shot call.
  bool dominated = false;
  if (prefix_end > 0) {
    size_t visited = prefix_end;
    bool stop = false;
    size_t block = 16;
    for (size_t done = 0; done < prefix_end && !stop;) {
      const size_t block_end = std::min(prefix_end, done + block);
      BatchDominanceFlags(probe_.data(), members_view_,
                          static_cast<int64_t>(done),
                          static_cast<int64_t>(block_end),
                          flags_.data() + done);
      for (size_t i = done; i < block_end; ++i) {
        const uint8_t f = flags_[i];
        if (!MemberDominatesProbe(f)) continue;
        dominated = true;
        if ((f & kBatchBStrict) != 0) {
          *strictly_dominated = true;
          visited = i + 1;
          stop = true;
          break;
        }
      }
      done = block_end;
      block *= 4;
    }
    if (comparisons != nullptr) {
      *comparisons += static_cast<int64_t>(visited);
    }
  }
  if (dominated) {
    // A dominated insertion evicts nothing (see phase 2 comment).
    return false;
  }

  // Phase 2 (batched): evict larger-score members the new point dominates.
  // (Equal-score members can neither dominate nor be dominated; they are
  // skipped without comparison.)
  size_t keep = prefix_end;
  size_t i = prefix_end;
  for (; i < members_.size() && members_[i].score == score; ++i) {
    members_[keep] = members_[i];
    members_view_.MoveRow(static_cast<int64_t>(keep),
                          static_cast<int64_t>(i));
    ++keep;
  }
  const size_t insert_at = keep;  // New member slots in after score ties.
  const size_t suffix_begin = i;
  if (suffix_begin < members_.size()) {
    // Flags are indexed by original member position; compaction only
    // writes rows at keep < i, so unread suffix rows stay in place.
    BatchDominanceFlags(probe_.data(), members_view_,
                        static_cast<int64_t>(suffix_begin),
                        static_cast<int64_t>(members_.size()),
                        flags_.data());
    for (; i < members_.size(); ++i) {
      if (ProbeDominatesMember(flags_[i - suffix_begin])) {
        evicted.push_back(members_[i].external_id);
      } else {
        members_[keep] = members_[i];
        members_view_.MoveRow(static_cast<int64_t>(keep),
                              static_cast<int64_t>(i));
        ++keep;
      }
    }
    if (comparisons != nullptr) {
      *comparisons += static_cast<int64_t>(members_.size() - suffix_begin);
    }
  }
  members_.resize(keep);
  members_view_.Truncate(static_cast<int64_t>(keep));

  // With a backing store the member references the caller's row (row index
  // == external id by the store invariant) instead of copying the point.
  const int64_t row =
      backing_ != nullptr ? external_id : points_.Append(values);
  members_.insert(members_.begin() + insert_at,
                  Member{row, external_id, score});
  members_view_.InsertGathered(static_cast<int64_t>(insert_at),
                               probe_.data());
  return true;
}

std::vector<int64_t> IncrementalSkyline::MemberIds() const {
  std::vector<int64_t> ids;
  ids.reserve(members_.size());
  for (const Member& m : members_) ids.push_back(m.external_id);
  return ids;
}

}  // namespace caqe
