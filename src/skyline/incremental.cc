#include "skyline/incremental.h"

#include <algorithm>

namespace caqe {
namespace {

double ScoreOf(const double* values, const std::vector<int>& dims) {
  double score = 0.0;
  for (int k : dims) score += values[k];
  return score;
}

}  // namespace

InsertOutcome IncrementalSkyline::Insert(const double* values,
                                         int64_t external_id,
                                         int64_t* comparisons) {
  InsertOutcome outcome;
  const double score = ScoreOf(values, dims_);

  // Members are kept sorted by ascending monotone score (sum over dims_).
  // Since m dominates t implies score(m) < score(t) strictly, only the
  // prefix with smaller scores can dominate the new point, and only the
  // suffix with larger scores can be evicted by it — the Sort-Filter-
  // Skyline argument applied to an incrementally maintained window.
  const auto boundary = std::partition_point(
      members_.begin(), members_.end(),
      [&](const Member& m) { return m.score < score; });
  const size_t prefix_end =
      static_cast<size_t>(boundary - members_.begin());

  // Phase 1: is the new point dominated by a smaller-score member? On a
  // hit, keep scanning for a *strict* dominator (better in every compared
  // dimension) — its existence licenses subspace gating in the shared
  // evaluator.
  bool dominated = false;
  for (size_t i = 0; i < prefix_end; ++i) {
    if (comparisons != nullptr) ++*comparisons;
    const double* member = points_.row(members_[i].row);
    const DomResult r = CompareDominance(member, values, dims_);
    if (r != DomResult::kDominates) continue;
    dominated = true;
    bool strict = true;
    for (int k : dims_) {
      if (member[k] >= values[k]) {
        strict = false;
        break;
      }
    }
    if (strict) {
      outcome.strictly_dominated = true;
      break;
    }
  }
  if (dominated) {
    // A dominated insertion evicts nothing (see phase 2 comment).
    return outcome;
  }

  // Phase 2: evict larger-score members the new point dominates.
  // (Equal-score members can neither dominate nor be dominated; they are
  // skipped without comparison.)
  size_t keep = prefix_end;
  size_t i = prefix_end;
  for (; i < members_.size() && members_[i].score == score; ++i) {
    members_[keep++] = members_[i];
  }
  const size_t insert_at = keep;  // New member slots in after score ties.
  for (; i < members_.size(); ++i) {
    if (comparisons != nullptr) ++*comparisons;
    const DomResult r =
        CompareDominance(values, points_.row(members_[i].row), dims_);
    if (r == DomResult::kDominates) {
      outcome.evicted.push_back(members_[i].external_id);
    } else {
      members_[keep++] = members_[i];
    }
  }
  members_.resize(keep);

  const int64_t row = points_.Append(values);
  members_.insert(members_.begin() + insert_at,
                  Member{row, external_id, score});
  outcome.accepted = true;
  return outcome;
}

std::vector<int64_t> IncrementalSkyline::MemberIds() const {
  std::vector<int64_t> ids;
  ids.reserve(members_.size());
  for (const Member& m : members_) ids.push_back(m.external_id);
  return ids;
}

}  // namespace caqe
