// Single-relation skyline algorithms: brute-force oracle, Block-Nested-Loop
// (Börzsönyi et al., ICDE 2001) and Sort-Filter-Skyline (Chomicki et al.,
// ICDE 2003). These are the tuple-level kernels every engine in this
// repository builds on, and the oracle doubles as the ground truth in tests.
#ifndef CAQE_SKYLINE_ALGORITHMS_H_
#define CAQE_SKYLINE_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "skyline/point_set.h"

namespace caqe {

/// Computes the skyline of `points` over dimension indices `dims` by
/// comparing every pair (O(n^2) worst case, no shortcuts). Returns the row
/// indices of skyline members in ascending order. If `comparisons` is
/// non-null it is incremented by the number of pairwise comparisons made.
///
/// Intended as the correctness oracle; use BNL/SFS in engines.
std::vector<int64_t> BruteForceSkyline(const PointSet& points,
                                       const std::vector<int>& dims,
                                       int64_t* comparisons = nullptr);

/// Block-Nested-Loop skyline: maintains a window of candidate points; each
/// new point is compared against the window, evicting dominated candidates.
/// Returns row indices of skyline members in ascending order.
std::vector<int64_t> BnlSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons = nullptr);

/// Sort-Filter-Skyline: pre-sorts points by a monotone scoring function (sum
/// over `dims`), after which a point can only be dominated by points that
/// precede it, so the window never shrinks. Returns row indices of skyline
/// members in ascending order.
std::vector<int64_t> SfsSkyline(const PointSet& points,
                                const std::vector<int>& dims,
                                int64_t* comparisons = nullptr);

/// Divide-and-conquer skyline (Börzsönyi et al., ICDE 2001): splits the
/// point set at a value boundary of one dimension (rotating through `dims`
/// when a dimension cannot separate), recursively computes both halves'
/// skylines, and filters the worse half against the better one — upper-half
/// points can never dominate lower-half points across a strict boundary.
/// Returns row indices of skyline members in ascending order.
std::vector<int64_t> DivideConquerSkyline(const PointSet& points,
                                          const std::vector<int>& dims,
                                          int64_t* comparisons = nullptr);

}  // namespace caqe

#endif  // CAQE_SKYLINE_ALGORITHMS_H_
