// One-vs-many batch dominance kernels with SIMD backends.
//
// Every skyline phase in this repository bottoms out in a loop of pairwise
// CompareDominance calls between one probe point and a window of candidates
// (BNL/SFS windows, divide-and-conquer champion filters, the incremental
// maintainer's prefix/suffix scans, the Section-6 region discard test). The
// batch kernels here evaluate all candidates of such a loop in one call over
// a column-gathered view of the candidate block, so vector lanes read
// unit-stride data, and are dispatched at runtime to AVX-512 or AVX2
// (x86-64), NEON (aarch64) or a bit-compatible scalar fallback.
//
// Determinism contract: the kernels return, per candidate, exactly the
// outcome the scalar CompareDominance / WeaklyDominates of dominance.h
// would produce — IEEE comparisons have no rounding, so lane width cannot
// change any outcome — and callers charge the same `dominance_cmps` count
// the serial loop would have charged (one per candidate visited up to the
// serial loop's break point). Reports are therefore bit-identical across
// scalar/AVX2/AVX-512/NEON and every thread count.
#ifndef CAQE_SKYLINE_DOMINANCE_BATCH_H_
#define CAQE_SKYLINE_DOMINANCE_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "skyline/dominance.h"
#include "skyline/point_set.h"

namespace caqe {

/// Hard cap on the number of compared dimensions a batch call accepts
/// (matches Subspace::kMaxDims with headroom; callers' dims are subspaces).
inline constexpr int kBatchMaxDims = 64;

/// Batches smaller than this bypass the ISA dispatch and run the scalar
/// reference kernel directly. Incremental skylines average O(1) candidates
/// per insert on typical workloads, where the indirect call + vector
/// prologue cost more than the comparisons; the vector backends would
/// execute only their scalar tail at these sizes anyway. Outcomes are
/// bit-identical regardless of the path taken.
inline constexpr int64_t kBatchSmallN = 16;

/// Column-major (structure-of-arrays) gather of one dimension subset over a
/// window of points. Each compared dimension is stored as its own
/// contiguous array, so a one-vs-many kernel streams unit-stride loads
/// instead of strided row-major reads. Rows are kept in caller-defined
/// window order; mutation helpers mirror the window operations the skyline
/// consumers perform (append, mid insert, stable compaction).
class SubspaceView {
 public:
  SubspaceView() = default;
  explicit SubspaceView(const std::vector<int>& dims) { Reset(dims); }

  /// Binds the view to a dimension subset and clears all rows. The column
  /// pool only grows: rebinding to fewer dimensions keeps the surplus
  /// columns (and their capacity) for the next wider rebind, so a view
  /// cycled across subspaces of varying width stops allocating once it has
  /// seen the widest one.
  void Reset(const std::vector<int>& dims) {
    CAQE_CHECK(static_cast<int>(dims.size()) <= kBatchMaxDims);
    dims_ = dims;
    if (cols_.size() < dims_.size()) cols_.resize(dims_.size());
    Clear();
  }

  int ndims() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }
  int64_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  void Clear() {
    for (size_t k = 0; k < dims_.size(); ++k) cols_[k].clear();
    n_ = 0;
  }
  void Reserve(int64_t n) {
    for (size_t k = 0; k < dims_.size(); ++k) {
      cols_[k].reserve(static_cast<size_t>(n));
    }
  }

  /// Gathers a full-width point's compared dimensions and appends the row.
  void PushPoint(const double* point) {
    for (size_t k = 0; k < dims_.size(); ++k) {
      cols_[k].push_back(point[dims_[k]]);
    }
    ++n_;
  }

  /// Appends an already gathered row (ndims() values, view dimension order).
  void PushGathered(const double* gathered) {
    for (size_t k = 0; k < dims_.size(); ++k) {
      cols_[k].push_back(gathered[k]);
    }
    ++n_;
  }

  /// Inserts a gathered row before `pos`, shifting later rows up.
  void InsertGathered(int64_t pos, const double* gathered) {
    CAQE_DCHECK(pos >= 0 && pos <= n_);
    for (size_t k = 0; k < dims_.size(); ++k) {
      cols_[k].insert(cols_[k].begin() + pos, gathered[k]);
    }
    ++n_;
  }

  /// Replaces the view contents wholesale from per-dimension source
  /// columns: row i takes cols_of_dim[k][ids[i] - base] for each compared
  /// dimension k. This is the bulk companion of PushPoint for callers that
  /// already hold their points column-major (e.g. a region's ColumnBlock
  /// transpose): one pass per column, unit-stride writes, no per-row
  /// dimension remapping.
  void AssignFromColumns(const double* const* cols_of_dim, int64_t base,
                         const int64_t* ids, int64_t n) {
    for (size_t k = 0; k < dims_.size(); ++k) {
      std::vector<double>& col = cols_[k];
      col.resize(static_cast<size_t>(n));
      const double* src = cols_of_dim[k];
      for (int64_t i = 0; i < n; ++i) {
        col[static_cast<size_t>(i)] = src[ids[i] - base];
      }
    }
    n_ = n;
  }

  /// Copies row `src` onto row `dst` (dst <= src): the stable-compaction
  /// primitive mirroring the consumers' window[keep++] = window[i] loops.
  void MoveRow(int64_t dst, int64_t src) {
    CAQE_DCHECK(dst >= 0 && dst <= src && src < n_);
    if (dst == src) return;
    for (size_t k = 0; k < dims_.size(); ++k) cols_[k][dst] = cols_[k][src];
  }

  /// Truncates to the first `n` rows (ends a compaction pass).
  void Truncate(int64_t n) {
    CAQE_DCHECK(n >= 0 && n <= n_);
    for (size_t k = 0; k < dims_.size(); ++k) {
      cols_[k].resize(static_cast<size_t>(n));
    }
    n_ = n;
  }

  /// Contiguous values of compared-dimension index `k` (view order, not the
  /// global dimension id), one per row.
  const double* col(int k) const { return cols_[k].data(); }

  double at(int64_t row, int k) const {
    CAQE_DCHECK(row >= 0 && row < n_);
    return cols_[k][static_cast<size_t>(row)];
  }

 private:
  std::vector<int> dims_;
  std::vector<std::vector<double>> cols_;
  int64_t n_ = 0;
};

/// Gathers `point`'s values over `dims` into `out` (dims.size() values) —
/// the probe-side companion of SubspaceView.
inline void GatherPoint(const double* point, const std::vector<int>& dims,
                        double* out) {
  for (size_t k = 0; k < dims.size(); ++k) out[k] = point[dims[k]];
}

/// Per-candidate outcome bits of a batch dominance comparison between the
/// gathered probe `a` and candidate `b`. The *Better bits encode the
/// classic four-way DomResult; the *Strict bits additionally report
/// all-dimension strict dominance, which the incremental maintainer needs
/// for Theorem-1 gating (strict bits are vacuously set when ndims == 0).
inline constexpr uint8_t kBatchABetter = 1;  // a[k] < b[k] for some k.
inline constexpr uint8_t kBatchBBetter = 2;  // b[k] < a[k] for some k.
inline constexpr uint8_t kBatchAStrict = 4;  // a[k] < b[k] for every k.
inline constexpr uint8_t kBatchBStrict = 8;  // b[k] < a[k] for every k.

/// Decodes flag bits into the DomResult CompareDominance would return.
inline DomResult BatchDomResult(uint8_t flags) {
  const bool a = (flags & kBatchABetter) != 0;
  const bool b = (flags & kBatchBBetter) != 0;
  if (a && b) return DomResult::kIncomparable;
  if (a) return DomResult::kDominates;
  if (b) return DomResult::kDominatedBy;
  return DomResult::kEqual;
}

/// Compares gathered probe `a` (view.ndims() values) against view rows
/// [begin, end), writing one flag byte per candidate to out[0..end-begin).
/// Dispatched to the best available ISA; bit-compatible across backends.
void BatchDominanceFlags(const double* a, const SubspaceView& view,
                         int64_t begin, int64_t end, uint8_t* out);

/// Forced-scalar variant of BatchDominanceFlags (differential testing and
/// the CAQE_SIMD=OFF build path).
void BatchDominanceFlagsScalar(const double* a, const SubspaceView& view,
                               int64_t begin, int64_t end, uint8_t* out);

/// Writes out[j] = CompareDominance(a, row begin+j) for each candidate.
void BatchCompareDominance(const double* a, const SubspaceView& view,
                           int64_t begin, int64_t end, DomResult* out);

/// Writes out[j] = 1 iff `a` weakly dominates view row begin+j (a <= b in
/// every compared dimension), else 0. Dispatched like BatchDominanceFlags.
void BatchWeaklyDominates(const double* a, const SubspaceView& view,
                          int64_t begin, int64_t end, uint8_t* out);

/// Forced-scalar variant of BatchWeaklyDominates.
void BatchWeaklyDominatesScalar(const double* a, const SubspaceView& view,
                                int64_t begin, int64_t end, uint8_t* out);

/// Name of the ISA the dispatcher selected: "avx512", "avx2", "neon" or
/// "scalar". Selection happens once per process: compile-time feature gates
/// pick the candidate backends, `CAQE_SIMD=OFF` (compile) or
/// CAQE_SIMD=off/scalar (environment) force scalar,
/// CAQE_SIMD=avx512/avx2/neon pins one vector backend (honored only when
/// the CPU supports it), and otherwise the widest supported ISA wins
/// (avx512 > avx2 > neon).
const char* BatchKernelIsaName();

/// True when the dispatcher selected a vector backend.
bool BatchKernelSimdActive();

/// Every ISA the current build + CPU can execute, widest first, always
/// ending with "scalar". Differential tests and the SIMD bench sweep this
/// list so each compiled-in backend is exercised regardless of which one
/// the dispatcher picked.
std::vector<const char*> BatchKernelAvailableIsas();

/// BatchDominanceFlags pinned to a named ISA. Returns false (output
/// untouched) when that backend is unavailable on this build/CPU.
bool BatchDominanceFlagsForIsa(const char* isa, const double* a,
                               const SubspaceView& view, int64_t begin,
                               int64_t end, uint8_t* out);

/// BatchWeaklyDominates pinned to a named ISA; false when unavailable.
bool BatchWeaklyDominatesForIsa(const char* isa, const double* a,
                                const SubspaceView& view, int64_t begin,
                                int64_t end, uint8_t* out);

}  // namespace caqe

#endif  // CAQE_SKYLINE_DOMINANCE_BATCH_H_
