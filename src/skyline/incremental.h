// Incrementally maintained skyline under tuple insertions.
//
// Skyline-over-join results arrive one join tuple at a time; a newly
// generated tuple can evict previously accepted tuples (skylines are not
// monotonic — paper Section 1.4). IncrementalSkyline tracks the current
// skyline and reports evictions so engines can retract/annotate results that
// were provisionally surfaced.
#ifndef CAQE_SKYLINE_INCREMENTAL_H_
#define CAQE_SKYLINE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "skyline/point_set.h"

namespace caqe {

/// Result of inserting one point into an IncrementalSkyline.
struct InsertOutcome {
  /// True when the inserted point joined the skyline.
  bool accepted = false;
  /// Set only when rejected: some member dominates the point *strictly in
  /// every compared dimension*. A strict dominator dominates the point in
  /// every subspace too, which is what makes Theorem-1 feeder gating exact
  /// even in the presence of value ties (see SharedSkylineEvaluator).
  bool strictly_dominated = false;
  /// External ids of previously accepted points this insertion evicted.
  std::vector<int64_t> evicted;
};

/// Maintains the skyline of a growing point multiset over a fixed dimension
/// subset. Points carry caller-provided external ids.
class IncrementalSkyline {
 public:
  /// `width` is the point dimensionality; `dims` the compared subset.
  /// With a `backing` store (whose row index == the external id passed to
  /// Insert — the engine's tuple store invariant) members reference the
  /// caller's rows instead of copying every accepted point full-width into
  /// an internal set: the dominance state lives entirely in the gathered
  /// members_view_, so accepting a point allocates nothing beyond the
  /// view's amortized column growth. Without it (default) the legacy
  /// internal copy keeps standalone uses working.
  explicit IncrementalSkyline(int width, std::vector<int> dims,
                              const PointSet* backing = nullptr)
      : points_(width),
        backing_(backing),
        dims_(std::move(dims)),
        probe_(dims_.size()) {
    members_view_.Reset(dims_);
  }

  /// Inserts a point with caller-supplied id. Counts comparisons into
  /// `comparisons` if non-null.
  InsertOutcome Insert(const double* values, int64_t external_id,
                       int64_t* comparisons = nullptr);

  /// Allocation-free Insert variant for the hot path: evicted ids are
  /// appended to the caller's reusable `evicted` vector (not cleared),
  /// acceptance is the return value and strict domination lands in
  /// `*strictly_dominated`. Outcome-equivalent to Insert.
  bool InsertInto(const double* values, int64_t external_id,
                  std::vector<int64_t>& evicted, bool* strictly_dominated,
                  int64_t* comparisons = nullptr);

  /// Current number of skyline members.
  int64_t size() const { return static_cast<int64_t>(members_.size()); }

  /// External ids of the current skyline members (unordered).
  std::vector<int64_t> MemberIds() const;

  /// Invokes fn(external_id, const double* values) per member.
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (const Member& m : members_) {
      fn(m.external_id,
         backing_ != nullptr ? backing_->row(m.row) : points_.row(m.row));
    }
  }

  const std::vector<int>& dims() const { return dims_; }

 private:
  struct Member {
    int64_t row;          // Row in points_ (or in *backing_ == external_id).
    int64_t external_id;  // Caller-provided id.
    double score;         // Monotone sum over dims_ (window sort key).
  };

  PointSet points_;  // Append-only storage; evicted rows become garbage.
  /// Optional external row store (see constructor); when set, points_
  /// stays empty and members reference backing_ rows by external id.
  const PointSet* backing_ = nullptr;
  std::vector<int> dims_;
  /// Current skyline, sorted by ascending score: only the smaller-score
  /// prefix can dominate a new point, only the larger-score suffix can be
  /// evicted by it.
  std::vector<Member> members_;
  /// Column-gathered mirror of `members_` (same order) feeding the batch
  /// dominance kernel; every members_ mutation is replayed on the view.
  SubspaceView members_view_;
  /// Per-insert scratch: the probe's gathered dims_ values and the batch
  /// flag bytes (sized to the member count on demand).
  std::vector<double> probe_;
  std::vector<uint8_t> flags_;
};

}  // namespace caqe

#endif  // CAQE_SKYLINE_INCREMENTAL_H_
