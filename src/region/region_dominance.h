// Region-level dominance (paper Definition 8).
#ifndef CAQE_REGION_REGION_DOMINANCE_H_
#define CAQE_REGION_REGION_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "region/region.h"
#include "skyline/dominance_batch.h"

namespace caqe {

/// Coarse dominance relationship between two output regions over a
/// dimension subset.
enum class RegionDomResult {
  /// Every tuple of A is guaranteed to dominate every tuple of B: A's upper
  /// corner weakly dominates B's lower corner with at least one strict
  /// dimension. B can be pruned for the affected queries once A is known to
  /// produce a tuple.
  kFullyDominates,
  /// A may produce tuples dominating some of B's tuples (A's lower corner
  /// weakly dominates B's upper corner) but is not guaranteed to: an
  /// ordering dependency, not a pruning opportunity.
  kPartiallyDominates,
  /// Neither: no feasible tuple of A dominates any feasible tuple of B.
  kIncomparable,
};

/// Evaluates Definition 8 for regions a over b on dimension indices `dims`.
/// Note the relation is directional: call twice for both directions.
RegionDomResult CompareRegions(const OutputRegion& a, const OutputRegion& b,
                               const std::vector<int>& dims);

/// True when a tuple with output values `point` fully dominates region `b`
/// over `dims`: the point weakly dominates b's lower corner with one strict
/// dimension, so every tuple b can produce is dominated. This is the
/// tuple-level region-discarding test of paper Section 6.
bool PointFullyDominatesRegion(const double* point, const OutputRegion& b,
                               const std::vector<int>& dims);

/// Batched form of PointFullyDominatesRegion over a column-gathered block of
/// accepted tuples (view dimension subset = the query's preference). Scans
/// rows in order and stops at the first tuple fully dominating `b`, exactly
/// where the serial per-tuple loop would break. Returns the number of rows
/// tested (first hit index + 1, or accepted.size() when none hits) so the
/// caller charges the identical discard-test count; sets *hit accordingly.
/// Uses only stack scratch, so concurrent calls over one view are safe.
int64_t ScanPointsFullyDominatingRegion(const SubspaceView& accepted,
                                        const OutputRegion& b, bool* hit);

/// True when region `b` could still produce a tuple dominating `point`
/// over `dims` (b's lower corner weakly dominates the point). Safe
/// progressive emission requires this to be false for every unprocessed
/// region serving the query.
bool RegionCanDominatePoint(const OutputRegion& b, const double* point,
                            const std::vector<int>& dims);

}  // namespace caqe

#endif  // CAQE_REGION_REGION_DOMINANCE_H_
