// Coarse-level skyline pruning (paper Section 5.2) and the region
// dependency graph (paper Section 5.3.2, Definition 9).
#ifndef CAQE_REGION_DEPENDENCY_GRAPH_H_
#define CAQE_REGION_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/query_set.h"
#include "query/query.h"
#include "region/region_builder.h"

namespace caqe {

/// Outcome of the coarse (abstract-level) skyline pass.
struct CoarsePruneStats {
  /// (region, query) lineage entries removed because another region fully
  /// dominates the region in that query's preference subspace.
  int64_t pruned_pairs = 0;
  /// Regions whose lineage became empty (they will never be processed).
  int64_t pruned_regions = 0;
  int64_t coarse_ops = 0;
};

/// Knobs for CoarseSkylinePrune.  `use_index` replaces the batched prefix
/// scan over candidate dominators with a best-first branch-and-bound over
/// a packed tree of their upper corners (PackedBoxTree).  The traversal
/// finds exactly the dominator the serial ascending-id scan would find
/// first, so pruned pairs, pruned regions, and coarse_ops stay
/// byte-identical; `index_stats` (optional) records the traversal shape
/// plus the scan-equivalent row count for the bench comparison.
struct CoarsePruneOptions {
  bool use_index = false;
  CoarseIndexStats* index_stats = nullptr;
};

/// Abstract-level skyline operation: for every query, removes from each
/// region's lineage the queries for which some other region (serving the
/// same query) fully dominates it. Sound because full region dominance is a
/// strict partial order: every pruned region is dominated by some region
/// that itself survives, and signature intersection guarantees the
/// dominator produces at least one join tuple.
CoarsePruneStats CoarseSkylinePrune(RegionCollection& rc,
                                    const Workload& workload,
                                    const CoarsePruneOptions& options = {});

/// Directed region dependency graph. An edge R_i -> R_j annotated with
/// query set W means: for each query in W, R_i (fully or partially)
/// dominates R_j in that query's preference subspace while R_j does not
/// dominate R_i back — processing R_i first can discard work in R_j. The
/// asymmetry filter keeps mutually-overlapping regions unordered instead of
/// creating two-cycles.
class DependencyGraph {
 public:
  /// Builds the graph over the (already coarse-pruned) region collection.
  static DependencyGraph Build(const RegionCollection& rc,
                               const Workload& workload,
                               int64_t* coarse_ops = nullptr);

  /// Edge-free graph with `n` active regions, all roots. The serving
  /// layer's dynamic workload uses this shape: lineages change as queries
  /// come and go, so no precomputed ordering constraint stays valid and
  /// every pending region remains a scheduling candidate.
  static DependencyGraph AllActive(int n);

  int num_regions() const { return static_cast<int>(out_edges_.size()); }

  const std::vector<std::pair<int, QuerySet>>& out_edges(int region) const {
    return out_edges_[region];
  }
  int in_degree(int region) const { return in_degree_[region]; }
  bool active(int region) const { return active_[region] != 0; }

  /// Region ids that are active with zero in-degree — the scheduling
  /// candidates of Algorithm 1. Falls back to all active regions when
  /// residual cycles leave no zero-in-degree region.
  std::vector<int> Roots() const;

  /// Removes `region` from the graph (processed or discarded), decrementing
  /// the in-degree of its successors. Appends to `newly_rooted` (if
  /// non-null) the successors whose in-degree reached zero.
  void Deactivate(int region, std::vector<int>* newly_rooted = nullptr);

 private:
  std::vector<std::vector<std::pair<int, QuerySet>>> out_edges_;
  std::vector<int> in_degree_;
  std::vector<char> active_;
};

}  // namespace caqe

#endif  // CAQE_REGION_DEPENDENCY_GRAPH_H_
