// Coarse-level join: derives output regions from leaf-cell pairs via join
// signatures (paper Section 5.1).
#ifndef CAQE_REGION_REGION_BUILDER_H_
#define CAQE_REGION_REGION_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "partition/cell_index.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "region/region.h"

namespace caqe {

/// The output regions of a workload plus the predicate bookkeeping shared
/// by engines.
struct RegionCollection {
  /// Distinct join-key columns used by the workload, ascending. Region
  /// join_sizes are indexed by position in this vector ("predicate slot").
  std::vector<int> predicate_slots;
  /// slot_of_query[q] = predicate slot of query q's join key.
  std::vector<int> slot_of_query;
  /// queries_of_slot[s] = queries using predicate slot s.
  std::vector<QuerySet> queries_of_slot;
  /// All regions with non-empty lineage (at least one join result for at
  /// least one query).
  std::vector<OutputRegion> regions;
  /// total_join_size[s] = exact workload-wide join output size of predicate
  /// slot s (sum over regions).
  std::vector<int64_t> total_join_sizes;
  /// Coarse-level operations spent building (signature merges, bound
  /// computations).
  int64_t coarse_ops = 0;
};

/// Coarse outcome of one query's selection ranges against a cell pair:
/// kDisjoint when some range misses the relevant cell box entirely (no
/// joined pair can qualify), kContained when the boxes lie inside every
/// range (every joined pair qualifies), kOverlap otherwise. Used by the
/// region build and by the serving layer's workload grafter, which
/// re-derives a new query's region lineage with exactly this test.
enum class SelectionCoarse { kDisjoint, kContained, kOverlap };

SelectionCoarse CoarseSelectionTest(const SjQuery& query,
                                    const LeafCell& cell_r,
                                    const LeafCell& cell_t);

/// Builds the region collection for `workload` over partitioned inputs.
/// A region is emitted per (cell_r, cell_t) pair whose signatures intersect
/// on at least one workload predicate; its lineage holds exactly the
/// queries whose predicate matched (guaranteeing >= 1 join result each,
/// per the signature containment argument of Section 5.1).
///
/// With a pool, R-cell stripes are scanned concurrently and the per-stripe
/// results merged in stripe order, so regions, ids, and coarse-op totals
/// are identical to the serial build regardless of thread count.
Result<RegionCollection> BuildRegions(const PartitionedTable& part_r,
                                      const PartitionedTable& part_t,
                                      const Workload& workload,
                                      ThreadPool* pool = nullptr);

/// Precomputed coarse selection classes: for every query, the set of cells
/// on each side that its selection ranges miss entirely (disjoint) or cover
/// completely (contained).  Derived once per bootstrap from packed box
/// trees over the cell bounds (see PackedBoxTree), after which the pair
/// test inside BuildRegions collapses to three bit-set operations:
///
///   disjoint(q, a, b)  = q in r_disjoint[a]  or q in t_disjoint[b]
///   contained(q, a, b) = q in r_contained[a] and q in t_contained[b]
///
/// which reproduces CoarseSelectionTest exactly — the per-side class only
/// depends on that side's cell, and a pair is disjoint iff either side is,
/// contained iff both sides are.
struct SelectionClassIndex {
  std::vector<QuerySet> r_disjoint;   ///< Indexed by R cell id.
  std::vector<QuerySet> r_contained;  ///< Indexed by R cell id.
  std::vector<QuerySet> t_disjoint;   ///< Indexed by T cell id.
  std::vector<QuerySet> t_contained;  ///< Indexed by T cell id.
};

/// Classifies every (query, cell) combination through bulk-loaded box
/// trees over both partitions.  Subtrees of cells wholly inside or wholly
/// outside a selection range are classified without visiting their leaves;
/// `stats` (optional) records the traversal shape.
SelectionClassIndex BuildSelectionClassIndex(const PartitionedTable& part_r,
                                             const PartitionedTable& part_t,
                                             const Workload& workload,
                                             CoarseIndexStats* stats);

/// Extended knobs for BuildRegions.  `selection_index` switches the
/// per-pair selection scan to the precomputed class masks; the emitted
/// regions, ids, and coarse_ops are byte-identical to the flat scan (the
/// signature-merge ops are unchanged and the per-query classification
/// charge is popcount-based, matching the scan's one op per eligible
/// query).  `index_stats` additionally accrues the flat-scan-equivalent
/// touch count (scan_equiv) for the bench comparison.
struct RegionBuildOptions {
  ThreadPool* pool = nullptr;
  const SelectionClassIndex* selection_index = nullptr;
  CoarseIndexStats* index_stats = nullptr;
};

Result<RegionCollection> BuildRegions(const PartitionedTable& part_r,
                                      const PartitionedTable& part_t,
                                      const Workload& workload,
                                      const RegionBuildOptions& options);

}  // namespace caqe

#endif  // CAQE_REGION_REGION_BUILDER_H_
