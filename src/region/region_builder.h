// Coarse-level join: derives output regions from leaf-cell pairs via join
// signatures (paper Section 5.1).
#ifndef CAQE_REGION_REGION_BUILDER_H_
#define CAQE_REGION_REGION_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "region/region.h"

namespace caqe {

/// The output regions of a workload plus the predicate bookkeeping shared
/// by engines.
struct RegionCollection {
  /// Distinct join-key columns used by the workload, ascending. Region
  /// join_sizes are indexed by position in this vector ("predicate slot").
  std::vector<int> predicate_slots;
  /// slot_of_query[q] = predicate slot of query q's join key.
  std::vector<int> slot_of_query;
  /// queries_of_slot[s] = queries using predicate slot s.
  std::vector<QuerySet> queries_of_slot;
  /// All regions with non-empty lineage (at least one join result for at
  /// least one query).
  std::vector<OutputRegion> regions;
  /// total_join_size[s] = exact workload-wide join output size of predicate
  /// slot s (sum over regions).
  std::vector<int64_t> total_join_sizes;
  /// Coarse-level operations spent building (signature merges, bound
  /// computations).
  int64_t coarse_ops = 0;
};

/// Coarse outcome of one query's selection ranges against a cell pair:
/// kDisjoint when some range misses the relevant cell box entirely (no
/// joined pair can qualify), kContained when the boxes lie inside every
/// range (every joined pair qualifies), kOverlap otherwise. Used by the
/// region build and by the serving layer's workload grafter, which
/// re-derives a new query's region lineage with exactly this test.
enum class SelectionCoarse { kDisjoint, kContained, kOverlap };

SelectionCoarse CoarseSelectionTest(const SjQuery& query,
                                    const LeafCell& cell_r,
                                    const LeafCell& cell_t);

/// Builds the region collection for `workload` over partitioned inputs.
/// A region is emitted per (cell_r, cell_t) pair whose signatures intersect
/// on at least one workload predicate; its lineage holds exactly the
/// queries whose predicate matched (guaranteeing >= 1 join result each,
/// per the signature containment argument of Section 5.1).
///
/// With a pool, R-cell stripes are scanned concurrently and the per-stripe
/// results merged in stripe order, so regions, ids, and coarse-op totals
/// are identical to the serial build regardless of thread count.
Result<RegionCollection> BuildRegions(const PartitionedTable& part_r,
                                      const PartitionedTable& part_t,
                                      const Workload& workload,
                                      ThreadPool* pool = nullptr);

}  // namespace caqe

#endif  // CAQE_REGION_REGION_BUILDER_H_
