// Output regions of the multi-query output space (paper Section 5).
#ifndef CAQE_REGION_REGION_H_
#define CAQE_REGION_REGION_H_

#include <cstdint>
#include <vector>

#include "common/query_set.h"

namespace caqe {

/// An output region: the bounding box, in the global output space, of the
/// join results produced by one pair of input leaf cells (L_a^R, L_b^T),
/// together with its region-query-lineage.
struct OutputRegion {
  /// Dense region id (index into the region collection).
  int id = 0;
  /// Contributing leaf-cell indices in the partitioned R and T tables.
  int cell_r = 0;
  int cell_t = 0;
  /// Row counts of the contributing cells (cost-model inputs).
  int64_t rows_r = 0;
  int64_t rows_t = 0;
  /// Output-space bounds, one entry per global output dimension. Computed
  /// from cell corner points via the monotone mapping functions, so every
  /// join result of this cell pair falls inside [lower, upper].
  std::vector<double> lower;
  std::vector<double> upper;
  /// Region query lineage RQL(R_i): queries this region can contribute to.
  /// A query is in the lineage iff the cells' signatures intersect on its
  /// join predicate and the cell boxes overlap every selection range of the
  /// query. Coarse skyline pruning and tuple-level discarding remove
  /// queries from the lineage.
  QuerySet rql;
  /// Subset of `rql` for which the region is *guaranteed* to produce at
  /// least one result: the signatures intersect and the cell boxes lie
  /// entirely inside all of the query's selection ranges (so every joined
  /// pair qualifies). Only guaranteed regions may coarse-prune others —
  /// a merely overlapping region might produce nothing.
  QuerySet guaranteed;
  /// join_sizes[k] = exact number of join pairs for distinct-predicate slot
  /// k (see RegionCollection::predicate_slots). Zero when the predicate
  /// does not match.
  std::vector<int64_t> join_sizes;

  /// Exact join output size for distinct-predicate slot `slot`.
  int64_t join_size(int slot) const { return join_sizes[slot]; }
};

}  // namespace caqe

#endif  // CAQE_REGION_REGION_H_
