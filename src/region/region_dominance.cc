#include "region/region_dominance.h"

namespace caqe {

RegionDomResult CompareRegions(const OutputRegion& a, const OutputRegion& b,
                               const std::vector<int>& dims) {
  bool full = true;        // u_a <= l_b everywhere...
  bool full_strict = false;  // ...and < somewhere.
  bool partial = true;     // l_a <= u_b everywhere.
  for (int k : dims) {
    if (a.upper[k] > b.lower[k]) {
      full = false;
    } else if (a.upper[k] < b.lower[k]) {
      full_strict = true;
    }
    if (a.lower[k] > b.upper[k]) {
      partial = false;
      break;  // Partial is implied by full, so neither can hold now.
    }
  }
  if (full && full_strict) return RegionDomResult::kFullyDominates;
  if (partial) return RegionDomResult::kPartiallyDominates;
  return RegionDomResult::kIncomparable;
}

bool PointFullyDominatesRegion(const double* point, const OutputRegion& b,
                               const std::vector<int>& dims) {
  bool strict = false;
  for (int k : dims) {
    if (point[k] > b.lower[k]) return false;
    if (point[k] < b.lower[k]) strict = true;
  }
  return strict;
}

bool RegionCanDominatePoint(const OutputRegion& b, const double* point,
                            const std::vector<int>& dims) {
  // The best feasible future tuple of b is its lower corner; if it weakly
  // dominates the point, some feasible tuple may strictly dominate it.
  for (int k : dims) {
    if (b.lower[k] > point[k]) return false;
  }
  return true;
}

}  // namespace caqe
