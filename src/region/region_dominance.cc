#include "region/region_dominance.h"

#include <algorithm>

namespace caqe {

RegionDomResult CompareRegions(const OutputRegion& a, const OutputRegion& b,
                               const std::vector<int>& dims) {
  bool full = true;        // u_a <= l_b everywhere...
  bool full_strict = false;  // ...and < somewhere.
  bool partial = true;     // l_a <= u_b everywhere.
  for (int k : dims) {
    if (a.upper[k] > b.lower[k]) {
      full = false;
    } else if (a.upper[k] < b.lower[k]) {
      full_strict = true;
    }
    if (a.lower[k] > b.upper[k]) {
      partial = false;
      break;  // Partial is implied by full, so neither can hold now.
    }
  }
  if (full && full_strict) return RegionDomResult::kFullyDominates;
  if (partial) return RegionDomResult::kPartiallyDominates;
  return RegionDomResult::kIncomparable;
}

bool PointFullyDominatesRegion(const double* point, const OutputRegion& b,
                               const std::vector<int>& dims) {
  bool strict = false;
  for (int k : dims) {
    if (point[k] > b.lower[k]) return false;
    if (point[k] < b.lower[k]) strict = true;
  }
  return strict;
}

int64_t ScanPointsFullyDominatingRegion(const SubspaceView& accepted,
                                        const OutputRegion& b, bool* hit) {
  // With the region's lower corner as the probe `a` and the accepted tuples
  // as candidates, PointFullyDominatesRegion(tuple, b) — tuple <= lower
  // everywhere, < somewhere — is exactly the flag pattern "B better
  // somewhere, A better nowhere".
  double probe[kBatchMaxDims];
  GatherPoint(b.lower.data(), accepted.dims(), probe);
  const int64_t n = accepted.size();
  constexpr int64_t kChunk = 256;
  uint8_t flags[kChunk];
  for (int64_t begin = 0; begin < n; begin += kChunk) {
    const int64_t end = std::min(n, begin + kChunk);
    BatchDominanceFlags(probe, accepted, begin, end, flags);
    for (int64_t i = begin; i < end; ++i) {
      const uint8_t f = flags[i - begin];
      if ((f & (kBatchABetter | kBatchBBetter)) == kBatchBBetter) {
        *hit = true;
        return i + 1;
      }
    }
  }
  *hit = false;
  return n;
}

bool RegionCanDominatePoint(const OutputRegion& b, const double* point,
                            const std::vector<int>& dims) {
  // The best feasible future tuple of b is its lower corner; if it weakly
  // dominates the point, some feasible tuple may strictly dominate it.
  for (int k : dims) {
    if (b.lower[k] > point[k]) return false;
  }
  return true;
}

}  // namespace caqe
