#include "region/region_builder.h"

#include <algorithm>

namespace caqe {

SelectionCoarse CoarseSelectionTest(const SjQuery& query,
                                    const LeafCell& cell_r,
                                    const LeafCell& cell_t) {
  bool contained = true;
  for (const SelectionRange& sel : query.selections) {
    const LeafCell& cell = sel.on_r ? cell_r : cell_t;
    if (cell.lower[sel.attr] > sel.hi || cell.upper[sel.attr] < sel.lo) {
      return SelectionCoarse::kDisjoint;
    }
    if (cell.lower[sel.attr] < sel.lo || cell.upper[sel.attr] > sel.hi) {
      contained = false;
    }
  }
  return contained ? SelectionCoarse::kContained : SelectionCoarse::kOverlap;
}

namespace {

/// Per-stripe scratch of the parallel region scan: regions in (a, b) order
/// with ids unassigned, plus the stripe's share of the work counters.
struct RegionStripe {
  std::vector<OutputRegion> regions;
  std::vector<int64_t> total_join_sizes;
  int64_t coarse_ops = 0;
  int64_t scan_equiv = 0;
};

/// Classifies one side's cells against every query's ranges on that side.
void ClassifySide(const PartitionedTable& part, const Workload& workload,
                  bool on_r, std::vector<QuerySet>* disjoint,
                  std::vector<QuerySet>* contained,
                  CoarseIndexStats* stats) {
  const int64_t num_cells = part.num_cells();
  disjoint->assign(static_cast<size_t>(num_cells), QuerySet());
  contained->assign(static_cast<size_t>(num_cells), QuerySet());
  PackedBoxTree tree;
  tree.Build(
      part.table().num_attrs(), num_cells,
      [&part](int64_t i) {
        return part.cell(static_cast<int>(i)).lower.data();
      },
      [&part](int64_t i) {
        return part.cell(static_cast<int>(i)).upper.data();
      });
  if (stats != nullptr) {
    ++stats->trees_built;
    stats->build_entries += num_cells;
  }
  std::vector<uint8_t> classes(static_cast<size_t>(num_cells));
  std::vector<IndexRange> ranges;
  for (int q = 0; q < workload.num_queries(); ++q) {
    ranges.clear();
    for (const SelectionRange& sel : workload.query(q).selections) {
      if (sel.on_r != on_r) continue;
      ranges.push_back(IndexRange{sel.attr, sel.lo, sel.hi});
    }
    tree.ClassifyRanges(ranges, classes.data(), stats);
    for (int64_t i = 0; i < num_cells; ++i) {
      const uint8_t cls = classes[static_cast<size_t>(i)];
      if (cls == kIndexDisjoint) {
        (*disjoint)[static_cast<size_t>(i)].Add(q);
      } else if (cls == kIndexContained) {
        (*contained)[static_cast<size_t>(i)].Add(q);
      }
    }
  }
}

}  // namespace

SelectionClassIndex BuildSelectionClassIndex(const PartitionedTable& part_r,
                                             const PartitionedTable& part_t,
                                             const Workload& workload,
                                             CoarseIndexStats* stats) {
  SelectionClassIndex index;
  ClassifySide(part_r, workload, /*on_r=*/true, &index.r_disjoint,
               &index.r_contained, stats);
  ClassifySide(part_t, workload, /*on_r=*/false, &index.t_disjoint,
               &index.t_contained, stats);
  return index;
}

Result<RegionCollection> BuildRegions(const PartitionedTable& part_r,
                                      const PartitionedTable& part_t,
                                      const Workload& workload,
                                      ThreadPool* pool) {
  RegionBuildOptions options;
  options.pool = pool;
  return BuildRegions(part_r, part_t, workload, options);
}

Result<RegionCollection> BuildRegions(const PartitionedTable& part_r,
                                      const PartitionedTable& part_t,
                                      const Workload& workload,
                                      const RegionBuildOptions& options) {
  ThreadPool* pool = options.pool;
  const SelectionClassIndex* sel_index = options.selection_index;
  CAQE_RETURN_NOT_OK(workload.Validate(part_r.table(), part_t.table()));

  RegionCollection rc;
  rc.predicate_slots = workload.DistinctJoinKeys();
  const int num_slots = static_cast<int>(rc.predicate_slots.size());
  rc.slot_of_query.resize(workload.num_queries(), -1);
  rc.queries_of_slot.resize(num_slots);
  for (int q = 0; q < workload.num_queries(); ++q) {
    const int key = workload.query(q).join_key;
    const auto it = std::find(rc.predicate_slots.begin(),
                              rc.predicate_slots.end(), key);
    rc.slot_of_query[q] =
        static_cast<int>(it - rc.predicate_slots.begin());
    rc.queries_of_slot[rc.slot_of_query[q]].Add(q);
  }
  rc.total_join_sizes.assign(num_slots, 0);

  const int width = workload.num_output_dims();
  const int64_t num_r_cells = part_r.num_cells();
  // Below this many cell pairs the stripe fork/join costs more than the
  // scan; build serially. The stripe merge makes ids and counters identical
  // at any chunk count, so the cutoff cannot change results.
  constexpr int64_t kParallelMinCellPairs = 1024;
  const int64_t cell_pairs = num_r_cells * part_t.num_cells();
  ThreadPool* const build_pool =
      cell_pairs >= kParallelMinCellPairs ? pool : nullptr;
  const int chunks = NumChunks(build_pool, num_r_cells, /*min_chunk=*/1);
  std::vector<RegionStripe> stripes(chunks);

  RunChunks(build_pool, chunks, [&](int c) {
    const auto [a_begin, a_end] = ChunkRange(num_r_cells, chunks, c);
    RegionStripe& stripe = stripes[c];
    stripe.total_join_sizes.assign(num_slots, 0);
    for (int64_t a = a_begin; a < a_end; ++a) {
      const LeafCell& cell_r = part_r.cell(static_cast<int>(a));
      for (int b = 0; b < part_t.num_cells(); ++b) {
        const LeafCell& cell_t = part_t.cell(b);
        OutputRegion region;
        region.join_sizes.assign(num_slots, 0);
        for (int s = 0; s < num_slots; ++s) {
          const int key = rc.predicate_slots[s];
          const int64_t size = ExactJoinSize(
              cell_r.signatures[key], cell_r.signature_counts[key],
              cell_t.signatures[key], cell_t.signature_counts[key],
              &stripe.coarse_ops);
          region.join_sizes[s] = size;
          if (size <= 0) continue;
          stripe.total_join_sizes[s] += size;
          const QuerySet eligible = rc.queries_of_slot[s];
          if (sel_index != nullptr) {
            // Indexed path: the precomputed per-side classes collapse the
            // per-query CoarseSelectionTest to bit-set algebra.  The op
            // charge stays one per eligible query — exactly what the scan
            // path charges per test — so reports are byte-identical.
            stripe.coarse_ops += eligible.size();
            stripe.scan_equiv += eligible.size();
            const QuerySet disjoint =
                sel_index->r_disjoint[static_cast<size_t>(a)].Union(
                    sel_index->t_disjoint[static_cast<size_t>(b)]);
            const QuerySet contained =
                sel_index->r_contained[static_cast<size_t>(a)].Intersect(
                    sel_index->t_contained[static_cast<size_t>(b)]);
            region.rql = region.rql.Union(eligible.Minus(disjoint));
            region.guaranteed =
                region.guaranteed.Union(eligible.Intersect(contained));
            continue;
          }
          // Per query: fold the selection ranges into the coarse test.
          eligible.ForEach([&](int q) {
            ++stripe.coarse_ops;
            switch (CoarseSelectionTest(workload.query(q), cell_r, cell_t)) {
              case SelectionCoarse::kDisjoint:
                break;
              case SelectionCoarse::kContained:
                region.rql.Add(q);
                region.guaranteed.Add(q);
                break;
              case SelectionCoarse::kOverlap:
                region.rql.Add(q);
                break;
            }
          });
        }
        if (region.rql.empty()) continue;

        region.cell_r = static_cast<int>(a);
        region.cell_t = b;
        region.rows_r = static_cast<int64_t>(cell_r.rows.size());
        region.rows_t = static_cast<int64_t>(cell_t.rows.size());
        region.lower.resize(width);
        region.upper.resize(width);
        for (int k = 0; k < width; ++k) {
          const MappingFunction& f = workload.output_dim(k);
          region.lower[k] =
              f.Apply(cell_r.lower[f.r_attr], cell_t.lower[f.t_attr]);
          region.upper[k] =
              f.Apply(cell_r.upper[f.r_attr], cell_t.upper[f.t_attr]);
          ++stripe.coarse_ops;
        }
        stripe.regions.push_back(std::move(region));
      }
    }
  });

  // Merge stripes in stripe order: region ids, counter totals, and region
  // order come out exactly as in a serial (a, b) scan.
  for (RegionStripe& stripe : stripes) {
    for (OutputRegion& region : stripe.regions) {
      region.id = static_cast<int>(rc.regions.size());
      rc.regions.push_back(std::move(region));
    }
    for (int s = 0; s < num_slots; ++s) {
      rc.total_join_sizes[s] += stripe.total_join_sizes[s];
    }
    rc.coarse_ops += stripe.coarse_ops;
    if (options.index_stats != nullptr) {
      options.index_stats->scan_equiv += stripe.scan_equiv;
    }
  }
  return rc;
}

}  // namespace caqe
