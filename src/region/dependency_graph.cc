#include "region/dependency_graph.h"

#include <algorithm>

#include "region/region_dominance.h"
#include "skyline/dominance_batch.h"

namespace caqe {
namespace {

// Preference dimension lists per query, precomputed once.
std::vector<std::vector<int>> QueryDims(const Workload& workload) {
  std::vector<std::vector<int>> dims(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    dims[q] = workload.query(q).preference;
  }
  return dims;
}

}  // namespace

CoarsePruneStats CoarseSkylinePrune(RegionCollection& rc,
                                    const Workload& workload,
                                    const CoarsePruneOptions& options) {
  CoarsePruneStats stats;
  const std::vector<std::vector<int>> dims = QueryDims(workload);
  const int n = static_cast<int>(rc.regions.size());
  // Snapshot of the original *guaranteed* lineages: a dominator prunes
  // even if it is itself pruned for the same query, because full dominance
  // is a strict partial order (its own dominator transitively covers the
  // victim) — but only regions guaranteed to produce a result for the
  // query may prune (a selection-overlapping region might yield nothing).
  std::vector<QuerySet> original(n);
  std::vector<QuerySet> before(n);
  for (int i = 0; i < n; ++i) {
    original[i] = rc.regions[i].guaranteed;
    before[i] = rc.regions[i].rql;
  }

  // Per query, the candidate dominators' upper corners column-gathered in
  // the query's preference subspace (ascending region id, the serial scan
  // order). "Upper corner of i fully dominates victim j" is exactly the
  // point-vs-region test of the Section-6 discard scan, so the same batch
  // kernel serves: it stops at the first dominating row and returns the
  // rows-tested count. The serial loop never tested i == j, so when the
  // victim sits in the scanned prefix its row (which can never hit: a box
  // corner cannot strictly dominate the box's own lower corner) is charged
  // back off. Per (victim, query) the first dominator — and therefore the
  // test count and every pruned pair — is identical to the serial
  // i-ascending scan, and totals are order-insensitive.
  SubspaceView uppers;
  PackedBoxTree tree;
  std::vector<double> tree_points;
  std::vector<double> probe;
  std::vector<int> pos(n);
  for (int q = 0; q < workload.num_queries(); ++q) {
    std::fill(pos.begin(), pos.end(), -1);
    int count = 0;
    for (int i = 0; i < n; ++i) {
      if (original[i].Contains(q)) pos[i] = count++;
    }
    if (count == 0) continue;
    const int width = static_cast<int>(dims[q].size());
    if (options.use_index) {
      // Indexed variant: the candidate upper corners (same ascending-id
      // order as the scan) become the points of a packed tree, and the
      // best-first traversal of FirstDominatorPos recovers exactly the
      // first dominator position the prefix scan would report.  The op
      // charge below then reproduces the scan's count analytically:
      // rows-scanned-to-first-hit, minus the victim's own (never-hitting)
      // row when it sits inside the scanned prefix.
      tree_points.assign(static_cast<size_t>(count) * width, 0.0);
      for (int i = 0; i < n; ++i) {
        if (pos[i] < 0) continue;
        GatherPoint(rc.regions[i].upper.data(), dims[q],
                    tree_points.data() + static_cast<int64_t>(pos[i]) * width);
      }
      tree.BuildPoints(width, count, tree_points.data());
      if (options.index_stats != nullptr) {
        ++options.index_stats->trees_built;
        options.index_stats->build_entries += count;
      }
      probe.assign(static_cast<size_t>(width), 0.0);
    } else {
      uppers.Reset(dims[q]);
      uppers.Reserve(count);
      for (int i = 0; i < n; ++i) {
        if (pos[i] >= 0) uppers.PushPoint(rc.regions[i].upper.data());
      }
    }
    for (int j = 0; j < n; ++j) {
      OutputRegion& victim = rc.regions[j];
      if (!victim.rql.Contains(q)) continue;
      bool hit = false;
      int64_t scanned = 0;
      if (options.use_index) {
        GatherPoint(victim.lower.data(), dims[q], probe.data());
        const int64_t first = tree.FirstDominatorPos(
            probe.data(), options.index_stats);
        hit = first >= 0;
        scanned = hit ? first + 1 : count;
        if (options.index_stats != nullptr) {
          options.index_stats->scan_equiv += scanned;
        }
      } else {
        scanned = ScanPointsFullyDominatingRegion(uppers, victim, &hit);
      }
      stats.coarse_ops += scanned - (pos[j] >= 0 && pos[j] < scanned ? 1 : 0);
      if (hit) {
        victim.rql.Remove(q);
        victim.guaranteed.Remove(q);
        ++stats.pruned_pairs;
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    if (!before[j].empty() && rc.regions[j].rql.empty()) ++stats.pruned_regions;
  }
  return stats;
}

DependencyGraph DependencyGraph::Build(const RegionCollection& rc,
                                       const Workload& workload,
                                       int64_t* coarse_ops) {
  const std::vector<std::vector<int>> dims = QueryDims(workload);
  const int n = static_cast<int>(rc.regions.size());
  const int num_q = workload.num_queries();
  DependencyGraph dg;
  dg.out_edges_.resize(n);
  dg.in_degree_.assign(n, 0);
  dg.active_.assign(n, 1);

  // Per query: the serving regions' two corners column-gathered in the
  // query's preference subspace, plus each region's row position. Both
  // directions of Definition 8 for a fixed source region `a` then come
  // from two batch calls covering every candidate `b` at once:
  //   f1 = flags(a.upper vs b.lower), f2 = flags(a.lower vs b.upper)
  //   a fully dominates b    <=> f1 == {a better somewhere, b nowhere}
  //   a partially dominates b <=> f2 has no "b better" bit
  //   b fully dominates a    <=> f2 == {b better somewhere, a nowhere}
  //   b partially dominates a <=> f1 has no "a better" bit
  // (boxes have lower <= upper per dimension, so "full" implies "partial"
  // and the decoded results match the scalar CompareRegions exactly).
  std::vector<std::vector<int>> pos(num_q, std::vector<int>(n, -1));
  std::vector<SubspaceView> lowers(num_q), uppers(num_q);
  for (int q = 0; q < num_q; ++q) {
    lowers[q].Reset(dims[q]);
    uppers[q].Reset(dims[q]);
    int count = 0;
    for (int i = 0; i < n; ++i) {
      if (!rc.regions[i].rql.Contains(q)) continue;
      pos[q][i] = count++;
      lowers[q].PushPoint(rc.regions[i].lower.data());
      uppers[q].PushPoint(rc.regions[i].upper.data());
    }
  }

  std::vector<std::vector<uint8_t>> f_ul(num_q), f_lu(num_q);
  for (int i = 0; i < n; ++i) {
    const OutputRegion& a = rc.regions[i];
    if (a.rql.empty()) {
      dg.active_[i] = 0;
      continue;
    }
    // One row of flags per (query of a, candidate): reused by every j.
    a.rql.ForEach([&](int q) {
      const int64_t m = lowers[q].size();
      f_ul[q].resize(static_cast<size_t>(m));
      f_lu[q].resize(static_cast<size_t>(m));
      double probe[kBatchMaxDims];
      GatherPoint(a.upper.data(), lowers[q].dims(), probe);
      BatchDominanceFlags(probe, lowers[q], 0, m, f_ul[q].data());
      GatherPoint(a.lower.data(), uppers[q].dims(), probe);
      BatchDominanceFlags(probe, uppers[q], 0, m, f_lu[q].data());
    });
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const OutputRegion& b = rc.regions[j];
      const QuerySet common = a.rql.Intersect(b.rql);
      if (common.empty()) continue;
      QuerySet annotated;
      common.ForEach([&](int q) {
        // The serial pass charged both directions' box tests up front.
        if (coarse_ops != nullptr) *coarse_ops += 2;
        const uint8_t f1 = f_ul[q][pos[q][j]];
        const uint8_t f2 = f_lu[q][pos[q][j]];
        const bool fwd_full =
            (f1 & (kBatchABetter | kBatchBBetter)) == kBatchABetter;
        if (!fwd_full) {
          const bool fwd_partial = (f2 & kBatchBBetter) == 0;
          if (!fwd_partial) return;  // Forward incomparable: no edge.
          const bool back_full =
              (f2 & (kBatchABetter | kBatchBBetter)) == kBatchBBetter;
          const bool back_partial = (f1 & kBatchABetter) == 0;
          if (back_full || back_partial) {
            return;  // Symmetric overlap: leave the pair unordered.
          }
        }
        annotated.Add(q);
      });
      if (!annotated.empty()) {
        dg.out_edges_[i].emplace_back(j, annotated);
        ++dg.in_degree_[j];
      }
    }
  }
  return dg;
}

DependencyGraph DependencyGraph::AllActive(int n) {
  DependencyGraph dg;
  dg.out_edges_.resize(n);
  dg.in_degree_.assign(n, 0);
  dg.active_.assign(n, 1);
  return dg;
}

std::vector<int> DependencyGraph::Roots() const {
  std::vector<int> roots;
  for (int i = 0; i < num_regions(); ++i) {
    if (active_[i] && in_degree_[i] == 0) roots.push_back(i);
  }
  if (!roots.empty()) return roots;
  // Residual cycles: fall back to every active region so Algorithm 1 never
  // deadlocks.
  for (int i = 0; i < num_regions(); ++i) {
    if (active_[i]) roots.push_back(i);
  }
  return roots;
}

void DependencyGraph::Deactivate(int region, std::vector<int>* newly_rooted) {
  CAQE_DCHECK(region >= 0 && region < num_regions());
  if (!active_[region]) return;
  active_[region] = 0;
  for (const auto& [target, queries] : out_edges_[region]) {
    (void)queries;
    if (--in_degree_[target] == 0 && active_[target] &&
        newly_rooted != nullptr) {
      newly_rooted->push_back(target);
    }
  }
  out_edges_[region].clear();
}

}  // namespace caqe
