#include "region/dependency_graph.h"

#include "region/region_dominance.h"

namespace caqe {
namespace {

// Preference dimension lists per query, precomputed once.
std::vector<std::vector<int>> QueryDims(const Workload& workload) {
  std::vector<std::vector<int>> dims(workload.num_queries());
  for (int q = 0; q < workload.num_queries(); ++q) {
    dims[q] = workload.query(q).preference;
  }
  return dims;
}

}  // namespace

CoarsePruneStats CoarseSkylinePrune(RegionCollection& rc,
                                    const Workload& workload) {
  CoarsePruneStats stats;
  const std::vector<std::vector<int>> dims = QueryDims(workload);
  const int n = static_cast<int>(rc.regions.size());
  // Snapshot of the original *guaranteed* lineages: a dominator prunes
  // even if it is itself pruned for the same query, because full dominance
  // is a strict partial order (its own dominator transitively covers the
  // victim) — but only regions guaranteed to produce a result for the
  // query may prune (a selection-overlapping region might yield nothing).
  std::vector<QuerySet> original(n);
  for (int i = 0; i < n; ++i) original[i] = rc.regions[i].guaranteed;

  for (int j = 0; j < n; ++j) {
    OutputRegion& victim = rc.regions[j];
    const QuerySet before = victim.rql;
    for (int i = 0; i < n && !victim.rql.empty(); ++i) {
      if (i == j) continue;
      const QuerySet common = original[i].Intersect(victim.rql);
      if (common.empty()) continue;
      common.ForEach([&](int q) {
        ++stats.coarse_ops;
        if (CompareRegions(rc.regions[i], victim, dims[q]) ==
            RegionDomResult::kFullyDominates) {
          victim.rql.Remove(q);
          victim.guaranteed.Remove(q);
          ++stats.pruned_pairs;
        }
      });
    }
    if (!before.empty() && victim.rql.empty()) ++stats.pruned_regions;
  }
  return stats;
}

DependencyGraph DependencyGraph::Build(const RegionCollection& rc,
                                       const Workload& workload,
                                       int64_t* coarse_ops) {
  const std::vector<std::vector<int>> dims = QueryDims(workload);
  const int n = static_cast<int>(rc.regions.size());
  DependencyGraph dg;
  dg.out_edges_.resize(n);
  dg.in_degree_.assign(n, 0);
  dg.active_.assign(n, 1);

  for (int i = 0; i < n; ++i) {
    const OutputRegion& a = rc.regions[i];
    if (a.rql.empty()) {
      dg.active_[i] = 0;
      continue;
    }
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const OutputRegion& b = rc.regions[j];
      const QuerySet common = a.rql.Intersect(b.rql);
      if (common.empty()) continue;
      QuerySet annotated;
      common.ForEach([&](int q) {
        if (coarse_ops != nullptr) *coarse_ops += 2;
        const RegionDomResult fwd = CompareRegions(a, b, dims[q]);
        if (fwd == RegionDomResult::kIncomparable) return;
        const RegionDomResult back = CompareRegions(b, a, dims[q]);
        if (back != RegionDomResult::kIncomparable &&
            fwd != RegionDomResult::kFullyDominates) {
          return;  // Symmetric overlap: leave the pair unordered.
        }
        annotated.Add(q);
      });
      if (!annotated.empty()) {
        dg.out_edges_[i].emplace_back(j, annotated);
        ++dg.in_degree_[j];
      }
    }
  }
  return dg;
}

std::vector<int> DependencyGraph::Roots() const {
  std::vector<int> roots;
  for (int i = 0; i < num_regions(); ++i) {
    if (active_[i] && in_degree_[i] == 0) roots.push_back(i);
  }
  if (!roots.empty()) return roots;
  // Residual cycles: fall back to every active region so Algorithm 1 never
  // deadlocks.
  for (int i = 0; i < num_regions(); ++i) {
    if (active_[i]) roots.push_back(i);
  }
  return roots;
}

void DependencyGraph::Deactivate(int region, std::vector<int>* newly_rooted) {
  CAQE_DCHECK(region >= 0 && region < num_regions());
  if (!active_[region]) return;
  active_[region] = 0;
  for (const auto& [target, queries] : out_edges_[region]) {
    (void)queries;
    if (--in_degree_[target] == 0 && active_[target] &&
        newly_rooted != nullptr) {
      newly_rooted->push_back(target);
    }
  }
  out_edges_[region].clear();
}

}  // namespace caqe
