// Compact set of query indices, used for region/cell query lineage.
#ifndef CAQE_COMMON_QUERY_SET_H_
#define CAQE_COMMON_QUERY_SET_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace caqe {

/// A set of query indices in [0, 64), stored as a 64-bit mask.
///
/// CAQE workloads are small (the paper evaluates up to 11 concurrent
/// queries), so a single machine word suffices. QuerySet is the
/// representation behind region-query-lineage (RQL) and cell-query-lineage
/// (CQL) bit vectors (paper Sections 5.2 and 6).
class QuerySet {
 public:
  static constexpr int kMaxQueries = 64;

  constexpr QuerySet() = default;

  /// Singleton set {q}.
  static QuerySet Of(int q) {
    QuerySet s;
    s.Add(q);
    return s;
  }

  /// Set containing all indices in [0, n).
  static QuerySet AllOf(int n) {
    CAQE_DCHECK(n >= 0 && n <= kMaxQueries);
    QuerySet s;
    s.bits_ = (n == kMaxQueries) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    return s;
  }

  void Add(int q) {
    CAQE_DCHECK(q >= 0 && q < kMaxQueries);
    bits_ |= uint64_t{1} << q;
  }
  void Remove(int q) {
    CAQE_DCHECK(q >= 0 && q < kMaxQueries);
    bits_ &= ~(uint64_t{1} << q);
  }
  bool Contains(int q) const {
    CAQE_DCHECK(q >= 0 && q < kMaxQueries);
    return (bits_ >> q) & 1;
  }

  bool empty() const { return bits_ == 0; }
  int size() const { return std::popcount(bits_); }

  QuerySet Union(QuerySet other) const { return QuerySet(bits_ | other.bits_); }
  QuerySet Intersect(QuerySet other) const {
    return QuerySet(bits_ & other.bits_);
  }
  QuerySet Minus(QuerySet other) const { return QuerySet(bits_ & ~other.bits_); }

  /// True when every element of this set is in `other`.
  bool IsSubsetOf(QuerySet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  bool Intersects(QuerySet other) const { return (bits_ & other.bits_) != 0; }

  uint64_t bits() const { return bits_; }

  friend bool operator==(QuerySet a, QuerySet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(QuerySet a, QuerySet b) { return a.bits_ != b.bits_; }

  /// Invokes fn(int query_index) for each member, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t rest = bits_;
    while (rest != 0) {
      int q = std::countr_zero(rest);
      fn(q);
      rest &= rest - 1;
    }
  }

  /// Renders e.g. "{0,2,5}" for debugging.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEach([&](int q) {
      if (!first) out += ",";
      out += std::to_string(q);
      first = false;
    });
    out += "}";
    return out;
  }

 private:
  explicit constexpr QuerySet(uint64_t bits) : bits_(bits) {}
  uint64_t bits_ = 0;
};

}  // namespace caqe

#endif  // CAQE_COMMON_QUERY_SET_H_
