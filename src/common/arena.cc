#include "common/arena.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAQE_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CAQE_ARENA_ASAN 1
#endif

#ifdef CAQE_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define CAQE_ARENA_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define CAQE_ARENA_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define CAQE_ARENA_POISON(ptr, size) ((void)(ptr), (void)(size))
#define CAQE_ARENA_UNPOISON(ptr, size) ((void)(ptr), (void)(size))
#endif

namespace caqe {
namespace {

size_t NextPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Arena::Arena(size_t initial_bytes) {
  AddBlock(initial_bytes == 0 ? 64 : initial_bytes);
}

Arena::~Arena() {
  // Blocks are poisoned while parked; unpoison before the allocator
  // reclaims them so ASan does not flag the internal free.
  for (Block& block : blocks_) {
    CAQE_ARENA_UNPOISON(block.data.get(), block.size);
  }
}

Arena::Block& Arena::AddBlock(size_t min_bytes) {
  Block block;
  block.size = NextPow2(min_bytes);
  block.data = std::make_unique<char[]>(block.size);
  CAQE_ARENA_POISON(block.data.get(), block.size);
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

void* Arena::Allocate(size_t bytes, size_t align) {
  CAQE_DCHECK(align != 0 && (align & (align - 1)) == 0);
  Block* block = &blocks_[current_];
  // Alignment is computed on the absolute address: block bases come from
  // operator new[] and only guarantee max_align_t, so aligning the offset
  // alone would miss wider requests (e.g. 64-byte cache lines).
  const auto align_from = [align](const Block& b, size_t offset) {
    const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    const uintptr_t mask = static_cast<uintptr_t>(align) - 1;
    return static_cast<size_t>(((base + offset + mask) & ~mask) - base);
  };
  size_t aligned = align_from(*block, offset_);
  if (aligned + bytes > block->size) {
    // Overflow: move to the next block (or grow a fresh one). Reset()
    // coalesces, so overflow happens only while the high-water mark is
    // still being discovered. The abandoned tail counts toward the epoch
    // footprint so the coalesced block provably fits the whole epoch.
    used_ += block->size - offset_;
    const size_t need = bytes + align;  // Worst-case alignment padding.
    if (current_ + 1 < blocks_.size() &&
        blocks_[current_ + 1].size >= need) {
      ++current_;
    } else {
      blocks_.resize(current_ + 1);  // Drop too-small successors.
      AddBlock(need * 2 > block->size * 2 ? need * 2 : block->size * 2);
      current_ = blocks_.size() - 1;
    }
    block = &blocks_[current_];
    offset_ = 0;
    aligned = align_from(*block, 0);
    CAQE_DCHECK(aligned + bytes <= block->size);
  }
  void* ptr = block->data.get() + aligned;
  CAQE_ARENA_UNPOISON(ptr, bytes);
  used_ += (aligned - offset_) + bytes;
  offset_ = aligned + bytes;
  return ptr;
}

void Arena::Reset() {
  ++epoch_;
  if (blocks_.size() > 1) {
    // The epoch spilled across blocks: replace them with one block sized
    // to the epoch's footprint so the next epochs bump inside it alone.
    const size_t need = NextPow2(used_ == 0 ? 64 : used_);
    blocks_.clear();
    AddBlock(need);
  } else {
    CAQE_ARENA_POISON(blocks_[0].data.get(), blocks_[0].size);
  }
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

size_t Arena::bytes_capacity() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

}  // namespace caqe
