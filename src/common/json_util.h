// JSON string escaping shared by every JSON/JSONL writer in the tree
// (metrics/export, obs/span, obs/metrics_registry, obs/health).
//
// The repository serializes user-controlled strings — engine names, query
// names, metric labels — into JSON by hand. Every such write must go
// through JsonAppendString/JsonQuote so that names containing `"`, `\`, or
// control characters still produce valid JSON.
#ifndef CAQE_COMMON_JSON_UTIL_H_
#define CAQE_COMMON_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace caqe {

/// Appends `s` to `out` as a JSON string literal *including* the enclosing
/// quotes: `"` -> `\"`, `\` -> `\\`, and control characters (< 0x20) to
/// their short escapes (\b \f \n \r \t) or \u00XX.
void JsonAppendString(std::string& out, std::string_view s);

/// Returns `s` as a quoted JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace caqe

#endif  // CAQE_COMMON_JSON_UTIL_H_
