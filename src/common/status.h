// Error handling primitives for the CAQE library.
//
// The library does not use C++ exceptions. Fallible operations return
// caqe::Status (or caqe::Result<T> when they also produce a value). The
// design follows the Status/Result idiom used by Arrow and RocksDB.
#ifndef CAQE_COMMON_STATUS_H_
#define CAQE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace caqe {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or an error code plus message.
///
/// Status is cheap to copy in the OK case and supports the usual
/// `if (!status.ok()) return status;` propagation style. Use the
/// CAQE_RETURN_NOT_OK macro to shorten propagation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CAQE_DCHECK(code_ != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
///
/// Access the value with `value()` / `operator*` only after checking `ok()`;
/// violating that contract aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    CAQE_DCHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK when a value is held, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  const T& value() const& {
    CAQE_DCHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    CAQE_DCHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    CAQE_DCHECK(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define CAQE_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::caqe::Status _caqe_status = (expr); \
    if (!_caqe_status.ok()) {             \
      return _caqe_status;                \
    }                                     \
  } while (0)

}  // namespace caqe

#endif  // CAQE_COMMON_STATUS_H_
