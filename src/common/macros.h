// Assertion and utility macros shared across the CAQE library.
#ifndef CAQE_COMMON_MACROS_H_
#define CAQE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// CAQE_CHECK aborts (in all build modes) when `condition` is false. It guards
// programmer errors that must never occur in a correct program; recoverable
// errors use caqe::Status instead.
#define CAQE_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "CAQE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// CAQE_DCHECK is compiled out in release (NDEBUG) builds.
#ifdef NDEBUG
#define CAQE_DCHECK(condition) \
  do {                         \
  } while (0)
#else
#define CAQE_DCHECK(condition) CAQE_CHECK(condition)
#endif

#endif  // CAQE_COMMON_MACROS_H_
