// Bounded thread pool and deterministic chunked parallel-for.
//
// Engines run on a *virtual* clock (see virtual_clock.h): contract scores
// are charged per unit of logical work, never per wall second. That makes
// wall-clock parallelism score-neutral — as long as every parallel phase
// produces bit-identical state and identical work counters, reports cannot
// depend on the thread count. The helpers here are built around that
// requirement:
//
//  * chunk boundaries depend only on (n, chunk count), never on scheduling,
//  * chunk results are merged in chunk order by the caller,
//  * there is no work stealing — tasks are coarse phase chunks, so a single
//    FIFO queue is cheap and keeps the execution easy to reason about.
#ifndef CAQE_COMMON_THREAD_POOL_H_
#define CAQE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace caqe {

/// Resolves an ExecOptions-style thread-count request: <= 0 means "all
/// hardware threads" (at least 1); anything else is taken literally.
int ResolveNumThreads(int requested);

/// Fixed-size thread pool with one FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`. The future reports completion and rethrows any
  /// exception the task raised.
  std::future<void> Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Number of contiguous chunks a chunked phase should split `n` items into:
/// 1 without a pool (or when n / min_chunk allows no more), otherwise up to
/// one chunk per worker plus one for the calling thread.
int NumChunks(const ThreadPool* pool, int64_t n, int64_t min_chunk);

/// Half-open item range of chunk `chunk` out of `chunks` over [0, n).
/// Depends only on the arguments, so chunked phases partition work
/// identically on every run.
std::pair<int64_t, int64_t> ChunkRange(int64_t n, int chunks, int chunk);

/// Runs fn(chunk) for chunk in [0, chunks): all but the last go to the
/// pool, the last runs on the calling thread. Blocks until every chunk
/// completes; if any threw, the lowest-indexed chunk's exception is
/// rethrown. `pool` may be null (or chunks 1), in which case every chunk
/// runs inline on the caller. Templated on the callable so the inline
/// path never builds a std::function: region phases call this once or
/// more per region with capture lists well past the small-buffer limit,
/// and the type-erased signature cost a heap allocation per call even
/// single-threaded.
template <typename Fn>
void RunChunks(ThreadPool* pool, int chunks, Fn&& fn) {
  if (chunks <= 0) return;
  if (pool == nullptr || chunks == 1) {
    for (int c = 0; c < chunks; ++c) fn(c);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (int c = 0; c < chunks - 1; ++c) {
    futures.push_back(pool->Submit([&fn, c] { fn(c); }));
  }
  // The caller contributes the last chunk; its exception must not skip the
  // waits below, so it is captured like any other chunk's.
  std::vector<std::exception_ptr> errors(chunks);
  try {
    fn(chunks - 1);
  } catch (...) {
    errors[chunks - 1] = std::current_exception();
  }
  for (int c = 0; c < chunks - 1; ++c) {
    try {
      futures[c].get();
    } catch (...) {
      errors[c] = std::current_exception();
    }
  }
  for (int c = 0; c < chunks; ++c) {
    if (errors[c]) std::rethrow_exception(errors[c]);
  }
}

/// Elementwise parallel-for over [0, n): chunks the range with NumChunks /
/// ChunkRange and invokes fn(i) for every i. Exceptions propagate as in
/// RunChunks; the callable is likewise taken by deduced type, never
/// erased.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t n, int64_t min_chunk, Fn&& fn) {
  const int chunks = NumChunks(pool, n, min_chunk);
  if (chunks <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  RunChunks(pool, chunks, [&](int c) {
    const auto [begin, end] = ChunkRange(n, chunks, c);
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace caqe

#endif  // CAQE_COMMON_THREAD_POOL_H_
