// Weak no-op flavor of the allocation-accounting hook (see alloc_hook.h).
// Binaries that link caqe_alloc_hook ahead of caqe_common get the strong
// counting definitions instead; everything else resolves to these.
#include "common/alloc_hook.h"

namespace caqe {

__attribute__((weak)) bool AllocHookActive() { return false; }

__attribute__((weak)) AllocCounts ThreadAllocCounts() { return {}; }

}  // namespace caqe
