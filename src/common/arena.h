// Epoch-based bump allocator for per-region scratch memory.
//
// The region hot path re-creates the same transient buffers every region
// (SoA column blocks, gather targets, flattened event lists). Routing them
// through an Arena turns each region into one epoch: allocation is a bump
// of a cursor inside a block the arena already owns, and Reset() recycles
// everything at the region boundary in O(number of blocks). After warmup
// the arena has coalesced into a single block sized to the high-water mark,
// so steady-state regions perform zero heap allocations for arena-backed
// scratch (the alloc-gate benchmark asserts exactly this).
//
// Under AddressSanitizer the arena poisons recycled capacity on Reset() and
// unpoisons bytes on Allocate(), so use-after-reset bugs fault instead of
// silently reading a previous epoch's data (tests/arena_test.cc).
#ifndef CAQE_COMMON_ARENA_H_
#define CAQE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace caqe {

class Arena {
 public:
  /// `initial_bytes` sizes the first block (rounded up to a power of two).
  explicit Arena(size_t initial_bytes = 1 << 16);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). The
  /// memory is valid until the next Reset(). Zero-byte requests return a
  /// unique, aligned, dereferenceable-for-zero-bytes pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed helper: `count` default-constructible trivially-destructible Ts.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructor calls");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Starts a new epoch: every pointer handed out so far becomes invalid.
  /// When the previous epoch spilled into overflow blocks, they are
  /// coalesced into one block sized to the epoch's total footprint, so a
  /// steady-state workload converges to zero allocations per epoch.
  void Reset();

  /// Monotone epoch counter (number of Reset() calls).
  uint64_t epoch() const { return epoch_; }
  /// Bytes handed out in the current epoch (including alignment padding).
  size_t bytes_used() const { return used_; }
  /// Total capacity across owned blocks.
  size_t bytes_capacity() const;
  /// Number of owned blocks (1 once the arena has converged).
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` (power-of-two sized).
  Block& AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // Index of the block being bumped.
  size_t offset_ = 0;   // Bump cursor inside blocks_[current_].
  size_t used_ = 0;     // Bytes consumed this epoch (all blocks).
  uint64_t epoch_ = 0;
};

/// Minimal growable array over arena memory for trivially copyable element
/// types. Growth re-bumps a doubled allocation and memcpy-moves the
/// elements — the old range stays part of the epoch and is reclaimed with
/// it. Covers the push_back/clear/iterate needs of per-region scratch
/// without touching the heap.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector elements are relocated with memcpy");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }
  template <typename... A>
  void emplace_back(A&&... args) {
    if (size_ == capacity_) Grow();
    data_[size_++] = T{std::forward<A>(args)...};
  }

  void clear() { size_ = 0; }
  /// Call at the top of an epoch: memory from a previous epoch is gone.
  void OnEpochReset() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow() {
    const size_t next = capacity_ == 0 ? 16 : capacity_ * 2;
    T* grown = arena_->AllocateArray<T>(next);
    if (size_ > 0) __builtin_memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace caqe

#endif  // CAQE_COMMON_ARENA_H_
