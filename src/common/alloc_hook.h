// Optional thread-local heap-allocation accounting.
//
// The engine never reads these counters on its own behalf: they exist so
// the alloc-gate benchmark (bench/bench_alloc.cc) and the arena tests can
// assert that the steady-state region hot path performs ~zero heap
// allocations. Two linkage flavors share this interface:
//
//  - caqe_common provides *weak* no-op definitions (AllocHookActive()
//    returns false, counts are zero), so ordinary binaries pay one dead
//    branch and no global operator new/delete replacement.
//  - the caqe_alloc_hook static library provides strong definitions plus a
//    counting global operator new/delete. Binaries that want accounting
//    link it *before* the caqe libraries (see bench/CMakeLists.txt) so the
//    strong definitions win archive resolution.
//
// Counting never feeds reports or the virtual clock — it is observability
// only, exported through the caqe_alloc_* metrics.
#ifndef CAQE_COMMON_ALLOC_HOOK_H_
#define CAQE_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace caqe {

/// Allocation totals of the calling thread since thread start.
struct AllocCounts {
  uint64_t allocs = 0;
  uint64_t deallocs = 0;
  uint64_t bytes = 0;
};

/// True when the counting operator new/delete replacement is linked in.
bool AllocHookActive();

/// The calling thread's running totals (all zero without the hook).
AllocCounts ThreadAllocCounts();

}  // namespace caqe

#endif  // CAQE_COMMON_ALLOC_HOOK_H_
