// Deterministic virtual time used to evaluate progressiveness contracts.
//
// The paper measures result timestamps with a wall clock on the authors'
// hardware. To make contract-satisfaction experiments deterministic and
// hardware independent, CAQE engines advance a VirtualClock through a
// CostModel that charges a fixed virtual duration per primitive operation
// (join probe, dominance comparison, tuple emission, scheduling step). The
// relative weights approximate the relative costs observed in skyline-join
// processing; absolute values only set the time unit.
#ifndef CAQE_COMMON_VIRTUAL_CLOCK_H_
#define CAQE_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

#include "common/macros.h"

namespace caqe {

/// Virtual cost, in seconds, of each primitive operation an engine performs.
struct CostModel {
  /// Evaluating one candidate pair in a join (hash probe + predicate).
  double join_probe_seconds = 2e-6;
  /// Materializing one join result (projection through mapping functions).
  double join_result_seconds = 4e-6;
  /// One pairwise dominance comparison.
  double dominance_cmp_seconds = 1e-6;
  /// Reporting one result tuple to a consumer.
  double emit_seconds = 1e-6;
  /// One optimizer scheduling decision (region pick, queue maintenance).
  double schedule_seconds = 5e-5;
  /// Coarse-level (region/cell granularity) operation, e.g. one step of a
  /// region dominance test, signature merge, or benefit-model scan. These
  /// are plain arithmetic on cached box corners — roughly an order of
  /// magnitude cheaper than a hash probe.
  double coarse_op_seconds = 2e-7;
};

/// Monotone virtual clock advanced by engine operations.
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(const CostModel& cost) : cost_(cost) {}

  /// Current virtual time in seconds since execution start.
  double Now() const { return now_; }

  /// Advances the clock by `seconds` (must be non-negative).
  void Advance(double seconds) {
    CAQE_DCHECK(seconds >= 0.0);
    now_ += seconds;
  }

  /// Advances to absolute time `t`; no-op when `t` is already in the past
  /// (the serving loop may have processed work past an arrival's
  /// timestamp — virtual time stays monotone).
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }

  void ChargeJoinProbes(int64_t n) { Advance(n * cost_.join_probe_seconds); }
  void ChargeJoinResults(int64_t n) { Advance(n * cost_.join_result_seconds); }
  void ChargeDominanceCmps(int64_t n) {
    Advance(n * cost_.dominance_cmp_seconds);
  }
  void ChargeEmits(int64_t n) { Advance(n * cost_.emit_seconds); }
  void ChargeScheduleSteps(int64_t n) { Advance(n * cost_.schedule_seconds); }
  void ChargeCoarseOps(int64_t n) { Advance(n * cost_.coarse_op_seconds); }

  const CostModel& cost_model() const { return cost_; }

  /// Resets the clock to time zero (cost model is kept).
  void Reset() { now_ = 0.0; }

 private:
  CostModel cost_;
  double now_ = 0.0;
};

}  // namespace caqe

#endif  // CAQE_COMMON_VIRTUAL_CLOCK_H_
