#include "common/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace caqe {

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  CAQE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CAQE_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions land in the task's future.
  }
}

int NumChunks(const ThreadPool* pool, int64_t n, int64_t min_chunk) {
  if (pool == nullptr || n <= 0) return 1;
  const int64_t width = pool->num_threads() + 1;  // Workers + caller.
  const int64_t by_size =
      min_chunk <= 0 ? n : std::max<int64_t>(1, n / min_chunk);
  return static_cast<int>(std::min({width, by_size, n}));
}

std::pair<int64_t, int64_t> ChunkRange(int64_t n, int chunks, int chunk) {
  CAQE_DCHECK(chunks >= 1 && chunk >= 0 && chunk < chunks);
  const int64_t base = n / chunks;
  const int64_t rem = n % chunks;
  const int64_t begin = chunk * base + std::min<int64_t>(chunk, rem);
  const int64_t extra = chunk < rem ? 1 : 0;
  return {begin, begin + base + extra};
}

}  // namespace caqe
