// Strong flavor of the allocation-accounting hook: thread-local counting
// global operator new/delete. Lives in its own static library
// (caqe_alloc_hook) linked only by the alloc-gate benchmark and the arena
// test, ahead of the caqe libraries so these definitions beat the weak
// stubs of alloc_hook.cc during archive resolution (the whole TU — the
// operator replacements included — is pulled in by the AllocHookActive
// reference).
#include <cstdlib>
#include <new>

#include "common/alloc_hook.h"

namespace caqe {
namespace {

thread_local uint64_t tls_allocs = 0;
thread_local uint64_t tls_deallocs = 0;
thread_local uint64_t tls_bytes = 0;

void* CountedAlloc(size_t size) {
  ++tls_allocs;
  tls_bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(size_t size, size_t align) {
  ++tls_allocs;
  tls_bytes += size;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded == 0 ? align : padded);
}

void CountedFree(void* ptr) {
  if (ptr != nullptr) ++tls_deallocs;
  std::free(ptr);
}

}  // namespace

bool AllocHookActive() { return true; }

AllocCounts ThreadAllocCounts() {
  return AllocCounts{tls_allocs, tls_deallocs, tls_bytes};
}

}  // namespace caqe

void* operator new(size_t size) {
  void* ptr = caqe::CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](size_t size) {
  void* ptr = caqe::CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return caqe::CountedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return caqe::CountedAlloc(size);
}

void* operator new(size_t size, std::align_val_t align) {
  void* ptr = caqe::CountedAlignedAlloc(size, static_cast<size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](size_t size, std::align_val_t align) {
  void* ptr = caqe::CountedAlignedAlloc(size, static_cast<size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return caqe::CountedAlignedAlloc(size, static_cast<size_t>(align));
}

void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return caqe::CountedAlignedAlloc(size, static_cast<size_t>(align));
}

void operator delete(void* ptr) noexcept { caqe::CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { caqe::CountedFree(ptr); }
void operator delete(void* ptr, size_t) noexcept { caqe::CountedFree(ptr); }
void operator delete[](void* ptr, size_t) noexcept { caqe::CountedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  caqe::CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  caqe::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  caqe::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  caqe::CountedFree(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  caqe::CountedFree(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  caqe::CountedFree(ptr);
}
