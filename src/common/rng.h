// Deterministic random number generation for data generators and tests.
#ifndef CAQE_COMMON_RNG_H_
#define CAQE_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace caqe {

/// Seeded pseudo-random generator used throughout the library.
///
/// A thin wrapper around std::mt19937_64 with convenience samplers. All CAQE
/// components draw randomness through Rng so experiments are reproducible
/// from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli sample with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace caqe

#endif  // CAQE_COMMON_RNG_H_
