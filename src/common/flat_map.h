// Flat open-addressing hash map from int64 keys to small values.
#ifndef CAQE_COMMON_FLAT_MAP_H_
#define CAQE_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace caqe {

/// Linear-probing map for hot paths where a node-based std::unordered_map
/// would heap-allocate on every insert and free on every erase. Keys and
/// values live in two parallel flat arrays; erasure uses backward-shift
/// deletion, so there are no tombstones and lookup cost never degrades.
/// The only allocations are capacity doublings — a map that returns to the
/// same high-water size allocates nothing at steady state.
///
/// Keys may be any int64 except INT64_MIN (the empty sentinel). Value type
/// must be trivially copyable (elements are moved by assignment during
/// backward shifts).
template <typename V>
class FlatMap64 {
 public:
  static constexpr int64_t kEmptyKey = INT64_MIN;

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Drops every entry but keeps the capacity (O(capacity), no heap
  /// traffic).
  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    count_ = 0;
  }

  /// Pre-sizes the table for `n` entries.
  void reserve(size_t n) {
    while (keys_.empty() || n > (mask_ + 1) / 2) Grow();
  }

  /// Pointer to `key`'s value, or nullptr when absent. Stable only until
  /// the next insert or erase.
  V* find(int64_t key) {
    if (keys_.empty()) return nullptr;
    size_t i = IdealSlot(key);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(int64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  void insert_or_assign(int64_t key, V value) {
    CAQE_DCHECK(key != kEmptyKey);
    if (keys_.empty() || count_ + 1 > (mask_ + 1) / 2) Grow();
    size_t i = IdealSlot(key);
    while (keys_[i] != kEmptyKey && keys_[i] != key) i = (i + 1) & mask_;
    if (keys_[i] != key) {
      keys_[i] = key;
      ++count_;
    }
    vals_[i] = value;
  }

  /// Removes `key`; returns whether it was present. Backward-shift: every
  /// element whose probe chain crossed the vacated slot moves one step
  /// back, restoring the invariant without tombstones.
  bool erase(int64_t key) {
    V* v = find(key);
    if (v == nullptr) return false;
    size_t j = static_cast<size_t>(v - vals_.data());
    size_t k = j;
    while (true) {
      k = (k + 1) & mask_;
      if (keys_[k] == kEmptyKey) break;
      const size_t ideal = IdealSlot(keys_[k]);
      if (((k - ideal) & mask_) >= ((k - j) & mask_)) {
        keys_[j] = keys_[k];
        vals_[j] = vals_[k];
        j = k;
      }
    }
    keys_[j] = kEmptyKey;
    --count_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified (slot) order. Callers
  /// needing determinism must sort what they collect.
  template <typename F>
  void ForEach(F&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], vals_[i]);
    }
  }

 private:
  size_t IdealSlot(int64_t key) const {
    return static_cast<size_t>(
               static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull >> 32) &
           mask_;
  }

  void Grow() {
    const size_t new_cap = keys_.empty() ? 64 : (mask_ + 1) * 2;
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmptyKey);
    vals_.resize(new_cap);
    mask_ = new_cap - 1;
    count_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) insert_or_assign(old_keys[i], old_vals[i]);
    }
  }

  std::vector<int64_t> keys_;
  std::vector<V> vals_;
  size_t mask_ = 0;
  size_t count_ = 0;
};

}  // namespace caqe

#endif  // CAQE_COMMON_FLAT_MAP_H_
