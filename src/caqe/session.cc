#include "caqe/session.h"

#include "baselines/jfsl.h"
#include "baselines/progxe.h"
#include "baselines/ssmj.h"
#include "exec/shared_plan_engine.h"

namespace caqe {

const std::vector<std::string>& KnownEngineNames() {
  static const std::vector<std::string> kNames = {
      "CAQE",   "S-JFSL",    "JFSL",         "SSMJ",      "SSMJ+",
      "ProgXe+", "CAQE-nofb", "CAQE-noprune", "CAQE-count"};
  return kNames;
}

Result<std::unique_ptr<Engine>> MakeEngine(const std::string& name) {
  if (name == "CAQE") {
    return std::unique_ptr<Engine>(new SharedPlanEngine(MakeCaqeEngine()));
  }
  if (name == "S-JFSL") {
    return std::unique_ptr<Engine>(new SharedPlanEngine(MakeSJfslEngine()));
  }
  if (name == "JFSL") {
    return std::unique_ptr<Engine>(new JfslEngine());
  }
  if (name == "SSMJ") {
    return std::unique_ptr<Engine>(new SsmjEngine());
  }
  if (name == "SSMJ+") {
    return std::unique_ptr<Engine>(new SsmjPlusEngine());
  }
  if (name == "ProgXe+") {
    return std::unique_ptr<Engine>(new ProgXeEngine());
  }
  if (name == "CAQE-nofb") {
    return std::unique_ptr<Engine>(
        new SharedPlanEngine(MakeCaqeNoFeedbackEngine()));
  }
  if (name == "CAQE-noprune") {
    return std::unique_ptr<Engine>(
        new SharedPlanEngine(MakeCaqeNoPruneEngine()));
  }
  if (name == "CAQE-count") {
    return std::unique_ptr<Engine>(
        new SharedPlanEngine(MakeCaqeCountDrivenEngine()));
  }
  std::string known;
  for (const std::string& candidate : KnownEngineNames()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  return Status::NotFound("unknown engine: " + name +
                          " (recognized engines: " + known + ")");
}

std::vector<std::unique_ptr<Engine>> MakePaperEngines() {
  std::vector<std::unique_ptr<Engine>> engines;
  for (const char* name : {"CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ"}) {
    engines.push_back(std::move(MakeEngine(name).value()));
  }
  return engines;
}

Result<ExecutionReport> CaqeSession::Run() { return RunWith("CAQE"); }

Result<ExecutionReport> CaqeSession::RunWith(const std::string& engine_name) {
  Result<std::unique_ptr<Engine>> engine = MakeEngine(engine_name);
  CAQE_RETURN_NOT_OK(engine.status());
  return (*engine)->Execute(r_, t_, workload_, contracts_, options_);
}

Result<std::vector<ExecutionReport>> CaqeSession::RunComparison() {
  std::vector<ExecutionReport> reports;
  for (const auto& engine : MakePaperEngines()) {
    Result<ExecutionReport> report =
        engine->Execute(r_, t_, workload_, contracts_, options_);
    CAQE_RETURN_NOT_OK(report.status());
    reports.push_back(std::move(report).value());
  }
  return reports;
}

}  // namespace caqe
