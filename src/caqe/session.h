// High-level session facade — the entry point used by the examples.
#ifndef CAQE_CAQE_SESSION_H_
#define CAQE_CAQE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "contracts/utility.h"
#include "data/table.h"
#include "exec/engine.h"
#include "exec/options.h"
#include "metrics/report.h"
#include "query/query.h"

namespace caqe {

/// Every engine name MakeEngine recognizes, in factory order.
const std::vector<std::string>& KnownEngineNames();

/// Named engine factory. Recognized names: "CAQE", "S-JFSL", "JFSL",
/// "SSMJ", "SSMJ+", "ProgXe+", plus the ablation variants "CAQE-nofb",
/// "CAQE-noprune", "CAQE-count" (see KnownEngineNames). Returns NotFound —
/// with the recognized names spelled out — for anything else.
Result<std::unique_ptr<Engine>> MakeEngine(const std::string& name);

/// The five engines compared throughout the paper's evaluation, in the
/// order they appear in the figures: CAQE, S-JFSL, JFSL, ProgXe+, SSMJ.
std::vector<std::unique_ptr<Engine>> MakePaperEngines();

/// Builder-style API over one pair of base tables: register output
/// dimensions, add queries with contracts, then execute with CAQE or any
/// baseline.
///
///   CaqeSession session(std::move(hotels), std::move(tours));
///   int price = session.AddOutputDim({0, 0, 1.0, 1.0});
///   int rating = session.AddOutputDim({1, 1, 1.0, 1.0});
///   session.AddQuery({"Q1", /*join_key=*/0, {price, rating}, 0.9},
///                    MakeTimeStepContract(10.0));
///   auto report = session.Run();
class CaqeSession {
 public:
  /// Takes ownership of the base tables.
  CaqeSession(Table r, Table t) : r_(std::move(r)), t_(std::move(t)) {}

  /// Registers a global output dimension; returns its index.
  int AddOutputDim(const MappingFunction& f) {
    return workload_.AddOutputDim(f);
  }

  /// Adds a query with its progressiveness contract; returns its index.
  int AddQuery(SjQuery query, Contract contract) {
    contracts_.push_back(std::move(contract));
    return workload_.AddQuery(std::move(query));
  }

  /// Execution knobs (cost model, partitioning granularity, capture).
  ExecOptions& options() { return options_; }
  const Workload& workload() const { return workload_; }
  const Table& table_r() const { return r_; }
  const Table& table_t() const { return t_; }

  /// Runs the workload with the CAQE engine.
  Result<ExecutionReport> Run();

  /// Runs the workload with the named engine (see MakeEngine).
  Result<ExecutionReport> RunWith(const std::string& engine_name);

  /// Runs the workload with all five paper engines and returns their
  /// reports in paper order.
  Result<std::vector<ExecutionReport>> RunComparison();

 private:
  Table r_;
  Table t_;
  Workload workload_;
  std::vector<Contract> contracts_;
  ExecOptions options_;
};

}  // namespace caqe

#endif  // CAQE_CAQE_SESSION_H_
