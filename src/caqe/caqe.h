// Umbrella header: the complete public API of the CAQE library.
//
// CAQE — Contract-Aware Query Execution — processes workloads of concurrent
// skyline-over-join decision-support queries, each carrying a
// progressiveness contract, maximizing the workload's cumulative contract
// satisfaction (Raghavan & Rundensteiner, EDBT 2014).
//
// Typical use:
//
//   #include "caqe/caqe.h"
//
//   caqe::GeneratorConfig cfg;
//   cfg.num_rows = 10'000;
//   cfg.num_attrs = 4;
//   cfg.join_selectivities = {0.01};
//   auto r = caqe::GenerateTable("R", cfg).value();
//   cfg.seed = 43;
//   auto t = caqe::GenerateTable("T", cfg).value();
//
//   caqe::CaqeSession session(std::move(r), std::move(t));
//   int d0 = session.AddOutputDim({0, 0});
//   int d1 = session.AddOutputDim({1, 1});
//   session.AddQuery({"Q1", 0, {d0, d1}, 1.0},
//                    caqe::MakeTimeStepContract(10.0));
//   auto report = session.Run().value();
#ifndef CAQE_CAQE_CAQE_H_
#define CAQE_CAQE_CAQE_H_

#include "caqe/session.h"
#include "common/query_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "contracts/utility.h"
#include "cuboid/min_max_cuboid.h"
#include "cuboid/shared_skyline.h"
#include "cuboid/subspace.h"
#include "data/generator.h"
#include "data/table.h"
#include "exec/engine.h"
#include "exec/options.h"
#include "exec/shared_plan_engine.h"
#include "metrics/printer.h"
#include "metrics/report.h"
#include "obs/health.h"
#include "obs/metrics_registry.h"
#include "obs/observability.h"
#include "obs/span.h"
#include "partition/partitioner.h"
#include "query/query.h"
#include "query/workload_generator.h"
#include "region/dependency_graph.h"
#include "region/region.h"
#include "region/region_builder.h"
#include "region/region_dominance.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"
#include "skyline/algorithms.h"
#include "skyline/cardinality.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "skyline/incremental.h"
#include "skyline/point_set.h"
#include "topk/topk_engine.h"
#include "topk/topk_query.h"

#endif  // CAQE_CAQE_CAQE_H_
