#include "contracts/utility.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace caqe {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

class TimeStepUtility final : public UtilityFunction {
 public:
  explicit TimeStepUtility(double t_hard) : t_hard_(t_hard) {
    CAQE_CHECK(t_hard > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    return ctx.report_time <= t_hard_ ? 1.0 : 0.0;
  }
  std::string name() const override {
    return "C1(t=" + std::to_string(t_hard_) + "s)";
  }

 private:
  double t_hard_;
};

class LogDecayUtility final : public UtilityFunction {
 public:
  explicit LogDecayUtility(double unit) : unit_(unit) {
    CAQE_CHECK(unit > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    const double ts = ctx.report_time / unit_;
    if (ts <= std::exp(1.0)) return 1.0;
    return Clamp01(1.0 / std::log(ts));
  }
  std::string name() const override { return "C2(1/ln t)"; }

 private:
  double unit_;
};

class HyperbolicDecayUtility final : public UtilityFunction {
 public:
  HyperbolicDecayUtility(double t_soft, double unit)
      : t_soft_(t_soft), unit_(unit) {
    CAQE_CHECK(t_soft > 0.0);
    CAQE_CHECK(unit > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    const double ts = ctx.report_time;
    if (ts <= t_soft_) return 1.0;
    return Clamp01(unit_ / (ts - t_soft_));
  }
  std::string name() const override {
    return "C3(t=" + std::to_string(t_soft_) + "s)";
  }

 private:
  double t_soft_;
  double unit_;
};

class CardinalityUtility final : public UtilityFunction {
 public:
  CardinalityUtility(double fraction, double interval)
      : fraction_(fraction), interval_(interval) {
    CAQE_CHECK(fraction > 0.0 && fraction <= 1.0);
    CAQE_CHECK(interval > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    const double n = static_cast<double>(ctx.results_in_interval);
    const double target = std::max(1.0, ctx.estimated_total) * fraction_;
    const double ratio = n / std::max(1.0, ctx.estimated_total);
    if (ratio >= fraction_) return 1.0;
    // Shortfall penalty in [-1, 0): n / (N * fraction) - 1 (Eq. 3).
    return n / target - 1.0;
  }
  std::string name() const override {
    return "C4(frac=" + std::to_string(fraction_) + ")";
  }
  double interval_seconds() const override { return interval_; }

 private:
  double fraction_;
  double interval_;
};

class RateUtility final : public UtilityFunction {
 public:
  RateUtility(double max_per_interval, double interval)
      : max_(max_per_interval), interval_(interval) {
    CAQE_CHECK(max_per_interval > 0.0);
    CAQE_CHECK(interval > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    const double n = static_cast<double>(ctx.results_in_interval);
    if (n <= max_) return n / max_;
    return max_ / n;
  }
  std::string name() const override {
    return "Rate(max=" + std::to_string(max_) + ")";
  }
  double interval_seconds() const override { return interval_; }

 private:
  double max_;
  double interval_;
};

class InverseTimeUtility final : public UtilityFunction {
 public:
  explicit InverseTimeUtility(double unit) : unit_(unit) {
    CAQE_CHECK(unit > 0.0);
  }
  double Utility(const ResultContext& ctx) const override {
    if (ctx.report_time <= unit_) return 1.0;
    return Clamp01(unit_ / ctx.report_time);
  }
  std::string name() const override { return "1/t"; }

 private:
  double unit_;
};

class ProductUtility final : public UtilityFunction {
 public:
  ProductUtility(Contract a, Contract b)
      : a_(std::move(a)), b_(std::move(b)) {
    CAQE_CHECK(a_ != nullptr && b_ != nullptr);
  }
  double Utility(const ResultContext& ctx) const override {
    return a_->Utility(ctx) * b_->Utility(ctx);
  }
  std::string name() const override {
    return a_->name() + "*" + b_->name();
  }
  double interval_seconds() const override {
    const double ia = a_->interval_seconds();
    return ia > 0.0 ? ia : b_->interval_seconds();
  }

 private:
  Contract a_;
  Contract b_;
};

}  // namespace

Contract MakeTimeStepContract(double t_hard_seconds) {
  return std::make_shared<TimeStepUtility>(t_hard_seconds);
}

Contract MakeLogDecayContract(double time_unit_seconds) {
  return std::make_shared<LogDecayUtility>(time_unit_seconds);
}

Contract MakeHyperbolicDecayContract(double t_soft_seconds,
                                     double decay_unit_seconds) {
  return std::make_shared<HyperbolicDecayUtility>(t_soft_seconds,
                                                  decay_unit_seconds);
}

Contract MakeCardinalityContract(double fraction, double interval_seconds) {
  return std::make_shared<CardinalityUtility>(fraction, interval_seconds);
}

Contract MakeRateContract(double max_per_interval, double interval_seconds) {
  return std::make_shared<RateUtility>(max_per_interval, interval_seconds);
}

Contract MakeHybridContract(double fraction, double interval_seconds,
                            double time_unit_seconds) {
  return MakeProductContract(
      std::make_shared<InverseTimeUtility>(time_unit_seconds),
      MakeCardinalityContract(fraction, interval_seconds));
}

Contract MakeProductContract(Contract a, Contract b) {
  return std::make_shared<ProductUtility>(std::move(a), std::move(b));
}

}  // namespace caqe
