#include "contracts/tracker.h"

#include <algorithm>
#include <cmath>

namespace caqe {
namespace {

int64_t IntervalIndex(double now, double interval_seconds) {
  if (interval_seconds <= 0.0) return 0;
  return static_cast<int64_t>(std::floor(now / interval_seconds));
}

}  // namespace

SatisfactionTracker::SatisfactionTracker(std::vector<Contract> contracts)
    : contracts_(std::move(contracts)),
      totals_(contracts_.size()),
      intervals_(contracts_.size()),
      estimated_totals_(contracts_.size(), 1.0),
      submit_times_(contracts_.size(), 0.0),
      samples_(contracts_.size()) {
  for (const Contract& c : contracts_) CAQE_CHECK(c != nullptr);
}

int SatisfactionTracker::AddQuery(Contract contract, double submit_time) {
  CAQE_CHECK(contract != nullptr);
  contracts_.push_back(std::move(contract));
  totals_.emplace_back();
  intervals_.emplace_back();
  estimated_totals_.push_back(1.0);
  submit_times_.push_back(submit_time);
  samples_.emplace_back();
  return num_queries() - 1;
}

void SatisfactionTracker::ResetQuery(int q, Contract contract,
                                     double submit_time) {
  CAQE_DCHECK(q >= 0 && q < num_queries());
  CAQE_CHECK(contract != nullptr);
  contracts_[q] = std::move(contract);
  totals_[q] = QuerySatisfaction{};
  intervals_[q] = IntervalState{};
  estimated_totals_[q] = 1.0;
  submit_times_[q] = submit_time;
  samples_[q].clear();
}

void SatisfactionTracker::SetEstimatedTotal(int q, double n) {
  CAQE_DCHECK(q >= 0 && q < num_queries());
  estimated_totals_[q] = std::max(1.0, n);
  // The estimate bounds how many results the engine expects to stream, so
  // size the per-result sample log now instead of doubling it repeatedly
  // on the hot OnResult path (the estimate may be low; growth past it is
  // still amortized-correct, just no longer the common case).
  if (n > 0.0 && n < 1e9) {
    samples_[q].reserve(static_cast<size_t>(n) + 1);
  }
}

double SatisfactionTracker::OnResult(int q, double now) {
  CAQE_DCHECK(q >= 0 && q < num_queries());
  const Contract& contract = contracts_[q];
  IntervalState& st = intervals_[q];
  const double rel = now - submit_times_[q];
  const int64_t interval = IntervalIndex(rel, contract->interval_seconds());
  if (interval != st.current_interval) {
    st.current_interval = interval;
    st.count_in_interval = 0;
  }
  ++st.count_in_interval;

  ResultContext ctx;
  ctx.report_time = rel;
  ctx.results_in_interval = st.count_in_interval;
  ctx.results_so_far = totals_[q].results + 1;
  ctx.estimated_total = estimated_totals_[q];
  const double u = contract->Utility(ctx);

  totals_[q].pscore += u;
  totals_[q].results += 1;
  samples_[q].push_back(UtilitySample{rel, u});
  return u;
}

double SatisfactionTracker::PreviewUtility(int q, double when,
                                           int64_t extra_in_interval) const {
  CAQE_DCHECK(q >= 0 && q < num_queries());
  const Contract& contract = contracts_[q];
  const IntervalState& st = intervals_[q];
  const double rel = when - submit_times_[q];
  const int64_t interval = IntervalIndex(rel, contract->interval_seconds());
  int64_t in_interval = extra_in_interval;
  if (interval == st.current_interval) in_interval += st.count_in_interval;

  ResultContext ctx;
  ctx.report_time = rel;
  ctx.results_in_interval = std::max<int64_t>(1, in_interval);
  ctx.results_so_far = totals_[q].results + std::max<int64_t>(1, extra_in_interval);
  ctx.estimated_total = estimated_totals_[q];
  return contract->Utility(ctx);
}

double SatisfactionTracker::ProgressiveSatisfaction(int q,
                                                    double horizon) const {
  CAQE_DCHECK(q >= 0 && q < num_queries());
  if (horizon <= 0.0 || samples_[q].empty()) return 0.0;
  double area = 0.0;
  for (const UtilitySample& sample : samples_[q]) {
    area += sample.utility * std::max(0.0, 1.0 - sample.time / horizon);
  }
  return area / static_cast<double>(samples_[q].size());
}

double SatisfactionTracker::WorkloadProgressiveSatisfaction(
    double horizon) const {
  if (contracts_.empty()) return 0.0;
  double sum = 0.0;
  for (int q = 0; q < num_queries(); ++q) {
    sum += ProgressiveSatisfaction(q, horizon);
  }
  return sum / static_cast<double>(num_queries());
}

double SatisfactionTracker::WorkloadPScore() const {
  double total = 0.0;
  for (const QuerySatisfaction& s : totals_) total += s.pscore;
  return total;
}

double SatisfactionTracker::WorkloadAverageSatisfaction() const {
  if (totals_.empty()) return 0.0;
  double sum = 0.0;
  for (const QuerySatisfaction& s : totals_) sum += s.average();
  return sum / static_cast<double>(totals_.size());
}

}  // namespace caqe
