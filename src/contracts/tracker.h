// Run-time contract satisfaction accounting (paper Sections 3.4 and 6).
#ifndef CAQE_CONTRACTS_TRACKER_H_
#define CAQE_CONTRACTS_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "contracts/utility.h"

namespace caqe {

/// One reported result's (time, utility) pair.
struct UtilitySample {
  double time = 0.0;
  double utility = 0.0;
};

/// Per-query satisfaction summary.
struct QuerySatisfaction {
  /// pScore (Eq. 7): sum of per-result utilities.
  double pscore = 0.0;
  /// Results reported so far.
  int64_t results = 0;
  /// Average utility per reported result (0 when nothing reported).
  double average() const {
    return results == 0 ? 0.0 : pscore / static_cast<double>(results);
  }
};

/// Tracks, per query, the utility of every reported result and the run-time
/// satisfaction metric used by the optimizer's feedback loop.
///
/// Engines call OnResult(query, time) for each result tuple at its (virtual)
/// report time; times must be non-decreasing per query. The tracker handles
/// the interval bookkeeping that cardinality/rate contracts need.
class SatisfactionTracker {
 public:
  /// One tracker per workload; `contracts[i]` scores query i's results.
  explicit SatisfactionTracker(std::vector<Contract> contracts);

  int num_queries() const { return static_cast<int>(contracts_.size()); }

  /// Serving layer: appends a query scored by `contract`, whose utilities
  /// are evaluated relative to `submit_time` (a contract deadline counts
  /// from the query's arrival, not from server start). Returns its index.
  /// Batch construction is the submit_time == 0 special case.
  int AddQuery(Contract contract, double submit_time = 0.0);

  /// Serving layer: rebinds slot `q` (a retired query's index being reused)
  /// to a fresh contract and submit time, clearing all accumulated state.
  void ResetQuery(int q, Contract contract, double submit_time);

  /// Sets the estimated final result cardinality for query `q` (used by
  /// cardinality contracts as N). Can be refined during execution.
  void SetEstimatedTotal(int q, double n);

  /// Scores one reported result of query `q` at time `now` (seconds since
  /// execution start). Returns the assigned utility.
  double OnResult(int q, double now);

  /// Utility a hypothetical result of query `q` reported at time `when`
  /// would receive, assuming `extra_in_interval` results (including it)
  /// land in the interval containing `when`. Used by the optimizer's CSM
  /// benefit model (Eq. 8) without mutating state.
  double PreviewUtility(int q, double when, int64_t extra_in_interval) const;

  /// pScore and counts for query `q`.
  const QuerySatisfaction& satisfaction(int q) const {
    CAQE_DCHECK(q >= 0 && q < num_queries());
    return totals_[q];
  }

  /// Run-time satisfaction metric v(Q_i): average utility of results
  /// reported so far; 0 when nothing was reported yet.
  double RuntimeMetric(int q) const { return satisfaction(q).average(); }

  /// Sum over queries of pScore (the Contract-MQP objective, Eq. 6).
  double WorkloadPScore() const;

  /// Mean over queries of the average per-result utility — the paper's
  /// "average contract satisfaction metric" plotted in Figures 9 and 11.
  double WorkloadAverageSatisfaction() const;

  /// Progressiveness-aware satisfaction of query `q`: the normalized area
  /// under the cumulative-utility curve up to `horizon` seconds,
  ///
  ///   (1/horizon) * ∫_0^horizon [ Σ_{tau.ts <= t} utility(tau) / N ] dt
  ///    = Σ_i utility_i * max(0, 1 - t_i/horizon) / N,
  ///
  /// with N the query's total reported results. It is 1 when every result
  /// is reported instantly with utility 1, and decays both with lateness
  /// and with lost utility — measuring *when* contract value was delivered,
  /// not only how much. Horizons must be identical across compared engines.
  double ProgressiveSatisfaction(int q, double horizon) const;

  /// Mean over queries of ProgressiveSatisfaction.
  double WorkloadProgressiveSatisfaction(double horizon) const;

  /// The (time, utility) trace of query `q`'s reported results, in report
  /// order.
  const std::vector<UtilitySample>& samples(int q) const {
    CAQE_DCHECK(q >= 0 && q < num_queries());
    return samples_[q];
  }

  const Contract& contract(int q) const {
    CAQE_DCHECK(q >= 0 && q < num_queries());
    return contracts_[q];
  }

 private:
  struct IntervalState {
    int64_t current_interval = 0;
    int64_t count_in_interval = 0;
  };

  std::vector<Contract> contracts_;
  std::vector<QuerySatisfaction> totals_;
  std::vector<IntervalState> intervals_;
  std::vector<double> estimated_totals_;
  /// Per-query submission times; report times are taken relative to these
  /// (all zero in batch mode, so batch behavior is unchanged).
  std::vector<double> submit_times_;
  /// Per-query (time, utility) trace backing the progressive metric.
  /// Sample times are relative to the query's submission.
  std::vector<std::vector<UtilitySample>> samples_;
};

}  // namespace caqe

#endif  // CAQE_CONTRACTS_TRACKER_H_
