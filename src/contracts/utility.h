// Progressiveness contracts and their utility functions (paper Section 3).
//
// A contract assigns every reported result tuple a utility score, nominally
// in [0, 1] (cardinality contracts may assign negative penalty scores when
// production falls short, Eq. 3). The progressiveness score of a query is
// the sum of its result utilities (Eq. 7); the run-time satisfaction metric
// is their average.
#ifndef CAQE_CONTRACTS_UTILITY_H_
#define CAQE_CONTRACTS_UTILITY_H_

#include <cstdint>
#include <memory>
#include <string>

namespace caqe {

/// Everything a utility function may look at when scoring one result tuple.
struct ResultContext {
  /// Report timestamp tau_k.ts, in seconds since query submission.
  double report_time = 0.0;
  /// Number of results reported in the current contract interval, including
  /// this one (n_{i,j} of Eq. 3/4).
  int64_t results_in_interval = 1;
  /// Results reported so far for the query, including this one.
  int64_t results_so_far = 1;
  /// Estimated (or exact, when known) final result cardinality N.
  double estimated_total = 1.0;
};

/// A progressive utility function (paper Definition 4).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Utility of one result tuple. Nominally in [-1, 1].
  virtual double Utility(const ResultContext& ctx) const = 0;

  /// Short label, e.g. "C1(t=10)".
  virtual std::string name() const = 0;

  /// Length of the accounting interval for cardinality/rate terms, in
  /// seconds. Zero means the function does not use interval counts.
  virtual double interval_seconds() const { return 0.0; }
};

/// A contract is a shared, immutable utility function.
using Contract = std::shared_ptr<const UtilityFunction>;

/// C1 (Table 2): step deadline — utility 1 up to `t_hard` seconds, 0 after.
Contract MakeTimeStepContract(double t_hard_seconds);

/// C2 (Table 2): logarithmic decay — 1 for ts <= e * unit, else
/// 1/ln(ts / unit), clamped to [0, 1]. The paper leaves the log base, the
/// pre-asymptote region, and the time unit unspecified; `time_unit_seconds`
/// rescales the decay to the execution's timescale (1.0 reproduces the
/// literal Table 2 form on wall-clock seconds).
Contract MakeLogDecayContract(double time_unit_seconds = 1.0);

/// C3 (Table 2): hyperbolic decay — 1 up to `t_soft`, then
/// 1/((ts - t_soft) / unit), clamped to [0, 1]. The paper's toughest
/// contract; `decay_unit_seconds` rescales the decay rate (1.0 reproduces
/// the literal Table 2 form, e.g. utility 0.5 at t_soft + 2 seconds).
Contract MakeHyperbolicDecayContract(double t_soft_seconds,
                                     double decay_unit_seconds = 1.0);

/// C4 (Table 2, Eq. 3): cardinality — per interval of `interval_seconds`,
/// utility 1 once at least `fraction` of the estimated total has been
/// reported in the interval, otherwise a negative shortfall score
/// n/(N*fraction) - 1.
Contract MakeCardinalityContract(double fraction, double interval_seconds);

/// Eq. 4: rate-bounded consumption — the consumer handles at most
/// `max_per_interval` tuples per interval; utility n/max below the bound and
/// max/n above it.
Contract MakeRateContract(double max_per_interval, double interval_seconds);

/// C5 (Table 2): hybrid — product of a unit/ts time decay (clamped to
/// [0,1]) and the C4 cardinality utility. `time_unit_seconds` rescales the
/// 1/ts decay (1.0 reproduces the literal Table 2 form).
Contract MakeHybridContract(double fraction, double interval_seconds,
                            double time_unit_seconds = 1.0);

/// Generic combinator: product of two utilities (Eq. 5). The interval of
/// the combined contract is taken from `a` if set, else from `b`.
Contract MakeProductContract(Contract a, Contract b);

}  // namespace caqe

#endif  // CAQE_CONTRACTS_UTILITY_H_
