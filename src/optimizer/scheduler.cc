#include "optimizer/scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/observability.h"
#include "skyline/cardinality.h"

namespace caqe {

ContractDrivenScheduler::ContractDrivenScheduler(
    const RegionCollection* rc, const Workload* workload,
    const SatisfactionTracker* tracker, const CostModel* cost,
    SchedulerOptions options)
    : rc_(rc),
      workload_(workload),
      tracker_(tracker),
      cost_(cost),
      options_(options) {
  const int n = static_cast<int>(rc_->regions.size());
  dg_ = options_.dynamic_workload ? DependencyGraph::AllActive(n)
                                  : DependencyGraph::Build(*rc, *workload);
  pending_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    if (!rc_->regions[i].rql.empty()) {
      pending_[i] = 1;
      ++pending_count_;
    }
  }
  weights_.assign(workload_->num_queries(), 1.0);
  active_.assign(workload_->num_queries(), 1);
  query_stride_ = std::max(1, workload_->num_queries());
  dom_frac_cache_.assign(static_cast<size_t>(n) * query_stride_, DomFrac{});
  // Witness -1 means "not yet computed"; mark with NaN-free sentinel: use
  // witness == -2 for "computed, no dominator". Start all entries stale.
  for (DomFrac& d : dom_frac_cache_) d.witness = -1;
  if (options_.obs != nullptr) {
    MetricsRegistry& metrics = options_.obs->metrics;
    picks_counter_ = &metrics.counter("caqe_scheduler_picks_total");
    scan_ops_counter_ = &metrics.counter("caqe_scheduler_scan_ops_total");
    // Attribution split of the scoring scan: region scoring (CSM over the
    // roots) vs dominated-fraction candidate scans. The two sum to the
    // aggregate scan-ops counter above.
    csm_scan_ops_counter_ =
        &metrics.counter("caqe_scheduler_csm_scan_ops_total");
    domfrac_scan_ops_counter_ =
        &metrics.counter("caqe_scheduler_domfrac_scan_ops_total");
    csm_hist_ = &metrics.histogram("caqe_scheduler_csm_score",
                                   ExponentialBuckets(1e-3, 10.0, 10));
  }
}

double ContractDrivenScheduler::ComputeDominatedFrac(int region, int q,
                                                     int* witness) const {
  const OutputRegion& c = rc_->regions[region];
  const std::vector<int>& dims = workload_->query(q).preference;
  double best = 0.0;
  int best_witness = -2;
  for (const OutputRegion& f : rc_->regions) {
    if (f.id == region || !pending_[f.id] || !f.rql.Contains(q)) continue;
    ++scan_ops_;
    ++domfrac_ops_;
    double frac = 1.0;
    for (int k : dims) {
      const double width = c.upper[k] - c.lower[k];
      double overlap;
      if (width <= 0.0) {
        overlap = (f.lower[k] <= c.lower[k]) ? 1.0 : 0.0;
      } else {
        overlap = (c.upper[k] - std::max(c.lower[k], f.lower[k])) / width;
        overlap = std::min(1.0, std::max(0.0, overlap));
      }
      frac *= overlap;
      if (frac == 0.0) break;
    }
    if (frac > best) {
      best = frac;
      best_witness = f.id;
      if (best >= 1.0) break;
    }
  }
  *witness = best_witness;
  return best;
}

ContractDrivenScheduler::DomFrac& ContractDrivenScheduler::CachedDomFrac(
    int region, int q) const {
  DomFrac& entry =
      dom_frac_cache_[static_cast<size_t>(region) * query_stride_ + q];
  const bool stale =
      entry.witness == -1 ||
      (entry.witness >= 0 &&
       (!pending_[entry.witness] ||
        !rc_->regions[entry.witness].rql.Contains(q)));
  if (stale) {
    entry.frac = ComputeDominatedFrac(region, q, &entry.witness);
  }
  return entry;
}

double ContractDrivenScheduler::EstimateCost(int region) const {
  const OutputRegion& r = rc_->regions[region];
  double probes = 0.0;
  double results = 0.0;
  const int num_slots = static_cast<int>(rc_->predicate_slots.size());
  for (int s = 0; s < num_slots; ++s) {
    if (r.join_sizes[s] <= 0) continue;
    if (!r.rql.Intersects(rc_->queries_of_slot[s])) continue;
    probes += static_cast<double>(r.rows_r + r.rows_t);
    results += static_cast<double>(r.join_sizes[s]);
  }
  const double cmp_est = results * std::log2(1.0 + results);
  return cost_->join_probe_seconds * probes +
         cost_->join_result_seconds * results +
         cost_->dominance_cmp_seconds * cmp_est + cost_->schedule_seconds;
}

double ContractDrivenScheduler::EstimateBenefit(int region, int q) const {
  const OutputRegion& r = rc_->regions[region];
  if (!r.rql.Contains(q)) return 0.0;
  const int slot = rc_->slot_of_query[q];
  const int64_t join_size = r.join_sizes[slot];
  if (join_size <= 0) return 0.0;
  const int d = static_cast<int>(workload_->query(q).preference.size());
  const double cardinality =
      BuchtaSkylineCardinality(static_cast<double>(join_size), d);
  const DomFrac& dom = CachedDomFrac(region, q);
  return (1.0 - dom.frac) * cardinality;
}

double ContractDrivenScheduler::Csm(int region, double now) const {
  const OutputRegion& r = rc_->regions[region];
  const double t_c = EstimateCost(region);
  double score = 0.0;
  r.rql.ForEach([&](int q) {
    if (q >= static_cast<int>(active_.size()) || !active_[q]) return;
    const double n_est = EstimateBenefit(region, q);
    if (n_est <= 0.0) return;
    if (options_.contract_driven) {
      const double u = tracker_->PreviewUtility(
          q, now + t_c, static_cast<int64_t>(std::ceil(n_est)));
      score += weights_[q] * n_est * u;
    } else {
      // Count-driven (ProgXe+-style): early results per second.
      score += n_est;
    }
  });
  if (!options_.contract_driven) score /= std::max(1e-9, t_c);
  return score;
}

int ContractDrivenScheduler::PickNext(double now, int64_t* coarse_ops) {
  CAQE_CHECK(pending_count_ > 0);
  scan_ops_ = 0;
  domfrac_ops_ = 0;
  const std::vector<int> roots = dg_.Roots();
  int best = -1;
  double best_score = -1.0;
  int second = -1;
  double second_score = -1.0;
  for (int region : roots) {
    if (!pending_[region]) continue;
    if (rc_->regions[region].rql.empty()) continue;
    const double score = Csm(region, now);
    ++scan_ops_;
    if (score > best_score) {
      second = best;
      second_score = best_score;
      best_score = score;
      best = region;
    } else if (score > second_score) {
      second_score = score;
      second = region;
    }
  }
  runner_up_ = second;
  if (best == -1) {
    // Every root has an empty lineage (engine has not removed them yet);
    // fall back to any pending region so the loop always progresses.
    for (int i = 0; i < static_cast<int>(pending_.size()); ++i) {
      if (pending_[i]) {
        best = i;
        break;
      }
    }
  }
  if (coarse_ops != nullptr) *coarse_ops += scan_ops_;
  CAQE_CHECK(best >= 0);
  if (picks_counter_ != nullptr) {
    picks_counter_->Inc();
    scan_ops_counter_->Inc(scan_ops_);
    csm_scan_ops_counter_->Inc(scan_ops_ - domfrac_ops_);
    domfrac_scan_ops_counter_->Inc(domfrac_ops_);
    if (best_score >= 0.0) csm_hist_->Observe(best_score);
  }
  return best;
}

void ContractDrivenScheduler::OnRegionRemoved(int region) {
  CAQE_DCHECK(region >= 0 && region < static_cast<int>(pending_.size()));
  if (!pending_[region]) return;
  pending_[region] = 0;
  --pending_count_;
  // Dynamic mode keeps the (edge-free) graph node active so a later graft
  // can re-activate a discarded-but-unprocessed region.
  if (!options_.dynamic_workload) dg_.Deactivate(region);
}

void ContractDrivenScheduler::OnRegionActivated(int region) {
  CAQE_DCHECK(options_.dynamic_workload);
  CAQE_DCHECK(region >= 0 && region < static_cast<int>(pending_.size()));
  if (pending_[region]) return;
  pending_[region] = 1;
  ++pending_count_;
  // The region's dominated-fraction estimates were computed against the
  // old lineage landscape; recompute lazily.
  for (int q = 0; q < query_stride_; ++q) {
    dom_frac_cache_[static_cast<size_t>(region) * query_stride_ + q].witness =
        -1;
  }
}

void ContractDrivenScheduler::AddQuery(int q) {
  CAQE_DCHECK(options_.dynamic_workload);
  CAQE_DCHECK(q >= 0 && q < workload_->num_queries());
  if (q >= static_cast<int>(weights_.size())) {
    weights_.resize(workload_->num_queries(), 1.0);
    active_.resize(workload_->num_queries(), 0);
  }
  weights_[q] = 1.0;
  active_[q] = 1;
  const int n = static_cast<int>(rc_->regions.size());
  if (q >= query_stride_) {
    // Re-stride the cache geometrically; everything restarts stale (one
    // lazy recompute per touched entry, deterministic either way).
    const int new_stride = std::max(q + 1, 2 * query_stride_);
    dom_frac_cache_.assign(static_cast<size_t>(n) * new_stride, DomFrac{});
    for (DomFrac& d : dom_frac_cache_) d.witness = -1;
    query_stride_ = new_stride;
  } else {
    // Reused slot: invalidate the query's column only.
    for (int r = 0; r < n; ++r) {
      dom_frac_cache_[static_cast<size_t>(r) * query_stride_ + q].witness = -1;
    }
  }
}

void ContractDrivenScheduler::RetireQuery(int q) {
  CAQE_DCHECK(options_.dynamic_workload);
  if (q < 0 || q >= static_cast<int>(active_.size()) || !active_[q]) return;
  // The retired query's weight mass simply vanishes; survivors keep their
  // weights untouched. Rescaling them would perturb subsequent CSM scores
  // relative to a run where the retired query was never admitted — the
  // serving layer's cancellation-equivalence guarantee forbids that. Eq. 11
  // feedback (which only uses weight *differences* among active queries)
  // rebalances the active set from the next region on.
  active_[q] = 0;
  weights_[q] = 0.0;
}

void ContractDrivenScheduler::UpdateWeights() {
  if (!options_.feedback_enabled) return;
  const int n = static_cast<int>(weights_.size());
  double v_max = 0.0;
  bool any = false;
  for (int q = 0; q < n; ++q) {
    if (!active_[q]) continue;
    v_max = std::max(v_max, tracker_->RuntimeMetric(q));
    any = true;
  }
  if (!any) return;
  double denom = 0.0;
  for (int q = 0; q < n; ++q) {
    if (active_[q]) denom += v_max - tracker_->RuntimeMetric(q);
  }
  if (denom <= 0.0) return;  // All queries equally satisfied.
  for (int q = 0; q < n; ++q) {
    if (!active_[q]) continue;
    weights_[q] += (v_max - tracker_->RuntimeMetric(q)) / denom;
  }
}

}  // namespace caqe
