// Contract-driven optimization (paper Section 5.3 and Algorithm 1).
//
// The scheduler iteratively picks the next output region for tuple-level
// processing. Candidates are the dependency-graph roots; each candidate is
// scored with the Cumulative Satisfaction Metric (Eq. 8):
//
//   CSM(R_c, t_c) = sum_i w_i * sum_{j=1..N_est^i(t_c)} utility_i(tau_j)
//
// where N_est is the progressiveness estimate (Eq. 10): the fraction of the
// region's output volume no pending region can dominate, times the Buchta
// cardinality estimate (Eq. 9), and t_c comes from a cost model over the
// region's exact join sizes. After every region the run-time satisfaction
// feedback adjusts the per-query weights (Eq. 11).
#ifndef CAQE_OPTIMIZER_SCHEDULER_H_
#define CAQE_OPTIMIZER_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/virtual_clock.h"
#include "contracts/tracker.h"
#include "query/query.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"

namespace caqe {

class Counter;
class Histogram;
struct Observability;

/// Scheduling policy knobs (ablations flip these).
struct SchedulerOptions {
  /// Apply Eq. 11 weight feedback after every region (CAQE default). When
  /// off, weights stay at 1.
  bool feedback_enabled = true;
  /// Score regions with contract utilities (CAQE). When off, the benefit
  /// term degenerates to estimated result count per second — the
  /// count-driven policy of ProgXe+.
  bool contract_driven = true;
  /// Serving mode: the workload grows (grafted queries) and shrinks
  /// (retired queries) while regions can be re-activated by later grafts.
  /// Uses an edge-free dependency graph (lineage churn invalidates any
  /// precomputed ordering) and keeps removed regions re-activatable.
  bool dynamic_workload = false;
  /// Optional metrics bundle: PickNext records pick counts, scoring-scan
  /// ops, and the winning CSM score. Never feeds a scheduling decision.
  Observability* obs = nullptr;
};

/// Implements Algorithm 1 over a region collection whose lineages the
/// engine mutates as tuple-level processing discards work.
///
/// The engine drives the loop:
///   while (scheduler.HasPending()) {
///     int rid = scheduler.PickNext(clock.Now());
///     ... process region rid, possibly discard others ...
///     scheduler.OnRegionRemoved(rid);        // and for each discarded one
///     scheduler.UpdateWeights();             // Eq. 11 feedback
///   }
class ContractDrivenScheduler {
 public:
  /// All pointers must outlive the scheduler. `rc` lineages may shrink
  /// during execution; the scheduler re-reads them on every scan.
  ContractDrivenScheduler(const RegionCollection* rc, const Workload* workload,
                          const SatisfactionTracker* tracker,
                          const CostModel* cost, SchedulerOptions options);

  /// True while any region is pending.
  bool HasPending() const { return pending_count_ > 0; }
  int64_t pending_count() const { return pending_count_; }

  /// Picks the pending dependency-graph root with the highest CSM at
  /// virtual time `now`. Coarse-op counts for the scoring scan accumulate
  /// into `coarse_ops` when non-null. The caller must eventually call
  /// OnRegionRemoved for the returned region.
  int PickNext(double now, int64_t* coarse_ops = nullptr);

  /// The second-best region of the most recent PickNext scan (-1 when the
  /// scan had no runner-up). Recorded from scores the scan already charged
  /// for, so reading it never perturbs coarse_ops or the dom-frac cache —
  /// the region pipeline uses it to predict the next pick for speculative
  /// execution, re-scoring only at stage boundaries (the real PickNext).
  int runner_up() const { return runner_up_; }

  /// Marks a region processed or discarded: removes it from the dependency
  /// graph and from the benefit-model caches. In dynamic mode the region
  /// stays re-activatable (graft-extended lineage may revive it).
  void OnRegionRemoved(int region);

  /// Dynamic mode only: a graft extended `region`'s lineage, making it
  /// schedulable (again). Invalidates the region's benefit-cache row.
  void OnRegionActivated(int region);

  /// Dynamic mode only: registers workload query `q` (new slot or a reused
  /// retired slot) with weight 1, growing per-query state as needed and
  /// invalidating the query's benefit-cache column.
  void AddQuery(int q);

  /// Dynamic mode only: deactivates query `q` and zeroes its weight.
  /// Survivors' weights are deliberately untouched, so retiring a query
  /// whose regions were never processed leaves the schedule identical to a
  /// run where it was never admitted (the serving layer's
  /// cancellation-equivalence guarantee).
  void RetireQuery(int q);

  bool IsActiveQuery(int q) const {
    return q < static_cast<int>(active_.size()) && active_[q] != 0;
  }

  /// Recomputes query weights from the tracker's run-time satisfaction
  /// metrics (Eq. 11). No-op when feedback is disabled.
  void UpdateWeights();

  double weight(int q) const { return weights_[q]; }

  /// Estimated virtual seconds to process `region` tuple-level.
  double EstimateCost(int region) const;

  /// Progressiveness estimate N_est (Eq. 10) of `region` for query `q` —
  /// expected results emittable right after the region completes.
  double EstimateBenefit(int region, int q) const;

  /// CSM score (Eq. 8) of `region` at time `now`.
  double Csm(int region, double now) const;

  bool IsPending(int region) const { return pending_[region] != 0; }

 private:
  /// Fraction of the region's output box (for query q) that the best
  /// feasible tuple of some *other* pending region serving q could
  /// dominate; cached with the maximizing region as witness.
  struct DomFrac {
    double frac = 0.0;
    int witness = -1;
  };

  double ComputeDominatedFrac(int region, int q, int* witness) const;
  DomFrac& CachedDomFrac(int region, int q) const;

  const RegionCollection* rc_;
  const Workload* workload_;
  const SatisfactionTracker* tracker_;
  const CostModel* cost_;
  SchedulerOptions options_;
  DependencyGraph dg_;
  std::vector<char> pending_;
  int64_t pending_count_ = 0;
  std::vector<double> weights_;
  /// Per-query activity mask (all 1 in batch mode; serving retires slots).
  std::vector<char> active_;
  /// Row-major [region][query] dominated-fraction cache; entries with a
  /// dead witness are recomputed lazily. `query_stride_` is the row width
  /// (== num_queries in batch mode; grows geometrically in dynamic mode).
  mutable std::vector<DomFrac> dom_frac_cache_;
  int query_stride_ = 0;
  mutable int64_t scan_ops_ = 0;
  /// Share of scan_ops_ spent inside dominated-fraction recomputation
  /// (candidate-region scans), as opposed to CSM root scoring. Purely an
  /// attribution split for metrics: the deterministic coarse-op total the
  /// engine charges is always scan_ops_.
  mutable int64_t domfrac_ops_ = 0;
  int runner_up_ = -1;
  // Metrics resolved once at construction when options_.obs is attached.
  Counter* picks_counter_ = nullptr;
  Counter* scan_ops_counter_ = nullptr;
  Counter* csm_scan_ops_counter_ = nullptr;
  Counter* domfrac_scan_ops_counter_ = nullptr;
  Histogram* csm_hist_ = nullptr;
};

}  // namespace caqe

#endif  // CAQE_OPTIMIZER_SCHEDULER_H_
