// Top-K extension demo: an alerting service ranks join results by weighted
// score instead of computing a skyline — the paper's contract-driven
// principles applied to a second query class (see src/topk/).
//
// Three alert feeds over the same Orders ⋈ Carriers join ask for the k
// best matches under different weightings and freshness contracts. The
// contract-aware engine streams each feed's results in score order and
// discards regions whose score bound cannot beat the current k-th best.
#include <cstdio>

#include "caqe/caqe.h"

int main() {
  using namespace caqe;

  GeneratorConfig cfg;
  cfg.num_rows = 4000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02};
  cfg.seed = 91;
  Table orders = GenerateTable("Orders", cfg).value();
  cfg.seed = 92;
  Table carriers = GenerateTable("Carriers", cfg).value();

  TopKWorkload workload;
  workload.AddOutputDim({0, 0, 1.0, 1.0});  // total cost
  workload.AddOutputDim({1, 1, 1.0, 1.0});  // total delay
  workload.AddOutputDim({2, 2, 1.0, 1.0});  // combined risk

  workload.AddQuery({"cheapest", 0, {1.0, 0.1, 0.1}, 10, 0.9});
  workload.AddQuery({"fastest", 0, {0.1, 1.0, 0.1}, 10, 0.6});
  workload.AddQuery({"balanced", 0, {1.0, 1.0, 1.0}, 25, 0.3});

  std::vector<Contract> contracts = {
      MakeTimeStepContract(0.2),             // Cheapest: hard freshness.
      MakeHyperbolicDecayContract(0.05, 0.05),
      MakeCardinalityContract(0.2, 0.08),    // Balanced: steady batches.
  };

  ExecOptions options;
  options.capture_results = true;

  std::printf("top-k alerts: contract-aware vs serial\n\n");
  ContractAwareTopKEngine caqe_engine;
  SerialTopKEngine serial_engine;
  for (TopKEngine* engine :
       std::vector<TopKEngine*>{&caqe_engine, &serial_engine}) {
    const ExecutionReport report =
        engine->Execute(orders, carriers, workload, contracts, options)
            .value();
    std::printf(
        "%s: virtual %.3fs, %lld join tuples materialized, %lld/%lld "
        "regions discarded unprocessed\n",
        report.engine.c_str(), report.stats.virtual_seconds,
        static_cast<long long>(report.stats.join_results),
        static_cast<long long>(report.stats.regions_discarded),
        static_cast<long long>(report.stats.regions_built));
    for (const QueryReport& query : report.queries) {
      std::printf("  %-9s %3lld alerts, satisfaction %.3f", query.name.c_str(),
                  static_cast<long long>(query.results), query.satisfaction);
      if (!query.tuples.empty()) {
        std::printf("  (first at %.4fs)", query.tuples.front().time);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
