// Online serving (Section 3's deployment setting): a long-lived dashboard
// server over one feed pair answers analysts who connect, submit a
// contract-carrying skyline query, and sometimes disconnect before it
// finishes. Demonstrates CaqeServer submit/cancel, contract-aware
// admission (one hopeless request is rejected up front), mid-run
// cancellation, and per-request streaming callbacks.
#include <cstdio>

#include "caqe/caqe.h"

int main() {
  using namespace caqe;

  // Offers: {neg_discount, delivery_days, neg_rating}; Inventory:
  // {neg_stock, unit_cost, neg_margin}. Joined on supplier or category.
  GeneratorConfig cfg;
  cfg.num_rows = 2000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.03, 0.03};
  cfg.seed = 7;
  Table offers = GenerateTable("Offers", cfg).value();
  cfg.seed = 8;
  Table inventory = GenerateTable("Inventory", cfg).value();

  const std::vector<MappingFunction> dims = {
      {0, 0, 1.0, 1.0}, {1, 1, 1.0, 0.5}, {2, 2, 0.5, 1.0}};
  const std::vector<int> join_keys = {0, 1};

  ServeOptions options;
  options.target_regions = 128;
  std::unique_ptr<CaqeServer> server =
      CaqeServer::Create(offers, inventory, dims, join_keys, options).value();

  // Each connected analyst consumes their stream through a callback; here
  // we just count arrivals and remember the first-result latency.
  struct Stream {
    int results = 0;
    double first_vtime = -1.0;
  };
  Stream streams[3];
  const auto tap = [&streams](int request_id, int64_t /*tuple*/,
                              double vtime, double /*utility*/) {
    Stream& s = streams[request_id];
    if (s.results++ == 0) s.first_vtime = vtime;
  };

  // t=0: the morning dashboard connects with a firm freshness deadline.
  server->Submit({"dashboard", 0, {0, 1}, 1.0, {}}, MakeTimeStepContract(0.5),
                 /*arrival_time=*/0.0, /*deadline_seconds=*/0.0, tap);
  // t=0.001: an ad-hoc exploration with decaying interest; the analyst
  // closes the tab at t=0.01 — the server retires the query mid-run and
  // drops its parked results without disturbing the dashboard.
  const int adhoc = server->Submit({"adhoc", 1, {0, 2}, 0.8, {}},
                                   MakeLogDecayContract(0.05), 0.001, 0.0,
                                   tap);
  CAQE_CHECK(server->Cancel(adhoc, 0.01).ok());
  // t=0.002: a batch report whose contract has already decayed to nothing
  // by the time the backlog could drain — admission rejects it outright.
  server->Submit({"stale-report", 0, {0, 1, 2}, 0.2, {}},
                 MakeTimeStepContract(1e-12), 0.002, 0.0, tap);

  const ServingReport report = server->Run().value();

  std::printf("online serving: submit/cancel over a shared server\n\n");
  for (const RequestReport& request : report.requests) {
    std::printf("%-12s %-9s %4lld results, pScore %7.2f (%s)\n",
                request.name.c_str(), RequestStatusName(request.status),
                static_cast<long long>(request.results), request.pscore,
                request.reason.c_str());
  }
  std::printf("\nfirst dashboard result at %.4fs (virtual); "
              "cancelled stream kept %d of its early results\n",
              streams[0].first_vtime, streams[1].results);
  std::printf("admitted %lld/%lld, cumulative pScore %.2f, drained %.4fs\n",
              static_cast<long long>(report.admitted),
              static_cast<long long>(report.submitted),
              report.cumulative_pscore, report.finish_vtime);
  return 0;
}
