// Quickstart: build two synthetic tables, register a three-query workload
// with different progressiveness contracts, run CAQE, and inspect how each
// contract was satisfied.
//
//   ./quickstart
#include <cstdio>

#include "caqe/caqe.h"

int main() {
  using namespace caqe;

  // 1. Generate the base relations (R and T share schema: 3 score
  //    attributes in [1,100] plus one join-key column at 2% selectivity).
  GeneratorConfig cfg;
  cfg.num_rows = 3000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02};
  cfg.distribution = Distribution::kIndependent;
  cfg.seed = 7;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = 8;
  Table t = GenerateTable("T", cfg).value();

  // 2. Describe the workload: a global output space of three derived
  //    dimensions (x_k = R.a_k + T.a_k), then three skyline-over-join
  //    queries with different preferences and contracts.
  CaqeSession session(std::move(r), std::move(t));
  const int cost = session.AddOutputDim({0, 0, 1.0, 1.0});
  const int delay = session.AddOutputDim({1, 1, 1.0, 1.0});
  const int risk = session.AddOutputDim({2, 2, 1.0, 1.0});

  // An interactive user: results are worthless after 0.35 virtual seconds.
  session.AddQuery({"interactive", 0, {cost, delay}, 0.9},
                   MakeTimeStepContract(0.35));
  // A dashboard: utility decays smoothly with time.
  session.AddQuery({"dashboard", 0, {cost, risk}, 0.6},
                   MakeLogDecayContract(/*time_unit_seconds=*/0.1));
  // A batch report: wants 10% of its results per 0.1s interval.
  session.AddQuery({"report", 0, {cost, delay, risk}, 0.3},
                   MakeCardinalityContract(0.1, 0.15));

  // 3. Execute with CAQE.
  session.options().capture_results = true;
  const ExecutionReport report = session.Run().value();

  std::printf("engine: %s\n", report.engine.c_str());
  std::printf("virtual time: %.4fs   wall time: %.4fs\n",
              report.stats.virtual_seconds, report.stats.wall_seconds);
  std::printf("join results: %lld   skyline comparisons: %lld\n\n",
              static_cast<long long>(report.stats.join_results),
              static_cast<long long>(report.stats.dominance_cmps));

  for (const QueryReport& query : report.queries) {
    std::printf("%-12s  %3lld results  pScore %6.2f  satisfaction %.3f\n",
                query.name.c_str(), static_cast<long long>(query.results),
                query.pscore, query.satisfaction);
    if (!query.tuples.empty()) {
      const ReportedResult& first = query.tuples.front();
      std::printf("              first result at %.4fs (utility %.3f)\n",
                  first.time, first.utility);
    }
  }
  std::printf("\nworkload average satisfaction: %.3f\n",
              report.average_satisfaction);
  return 0;
}
