// Supply chain (paper Examples 14-15): RETAILERS and TRANSPORTERS join on
// *different predicates per query* — country for Q1, part for Q2. The
// coarse-level join signatures let CAQE discover, before touching a single
// tuple, which cell pairs can serve which query; this example surfaces that
// region bookkeeping alongside the final results.
#include <cstdio>

#include "caqe/caqe.h"

int main() {
  using namespace caqe;

  // Retailers: {unit_cost, lead_time, defect_rate} with two key columns:
  // country (20 values) and part family (200 values).
  GeneratorConfig cfg;
  cfg.num_rows = 3000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05, 0.005};
  // Retailers ship particular parts from particular regions: keys cluster
  // with attribute space, which is what makes signature pruning effective.
  cfg.join_key_correlation = 0.98;
  cfg.seed = 31;
  Table retailers = GenerateTable("Retailers", cfg).value();
  cfg.seed = 32;
  Table transporters = GenerateTable("Transporters", cfg).value();

  CaqeSession session(std::move(retailers), std::move(transporters));
  const int total_cost = session.AddOutputDim({0, 0, 1.0, 1.0});
  const int total_delay = session.AddOutputDim({1, 1, 1.0, 1.0});
  const int risk = session.AddOutputDim({2, 2, 1.0, 1.0});

  // Q1 joins on country (key column 0), Q2 and Q3 on part (key column 1).
  session.AddQuery({"domestic", /*join_key=*/0, {total_cost, total_delay}, 0.8},
                   MakeTimeStepContract(0.4));
  session.AddQuery({"parts", /*join_key=*/1, {total_cost, risk}, 0.6},
                   MakeLogDecayContract(0.05));
  session.AddQuery({"audit", /*join_key=*/1, {total_cost, total_delay, risk},
                    0.3},
                   MakeCardinalityContract(0.1, 0.2));

  // Show the coarse-level structures CAQE derives before execution.
  const Table& r = session.table_r();
  const Table& t = session.table_t();
  const PartitionedTable pr = PartitionTable(r, 3).value();
  const PartitionedTable pt = PartitionTable(t, 3).value();
  const RegionCollection rc =
      BuildRegions(pr, pt, session.workload()).value();
  int country_only = 0;
  int part_only = 0;
  int both = 0;
  for (const OutputRegion& region : rc.regions) {
    const bool serves_country = region.rql.Contains(0);
    const bool serves_part = region.rql.Contains(1) || region.rql.Contains(2);
    if (serves_country && serves_part) {
      ++both;
    } else if (serves_country) {
      ++country_only;
    } else {
      ++part_only;
    }
  }
  std::printf("supply chain: %d regions from %d x %d cells\n",
              static_cast<int>(rc.regions.size()), pr.num_cells(),
              pt.num_cells());
  std::printf(
      "  signature analysis: %d regions serve only the country join, %d "
      "only the part join, %d both\n\n",
      country_only, part_only, both);

  const ExecutionReport report = session.Run().value();
  std::printf("CAQE execution (virtual %.3fs):\n",
              report.stats.virtual_seconds);
  for (const QueryReport& query : report.queries) {
    std::printf("  %-9s %4lld results, satisfaction %.3f\n",
                query.name.c_str(), static_cast<long long>(query.results),
                query.satisfaction);
  }
  std::printf("\nregions processed: %lld, discarded without processing: %lld\n",
              static_cast<long long>(report.stats.regions_processed),
              static_cast<long long>(report.stats.regions_discarded));
  return 0;
}
