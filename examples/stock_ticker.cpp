// Stock ticker (paper Example 1): one feed of quotes joined against analyst
// signals serves consumers with wildly different progressiveness needs —
// real-time watchlists, hourly trend reports, and a recommendation engine.
// Demonstrates hybrid contracts (Eq. 5) and the run-time satisfaction
// trace exposed by the report.
#include <cstdio>

#include "caqe/caqe.h"

int main() {
  using namespace caqe;

  // Quotes: {neg_momentum, volatility, spread}; Signals: {neg_upside,
  // neg_confidence, horizon_days}. Joined on sector id (~25 sectors).
  GeneratorConfig cfg;
  cfg.num_rows = 4000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.04};
  cfg.distribution = Distribution::kIndependent;
  cfg.seed = 11;
  Table quotes = GenerateTable("Quotes", cfg).value();
  cfg.seed = 12;
  cfg.distribution = Distribution::kCorrelated;
  Table signals = GenerateTable("Signals", cfg).value();

  CaqeSession session(std::move(quotes), std::move(signals));
  const int momentum = session.AddOutputDim({0, 0, 1.0, 1.0});
  const int stability = session.AddOutputDim({1, 1, 1.0, 0.5});
  const int horizon = session.AddOutputDim({2, 2, 0.5, 1.0});

  // Watchlist refresh: a strict freshness window.
  session.AddQuery({"watchlist", 0, {momentum, stability}, 1.0},
                   MakeTimeStepContract(0.15));
  // Trend analysis: throughput-oriented, 10% per interval AND decaying
  // value — a hybrid contract (Eq. 5).
  session.AddQuery({"trends", 0, {momentum, horizon}, 0.5},
                   MakeHybridContract(0.1, 0.1, 0.1));
  // Recommendations: rate-bounded consumer (Eq. 4) — at most 5 suggestions
  // per interval are actionable.
  session.AddQuery({"recommend", 0, {momentum, stability, horizon}, 0.3},
                   MakeRateContract(5.0, 0.1));

  session.options().capture_results = true;
  const ExecutionReport report = session.Run().value();

  std::printf("stock ticker: contract satisfaction under CAQE\n\n");
  for (const QueryReport& query : report.queries) {
    std::printf("%-10s %4lld results, pScore %7.2f, satisfaction %.3f\n",
                query.name.c_str(), static_cast<long long>(query.results),
                query.pscore, query.satisfaction);
    // Print the first few points of the utility trace to show the
    // progressive delivery profile.
    std::printf("           trace:");
    int shown = 0;
    for (const UtilityTracePoint& point : query.utility_trace) {
      if (shown++ == 6) {
        std::printf(" ...");
        break;
      }
      std::printf(" (%.3fs, %.2f)", point.time, point.utility);
    }
    std::printf("\n");
  }
  std::printf("\nworkload pScore: %.2f   average satisfaction: %.3f\n",
              report.workload_pscore, report.average_satisfaction);
  return 0;
}
