// Travel planner (paper Example 2): an internet aggregator joins Hotels
// with Tours to build competing packages. Three concurrent consumers share
// the same join but differ in their preferred trade-offs and in how
// progressively they need answers:
//
//   Q1 "john":  business trip — minimize distance and maximize rating; has
//               10-15 minutes between meetings (hard deadline).
//   Q2 "jane":  student deal hunting — cheap first, alert immediately
//               (steep utility decay).
//   Q3 "acme":  travel agency building hourly reports — rating, sights and
//               cost; cares about steady throughput, not latency.
//
// The example runs the workload under CAQE and under the serial JFSL
// strategy and compares how each consumer's contract fares.
#include <cstdio>

#include "caqe/caqe.h"

namespace {

// Hotels: attrs = {price, neg_rating, distance_to_center}. Smaller is
// better everywhere, so ratings are stored negated onto [1, 100].
caqe::Table MakeHotels(int64_t n, uint64_t seed) {
  caqe::GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02};  // Key: city id (50 cities).
  cfg.distribution = caqe::Distribution::kIndependent;
  cfg.seed = seed;
  return caqe::GenerateTable("Hotels", cfg).value();
}

// Tours: attrs = {tour_cost, neg_sights, days}. Same key column (city).
caqe::Table MakeTours(int64_t n, uint64_t seed) {
  caqe::GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02};
  cfg.distribution = caqe::Distribution::kIndependent;
  cfg.seed = seed;
  return caqe::GenerateTable("Tours", cfg).value();
}

}  // namespace

int main() {
  using namespace caqe;

  CaqeSession session(MakeHotels(3000, 101), MakeTours(3000, 202));

  // Package-level derived dimensions (Example 5: mapping functions combine
  // the two sides).
  const int total_price =
      session.AddOutputDim({/*hotel price*/ 0, /*tour cost*/ 0, 10.0, 1.0});
  const int badness =  // Lower = better rated hotel + more sights.
      session.AddOutputDim({/*neg_rating*/ 1, /*neg_sights*/ 1, 1.0, 1.0});
  const int hassle =  // Distance plus trip length.
      session.AddOutputDim({/*distance*/ 2, /*days*/ 2, 1.0, 1.0});

  session.AddQuery({"john", 0, {badness, hassle}, 0.9},
                   MakeTimeStepContract(0.5));
  // Jane only considers budget hotels (nightly rate in the lower band) —
  // a per-query selection the coarse join prunes against cell bounds.
  session.AddQuery({"jane",
                    0,
                    {total_price, hassle},
                    0.7,
                    {{/*on_r=*/true, /*attr=*/0, /*lo=*/1.0, /*hi=*/40.0}}},
                   MakeHyperbolicDecayContract(0.1, 0.1));
  session.AddQuery({"acme", 0, {total_price, badness, hassle}, 0.4},
                   MakeCardinalityContract(0.1, 0.5));

  std::printf("travel planner: 3 consumers over Hotels ⋈ Tours\n\n");
  for (const char* engine : {"CAQE", "JFSL"}) {
    const ExecutionReport report = session.RunWith(engine).value();
    std::printf("%s (virtual %.3fs, %lld join tuples, %lld comparisons)\n",
                report.engine.c_str(), report.stats.virtual_seconds,
                static_cast<long long>(report.stats.join_results),
                static_cast<long long>(report.stats.dominance_cmps));
    for (const QueryReport& query : report.queries) {
      std::printf("  %-5s %4lld packages, satisfaction %.3f\n",
                  query.name.c_str(),
                  static_cast<long long>(query.results),
                  query.satisfaction);
    }
    std::printf("  workload average: %.3f\n\n",
                report.average_satisfaction);
  }
  return 0;
}
