// caqe_serve — the serving layer's CLI, in three modes.
//
// Batch (default): replay a synthetic deterministic arrival trace through
// the online serving layer and print the serving report.
//
//   caqe_serve [--rows=1000] [--sel=0.01] [--requests=12] [--rate=40]
//              [--seed=2014] [--threads=1] [--pipeline=0]
//              [--coarse_index=0] [--compact_layout=1]
//              [--join_cache_entries=4096] [--target-regions=128]
//              [--policy=contract|count] [--cancel-fraction=0.1]
//              [--deadline-fraction=0.25] [--admit-all=0]
//              [--calibrate=0]          # self-tuning admission estimates
//              [--report-out=PATH]      # write ServingReportText to PATH
//              [--trace-out=PATH]       # write the ExecEvent stream as JSONL
//              [--trace_out=PATH]       # write a Chrome/Perfetto trace
//              [--metrics_out=PATH]     # write a Prometheus text snapshot
//              [--health_out=PATH]      # write contract-health JSONL
//              [--ledger_out=PATH]      # write the contract audit ledger
//                                       # (JSONL; wall_us is the only
//                                       # nondeterministic field)
//              [--flight_out=PATH]      # write the flight-recorder ring
//
// Listen (--listen): serve the line protocol of src/net/protocol.h over
// TCP on a wall clock, recording the session for replay.
//
//   caqe_serve --listen=ADDR:PORT      # 127.0.0.1:0 picks an ephemeral port
//              [--record=PATH]          # session trace (replayable)
//              [--port_file=PATH]       # write the bound port (for scripts)
//              [--quantum=1e-6]         # arrival quantization (vsec)
//              [--idle_timeout_ms=30000]
//              [--linger=1]             # keep STATUS//metrics after drain
//              [--sample_every=1]       # span sampling period
//              ... plus the batch data/engine flags above.
//
//   SIGINT/SIGTERM drain gracefully (flush emissions, final report, close
//   the recorder); a second signal hard-stops. SIGQUIT dumps the flight
//   recorder (to --flight_out, or stderr) without disturbing the session.
//   The exit code reflects drain success. --trace_out streams
//   incrementally in this mode.
//
// Replay (--replay): load a recorded session trace and re-run it on the
// virtual clock.
//
//   caqe_serve --replay=PATH [engine flags]
//
//   Data-shape parameters (rows, sel, seed, target-regions, policy,
//   admit-all, calibrate) come from the trace header, so a replay
//   reconstructs the exact engine the live session ran; engine knobs that never change a
//   report (--threads, --pipeline, --coarse_index, --compact_layout,
//   --join_cache_entries) come from the replay's own flags. The printed
//   report is byte-identical to the live session's —
//   scripts/run_net_matrix.sh diffs exactly this across the knob matrix.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "metrics/export.h"
#include "net/net_server.h"
#include "net/recorder.h"
#include "obs/stream_writer.h"

namespace caqe {
namespace {

/// Data-shape parameters: everything a replay must reproduce exactly.
/// --calibrate lives here (not with the engine knobs) because calibration
/// changes admission decisions, hence the report — a replay must re-run
/// with the live session's setting to stay byte-identical.
struct DataConfig {
  int64_t rows = 1000;
  double selectivity = 0.01;
  uint64_t seed = 2014;
  int target_regions = 128;
  std::string policy = "contract";
  bool admit_all = false;
  bool calibrate = false;
};

DataConfig DataConfigFromArgs(const bench::Args& args) {
  DataConfig config;
  config.rows = args.GetInt("rows", config.rows);
  config.selectivity = args.GetDouble("sel", config.selectivity);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 2014));
  config.target_regions =
      static_cast<int>(args.GetInt("target-regions", config.target_regions));
  config.policy = args.GetString("policy", config.policy);
  config.admit_all = args.GetInt("admit-all", 0) != 0;
  config.calibrate = args.GetInt("calibrate", 0) != 0;
  return config;
}

std::vector<std::pair<std::string, std::string>> DataConfigAttrs(
    const DataConfig& config) {
  return {{"rows", std::to_string(config.rows)},
          {"sel", net::FormatExactDouble(config.selectivity)},
          {"seed", std::to_string(config.seed)},
          {"target_regions", std::to_string(config.target_regions)},
          {"policy", config.policy},
          {"admit_all", config.admit_all ? "1" : "0"},
          {"calibrate", config.calibrate ? "1" : "0"}};
}

DataConfig DataConfigFromTrace(const net::SessionTrace& trace) {
  DataConfig config;
  config.rows = std::atoll(trace.Attr("rows", "1000").c_str());
  config.selectivity = std::atof(trace.Attr("sel", "0.01").c_str());
  config.seed =
      static_cast<uint64_t>(std::atoll(trace.Attr("seed", "2014").c_str()));
  config.target_regions =
      static_cast<int>(std::atoi(trace.Attr("target_regions", "128").c_str()));
  config.policy = trace.Attr("policy", "contract");
  config.admit_all = trace.Attr("admit_all", "0") == "1";
  config.calibrate = trace.Attr("calibrate", "0") == "1";
  return config;
}

/// Builds the fixed (R, T, dims, keys) world every mode shares.
struct ServeWorld {
  Table r;
  Table t;
  std::vector<MappingFunction> dims;
  std::vector<int> keys;
};

ServeWorld MakeWorld(const DataConfig& config) {
  GeneratorConfig cfg;
  cfg.num_rows = config.rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {config.selectivity, config.selectivity};
  cfg.seed = config.seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = config.seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return ServeWorld{std::move(r), std::move(t),
                    {MappingFunction{0, 0}, MappingFunction{1, 1},
                     MappingFunction{2, 2}},
                    {0, 1}};
}

/// Engine knobs: free to vary between a live session and its replay.
Result<ServeOptions> OptionsFromArgs(const bench::Args& args,
                                     const DataConfig& config,
                                     std::vector<ExecEvent>* events,
                                     Observability* obs) {
  ServeOptions options;
  options.num_threads = bench::ThreadsFromArgs(args);
  options.pipeline_regions = bench::PipelineFromArgs(args);
  options.coarse_index = bench::CoarseIndexFromArgs(args);
  options.compact_layout = bench::CompactLayoutFromArgs(args);
  options.join_index_cache_entries = bench::JoinCacheEntriesFromArgs(args);
  options.target_regions = config.target_regions;
  options.admit_all = config.admit_all;
  options.calibrate = config.calibrate;
  options.trace = events;
  options.obs = obs;
  if (config.policy == "contract") {
    options.policy = SchedulePolicy::kContractDriven;
  } else if (config.policy == "count") {
    options.policy = SchedulePolicy::kCountDriven;
  } else {
    return Status::InvalidArgument("unknown policy: " + config.policy +
                                   " (use contract|count)");
  }
  return options;
}

/// Writes the report and every requested artifact; returns nonzero on a
/// write failure.
int WriteArtifacts(const bench::Args& args, const ServingReport& report,
                   const std::vector<ExecEvent>& events, Observability* obs) {
  const std::string text = ServingReportText(report);
  std::printf("%s", text.c_str());

  const auto write = [](const std::string& path,
                        const std::string& content) -> bool {
    const Status status = WriteTextFile(path, content);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };

  const std::string report_out = args.GetString("report-out", "");
  if (!report_out.empty() && !write(report_out, text)) return 1;
  const std::string trace_out = args.GetString("trace-out", "");
  if (!trace_out.empty() && !write(trace_out, ExecEventsJsonl(events))) {
    return 1;
  }
  if (obs != nullptr) {
    const std::string metrics_out = args.GetString("metrics_out", "");
    if (!metrics_out.empty() &&
        !write(metrics_out, obs->metrics.PrometheusText())) {
      return 1;
    }
    const std::string health_out = args.GetString("health_out", "");
    if (!health_out.empty() && !write(health_out, obs->health.Jsonl())) {
      return 1;
    }
    const std::string ledger_out = args.GetString("ledger_out", "");
    if (!ledger_out.empty() && !write(ledger_out, obs->ledger.Jsonl())) {
      return 1;
    }
    const std::string flight_out = args.GetString("flight_out", "");
    if (!flight_out.empty() && !write(flight_out, obs->flight.Jsonl())) {
      return 1;
    }
  }
  return 0;
}

bool WantsObs(const bench::Args& args) {
  return !args.GetString("trace_out", "").empty() ||
         !args.GetString("metrics_out", "").empty() ||
         !args.GetString("health_out", "").empty() ||
         !args.GetString("ledger_out", "").empty() ||
         !args.GetString("flight_out", "").empty();
}

// ---- Batch mode (the original tool) ----

int RunBatch(const bench::Args& args) {
  const DataConfig config = DataConfigFromArgs(args);
  const ServeWorld world = MakeWorld(config);

  std::vector<ExecEvent> events;
  Observability obs;
  Result<ServeOptions> options = OptionsFromArgs(
      args, config, &events, WantsObs(args) ? &obs : nullptr);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<CaqeServer>> server = CaqeServer::Create(
      world.r, world.t, world.dims, world.keys, *options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  TraceConfig trace_config;
  trace_config.num_requests = static_cast<int>(args.GetInt("requests", 12));
  trace_config.arrival_rate = args.GetDouble("rate", 40.0);
  trace_config.seed = config.seed;
  trace_config.reference_seconds = args.GetDouble("reference", 0.1);
  trace_config.deadline_fraction = args.GetDouble("deadline-fraction", 0.25);
  trace_config.cancel_fraction = args.GetDouble("cancel-fraction", 0.1);
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, world.keys, 3);
  SubmitTrace(**server, trace);

  Result<ServingReport> report = (*server)->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const std::string obs_trace_out = args.GetString("trace_out", "");
  if (!obs_trace_out.empty()) {
    const Status status = WriteTextFile(obs_trace_out, obs.ChromeTrace());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans, %zu health samples)\n",
                obs_trace_out.c_str(), obs.spans.size(), obs.health.size());
  }
  return WriteArtifacts(args, *report, events, WantsObs(args) ? &obs : nullptr);
}

// ---- Listen mode (wall-clock TCP front-end) ----

net::NetServer* g_net = nullptr;
volatile std::sig_atomic_t g_signal_count = 0;

void OnSignal(int) {
  if (g_net == nullptr) return;
  // First signal: graceful drain. Second: hard stop. (Volatile compound
  // increment is deprecated in C++20, so read and write separately; signal
  // handlers never race themselves on one thread.)
  const std::sig_atomic_t count = g_signal_count;
  g_signal_count = count + 1;
  if (count == 0) {
    g_net->RequestDrain();
  } else {
    g_net->RequestStop();
  }
}

void OnSigQuit(int) {
  if (g_net != nullptr) g_net->RequestFlightDump();
}

int RunListen(const bench::Args& args) {
  const std::string listen = args.GetString("listen", "127.0.0.1:0");
  net::NetServerOptions net_options;
  const size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    net_options.port = std::atoi(listen.c_str());
  } else {
    if (colon > 0) net_options.bind_address = listen.substr(0, colon);
    net_options.port = std::atoi(listen.c_str() + colon + 1);
  }
  net_options.quantum =
      args.GetDouble("quantum", ArrivalQuantizer::kDefaultQuantum);
  net_options.idle_timeout_ms =
      static_cast<int>(args.GetInt("idle_timeout_ms", 30000));
  net_options.linger_after_drain = args.GetInt("linger", 1) != 0;
  net_options.record_path = args.GetString("record", "");
  net_options.flight_dump_path = args.GetString("flight_out", "");

  const DataConfig config = DataConfigFromArgs(args);
  net_options.record_attrs = DataConfigAttrs(config);
  const ServeWorld world = MakeWorld(config);

  std::vector<ExecEvent> events;
  Observability obs;  // Always on: the point of --listen is /metrics.
  obs.spans.set_sample_every(
      static_cast<int>(args.GetInt("sample_every", 1)));
  Result<ServeOptions> options =
      OptionsFromArgs(args, config, &events, &obs);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<CaqeServer>> server = CaqeServer::Create(
      world.r, world.t, world.dims, world.keys, *options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  // Incremental span flushing (crash-safe trace prefix).
  std::unique_ptr<StreamingTraceWriter> stream;
  const std::string obs_trace_out = args.GetString("trace_out", "");
  if (!obs_trace_out.empty()) {
    Result<std::unique_ptr<StreamingTraceWriter>> opened =
        StreamingTraceWriter::Open(obs_trace_out,
                                   StreamingTraceWriter::Format::kChrome);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    stream = std::move(opened).value();
  }
  net_options.obs = &obs;
  if (stream != nullptr) {
    StreamingTraceWriter* writer = stream.get();
    Observability* obs_ptr = &obs;
    net_options.on_tick = [writer, obs_ptr] {
      writer->Append(obs_ptr->spans.Drain());
    };
  }

  Result<std::unique_ptr<net::NetServer>> net =
      net::NetServer::Create(server->get(), std::move(net_options));
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
    return 1;
  }

  const std::string port_file = args.GetString("port_file", "");
  if (!port_file.empty()) {
    const Status status =
        WriteTextFile(port_file, std::to_string((*net)->port()) + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("listening on %d\n", (*net)->port());
  std::fflush(stdout);

  g_net = net->get();
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGQUIT, OnSigQuit);
  const Status served = (*net)->Serve();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGQUIT, SIG_DFL);
  g_net = nullptr;

  if (stream != nullptr) {
    stream->Append(obs.spans.Drain());
    stream->Close();
    std::printf("wrote %s (%zu spans)\n", obs_trace_out.c_str(),
                stream->spans_written());
  }
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    return 1;
  }
  return WriteArtifacts(args, (*net)->report(), events, &obs);
}

// ---- Replay mode (virtual-clock re-run of a recorded session) ----

int RunReplay(const bench::Args& args) {
  const std::string path = args.GetString("replay", "");
  Result<net::SessionTrace> trace = net::LoadSessionTrace(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  const DataConfig config = DataConfigFromTrace(*trace);
  const ServeWorld world = MakeWorld(config);

  std::vector<ExecEvent> events;
  Observability obs;
  Result<ServeOptions> options = OptionsFromArgs(
      args, config, &events, WantsObs(args) ? &obs : nullptr);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<CaqeServer>> server = CaqeServer::Create(
      world.r, world.t, world.dims, world.keys, *options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  const ArrivalQuantizer quantizer(trace->quantum);
  for (net::SessionEvent& event : trace->events) {
    const double vtime = quantizer.TimeOf(event.tq);
    if (event.command.kind == net::CommandKind::kSubmit) {
      net::SubmitCommand& submit = event.command.submit;
      const int id =
          (*server)->Submit(std::move(submit.query),
                            std::move(submit.contract), vtime,
                            submit.deadline_seconds);
      if (id != submit.trace_id) {
        std::fprintf(stderr, "replay id mismatch: got %d want %d\n", id,
                     submit.trace_id);
        return 1;
      }
    } else {
      const Status status =
          (*server)->Cancel(event.command.cancel_id, vtime);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
  }

  Result<ServingReport> report = (*server)->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  return WriteArtifacts(args, *report, events,
                        WantsObs(args) ? &obs : nullptr);
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  if (!args.GetString("listen", "").empty()) return RunListen(args);
  if (!args.GetString("replay", "").empty()) return RunReplay(args);
  return RunBatch(args);
}

}  // namespace
}  // namespace caqe

int main(int argc, char** argv) { return caqe::Main(argc, argv); }
