// caqe_serve — replay a deterministic arrival trace through the online
// serving layer and print the serving report.
//
// Usage:
//   caqe_serve [--rows=1000] [--sel=0.01] [--requests=12] [--rate=40]
//              [--seed=2014] [--threads=1] [--pipeline=0]
//              [--coarse_index=0] [--compact_layout=1]
//              [--join_cache_entries=4096] [--target-regions=128]
//              [--policy=contract|count] [--cancel-fraction=0.1]
//              [--deadline-fraction=0.25] [--admit-all=0]
//              [--report-out=PATH]      # write ServingReportText to PATH
//              [--trace-out=PATH]       # write the ExecEvent stream as JSONL
//              [--trace_out=PATH]       # write a Chrome/Perfetto trace
//                                       # (spans + contract-health tracks;
//                                       # load at ui.perfetto.dev)
//              [--metrics_out=PATH]     # write a Prometheus text snapshot
//              [--health_out=PATH]      # write contract-health JSONL
//
// The trace is a pure function of (--seed, --rate, --requests), and the
// report text excludes every non-deterministic quantity, so two invocations
// that differ only in --threads, --pipeline, --coarse_index,
// --compact_layout, --join_cache_entries, or the CAQE_SIMD build flag must
// print byte-identical reports —
// scripts/run_serving_matrix.sh diffs exactly this.
// Attaching the observability flags never changes the report: the obs layer
// is read-only with respect to the engine (scripts/run_obs_matrix.sh).
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace {

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int64_t rows = args.GetInt("rows", 1000);
  const double selectivity = args.GetDouble("sel", 0.01);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 2014));

  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {selectivity, selectivity};
  cfg.seed = seed;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};

  std::vector<ExecEvent> events;
  ServeOptions options;
  options.num_threads = bench::ThreadsFromArgs(args);
  options.pipeline_regions = bench::PipelineFromArgs(args);
  options.coarse_index = bench::CoarseIndexFromArgs(args);
  options.compact_layout = bench::CompactLayoutFromArgs(args);
  options.join_index_cache_entries = bench::JoinCacheEntriesFromArgs(args);
  options.target_regions = static_cast<int>(args.GetInt("target-regions", 128));
  options.admit_all = args.GetInt("admit-all", 0) != 0;
  options.trace = &events;
  const std::string obs_trace_out = args.GetString("trace_out", "");
  const std::string metrics_out = args.GetString("metrics_out", "");
  const std::string health_out = args.GetString("health_out", "");
  Observability obs;
  if (!obs_trace_out.empty() || !metrics_out.empty() ||
      !health_out.empty()) {
    options.obs = &obs;
  }
  const std::string policy = args.GetString("policy", "contract");
  if (policy == "contract") {
    options.policy = SchedulePolicy::kContractDriven;
  } else if (policy == "count") {
    options.policy = SchedulePolicy::kCountDriven;
  } else {
    std::fprintf(stderr, "unknown policy: %s (use contract|count)\n",
                 policy.c_str());
    return 1;
  }

  Result<std::unique_ptr<CaqeServer>> server =
      CaqeServer::Create(r, t, dims, keys, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  TraceConfig trace_config;
  trace_config.num_requests = static_cast<int>(args.GetInt("requests", 12));
  trace_config.arrival_rate = args.GetDouble("rate", 40.0);
  trace_config.seed = seed;
  trace_config.reference_seconds = args.GetDouble("reference", 0.1);
  trace_config.deadline_fraction = args.GetDouble("deadline-fraction", 0.25);
  trace_config.cancel_fraction = args.GetDouble("cancel-fraction", 0.1);
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, keys, 3);
  SubmitTrace(**server, trace);

  Result<ServingReport> report = (*server)->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const std::string text = ServingReportText(*report);
  std::printf("%s", text.c_str());

  const std::string report_out = args.GetString("report-out", "");
  if (!report_out.empty()) {
    const Status status = WriteTextFile(report_out, text);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_out.c_str());
  }
  const std::string trace_out = args.GetString("trace-out", "");
  if (!trace_out.empty()) {
    const Status status = WriteTextFile(trace_out, ExecEventsJsonl(events));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events)\n", trace_out.c_str(), events.size());
  }
  if (!obs_trace_out.empty()) {
    const Status status = WriteTextFile(obs_trace_out, obs.ChromeTrace());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans, %zu health samples)\n",
                obs_trace_out.c_str(), obs.spans.size(), obs.health.size());
  }
  if (!metrics_out.empty()) {
    const Status status =
        WriteTextFile(metrics_out, obs.metrics.PrometheusText());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  if (!health_out.empty()) {
    const Status status = WriteTextFile(health_out, obs.health.Jsonl());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu samples)\n", health_out.c_str(),
                obs.health.size());
  }
  return 0;
}

}  // namespace
}  // namespace caqe

int main(int argc, char** argv) { return caqe::Main(argc, argv); }
