#!/usr/bin/env bash
# Shared byte-diff gate of the determinism matrix scripts
# (run_simd_matrix.sh, run_serving_matrix.sh, run_obs_matrix.sh): compares
# report files against a baseline and fails on any difference. Every
# compared report deliberately excludes non-deterministic quantities (wall
# times), so a diff is a real determinism bug, never noise.
#
#   tools/report_diff.sh LABEL BASELINE KEY=FILE [KEY=FILE...]
#
# Prints one line per comparison. On a mismatch the unified diff goes to
# stderr and the final exit status is 1 — after checking every file, so one
# run reports all divergent cells at once.
set -euo pipefail

if [[ $# -lt 3 ]]; then
  echo "usage: $0 LABEL BASELINE KEY=FILE [KEY=FILE...]" >&2
  exit 2
fi

label="$1"
baseline="$2"
shift 2

status=0
for pair in "$@"; do
  key="${pair%%=*}"
  file="${pair#*=}"
  if diff -u "${baseline}" "${file}" > /dev/null; then
    echo "${label} identical: ${key}"
  else
    echo "FAIL: ${label} differs: ${key}" >&2
    diff -u "${baseline}" "${file}" >&2 || true
    status=1
  fi
done
exit "${status}"
