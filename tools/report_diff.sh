#!/usr/bin/env bash
# Shared byte-diff gate of the determinism matrix scripts
# (run_simd_matrix.sh, run_serving_matrix.sh, run_obs_matrix.sh): compares
# report files against a baseline and fails on any difference. Every
# compared report deliberately excludes non-deterministic quantities (wall
# times), so a diff is a real determinism bug, never noise.
#
#   tools/report_diff.sh [--normalize-wall] LABEL BASELINE KEY=FILE [KEY=FILE...]
#
# --normalize-wall strips the `,"wall_us":...` suffix from every compared
# line before diffing — the audit ledger's one wall-clock field is always
# emitted last exactly so this normalization is a plain sed. Everything
# left after stripping must be byte-identical between a live session and
# its replay.
#
# Prints one line per comparison. On a mismatch the unified diff goes to
# stderr and the final exit status is 1 — after checking every file, so one
# run reports all divergent cells at once.
set -euo pipefail

normalize_wall=0
if [[ "${1:-}" == "--normalize-wall" ]]; then
  normalize_wall=1
  shift
fi

if [[ $# -lt 3 ]]; then
  echo "usage: $0 [--normalize-wall] LABEL BASELINE KEY=FILE [KEY=FILE...]" >&2
  exit 2
fi

label="$1"
baseline="$2"
shift 2

tmpdir=""
if [[ "${normalize_wall}" == 1 ]]; then
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "${tmpdir}"' EXIT
  sed 's/,"wall_us":[0-9eE.+-]*//g' "${baseline}" > "${tmpdir}/baseline"
  baseline="${tmpdir}/baseline"
fi

status=0
n=0
for pair in "$@"; do
  key="${pair%%=*}"
  file="${pair#*=}"
  if [[ "${normalize_wall}" == 1 ]]; then
    n=$((n + 1))
    sed 's/,"wall_us":[0-9eE.+-]*//g' "${file}" > "${tmpdir}/cell.${n}"
    file="${tmpdir}/cell.${n}"
  fi
  if diff -u "${baseline}" "${file}" > /dev/null; then
    echo "${label} identical: ${key}"
  else
    echo "FAIL: ${label} differs: ${key}" >&2
    diff -u "${baseline}" "${file}" >&2 || true
    status=1
  fi
done
exit "${status}"
