// caqe_net_client — scripted client for the caqe_serve --listen protocol.
//
// Keeps scripts/run_net_matrix.sh and the e2e tests free of nc/curl
// dependencies. Two modes:
//
// Protocol mode (default): reads a script of protocol lines from --script
// (or stdin), sends them in order, and prints every server line received.
// Script directives (never sent on the wire):
//   # comment
//   !sleep <ms>       pause before the next line
//   !expect <prefix>  read (and print) lines until one starts with
//                     <prefix>; exit 2 on timeout
// After the script, the client keeps reading until the server closes or
// --linger_ms of silence passes.
//
//   caqe_net_client --port=PORT [--host=127.0.0.1] [--script=PATH]
//                   [--timeout_ms=10000] [--linger_ms=200]
//
// HTTP mode: one GET, body printed to stdout, exit 0 iff the status is 200
// (on anything else the status line goes to stderr). The server exposes
// /metrics, /healthz, /statusz, /tracez/<request-id> and /flightz on the
// protocol port.
//
//   caqe_net_client --port=PORT --get=/metrics
//   caqe_net_client --port=PORT --get=/tracez/0
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "../bench/bench_util.h"

namespace caqe {
namespace {

int Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

int RunGet(const std::string& host, int port, const std::string& path,
           int timeout_ms) {
  const int fd = Connect(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
    return 1;
  }
  if (!SendAll(fd, "GET " + path + " HTTP/1.0\r\n\r\n")) {
    ::close(fd);
    return 1;
  }
  std::string response;
  char buf[4096];
  pollfd pfd{fd, POLLIN, 0};
  while (true) {
    if (::poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    std::fprintf(stderr, "bad http response\n");
    return 1;
  }
  std::fwrite(response.data() + header_end + 4,
              1, response.size() - header_end - 4, stdout);
  if (response.rfind("HTTP/1.0 200", 0) == 0) return 0;
  const size_t line_end = response.find("\r\n");
  std::fprintf(stderr, "%s\n",
               response.substr(0, line_end).c_str());
  return 1;
}

/// Reads one script: stdin when `path` is empty or "-".
std::vector<std::string> ReadScript(const std::string& path) {
  std::FILE* file = stdin;
  if (!path.empty() && path != "-") {
    file = std::fopen(path.c_str(), "r");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      std::exit(1);
    }
  }
  std::vector<std::string> lines;
  std::string current;
  int c = 0;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += static_cast<char>(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  if (file != stdin) std::fclose(file);
  return lines;
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next server line, waiting up to `timeout_ms`. Returns false
  /// on timeout or closed connection (`closed()` tells which).
  bool Next(std::string& out, int timeout_ms) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (closed_) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        closed_ = true;
        continue;  // Flush any final unterminated data.
      }
      buffer_.append(buf, static_cast<size_t>(n));
    }
  }

  bool closed() const { return closed_ && buffer_.empty(); }

 private:
  int fd_;
  std::string buffer_;
  bool closed_ = false;
};

int RunScript(const std::string& host, int port, const std::string& path,
              int timeout_ms, int linger_ms) {
  const int fd = Connect(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
    return 1;
  }
  LineReader reader(fd);
  std::string line;

  for (const std::string& raw : ReadScript(path)) {
    if (raw.empty() || raw[0] == '#') continue;
    if (raw.rfind("!sleep ", 0) == 0) {
      const int ms = std::atoi(raw.c_str() + 7);
      struct timespec ts {ms / 1000, (ms % 1000) * 1000000L};
      ::nanosleep(&ts, nullptr);
      continue;
    }
    if (raw.rfind("!expect ", 0) == 0) {
      const std::string prefix = raw.substr(8);
      while (true) {
        if (!reader.Next(line, timeout_ms)) {
          std::fprintf(stderr, "expect timeout: %s\n", prefix.c_str());
          ::close(fd);
          return 2;
        }
        std::printf("%s\n", line.c_str());
        if (line.rfind(prefix, 0) == 0) break;
      }
      continue;
    }
    // Drain anything pending (non-blocking) so output stays ordered.
    while (reader.Next(line, 0)) std::printf("%s\n", line.c_str());
    if (!SendAll(fd, raw + "\n")) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
  }

  // Final drain: read until the server closes or linger_ms of silence.
  while (reader.Next(line, linger_ms)) std::printf("%s\n", line.c_str());
  ::close(fd);
  return 0;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::string host = args.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetInt("port", 0));
  const int timeout_ms = static_cast<int>(args.GetInt("timeout_ms", 10000));
  if (port <= 0) {
    std::fprintf(stderr, "usage: caqe_net_client --port=PORT "
                         "[--script=PATH | --get=/metrics]\n");
    return 1;
  }
  const std::string get = args.GetString("get", "");
  if (!get.empty()) return RunGet(host, port, get, timeout_ms);
  return RunScript(host, port, args.GetString("script", ""), timeout_ms,
                   static_cast<int>(args.GetInt("linger_ms", 200)));
}

}  // namespace
}  // namespace caqe

int main(int argc, char** argv) { return caqe::Main(argc, argv); }
