// caqe_cli — run a contract-driven multi-query experiment from the command
// line and print (or export) the comparison.
//
// Usage:
//   caqe_cli [--rows=4000] [--sel=0.01] [--dist=independent] [--dims=4]
//            [--queries=11] [--contract=C1|C2|C3|C4|C5] [--seed=2014]
//            [--threads=1] [--pipeline=0] [--coarse_index=0]
//            [--compact_layout=1] [--join_cache_entries=4096]
//            [--engines=CAQE,S-JFSL,JFSL,ProgXe+,SSMJ]
//            [--out=PREFIX]          # write PREFIX_{summary,queries,trace}.csv
//            [--trace=1]             # print per-query first/last emission
//            [--trace_out=PATH]      # Chrome/Perfetto trace of every engine
//                                    # run (spans + contract-health tracks)
//            [--metrics_out=PATH]    # Prometheus text snapshot
//
// The contract's deadline/interval parameters are calibrated automatically
// against a shared-pass reference run, exactly like the figure benchmarks.
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "metrics/export.h"

namespace caqe {
namespace {

std::vector<std::string> SplitCsvList(const std::string& input) {
  std::vector<std::string> out;
  std::string current;
  for (char c : input) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::BenchConfig config;
  config.rows = args.GetInt("rows", 4000);
  config.num_attrs = static_cast<int>(args.GetInt("dims", 4));
  config.selectivity = args.GetDouble("sel", 0.01);
  config.num_queries = static_cast<int>(args.GetInt("queries", 11));
  config.seed = args.GetInt("seed", 2014);
  const Result<Distribution> dist =
      bench::ParseDistribution(args.GetString("dist", "independent"));
  if (!dist.ok()) {
    std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
    return 1;
  }
  config.distribution = *dist;

  const std::string contract_name = args.GetString("contract", "C3");
  int contract_index = -1;
  for (int c = 0; c < 5; ++c) {
    if (contract_name == bench::ContractName(c)) contract_index = c;
  }
  if (contract_index < 0) {
    std::fprintf(stderr, "unknown contract: %s (use C1..C5)\n",
                 contract_name.c_str());
    return 1;
  }

  auto [r, t] = bench::MakeBenchTables(config);
  const Result<Workload> workload = MakeSubspaceWorkload(
      config.num_attrs, 0, config.num_queries,
      bench::PolicyForContract(contract_index), config.seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  const bench::Calibration calibration = bench::Calibrate(r, t, *workload);
  const std::vector<Contract> contracts(
      workload->num_queries(),
      bench::MakeTableTwoContract(contract_index,
                                  calibration.reference_seconds));
  ExecOptions options;
  options.known_result_counts = calibration.result_counts;
  options.capture_results = false;
  options.num_threads = bench::ThreadsFromArgs(args);
  options.pipeline_regions = bench::PipelineFromArgs(args);
  options.coarse_index = bench::CoarseIndexFromArgs(args);
  options.compact_layout = bench::CompactLayoutFromArgs(args);
  options.join_index_cache_entries = bench::JoinCacheEntriesFromArgs(args);
  const std::string trace_out = args.GetString("trace_out", "");
  const std::string metrics_out = args.GetString("metrics_out", "");
  Observability obs;
  if (!trace_out.empty() || !metrics_out.empty()) options.obs = &obs;

  std::printf(
      "caqe_cli: dist=%s N=%lld sigma=%.4f d=%d |S_Q|=%d contract=%s "
      "(reference %.3fs)\n\n",
      DistributionName(config.distribution),
      static_cast<long long>(config.rows), config.selectivity,
      config.num_attrs, config.num_queries, contract_name.c_str(),
      calibration.reference_seconds);

  const std::vector<std::string> engines = SplitCsvList(
      args.GetString("engines", "CAQE,S-JFSL,JFSL,ProgXe+,SSMJ"));
  std::vector<ExecutionReport> reports;
  TablePrinter table({"engine", "avg_sat", "prog_sat", "join_results",
                      "skyline_cmps", "exec_time_s", "wall_s"});
  for (const std::string& name : engines) {
    Result<std::unique_ptr<Engine>> engine = MakeEngine(name);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    Result<ExecutionReport> report =
        (*engine)->Execute(r, t, *workload, contracts, options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {report->engine, FormatDouble(report->average_satisfaction, 3),
         FormatDouble(bench::ProgressiveScore(
                          *report, calibration.reference_seconds),
                      3),
         FormatCount(report->stats.join_results),
         FormatCount(report->stats.dominance_cmps),
         FormatDouble(report->stats.virtual_seconds, 3),
         FormatDouble(report->stats.wall_seconds, 3)});
    if (args.GetInt("trace", 0) != 0) {
      std::printf("%s emission profile:\n", report->engine.c_str());
      for (const QueryReport& query : report->queries) {
        if (query.utility_trace.empty()) continue;
        std::printf("  %-4s %5lld results, first %.4fs, last %.4fs\n",
                    query.name.c_str(),
                    static_cast<long long>(query.results),
                    query.utility_trace.front().time,
                    query.utility_trace.back().time);
      }
    }
    reports.push_back(std::move(report).value());
  }
  std::printf("%s\n", table.Render().c_str());

  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    Status status =
        WriteTextFile(out + "_summary.csv", ReportSummaryCsv(reports));
    for (const ExecutionReport& report : reports) {
      if (!status.ok()) break;
      status = WriteTextFile(out + "_queries_" + report.engine + ".csv",
                             QueryBreakdownCsv(report));
      if (!status.ok()) break;
      status = WriteTextFile(out + "_trace_" + report.engine + ".csv",
                             UtilityTraceCsv(report));
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s_summary.csv and per-engine query/trace CSVs\n",
                out.c_str());
  }
  if (!trace_out.empty()) {
    const Status status = WriteTextFile(trace_out, obs.ChromeTrace());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans, %zu health samples)\n",
                trace_out.c_str(), obs.spans.size(), obs.health.size());
  }
  if (!metrics_out.empty()) {
    const Status status =
        WriteTextFile(metrics_out, obs.metrics.PrometheusText());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace caqe

int main(int argc, char** argv) { return caqe::Main(argc, argv); }
