#!/usr/bin/env bash
# Steady-state allocation gate for the region hot path.
#
# Builds bench_alloc — the only binary linking caqe_alloc_hook, the
# counting operator new/delete — and fails if the compact-layout engine
# averages more than the checked-in budget of heap allocations per region
# after warmup, in either batch execution or serving replay. bench_alloc
# also cross-checks that the compact layout is behavior-neutral (identical
# ReportHash and serving report text with the layout on and off), so a
# pass certifies reports, not just allocation counts.
#
#   scripts/run_alloc_gate.sh [EXTRA_CMAKE_FLAGS...]
set -euo pipefail
cd "$(dirname "$0")/.."

# The budget is part of the repo contract: raising it is a reviewed change,
# not a knob. See DESIGN.md "Memory architecture" for what it buys.
ALLOC_BUDGET=5

build_dir="build-alloc-gate"
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
cmake --build "${build_dir}" -j"$(nproc)" --target bench_alloc
"./${build_dir}/bench/bench_alloc" \
  --max_allocs_per_region="${ALLOC_BUDGET}" \
  --out="${build_dir}/BENCH_alloc.json"
echo "alloc gate OK (budget ${ALLOC_BUDGET} allocs/region," \
     "report ${build_dir}/BENCH_alloc.json)"
