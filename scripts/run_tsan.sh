#!/usr/bin/env bash
# Builds the test suite under ThreadSanitizer and runs it.
#
#   scripts/run_tsan.sh [EXTRA_CMAKE_FLAGS...]
#
# The suite's parallel-determinism and thread-pool tests drive the engine's
# pooled phases (region build, join-kernel prefetch/probing, plan-group
# evaluation, discard scans) with num_threads > 1, so data races in those
# paths surface here rather than in production sweeps. Benchmarks and
# examples are skipped: TSan slows execution ~10x and they add no coverage.
#
# Pass -DCAQE_SIMD=OFF to sanitize the forced-scalar dominance kernels;
# scripts/run_simd_matrix.sh runs the full scalar/SIMD determinism matrix.
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCAQE_SANITIZE=thread \
  -DCAQE_BUILD_BENCHMARKS=OFF \
  -DCAQE_BUILD_EXAMPLES=OFF \
  "$@"
cmake --build "${BUILD_DIR}" -j"$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"$(nproc)"
