#!/usr/bin/env bash
# Regenerates every table/figure of the reproduction and collects console
# output plus CSV exports under the given output directory.
#
#   scripts/run_experiments.sh [OUT_DIR] [EXTRA_BENCH_FLAGS...]
#
# Example: scripts/run_experiments.sh results --rows=8000
#
# THREADS=N (default 1) passes --threads=N to every benchmark: worker
# threads for the engines' parallel phases. Reported figures are
# bit-identical at any thread count — only wall time changes.
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
THREADS="${THREADS:-1}"
OUT_DIR="${1:-experiment_results}"
shift || true
EXTRA_FLAGS=("--threads=${THREADS}" "$@")

mkdir -p "${OUT_DIR}"

run() {
  local name="$1"
  shift
  echo "== ${name} $*" | tee "${OUT_DIR}/${name}.txt"
  "${BUILD_DIR}/bench/${name}" "$@" | tee -a "${OUT_DIR}/${name}.txt"
}

run bench_fig9 "${EXTRA_FLAGS[@]:-}"
run bench_fig10 "${EXTRA_FLAGS[@]:-}"
run bench_fig11 "${EXTRA_FLAGS[@]:-}"
run bench_sweeps "${EXTRA_FLAGS[@]:-}"
run bench_latency "${EXTRA_FLAGS[@]:-}"
run bench_ablation_cuboid "${EXTRA_FLAGS[@]:-}"
run bench_ablation_optimizer "${EXTRA_FLAGS[@]:-}"
run bench_topk "${EXTRA_FLAGS[@]:-}"

# CSV exports via the CLI, one per contract class.
for contract in C1 C2 C3 C4 C5; do
  "${BUILD_DIR}/tools/caqe_cli" --contract="${contract}" \
    --out="${OUT_DIR}/cli_${contract}" "${EXTRA_FLAGS[@]:-}" \
    > "${OUT_DIR}/cli_${contract}.txt"
done

echo "All experiment output written to ${OUT_DIR}/"
