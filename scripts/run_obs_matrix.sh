#!/usr/bin/env bash
# Proves the observability layer's determinism contract: attaching the
# tracing/metrics sinks must not change a single byte of any report. The
# Figure 9 benchmark is run over the full matrix of SIMD builds
# (CAQE_SIMD=OFF/ON) x tracing (detached / --trace-out + --metrics-out);
# its stdout tables must be byte-identical down every column, and the
# traced cells must actually produce a non-empty Chrome trace and a
# Prometheus snapshot. Two extra cells per build run at 8 threads with
# inter-region pipelining off and on, and two more with the tree-indexed
# coarse phase (--coarse_index=1) at 1 and 8 threads — neither the
# pipeline nor the coarse index may move a byte, traced or not.
#
# A second matrix drives caqe_serve (batch mode) with --ledger_out across
# threads {1,8} x pipeline {0,1} per build: the contract audit ledger,
# after stripping its single wall-clock field (report_diff.sh
# --normalize-wall), must be byte-identical down every column — the
# DESIGN.md §15 determinism contract for per-request causal audit records.
#
#   scripts/run_obs_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Reuses the build trees of scripts/run_simd_matrix.sh when present.
set -euo pipefail
cd "$(dirname "$0")/.."

if (( $(nproc) < 2 )); then
  echo "WARNING: nproc=$(nproc) — the 8-thread cells all run on one" \
       "hardware CPU; the matrix still proves determinism, but not" \
       "parallel speedup." >&2
fi

FIG9_ARGS=(--rows=2000)
SERVE_ARGS=(--rows=400 --sel=0.02 --requests=10 --seed=2014
            --target-regions=64)
declare -A REPORTS
declare -A LEDGERS
declare -A SERVE_REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)" --target bench_fig9 caqe_serve_cli
  for tracing in off on; do
    out="${build_dir}/fig9_obs_${tracing}.txt"
    extra=()
    if [[ "${tracing}" == on ]]; then
      extra=(--trace-out="${build_dir}/fig9_trace.json"
             --metrics-out="${build_dir}/fig9_metrics.prom")
    fi
    "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" "${extra[@]}" \
      > "${out}"
    REPORTS["${simd}_${tracing}"]="${out}"
  done
  # Pipeline cells: 8 threads, speculation off/on, untraced.
  for pipeline in 0 1; do
    out="${build_dir}/fig9_obs_pipe${pipeline}.txt"
    "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" \
      --threads=8 --pipeline="${pipeline}" > "${out}"
    REPORTS["${simd}_pipe${pipeline}"]="${out}"
  done
  # Coarse-index cells: the tree-indexed coarse phase at 1 and 8 threads
  # must reproduce the scan-phase stdout byte for byte.
  for threads in 1 8; do
    out="${build_dir}/fig9_obs_coarse_t${threads}.txt"
    "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" \
      --threads="${threads}" --coarse_index=1 > "${out}"
    REPORTS["${simd}_coarse_t${threads}"]="${out}"
  done
  # Audit-ledger cells: the serving layer's per-request causal records
  # must not move a byte (wall field aside) under threads x pipeline.
  serve_bin="./${build_dir}/tools/caqe_serve"
  [[ -x "${serve_bin}" ]] || serve_bin="./${build_dir}/caqe_serve"
  for threads in 1 8; do
    for pipeline in 0 1; do
      cell="t${threads}_p${pipeline}"
      "${serve_bin}" "${SERVE_ARGS[@]}" \
        --threads="${threads}" --pipeline="${pipeline}" \
        --ledger_out="${build_dir}/ledger_${cell}.jsonl" \
        --report-out="${build_dir}/serve_report_${cell}.txt" > /dev/null
      LEDGERS["${simd}_${cell}"]="${build_dir}/ledger_${cell}.jsonl"
      SERVE_REPORTS["${simd}_${cell}"]="${build_dir}/serve_report_${cell}.txt"
    done
  done
  # Ledger cells must contain the full request lifecycle.
  grep -q '"kind":"arrival"' "${build_dir}/ledger_t1_p0.jsonl"
  grep -q '"kind":"decision"' "${build_dir}/ledger_t1_p0.jsonl"
  grep -q '"kind":"finish"' "${build_dir}/ledger_t1_p0.jsonl"
  # The traced cell must have written real artifacts.
  grep -q '"traceEvents"' "${build_dir}/fig9_trace.json"
  grep -q '^# TYPE caqe_engine_dominance_cmps_total counter$' \
    "${build_dir}/fig9_metrics.prom"
  echo "artifacts ok: ${build_dir}/fig9_trace.json," \
       "${build_dir}/fig9_metrics.prom"
done

# Every cell must match the scalar untraced baseline.
status=0
tools/report_diff.sh "fig9 stdout vs OFF_off" "${REPORTS[OFF_off]}" \
  "OFF_on=${REPORTS[OFF_on]}" \
  "OFF_pipe0=${REPORTS[OFF_pipe0]}" \
  "OFF_pipe1=${REPORTS[OFF_pipe1]}" \
  "ON_off=${REPORTS[ON_off]}" \
  "ON_on=${REPORTS[ON_on]}" \
  "ON_pipe0=${REPORTS[ON_pipe0]}" \
  "ON_pipe1=${REPORTS[ON_pipe1]}" \
  "OFF_coarse_t1=${REPORTS[OFF_coarse_t1]}" \
  "OFF_coarse_t8=${REPORTS[OFF_coarse_t8]}" \
  "ON_coarse_t1=${REPORTS[ON_coarse_t1]}" \
  "ON_coarse_t8=${REPORTS[ON_coarse_t8]}" || status=1

# Audit ledgers (wall field stripped) must match the scalar t1/p0 baseline
# across threads x pipeline x SIMD; the serving reports alongside them too.
ledger_cells=()
serve_cells=()
for key in "${!LEDGERS[@]}"; do
  [[ "${key}" == "OFF_t1_p0" ]] && continue
  ledger_cells+=("${key}=${LEDGERS[${key}]}")
  serve_cells+=("${key}=${SERVE_REPORTS[${key}]}")
done
tools/report_diff.sh --normalize-wall "audit ledger vs OFF_t1_p0" \
  "${LEDGERS[OFF_t1_p0]}" "${ledger_cells[@]}" || status=1
tools/report_diff.sh "serve report vs OFF_t1_p0" \
  "${SERVE_REPORTS[OFF_t1_p0]}" "${serve_cells[@]}" || status=1
exit "${status}"
