#!/usr/bin/env bash
# Proves the observability layer's determinism contract: attaching the
# tracing/metrics sinks must not change a single byte of any report. The
# Figure 9 benchmark is run over the full matrix of SIMD builds
# (CAQE_SIMD=OFF/ON) x tracing (detached / --trace-out + --metrics-out);
# its stdout tables must be byte-identical down every column, and the
# traced cells must actually produce a non-empty Chrome trace and a
# Prometheus snapshot.
#
#   scripts/run_obs_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Reuses the build trees of scripts/run_simd_matrix.sh when present.
set -euo pipefail

FIG9_ARGS=(--rows=2000)
declare -A REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)" --target bench_fig9
  for tracing in off on; do
    out="${build_dir}/fig9_obs_${tracing}.txt"
    extra=()
    if [[ "${tracing}" == on ]]; then
      extra=(--trace-out="${build_dir}/fig9_trace.json"
             --metrics-out="${build_dir}/fig9_metrics.prom")
    fi
    "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" "${extra[@]}" \
      > "${out}"
    REPORTS["${simd}_${tracing}"]="${out}"
  done
  # The traced cell must have written real artifacts.
  grep -q '"traceEvents"' "${build_dir}/fig9_trace.json"
  grep -q '^# TYPE caqe_engine_dominance_cmps_total counter$' \
    "${build_dir}/fig9_metrics.prom"
  echo "artifacts ok: ${build_dir}/fig9_trace.json," \
       "${build_dir}/fig9_metrics.prom"
done

# Every cell must match the scalar untraced baseline.
baseline="${REPORTS[OFF_off]}"
status=0
for key in OFF_off OFF_on ON_off ON_on; do
  if diff -u "${baseline}" "${REPORTS[${key}]}" > /dev/null; then
    echo "fig9 stdout identical: ${key} vs OFF_off"
  else
    echo "FAIL: fig9 stdout differs: ${key} vs OFF_off" >&2
    diff -u "${baseline}" "${REPORTS[${key}]}" >&2 || true
    status=1
  fi
done
exit "${status}"
