#!/usr/bin/env bash
# Proves the serving layer's determinism contract: one fixed arrival trace
# replayed through caqe_serve must produce a byte-identical serving report
# across the full matrix of SIMD builds (CAQE_SIMD=OFF/ON) and worker
# thread counts (1 and 8), plus one cell per build with the observability
# layer attached (--trace_out/--metrics_out) — tracing is read-only with
# respect to the engine, so it must not move a byte either. The report text
# deliberately excludes every non-deterministic quantity, so any diff is a
# real determinism bug.
#
#   scripts/run_serving_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Reuses the build trees of scripts/run_simd_matrix.sh when present.
set -euo pipefail

SERVE_ARGS=(--rows=1000 --requests=12 --rate=40 --seed=2014
            --cancel-fraction=0.1 --deadline-fraction=0.25)
declare -A REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  # caqe_serve lives under tools/, gated by CAQE_BUILD_EXAMPLES.
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    -DCAQE_BUILD_EXAMPLES=ON \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)" --target caqe_serve_cli
  for threads in 1 8; do
    out="${build_dir}/serving_t${threads}.txt"
    "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
      --threads="${threads}" --report-out="${out}" > /dev/null
    REPORTS["${simd}_${threads}"]="${out}"
  done
  # Tracing-attached cell: the observability layer must not move a byte.
  out="${build_dir}/serving_traced.txt"
  "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
    --threads=1 --report-out="${out}" \
    --trace_out="${build_dir}/serving_trace.json" \
    --metrics_out="${build_dir}/serving_metrics.prom" \
    --health_out="${build_dir}/serving_health.jsonl" > /dev/null
  REPORTS["${simd}_traced"]="${out}"
  grep -q '"traceEvents"' "${build_dir}/serving_trace.json"
  grep -q '^# TYPE caqe_serve_admission_decisions_total counter$' \
    "${build_dir}/serving_metrics.prom"
done

# Every cell of the matrix must match the scalar single-threaded baseline.
baseline="${REPORTS[OFF_1]}"
status=0
for key in OFF_1 OFF_8 ON_1 ON_8 OFF_traced ON_traced; do
  if diff -u "${baseline}" "${REPORTS[${key}]}" > /dev/null; then
    echo "serving report identical: ${key} vs OFF_1"
  else
    echo "FAIL: serving report differs: ${key} vs OFF_1" >&2
    diff -u "${baseline}" "${REPORTS[${key}]}" >&2 || true
    status=1
  fi
done
exit "${status}"
