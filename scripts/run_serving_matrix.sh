#!/usr/bin/env bash
# Proves the serving layer's determinism contract: one fixed arrival trace
# replayed through caqe_serve must produce a byte-identical serving report
# across the full matrix of SIMD builds (CAQE_SIMD=OFF/ON), worker thread
# counts (1 and 8), and inter-region pipelining (--pipeline=0/1), plus
# tree-indexed coarse-phase cells (--coarse_index=1 at both worker counts)
# and one cell per build with the observability layer attached
# (--trace_out/--metrics_out) — tracing is read-only with respect to the
# engine, so it must not move a byte either. A composed
# coarse-index x compact-layout-off cell checks the orthogonal knobs
# together, and a second matrix runs the same trace with --calibrate=1:
# self-tuning admission changes decisions by design (data-shape
# parameter), so the calibrated cells are byte-diffed among themselves
# across threads x pipeline x SIMD. The report text deliberately excludes
# every non-deterministic quantity, so any diff is a real determinism bug.
#
#   scripts/run_serving_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Reuses the build trees of scripts/run_simd_matrix.sh when present.
set -euo pipefail
cd "$(dirname "$0")/.."

if (( $(nproc) < 2 )); then
  echo "WARNING: nproc=$(nproc) — the 8-worker cells all run on one" \
       "hardware CPU; the matrix still proves determinism, but not" \
       "parallel speedup." >&2
fi

SERVE_ARGS=(--rows=1000 --requests=12 --rate=40 --seed=2014
            --cancel-fraction=0.1 --deadline-fraction=0.25)
declare -A REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  # caqe_serve lives under tools/, gated by CAQE_BUILD_EXAMPLES.
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    -DCAQE_BUILD_EXAMPLES=ON \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)" --target caqe_serve_cli
  for threads in 1 8; do
    for pipeline in 0 1; do
      out="${build_dir}/serving_t${threads}_p${pipeline}.txt"
      "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
        --threads="${threads}" --pipeline="${pipeline}" \
        --report-out="${out}" > /dev/null
      REPORTS["${simd}_${threads}_${pipeline}"]="${out}"
    done
  done
  # Coarse-index cells: the tree-indexed coarse phase must reproduce the
  # scan-phase serving report byte for byte at both worker counts.
  for threads in 1 8; do
    out="${build_dir}/serving_t${threads}_coarse.txt"
    "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
      --threads="${threads}" --coarse_index=1 \
      --report-out="${out}" > /dev/null
    REPORTS["${simd}_${threads}_coarse"]="${out}"
  done
  # Compact-layout-off cells: the cache-conscious steady-state layout
  # (flat CSR join indexes, arena scratch) is a pure layout change, so
  # switching it off must reproduce the report byte for byte.
  for threads in 1 8; do
    out="${build_dir}/serving_t${threads}_mapidx.txt"
    "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
      --threads="${threads}" --compact_layout=0 \
      --report-out="${out}" > /dev/null
    REPORTS["${simd}_${threads}_mapidx"]="${out}"
  done
  # Coarse-index x compact-layout-off cell: the two orthogonal layout/index
  # knobs composed — still byte-identical.
  out="${build_dir}/serving_coarse_mapidx.txt"
  "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
    --threads=8 --coarse_index=1 --compact_layout=0 \
    --report-out="${out}" > /dev/null
  REPORTS["${simd}_coarse_mapidx"]="${out}"
  # Calibrated cells: --calibrate is a DATA-SHAPE parameter (it changes
  # admission decisions by design), so calibrated cells get their own
  # baseline and are byte-diffed among themselves across threads,
  # pipelining, and SIMD builds — the calibrator updates on the serial
  # driver step, so no execution axis may leak into its factors.
  for threads in 1 8; do
    for pipeline in 0 1; do
      out="${build_dir}/serving_t${threads}_p${pipeline}_calib.txt"
      "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
        --threads="${threads}" --pipeline="${pipeline}" --calibrate=1 \
        --report-out="${out}" > /dev/null
      REPORTS["${simd}_${threads}_${pipeline}_calib"]="${out}"
    done
  done
  # Tracing-attached cell: the observability layer must not move a byte.
  out="${build_dir}/serving_traced.txt"
  "./${build_dir}/tools/caqe_serve" "${SERVE_ARGS[@]}" \
    --threads=1 --report-out="${out}" \
    --trace_out="${build_dir}/serving_trace.json" \
    --metrics_out="${build_dir}/serving_metrics.prom" \
    --health_out="${build_dir}/serving_health.jsonl" > /dev/null
  REPORTS["${simd}_traced"]="${out}"
  grep -q '"traceEvents"' "${build_dir}/serving_trace.json"
  grep -q '^# TYPE caqe_serve_admission_decisions_total counter$' \
    "${build_dir}/serving_metrics.prom"
  # Alloc-gate cell: the steady-state allocation budget of the region hot
  # path must hold in this build too. bench_alloc fails hard past the
  # budget and cross-checks that the compact layout is report-neutral.
  cmake --build "${build_dir}" -j"$(nproc)" --target bench_alloc
  "./${build_dir}/bench/bench_alloc" --max_allocs_per_region=5 \
    --out="${build_dir}/BENCH_alloc.json" > /dev/null
done

# Every cell of the matrix must match the scalar single-threaded
# non-pipelined baseline.
status=0
tools/report_diff.sh "serving report vs OFF_1_0" "${REPORTS[OFF_1_0]}" \
  "OFF_1_pipeline=${REPORTS[OFF_1_1]}" \
  "OFF_8=${REPORTS[OFF_8_0]}" \
  "OFF_8_pipeline=${REPORTS[OFF_8_1]}" \
  "ON_1=${REPORTS[ON_1_0]}" \
  "ON_1_pipeline=${REPORTS[ON_1_1]}" \
  "ON_8=${REPORTS[ON_8_0]}" \
  "ON_8_pipeline=${REPORTS[ON_8_1]}" \
  "OFF_1_coarse=${REPORTS[OFF_1_coarse]}" \
  "OFF_8_coarse=${REPORTS[OFF_8_coarse]}" \
  "ON_1_coarse=${REPORTS[ON_1_coarse]}" \
  "ON_8_coarse=${REPORTS[ON_8_coarse]}" \
  "OFF_1_mapidx=${REPORTS[OFF_1_mapidx]}" \
  "OFF_8_mapidx=${REPORTS[OFF_8_mapidx]}" \
  "ON_1_mapidx=${REPORTS[ON_1_mapidx]}" \
  "ON_8_mapidx=${REPORTS[ON_8_mapidx]}" \
  "OFF_traced=${REPORTS[OFF_traced]}" \
  "ON_traced=${REPORTS[ON_traced]}" \
  "OFF_coarse_mapidx=${REPORTS[OFF_coarse_mapidx]}" \
  "ON_coarse_mapidx=${REPORTS[ON_coarse_mapidx]}" || status=1
# Calibrated cells against the calibrated scalar baseline.
tools/report_diff.sh "calibrated serving report vs OFF_1_0_calib" \
  "${REPORTS[OFF_1_0_calib]}" \
  "OFF_1_pipeline_calib=${REPORTS[OFF_1_1_calib]}" \
  "OFF_8_calib=${REPORTS[OFF_8_0_calib]}" \
  "OFF_8_pipeline_calib=${REPORTS[OFF_8_1_calib]}" \
  "ON_1_calib=${REPORTS[ON_1_0_calib]}" \
  "ON_1_pipeline_calib=${REPORTS[ON_1_1_calib]}" \
  "ON_8_calib=${REPORTS[ON_8_0_calib]}" \
  "ON_8_pipeline_calib=${REPORTS[ON_8_1_calib]}" || status=1
exit "${status}"
