#!/usr/bin/env bash
# Line-coverage report for the serving and net layers.
#
# Builds the tree with -DCAQE_COVERAGE=ON (gcov instrumentation, -O0 so
# inlining cannot hide lines), runs the full ctest suite, then walks every
# source file under src/serve and src/net with gcov (or llvm-cov gcov when
# the compiler is clang) and prints a per-file line-coverage table.
#
# Documented floors (enforced, non-zero exit below them):
#   src/serve/calibration.cc  >= 80%   (self-tuning admission loop)
#   src/net/protocol.cc       >= 80%   (hostile-input parser)
# The rest of the table is informational — floors are only added for files
# whose tests explicitly claim coverage (see tests/calibration_test.cc and
# tests/net_fuzz_test.cc).
#
#   scripts/run_coverage.sh [EXTRA_CMAKE_FLAGS...]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="build-coverage"
cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCAQE_COVERAGE=ON \
  "$@"
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"

# gcov flavor must match the compiler that produced the .gcno files.
gcov_bin=(gcov)
compiler=$(grep -E '^CMAKE_CXX_COMPILER:' "${build_dir}/CMakeCache.txt" \
  | cut -d= -f2 || true)
if [[ "${compiler}" == *clang* ]]; then
  gcov_bin=(llvm-cov gcov)
fi

# Percent of executable lines hit in `src_file`, from the matching .gcda in
# the build tree. Prints "-" when the file never ran.
coverage_of() {
  local src_file=$1
  local obj_dir
  obj_dir=$(dirname "${src_file}")
  obj_dir="${build_dir}/${obj_dir}/CMakeFiles"
  local gcda
  gcda=$(find "${obj_dir}" -name "$(basename "${src_file}").gcda" 2>/dev/null \
    | head -1 || true)
  [[ -z "${gcda}" ]] && { echo "-"; return; }
  # CMake names counters <src>.cc.gcda, so hand gcov the counter file itself
  # (its -o dir-mode lookup would hunt for <src>.gcno and miss).
  local line
  line=$("${gcov_bin[@]}" -n "${gcda}" 2>/dev/null \
    | grep -A1 "File '.*/$(basename "${src_file}")'" \
    | grep -o 'Lines executed:[0-9.]*%' | head -1 | grep -o '[0-9.]*' || true)
  [[ -z "${line}" ]] && { echo "-"; return; }
  echo "${line}"
}

status=0
printf '%-34s %10s %8s\n' "file" "coverage" "floor"
for src in src/serve/*.cc src/net/*.cc; do
  floor=0
  case "${src}" in
    src/serve/calibration.cc) floor=80 ;;
    src/net/protocol.cc) floor=80 ;;
  esac
  pct=$(coverage_of "${src}")
  floor_text="-"
  (( floor > 0 )) && floor_text=">=${floor}%"
  printf '%-34s %9s%% %8s\n' "${src}" "${pct}" "${floor_text}"
  if (( floor > 0 )); then
    if [[ "${pct}" == "-" ]] || \
       ! awk -v p="${pct}" -v f="${floor}" 'BEGIN { exit !(p >= f) }'; then
      echo "FAIL: ${src} line coverage ${pct}% below the ${floor}% floor" >&2
      status=1
    fi
  fi
done
exit "${status}"
