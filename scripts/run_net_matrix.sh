#!/usr/bin/env bash
# Proves the wall-clock front-end's record/replay determinism oracle end to
# end, over real TCP:
#
#   1. Start `caqe_serve --listen` on an ephemeral loopback port with session
#      recording and the audit ledger on, drive a scripted client session
#      (submits, a cancel, STATUS, a TRACE lookup, DRAIN) through
#      caqe_net_client, scrape /metrics, /healthz, /statusz, /tracez/<id>
#      and /flightz over HTTP while the server lingers post-drain, then
#      STOP it.
#   2. Replay the recorded session trace on the virtual clock across the
#      full engine-knob matrix — threads {1,8} x pipeline {0,1} x
#      compact_layout {0,1} — and byte-diff every replayed serving report
#      (and exec event stream) against the live session's. Each replay also
#      writes its audit ledger; after stripping the wall-clock field
#      (report_diff.sh --normalize-wall) every replayed ledger must match
#      the live session's byte for byte.
#   3. Diff the live /metrics scrape against the server's --metrics_out
#      snapshot, excluding the caqe_net_* series (the scrape itself perturbs
#      the net counters; every engine series must match exactly).
#   4. SIGTERM cell: a second live session is drained by SIGTERM instead of
#      a DRAIN command; the exit code must report drain success and its
#      trace must replay byte-identically too.
#
# The wall clock chooses the arrival quantum indices, so the live report is
# only comparable to replays of the *same* recorded session — every diff in
# this script is within one run.
#
#   scripts/run_net_matrix.sh [EXTRA_CMAKE_FLAGS...]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="build-net"
cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCAQE_BUILD_EXAMPLES=ON \
  "$@"
cmake --build "${build_dir}" -j"$(nproc)" --target caqe_serve_cli \
  caqe_net_client net_fuzz_test

# ---- Cell 0: protocol fuzz ----------------------------------------------
# The deterministic mutation fuzzer (tests/net_fuzz_test.cc) hammers
# ParseCommand/LineBuffer with hostile bytes before any socket opens: a
# parser crash would take the whole matrix down with a confusing diff.
"./${build_dir}/tests/net_fuzz_test" --gtest_brief=1

out="${build_dir}/net"
rm -rf "${out}"
mkdir -p "${out}"

serve="./${build_dir}/tools/caqe_serve"
client="./${build_dir}/tools/caqe_net_client"
DATA_ARGS=(--rows=400 --sel=0.02 --seed=2014 --target-regions=64)

wait_for_port() {
  local port_file=$1
  for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && return 0
    sleep 0.1
  done
  echo "FAIL: server never wrote ${port_file}" >&2
  return 1
}

# ---- Cell 1: live wall-clock session, recorded --------------------------
"${serve}" --listen=127.0.0.1:0 "${DATA_ARGS[@]}" \
  --record="${out}/session.trace" \
  --port_file="${out}/port" \
  --linger=1 \
  --report-out="${out}/live_report.txt" \
  --trace-out="${out}/live_events.jsonl" \
  --metrics_out="${out}/live_metrics.prom" \
  --ledger_out="${out}/live_ledger.jsonl" \
  --flight_out="${out}/live_flight.jsonl" \
  > "${out}/live_stdout.txt" 2>&1 &
server_pid=$!
wait_for_port "${out}/port" || { kill "${server_pid}" 2>/dev/null; exit 1; }
port=$(cat "${out}/port")

"${client}" --port="${port}" --script=- > "${out}/client_transcript.txt" <<'EOF'
SUBMIT name=m0 key=0 pref=0,1 CONTRACT step:5
!expect QUEUED 0
SUBMIT name=m1 key=1 pref=1,2 priority=0.5 deadline=30 CONTRACT hyper:0.01,0.05
!expect QUEUED 1
SUBMIT name=m2 key=0 pref=0,2 sel=r:0:0.2:0.9 CONTRACT card:0.9,1
!expect QUEUED 2
CANCEL 1
STATUS
!expect STATUS
DRAIN
!expect DRAINED
TRACE m0
!expect TRACE-END
EOF

grep -q '^HELLO caqe/1' "${out}/client_transcript.txt"
grep -q '^QUEUED 2'     "${out}/client_transcript.txt"
grep -q '^DRAINED'      "${out}/client_transcript.txt"
# The TRACE verb returned the named request's ledger tail.
grep -q '^TRACE 0 records=' "${out}/client_transcript.txt"
grep -q '"kind":"finish"'   "${out}/client_transcript.txt"

# Post-drain scrapes: --linger keeps STATUS and HTTP alive, and the engine
# stats are final once the drain produced the report.
"${client}" --port="${port}" --get=/metrics > "${out}/scrape_metrics.prom"
"${client}" --port="${port}" --get=/healthz > "${out}/scrape_healthz.txt"
grep -q '^ok state=drained' "${out}/scrape_healthz.txt"

# Debug introspection endpoints (same port): the live-request table, one
# request's causal tree, and the flight-recorder ring.
"${client}" --port="${port}" --get=/statusz > "${out}/scrape_statusz.txt"
grep -q '^state: drained' "${out}/scrape_statusz.txt"
grep -q '^0 m0 '          "${out}/scrape_statusz.txt"
"${client}" --port="${port}" --get=/tracez/0 > "${out}/scrape_tracez.json"
grep -q '"request":0'       "${out}/scrape_tracez.json"
grep -q '"kind":"arrival"'  "${out}/scrape_tracez.json"
"${client}" --port="${port}" --get=/flightz > "${out}/scrape_flightz.jsonl"
grep -q '"kind":"audit"' "${out}/scrape_flightz.jsonl"
# Hostile request ids earn stable error bodies (non-200 -> client exits 1).
if "${client}" --port="${port}" --get=/tracez/abc \
    > "${out}/scrape_tracez_bad.txt"; then
  echo "FAIL: /tracez/abc returned 200" >&2
  exit 1
fi
grep -q 'bad-request-id' "${out}/scrape_tracez_bad.txt"
echo "introspection endpoints ok (/statusz /tracez /flightz TRACE)"

printf 'STOP\n' | "${client}" --port="${port}" --script=- > /dev/null
server_rc=0
wait "${server_pid}" || server_rc=$?
if (( server_rc != 0 )); then
  echo "FAIL: live server exited ${server_rc} (drain did not succeed)" >&2
  cat "${out}/live_stdout.txt" >&2
  exit 1
fi

# ---- Metrics: HTTP scrape vs --metrics_out snapshot ----------------------
# The scrape connection itself moves the caqe_net_* series (connections,
# bytes), so those are excluded; every engine series must match exactly.
grep -v 'caqe_net_' "${out}/scrape_metrics.prom" > "${out}/scrape_engine.prom"
grep -v 'caqe_net_' "${out}/live_metrics.prom"   > "${out}/snap_engine.prom"
if ! diff -u "${out}/snap_engine.prom" "${out}/scrape_engine.prom"; then
  echo "FAIL: /metrics scrape diverges from --metrics_out snapshot" >&2
  exit 1
fi
echo "metrics scrape matches snapshot (caqe_net_* excluded)"
grep -q '^caqe_net_connections_total' "${out}/scrape_metrics.prom"

# ---- Replay matrix: threads x pipeline x compact_layout ------------------
status=0
diff_args=()
ledger_args=()
for threads in 1 8; do
  for pipeline in 0 1; do
    for compact in 0 1; do
      tag="t${threads}_p${pipeline}_c${compact}"
      "${serve}" --replay="${out}/session.trace" \
        --threads="${threads}" --pipeline="${pipeline}" \
        --compact_layout="${compact}" \
        --report-out="${out}/replay_${tag}.txt" \
        --trace-out="${out}/replay_${tag}.jsonl" \
        --ledger_out="${out}/replay_${tag}_ledger.jsonl" > /dev/null
      diff_args+=("${tag}=${out}/replay_${tag}.txt")
      ledger_args+=("${tag}=${out}/replay_${tag}_ledger.jsonl")
      if ! cmp -s "${out}/live_events.jsonl" "${out}/replay_${tag}.jsonl"; then
        echo "FAIL: exec event stream ${tag} diverges from live session" >&2
        status=1
      fi
    done
  done
done
tools/report_diff.sh "net replay vs live session" "${out}/live_report.txt" \
  "${diff_args[@]}" || status=1
# The audit ledger reconstructs every request's causal decision history;
# minus its wall-clock field it must replay byte-for-byte.
tools/report_diff.sh --normalize-wall "audit ledger replay vs live" \
  "${out}/live_ledger.jsonl" "${ledger_args[@]}" || status=1

# ---- SIGTERM cell: graceful drain by signal ------------------------------
"${serve}" --listen=127.0.0.1:0 "${DATA_ARGS[@]}" \
  --record="${out}/sig.trace" \
  --port_file="${out}/sig_port" \
  --linger=0 \
  --report-out="${out}/sig_report.txt" \
  --trace-out="${out}/sig_events.jsonl" \
  --ledger_out="${out}/sig_ledger.jsonl" \
  > "${out}/sig_stdout.txt" 2>&1 &
sig_pid=$!
wait_for_port "${out}/sig_port" || { kill "${sig_pid}" 2>/dev/null; exit 1; }
sig_port=$(cat "${out}/sig_port")

"${client}" --port="${sig_port}" --script=- > "${out}/sig_transcript.txt" <<'EOF'
SUBMIT name=s0 key=0 pref=0,1,2 CONTRACT step:5
!expect QUEUED 0
SUBMIT name=s1 key=1 pref=0,2 CONTRACT log:0.1
!expect QUEUED 1
EOF

kill -TERM "${sig_pid}"
sig_rc=0
wait "${sig_pid}" || sig_rc=$?
if (( sig_rc != 0 )); then
  echo "FAIL: SIGTERM drain exited ${sig_rc} (want 0 = drain success)" >&2
  cat "${out}/sig_stdout.txt" >&2
  exit 1
fi
echo "SIGTERM drain completed with exit 0"

"${serve}" --replay="${out}/sig.trace" \
  --report-out="${out}/sig_replay.txt" \
  --trace-out="${out}/sig_replay.jsonl" \
  --ledger_out="${out}/sig_replay_ledger.jsonl" > /dev/null
tools/report_diff.sh "SIGTERM session replay vs live" \
  "${out}/sig_report.txt" "replay=${out}/sig_replay.txt" || status=1
cmp -s "${out}/sig_events.jsonl" "${out}/sig_replay.jsonl" || {
  echo "FAIL: SIGTERM session exec events diverge on replay" >&2
  status=1
}
tools/report_diff.sh --normalize-wall "SIGTERM ledger replay vs live" \
  "${out}/sig_ledger.jsonl" "replay=${out}/sig_replay_ledger.jsonl" \
  || status=1

# ---- Calibrated cell: self-tuning admission, live -> replay --------------
# --calibrate is recorded in the session trace header (data-shape
# parameter), so the replay re-runs with the identical correction loop and
# must still byte-match the live report and event stream.
"${serve}" --listen=127.0.0.1:0 "${DATA_ARGS[@]}" --calibrate=1 \
  --record="${out}/calib.trace" \
  --port_file="${out}/calib_port" \
  --linger=0 \
  --report-out="${out}/calib_report.txt" \
  --trace-out="${out}/calib_events.jsonl" \
  > "${out}/calib_stdout.txt" 2>&1 &
calib_pid=$!
wait_for_port "${out}/calib_port" || { kill "${calib_pid}" 2>/dev/null; exit 1; }
calib_port=$(cat "${out}/calib_port")

"${client}" --port="${calib_port}" --script=- > "${out}/calib_transcript.txt" <<'EOF'
SUBMIT name=c0 key=0 pref=0,1 CONTRACT step:5
!expect QUEUED 0
SUBMIT name=c1 key=1 pref=1,2 CONTRACT log:0.1
!expect QUEUED 1
SUBMIT name=c2 key=0 pref=0,1,2 CONTRACT hyper:0.5,0.1
!expect QUEUED 2
EOF

kill -TERM "${calib_pid}"
calib_rc=0
wait "${calib_pid}" || calib_rc=$?
if (( calib_rc != 0 )); then
  echo "FAIL: calibrated drain exited ${calib_rc} (want 0)" >&2
  cat "${out}/calib_stdout.txt" >&2
  exit 1
fi
grep -q 'calibrate=1' "${out}/calib.trace" || {
  echo "FAIL: session trace header lost the calibrate flag" >&2
  status=1
}
"${serve}" --replay="${out}/calib.trace" --threads=8 --pipeline=1 \
  --report-out="${out}/calib_replay.txt" \
  --trace-out="${out}/calib_replay.jsonl" > /dev/null
tools/report_diff.sh "calibrated session replay vs live" \
  "${out}/calib_report.txt" "replay=${out}/calib_replay.txt" || status=1
cmp -s "${out}/calib_events.jsonl" "${out}/calib_replay.jsonl" || {
  echo "FAIL: calibrated session exec events diverge on replay" >&2
  status=1
}

exit "${status}"
