#!/usr/bin/env bash
# Builds and tests the suite with the SIMD batch dominance kernels OFF and
# ON, then proves the determinism contract: the Figure 9 report must be
# byte-identical between the forced-scalar and SIMD builds at 1 and 8
# threads (the batch kernels charge the exact dominance_cmps counts of the
# serial scalar loops, so no report quantity may move).
#
#   scripts/run_simd_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Pair with scripts/run_tsan.sh, which accepts -DCAQE_SIMD=OFF/ON the same
# way for a sanitized run of either kernel path.
set -euo pipefail

FIG9_ARGS=(--rows=4000)
declare -A REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    -DCAQE_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
  for threads in 1 8; do
    out="${build_dir}/fig9_t${threads}.txt"
    "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" \
      --threads="${threads}" > "${out}"
    REPORTS["${simd}_${threads}"]="${out}"
  done
done

status=0
for threads in 1 8; do
  if diff -u "${REPORTS[OFF_${threads}]}" "${REPORTS[ON_${threads}]}"; then
    echo "fig9 report identical scalar vs SIMD at threads=${threads}"
  else
    echo "FAIL: fig9 report differs scalar vs SIMD at threads=${threads}" >&2
    status=1
  fi
done
exit "${status}"
